//! `ides-cli` — command-line frontend to the IDES reproduction.
//!
//! ```text
//! ides-cli gen <nlanr|gnp|agnp|p2psim|plrtt> --out m.json [--hosts N] [--seed S] [--format json|text]
//! ides-cli stats <matrix.{json,txt}>
//! ides-cli factor <matrix> --dim D [--algo svd|nmf|als] --out model.json
//! ides-cli reconstruct <matrix> --dim D [--algo ...]      # reconstruction error report
//! ides-cli join <model.json> --out-row "a b c ..." [--in-row "..."]
//! ides-cli predict <model.json> <i> <j>
//! ides-cli eval <matrix> --landmarks M --dim D [--algo svd|nmf] [--seed S]
//! ```

mod args;

use std::path::Path;
use std::process::exit;

use args::Args;
use ides::system::{split_landmarks, IdesConfig};
use ides_datasets::{generators, io, stats, DistanceMatrix};
use ides_mf::metrics::{reconstruction_errors, Cdf};
use ides_mf::model::DistanceEstimator;
use ides_mf::{als, nmf, svd_model, FactorModel};

fn main() {
    let args = Args::from_env();
    match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "stats" => cmd_stats(&args),
        "factor" => cmd_factor(&args),
        "reconstruct" => cmd_reconstruct(&args),
        "join" => cmd_join(&args),
        "predict" => cmd_predict(&args),
        "eval" => cmd_eval(&args),
        "serve" | "loadgen" => cmd_serve(&args),
        "" | "help" | "-h" | "--help" => {
            print!("{}", HELP);
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{}", HELP);
            exit(2);
        }
    }
}

const HELP: &str = "\
ides-cli — Internet Distance Estimation Service (Mao & Saul, IMC 2004)

commands:
  gen <set> --out FILE        generate a synthetic data set
                              (nlanr|gnp|agnp|p2psim|plrtt; --hosts N, --seed S,
                               --format json|text)
  stats <matrix>              structural statistics (TIV, asymmetry, rank)
  factor <matrix> --dim D     factor into X·Yᵀ (--algo svd|nmf|als) and save
                              with --out model.json
  reconstruct <matrix> --dim D  reconstruction-error report per algorithm
  join <model> --out-row \"..\"  solve a host join from landmark measurements
                              (--rows-file FILE batch-joins one host per line
                               through a single shared factorization;
                               --in-rows-file FILE adds asymmetric incoming
                               rows, else incoming = outgoing)
  predict <model> i j         estimated distance between model hosts i and j
  eval <matrix> --landmarks M --dim D   full prediction experiment
  serve                       load-test the concurrent serving engine
                              (--landmarks K --hosts H --dim D --threads T
                               --shards N for a horizontally sharded
                               engine, --drift-batch B to pipeline B drift
                               epochs per writer call, --pipeline-hosts N
                               to override the pipeline's min-rejoin-hosts
                               clamp (0 always pipelines),
                               --duration-s S --rate QPS-per-thread
                               for open loop, --seed N, --json); admits H
                               hosts, compares coalesced vs per-request
                               admission, then measures query p50/p99
                               quiescent and under active drift, with
                               per-shard and publish latency in --json;
                               --metrics-out FILE writes a Prometheus
                               text exposition and --trace-out FILE a
                               Chrome-trace JSON (open in Perfetto) —
                               either flag enables telemetry recording
";

fn load_matrix(path_str: &str) -> DistanceMatrix {
    let path = Path::new(path_str);
    let result = if path.extension().is_some_and(|e| e == "json") {
        io::load_json(path)
    } else {
        io::load_text(
            path.file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("matrix"),
            path,
        )
    };
    result.unwrap_or_else(|e| {
        eprintln!("error: cannot load {path_str}: {e}");
        exit(1);
    })
}

fn cmd_gen(args: &Args) {
    let Some(set) = args.positional.first() else {
        eprintln!("usage: ides-cli gen <nlanr|gnp|agnp|p2psim|plrtt> --out FILE");
        exit(2);
    };
    let seed: u64 = args.get_parsed("seed", 20041025);
    let ds = match set.as_str() {
        "nlanr" => generators::nlanr_like(args.get_parsed("hosts", 110), seed),
        "gnp" => generators::gnp_like(args.get_parsed("hosts", 19), seed),
        "agnp" => generators::agnp_like(
            args.get_parsed("hosts", 869),
            args.get_parsed("cols", 19),
            seed,
        ),
        "p2psim" => generators::p2psim_like(args.get_parsed("hosts", 1143), seed),
        "plrtt" | "pl-rtt" => generators::plrtt_like(args.get_parsed("hosts", 169), seed),
        other => {
            eprintln!("unknown data set {other:?}");
            exit(2);
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("generation failed: {e}");
        exit(1);
    });
    let out = args.get("out", "matrix.json");
    let path = Path::new(&out);
    let save = match args.get("format", "json").as_str() {
        "json" => io::save_json(&ds.matrix, path),
        "text" => io::save_text(&ds.matrix, path),
        other => {
            eprintln!("unknown format {other:?} (json|text)");
            exit(2);
        }
    };
    save.unwrap_or_else(|e| {
        eprintln!("write failed: {e}");
        exit(1);
    });
    let (r, c) = ds.matrix.shape();
    println!("wrote {r}x{c} matrix to {out}");
}

fn cmd_stats(args: &Args) {
    let Some(path) = args.positional.first() else {
        eprintln!("usage: ides-cli stats <matrix>");
        exit(2);
    };
    let m = load_matrix(path);
    let s = stats::summarize(&m);
    println!("name:               {}", s.name);
    println!("shape:              {}x{}", s.shape.0, s.shape.1);
    println!("mean distance:      {:.2} ms", s.mean_rtt_ms);
    println!("observed:           {:.2}%", s.observed_fraction * 100.0);
    println!(
        "triangle violations: {:.1}% of pairs have a shorter 1-hop detour",
        s.tiv_fraction * 100.0
    );
    println!("asymmetry index:    {:.4}", s.asymmetry);
    println!("effective rank(95%): {}", s.effective_rank_95);
}

/// Fits the requested algorithm, returning the model.
fn fit_model(m: &DistanceMatrix, dim: usize, algo: &str, seed: u64) -> FactorModel {
    let result = match algo {
        "svd" => svd_model::fit(m, svd_model::SvdConfig::new(dim)),
        "nmf" => nmf::fit(
            m,
            nmf::NmfConfig {
                seed,
                ..nmf::NmfConfig::new(dim)
            },
        )
        .map(|f| f.model),
        "als" => als::fit(
            m,
            als::AlsConfig {
                seed,
                ..als::AlsConfig::new(dim)
            },
        )
        .map(|f| f.model),
        other => {
            eprintln!("unknown algorithm {other:?} (svd|nmf|als)");
            exit(2);
        }
    };
    result.unwrap_or_else(|e| {
        eprintln!("factorization failed: {e}");
        exit(1);
    })
}

fn cmd_factor(args: &Args) {
    let Some(path) = args.positional.first() else {
        eprintln!("usage: ides-cli factor <matrix> --dim D [--algo svd|nmf|als] --out model.json");
        exit(2);
    };
    let m = load_matrix(path);
    let dim: usize = args.get_parsed("dim", 10);
    let algo = args.get("algo", "svd");
    let model = fit_model(&m, dim, &algo, args.get_parsed("seed", 1729));
    let out = args.get("out", "model.json");
    let json = serde_json::to_string(&model).expect("model serialization");
    std::fs::write(&out, json).unwrap_or_else(|e| {
        eprintln!("write failed: {e}");
        exit(1);
    });
    let errs = reconstruction_errors(&model, &m);
    let cdf = Cdf::new(errs);
    println!(
        "factored {}x{} at d={dim} ({algo}); reconstruction median {:.4}, p90 {:.4}; wrote {out}",
        m.rows(),
        m.cols(),
        cdf.median(),
        cdf.p90()
    );
}

fn cmd_reconstruct(args: &Args) {
    let Some(path) = args.positional.first() else {
        eprintln!("usage: ides-cli reconstruct <matrix> --dim D");
        exit(2);
    };
    let m = load_matrix(path);
    let dim: usize = args.get_parsed("dim", 10);
    println!(
        "{:<6} {:>10} {:>10} {:>10}",
        "algo", "median", "p90", "mean"
    );
    for algo in ["svd", "nmf", "als"] {
        if algo == "svd" && !m.is_complete() {
            println!("{algo:<6} {:>10} (needs complete matrix)", "-");
            continue;
        }
        let model = fit_model(&m, dim, algo, 1729);
        let cdf = Cdf::new(reconstruction_errors(&model, &m));
        println!(
            "{algo:<6} {:>10.4} {:>10.4} {:>10.4}",
            cdf.median(),
            cdf.p90(),
            cdf.mean()
        );
    }
}

fn load_model(path: &str) -> FactorModel {
    let data = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        exit(1);
    });
    serde_json::from_str(&data).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a model file: {e}");
        exit(1);
    })
}

fn parse_row(s: &str, label: &str) -> Vec<f64> {
    s.split_whitespace()
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("error: --{label} contains a non-number: {t:?}");
                exit(2);
            })
        })
        .collect()
}

/// Parses a measurement file: one host per line, space-separated distances
/// to every landmark (`#` comments and blank lines skipped). Exits unless
/// every row has exactly `k` entries.
fn parse_rows_file(path: &str, k: usize, label: &str) -> ides_linalg::Matrix {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        exit(1);
    });
    let rows: Vec<Vec<f64>> = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| parse_row(l, label))
        .collect();
    if rows.is_empty() {
        eprintln!("error: {path} contains no measurement rows");
        exit(1);
    }
    if rows.iter().any(|r| r.len() != k) {
        eprintln!("error: every row of {path} must have {k} landmark distances");
        exit(1);
    }
    ides_linalg::Matrix::from_rows(&rows).expect("rows validated consistent")
}

/// Batch join: each line of `rows_path` is one host's space-separated
/// distances **to** every landmark; `in_rows_path` optionally provides the
/// distances **from** the landmarks (same shape). Without it the outgoing
/// measurements are reused for both directions (symmetric-RTT assumption).
/// All hosts are joined with one factorization through the batched
/// multi-RHS path.
fn cmd_join_batch(model_path: &str, rows_path: &str, in_rows_path: &str) {
    let model = load_model(model_path);
    let k = model.x().rows();
    let d_out = parse_rows_file(rows_path, k, "rows-file");
    let d_in = if in_rows_path.is_empty() {
        d_out.clone()
    } else {
        let m = parse_rows_file(in_rows_path, k, "in-rows-file");
        if m.rows() != d_out.rows() {
            eprintln!(
                "error: {} hosts in {rows_path} but {} in {in_rows_path}",
                d_out.rows(),
                m.rows()
            );
            exit(1);
        }
        m
    };
    let mut ws = ides::projection::JoinWorkspace::new();
    let hosts = ides::projection::join_hosts_with(
        &mut ws,
        model.x(),
        model.y(),
        &d_out,
        &d_in,
        ides::projection::JoinOptions::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("batch join failed: {e}");
        exit(1);
    });
    println!(
        "joined {} hosts against {k} landmarks (one factorization{})",
        hosts.len(),
        if in_rows_path.is_empty() {
            "; incoming = outgoing, pass --in-rows-file for asymmetric data"
        } else {
            ""
        }
    );
    for (h, host) in hosts.iter().enumerate() {
        println!(
            "host {h}: outgoing {:?} incoming {:?}",
            host.outgoing, host.incoming
        );
    }
}

fn cmd_join(args: &Args) {
    let Some(path) = args.positional.first() else {
        eprintln!(
            "usage: ides-cli join <model.json> --out-row \"d1 d2 ...\" [--in-row \"...\"] | --rows-file hosts.txt"
        );
        exit(2);
    };
    let rows_file = args.get("rows-file", "");
    if !rows_file.is_empty() {
        cmd_join_batch(path, &rows_file, &args.get("in-rows-file", ""));
        return;
    }
    let model = load_model(path);
    let out_row = parse_row(&args.get("out-row", ""), "out-row");
    if out_row.is_empty() {
        eprintln!("error: --out-row is required (distances to each landmark), or pass --rows-file");
        exit(2);
    }
    let in_row = {
        let s = args.get("in-row", "");
        if s.is_empty() {
            out_row.clone()
        } else {
            parse_row(&s, "in-row")
        }
    };
    let host = ides::projection::join_host(
        model.x(),
        model.y(),
        &out_row,
        &in_row,
        ides::projection::JoinOptions::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("join failed: {e}");
        exit(1);
    });
    println!("outgoing: {:?}", host.outgoing);
    println!("incoming: {:?}", host.incoming);
    for i in 0..model.x().rows() {
        let est = host.distance_to(model.incoming(i));
        println!("  estimated distance to landmark {i}: {est:.3}");
    }
}

fn cmd_predict(args: &Args) {
    if args.positional.len() < 3 {
        eprintln!("usage: ides-cli predict <model.json> <i> <j>");
        exit(2);
    }
    let model = load_model(&args.positional[0]);
    let i: usize = args.positional[1].parse().unwrap_or_else(|_| {
        eprintln!("error: i must be an index");
        exit(2);
    });
    let j: usize = args.positional[2].parse().unwrap_or_else(|_| {
        eprintln!("error: j must be an index");
        exit(2);
    });
    if i >= model.n_from() || j >= model.n_to() {
        eprintln!(
            "error: index out of range (model covers {}x{})",
            model.n_from(),
            model.n_to()
        );
        exit(2);
    }
    println!("{:.4}", model.estimate(i, j));
}

/// Load-tests the `ides::service` engine on a synthetic deployment:
/// admission throughput with and without request coalescing, then query
/// latency quantiles quiescent and under continuous landmark drift. The
/// measurement and the `--json` schema live in
/// `ides::service::load::ServeSummary`, shared with the `serve_load`
/// experiment so the `serving` object in `BENCH_NNNN.json` cannot drift
/// between the two producers.
fn cmd_serve(args: &Args) {
    use ides::service::load::{ServeMeasurementConfig, ServeSummary};
    use std::time::Duration;

    let landmarks: usize = args.get_parsed("landmarks", 20);
    let dim: usize = args.get_parsed("dim", 8);
    let duration_s: f64 = args.get_parsed("duration-s", 4.0);
    let rate: f64 = args.get_parsed("rate", 0.0); // 0 = closed loop
    if dim == 0 || dim > landmarks {
        eprintln!("error: --dim must be in 1..=landmarks");
        exit(2);
    }
    let shards: usize = args.get_parsed("shards", 1);
    if shards == 0 {
        eprintln!("error: --shards must be >= 1");
        exit(2);
    }
    let drift_batch: usize = args.get_parsed("drift-batch", 1);
    if drift_batch == 0 {
        eprintln!("error: --drift-batch must be >= 1");
        exit(2);
    }
    let min_pipeline_hosts = args
        .has("pipeline-hosts")
        .then(|| args.get_parsed("pipeline-hosts", 0usize));
    let metrics_out = args
        .flags
        .get("metrics-out")
        .cloned()
        .filter(|p| !p.is_empty());
    let trace_out = args
        .flags
        .get("trace-out")
        .cloned()
        .filter(|p| !p.is_empty());
    let telemetry_on = metrics_out.is_some() || trace_out.is_some();
    if telemetry_on {
        ides::telemetry::set_enabled(true);
    }
    let config = ServeMeasurementConfig {
        landmarks,
        dim,
        hosts: args.get_parsed("hosts", 200),
        threads: args.get_parsed("threads", 4),
        seed: args.get_parsed("seed", 20041025),
        // Half the budget quiescent, half under active drift.
        phase: Duration::from_secs_f64((duration_s / 2.0).max(0.2)),
        pace_per_thread: (rate > 0.0).then_some(rate),
        shards,
        drift_batch,
        min_pipeline_hosts,
        ..ServeMeasurementConfig::default()
    };
    let summary = ServeSummary::measure(config).unwrap_or_else(|e| {
        eprintln!("serve measurement failed: {e}");
        exit(1);
    });
    if telemetry_on {
        ides::telemetry::set_enabled(false);
        // Query/cache-hit totals are not recorded on the query hot path
        // (the engine's always-on ServiceStats counters are already
        // exact); fold them into the registry so the exposition carries
        // them without a second per-query RMW.
        let reg = ides::telemetry::global();
        reg.add(ides::telemetry::Counter::Queries, summary.stats.queries);
        reg.add(
            ides::telemetry::Counter::CacheHits,
            summary.stats.cache_hits,
        );
        // The exposition's query histogram is the load harness's own
        // merged histogram, so its `_count`/`_sum` reconcile exactly
        // with the `telemetry_query_*` keys in `--json`.
        let snap = reg.snapshot();
        let spans = ides::telemetry::take_spans();
        if let Some(path) = &metrics_out {
            let query_hist = summary.query_latency_merged();
            let text = ides::telemetry::render_prometheus(
                &snap,
                &[("query_latency_ns", &query_hist)],
                &[("chunk_share_ratio", summary.stats.chunk_share_ratio())],
            );
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: cannot write --metrics-out {path}: {e}");
                exit(1);
            }
        }
        if let Some(path) = &trace_out {
            if let Err(e) = std::fs::write(path, ides::telemetry::render_chrome_trace(&spans)) {
                eprintln!("error: cannot write --trace-out {path}: {e}");
                exit(1);
            }
        }
    }
    if args.has("json") {
        println!("{}", summary.to_json());
        return;
    }
    println!(
        "serving {} landmarks + {} hosts at d={}, {} query threads, {} shard(s)",
        config.landmarks, config.hosts, config.dim, config.threads, config.shards
    );
    println!(
        "admission ({} concurrent joiners): coalesced {:.0}/s ({} flushes) vs per-request {:.0}/s  => {:.1}x",
        summary.admission.joiners,
        summary.admission.coalesced_per_sec,
        summary.admission.coalesced_flushes,
        summary.admission.per_request_per_sec,
        summary.admission.speedup
    );
    println!(
        "queries quiescent:   p50 {:.1}us  p99 {:.1}us  ({:.0} qps, cache hit {:.0}%)",
        summary.quiescent_us(0.5),
        summary.quiescent_us(0.99),
        summary.quiescent.queries_per_sec,
        summary.quiescent.cache_hit_rate * 100.0
    );
    println!(
        "queries under drift: p50 {:.1}us  p99 {:.1}us  ({:.0} qps, {} epochs applied)",
        summary.drift_us(0.5),
        summary.drift_us(0.99),
        summary.drifting.queries_per_sec,
        summary.drifting.epochs
    );
    println!("p99 drift/quiescent: {:.2}x", summary.p99_ratio());
    if summary.epoch_plan.epochs > 0 {
        println!(
            "epoch plans:         {} executed, mean width {:.1} (max {}), critical path {} over {} groups",
            summary.epoch_plan.epochs,
            summary.epoch_plan.mean_width(),
            summary.epoch_plan.max_width,
            summary.epoch_plan.critical_path,
            summary.epoch_plan.groups
        );
        println!(
            "epoch pruning:       {:.1}% of worst-case edges avoided ({} rejoins elided), pipeline overlap {:.0}%",
            summary.epoch_plan.pruning_ratio() * 100.0,
            summary.epoch_plan.pruned,
            summary.epoch_plan.overlap_fraction() * 100.0
        );
    }
    let pub_us = |q: f64| summary.publish.quantile(q).as_secs_f64() * 1e6;
    println!(
        "publishes:           p50 {:.1}us  p99 {:.1}us  ({} publishes across {} shard(s))",
        pub_us(0.5),
        pub_us(0.99),
        summary.publish.count(),
        config.shards
    );
    println!(
        "gauges:              coalescer depth {}, pair cache {}/{} slots, snapshot chunk share {:.1}%",
        summary.stats.coalescer_depth,
        summary.stats.cache_occupied,
        summary.stats.cache_slots,
        summary.stats.chunk_share_ratio() * 100.0
    );
    if config.shards > 1 {
        for (i, h) in summary.quiescent.per_shard_latency.iter().enumerate() {
            println!(
                "  shard {i}: quiescent p50 {:.1}us  p99 {:.1}us  ({} queries)",
                h.quantile(0.5).as_secs_f64() * 1e6,
                h.quantile(0.99).as_secs_f64() * 1e6,
                h.count()
            );
        }
    }
}

fn cmd_eval(args: &Args) {
    let Some(path) = args.positional.first() else {
        eprintln!("usage: ides-cli eval <matrix> --landmarks M --dim D [--algo svd|nmf]");
        exit(2);
    };
    let m = load_matrix(path);
    if !m.is_square() {
        eprintln!("error: eval needs a square matrix");
        exit(1);
    }
    let landmarks_n: usize = args.get_parsed("landmarks", 20);
    let dim: usize = args.get_parsed("dim", 8);
    let seed: u64 = args.get_parsed("seed", 20041025);
    let config = match args.get("algo", "svd").as_str() {
        "svd" => IdesConfig::new(dim),
        "nmf" => IdesConfig::nmf(dim),
        other => {
            eprintln!("unknown algorithm {other:?} (svd|nmf)");
            exit(2);
        }
    };
    let n = m.rows();
    if landmarks_n + 2 > n {
        eprintln!("error: {landmarks_n} landmarks but only {n} hosts");
        exit(1);
    }
    let (landmarks, ordinary) = split_landmarks(n, landmarks_n, seed);
    let r = ides::eval::evaluate_ides(&m, &landmarks, &ordinary, config).unwrap_or_else(|e| {
        eprintln!("evaluation failed: {e}");
        exit(1);
    });
    println!("landmarks:        {landmarks_n}");
    println!("hosts joined:     {}", r.hosts_joined);
    println!("pairs evaluated:  {}", r.pairs_evaluated);
    println!("build time:       {:.3}s", r.build_seconds);
    let cdf = r.into_cdf();
    println!("median rel error: {:.4}", cdf.median());
    println!("p90 rel error:    {:.4}", cdf.p90());
    println!("fraction <= 0.1:  {:.3}", cdf.fraction_below(0.1));
    println!("fraction <= 0.5:  {:.3}", cdf.fraction_below(0.5));
}
