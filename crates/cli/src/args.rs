//! Minimal flag parser for the CLI (no external dependency).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--flag value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional (non-flag) arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` pairs; bare `--key` stores an empty string.
    pub flags: HashMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Args {
        let command = argv.next().unwrap_or_default();
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let rest: Vec<String> = argv.collect();
        let mut i = 0;
        while i < rest.len() {
            let a = &rest[i];
            if let Some(key) = a.strip_prefix("--") {
                let value = if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                    i += 1;
                    rest[i].clone()
                } else {
                    String::new()
                };
                flags.insert(key.to_string(), value);
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Args {
            command,
            positional,
            flags,
        }
    }

    /// Parses the process arguments.
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// String flag with a default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Parsed flag with a default; exits with a message on parse failure.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.flags.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: --{key} expects a {}", std::any::type_name::<T>());
                std::process::exit(2);
            }),
        }
    }

    /// True if the bare flag is present.
    #[allow(dead_code)] // exercised by unit tests; kept for CLI extensions
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_positionals() {
        let a = parse("gen nlanr out.json");
        assert_eq!(a.command, "gen");
        assert_eq!(a.positional, vec!["nlanr", "out.json"]);
    }

    #[test]
    fn parses_flags_with_values() {
        let a = parse("factor m.json --dim 8 --algo nmf");
        assert_eq!(a.get_parsed("dim", 0usize), 8);
        assert_eq!(a.get("algo", "svd"), "nmf");
        assert_eq!(a.get("missing", "x"), "x");
    }

    #[test]
    fn bare_flags() {
        let a = parse("stats m.json --verbose");
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
    }

    #[test]
    fn empty_input() {
        let a = parse("");
        assert_eq!(a.command, "");
        assert!(a.positional.is_empty());
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("cmd --a --b 2");
        assert!(a.has("a"));
        assert_eq!(a.get("a", "zz"), "");
        assert_eq!(a.get_parsed("b", 0i32), 2);
    }
}
