//! End-to-end tests of the `ides-cli` binary: gen → stats → factor →
//! predict → join → eval over real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ides-cli"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ides_cli_test_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn gen_stats_factor_predict_roundtrip() {
    let dir = tmpdir("roundtrip");
    let matrix = dir.join("m.json");
    let model = dir.join("model.json");

    let out = bin()
        .args(["gen", "gnp", "--hosts", "15", "--seed", "3", "--out"])
        .arg(&matrix)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("15x15"));

    let out = bin().arg("stats").arg(&matrix).output().expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("shape:              15x15"), "{text}");
    assert!(text.contains("triangle violations"));

    let out = bin()
        .args(["factor"])
        .arg(&matrix)
        .args(["--dim", "6", "--algo", "svd", "--out"])
        .arg(&model)
        .output()
        .expect("run factor");
    assert!(
        out.status.success(),
        "factor failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    let out = bin()
        .arg("predict")
        .arg(&model)
        .args(["0", "5"])
        .output()
        .expect("run predict");
    assert!(out.status.success());
    let predicted: f64 = String::from_utf8_lossy(&out.stdout)
        .trim()
        .parse()
        .expect("a number");
    assert!(predicted.is_finite() && predicted > 0.0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn text_format_and_reconstruct() {
    let dir = tmpdir("text");
    let matrix = dir.join("m.txt");
    let out = bin()
        .args(["gen", "gnp", "--hosts", "12", "--format", "text", "--out"])
        .arg(&matrix)
        .output()
        .expect("run gen");
    assert!(out.status.success());

    let out = bin()
        .arg("reconstruct")
        .arg(&matrix)
        .args(["--dim", "5"])
        .output()
        .expect("run reconstruct");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    for algo in ["svd", "nmf", "als"] {
        assert!(text.contains(algo), "missing {algo} row: {text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn join_reproduces_landmark_distances() {
    let dir = tmpdir("join");
    let matrix = dir.join("m.json");
    let model = dir.join("model.json");
    bin()
        .args(["gen", "gnp", "--hosts", "10", "--seed", "9", "--out"])
        .arg(&matrix)
        .output()
        .expect("gen");
    bin()
        .arg("factor")
        .arg(&matrix)
        .args(["--dim", "8", "--out"])
        .arg(&model)
        .output()
        .expect("factor");
    let out = bin()
        .arg("join")
        .arg(&model)
        .args(["--out-row", "10 20 30 40 50 60 70 80 90 100"])
        .output()
        .expect("join");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("outgoing:"));
    assert!(text.contains("estimated distance to landmark 0"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_join_from_rows_file() {
    let dir = tmpdir("join_batch");
    let matrix = dir.join("m.json");
    let model = dir.join("model.json");
    let rows = dir.join("hosts.txt");
    bin()
        .args(["gen", "gnp", "--hosts", "10", "--seed", "9", "--out"])
        .arg(&matrix)
        .output()
        .expect("gen");
    bin()
        .arg("factor")
        .arg(&matrix)
        .args(["--dim", "8", "--out"])
        .arg(&model)
        .output()
        .expect("factor");
    std::fs::write(
        &rows,
        "# two hosts, one measurement row each\n\
         10 20 30 40 50 60 70 80 90 100\n\
         100 90 80 70 60 50 40 30 20 10\n",
    )
    .expect("write rows file");
    let out = bin()
        .arg("join")
        .arg(&model)
        .arg("--rows-file")
        .arg(&rows)
        .output()
        .expect("batch join");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("joined 2 hosts"), "{text}");
    assert!(
        text.contains("host 0:") && text.contains("host 1:"),
        "{text}"
    );
    // The symmetric fallback is called out on stdout.
    assert!(text.contains("incoming = outgoing"), "{text}");

    // Asymmetric data via --in-rows-file: same shape, different values.
    let in_rows = dir.join("hosts_in.txt");
    std::fs::write(
        &in_rows,
        "12 22 32 42 52 62 72 82 92 102\n\
         102 92 82 72 62 52 42 32 22 12\n",
    )
    .expect("write in-rows file");
    let out = bin()
        .arg("join")
        .arg(&model)
        .arg("--rows-file")
        .arg(&rows)
        .arg("--in-rows-file")
        .arg(&in_rows)
        .output()
        .expect("asymmetric batch join");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("joined 2 hosts"), "{text}");
    assert!(!text.contains("incoming = outgoing"), "{text}");

    // Host-count mismatch between the two files is rejected.
    std::fs::write(&in_rows, "12 22 32 42 52 62 72 82 92 102\n").expect("rewrite");
    let out = bin()
        .arg("join")
        .arg(&model)
        .arg("--rows-file")
        .arg(&rows)
        .arg("--in-rows-file")
        .arg(&in_rows)
        .output()
        .expect("mismatched batch join");
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_subcommand_reports() {
    let dir = tmpdir("eval");
    let matrix = dir.join("m.json");
    bin()
        .args(["gen", "nlanr", "--hosts", "40", "--seed", "5", "--out"])
        .arg(&matrix)
        .output()
        .expect("gen");
    let out = bin()
        .arg("eval")
        .arg(&matrix)
        .args(["--landmarks", "15", "--dim", "6"])
        .output()
        .expect("eval");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("hosts joined:     25"), "{text}");
    assert!(text.contains("median rel error"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_fails_with_help() {
    let out = bin().arg("bogus").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_arguments_fail_cleanly() {
    for args in [
        vec!["gen"],
        vec!["stats"],
        vec!["factor"],
        vec!["predict", "x.json"],
    ] {
        let out = bin().args(&args).output().expect("run");
        assert!(!out.status.success(), "{args:?} should fail");
    }
}
