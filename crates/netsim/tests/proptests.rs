//! Property-based tests for the network substrate.

use bytes::Bytes;
use ides_netsim::graph::Graph;
use ides_netsim::topology::{TransitStubParams, TransitStubTopology};
use ides_netsim::transport::{encode_frame, FrameCodec};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dijkstra distances satisfy the triangle inequality on any graph.
    #[test]
    fn dijkstra_is_a_quasi_metric(
        edges in prop::collection::vec((0usize..8, 0usize..8, 0.1f64..50.0), 1..24)
    ) {
        let mut g = Graph::new(8);
        for (u, v, w) in &edges {
            if u != v {
                g.add_edge(*u, *v, *w);
            }
        }
        let dist: Vec<Vec<f64>> = (0..8).map(|s| g.dijkstra(s)).collect();
        for a in 0..8 {
            prop_assert_eq!(dist[a][a], 0.0);
            for b in 0..8 {
                for c in 0..8 {
                    // Allow infinities: inf <= inf + x holds in f64.
                    prop_assert!(dist[a][c] <= dist[a][b] + dist[b][c] + 1e-9);
                }
            }
        }
    }

    /// Dijkstra never reports a shorter distance than the direct edge.
    #[test]
    fn dijkstra_bounded_by_direct_edge(
        edges in prop::collection::vec((0usize..6, 0usize..6, 0.1f64..50.0), 1..15)
    ) {
        let mut g = Graph::new(6);
        for (u, v, w) in &edges {
            if u != v {
                g.add_edge(*u, *v, *w);
            }
        }
        for (u, v, w) in &edges {
            if u != v {
                prop_assert!(g.shortest_delay(*u, *v) <= *w + 1e-12);
            }
        }
    }

    /// Frame codec: any payload split at any point round-trips.
    #[test]
    fn framing_roundtrips_under_arbitrary_splits(
        payload in prop::collection::vec(any::<u8>(), 0..200),
        split in 0usize..210
    ) {
        let frame = encode_frame(&payload);
        let split = split.min(frame.len());
        let mut codec = FrameCodec::new();
        codec.feed(&frame[..split]);
        // May or may not decode yet; feeding the rest must complete it.
        let early = codec.decode().unwrap();
        if let Some(done) = early {
            prop_assert_eq!(&done[..], &payload[..]);
        } else {
            codec.feed(&frame[split..]);
            let done = codec.decode().unwrap().expect("complete frame");
            prop_assert_eq!(&done[..], &payload[..]);
        }
        prop_assert_eq!(codec.decode().unwrap(), None);
    }

    /// Multiple frames concatenated decode in order.
    #[test]
    fn framing_preserves_order(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..50), 1..8)
    ) {
        let mut codec = FrameCodec::new();
        for p in &payloads {
            codec.feed(&encode_frame(p));
        }
        for p in &payloads {
            let got = codec.decode().unwrap().expect("frame available");
            prop_assert_eq!(got, Bytes::from(p.clone()));
        }
        prop_assert_eq!(codec.decode().unwrap(), None);
    }

    /// Topology invariants hold across parameter space: finite positive
    /// RTTs, symmetric RTT, zero self-delay.
    #[test]
    fn topology_rtt_invariants(
        seed in 0u64..500,
        hosts in 5usize..25,
        stubs in 2usize..8,
        multihoming in 0.0f64..1.0,
        peering in 0.0f64..0.9,
        diversity in 0.0f64..0.3
    ) {
        let params = TransitStubParams {
            hosts,
            stubs,
            multihoming_prob: multihoming,
            peering_prob: peering,
            path_diversity: diversity,
            ..TransitStubParams::default()
        };
        let t = TransitStubTopology::generate(&params, &mut rand::rngs::StdRng::seed_from_u64(seed));
        for i in 0..hosts {
            prop_assert_eq!(t.host_rtt(i, i), 0.0);
            for j in 0..hosts {
                let r = t.host_rtt(i, j);
                prop_assert!(r.is_finite() && r >= 0.0);
                prop_assert!((r - t.host_rtt(j, i)).abs() < 1e-9);
                if i != j {
                    prop_assert!(r > 0.0);
                    // One-way delays are positive and bounded by the RTT.
                    let fwd = t.host_delay(i, j);
                    prop_assert!(fwd > 0.0 && fwd < r);
                }
            }
        }
    }

    /// Zero path diversity makes host_delay purely hierarchical: hosts in
    /// the same stub see identical stub-level delays to any third host
    /// (differences only from their own access links).
    #[test]
    fn zero_diversity_is_clusterable(seed in 0u64..200) {
        let params = TransitStubParams {
            hosts: 20,
            stubs: 4,
            path_diversity: 0.0,
            ..TransitStubParams::default()
        };
        let t = TransitStubTopology::generate(&params, &mut rand::rngs::StdRng::seed_from_u64(seed));
        for a in 0..20 {
            for b in 0..20 {
                if a == b || t.hosts[a].stub != t.hosts[b].stub {
                    continue;
                }
                for c in 0..20 {
                    if c == a || c == b || t.hosts[c].stub == t.hosts[a].stub {
                        continue;
                    }
                    // delay(a->c) - up(a) == delay(b->c) - up(b): the stub
                    // part is shared.
                    let pa = t.host_delay(a, c) - t.hosts[a].up_ms;
                    let pb = t.host_delay(b, c) - t.hosts[b].up_ms;
                    prop_assert!((pa - pb).abs() < 1e-9, "a={} b={} c={}: {} vs {}", a, b, c, pa, pb);
                }
            }
        }
    }
}
