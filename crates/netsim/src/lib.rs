//! # ides-netsim
//!
//! Synthetic Internet substrate for the IDES reproduction (Mao & Saul,
//! IMC 2004). The paper evaluates on real measurement data sets (NLANR,
//! GNP/AGNP, P2PSim/King, PlanetLab); this crate provides their stand-in:
//! a transit-stub topology generator whose **policy routing** produces the
//! two phenomena matrix factorization exists to model — triangle-inequality
//! violations (sub-optimal routing) and asymmetric one-way delays — plus a
//! measurement layer (queueing jitter, min-of-k probing, losses) and a
//! deterministic discrete-event message transport used by the simulated
//! IDES wire protocol.
//!
//! The [`drift`] module additionally models slow RTT evolution (diurnal
//! multiplicative drift) and exposes it as an epoch-stamped measurement
//! stream ([`drift::DriftStream`]) deliverable through the event queue —
//! the input side of the `ides::streaming` coordinate-maintenance
//! subsystem. The [`workload`] module expands a seeded
//! [`workload::WorkloadConfig`] into a deterministic, time-ordered mix of
//! query / join / leave / drift events — the load side of the
//! `ides::service` serving engine.
//!
//! ```
//! use ides_netsim::topology::{TransitStubParams, TransitStubTopology};
//! use rand::SeedableRng;
//!
//! let params = TransitStubParams { hosts: 50, stubs: 12, ..Default::default() };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let topo = TransitStubTopology::generate(&params, &mut rng);
//! let rtt = topo.host_rtt(0, 1);
//! assert!(rtt > 0.0 && rtt.is_finite());
//! // One-way delays are asymmetric even though RTT is symmetric:
//! assert_eq!(topo.host_rtt(0, 1), topo.host_rtt(1, 0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod event;
pub mod generators;
pub mod geo;
pub mod graph;
pub mod measurement;
pub mod topology;
pub mod transport;
pub mod workload;

pub use graph::{Edge, Graph, NodeId};
pub use topology::{TransitStubParams, TransitStubTopology};
