//! A minimal discrete-event simulator.
//!
//! Deterministic single-threaded event queue: events fire in timestamp
//! order, ties broken by insertion sequence. Used by the simulated IDES
//! wire protocol ([`crate::transport`]) to deliver messages after their
//! network latency has elapsed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in milliseconds.
pub type SimTime = f64;

/// A time-ordered event queue over arbitrary event payloads.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire `delay` milliseconds from now.
    ///
    /// # Panics
    /// Panics on negative or non-finite delay.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        assert!(delay.is_finite() && delay >= 0.0, "invalid delay {delay}");
        let s = Scheduled {
            time: self.now + delay,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(s);
    }

    /// Pops the earliest event, advancing simulated time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn time_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.schedule(7.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.0);
        // Scheduling is relative to current time.
        q.schedule(1.0, ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 3.0);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 7.0);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn negative_delay_rejected() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(-1.0, ());
    }

    #[test]
    fn len_tracks_pending() {
        let mut q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(1.0, 0);
        q.schedule(2.0, 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
