//! Directed weighted graph with Dijkstra shortest paths.
//!
//! Link delays are directed (`delay(u→v)` may differ from `delay(v→u)`),
//! which is how routing asymmetry enters the simulated RTT matrices.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

/// Index of a node in a [`Graph`].
pub type NodeId = usize;

/// A directed edge with a fixed delay in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Destination node.
    pub to: NodeId,
    /// One-way delay in milliseconds (propagation + per-hop processing).
    pub delay_ms: f64,
}

/// Adjacency-list directed graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Adds a directed edge `u → v`. Panics on out-of-range nodes or
    /// non-finite/negative delay (these indicate generator bugs).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, delay_ms: f64) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge endpoint out of range"
        );
        assert!(
            delay_ms.is_finite() && delay_ms >= 0.0,
            "invalid delay {delay_ms}"
        );
        self.adj[u].push(Edge { to: v, delay_ms });
    }

    /// Adds a symmetric link (`u → v` and `v → u` with the same delay).
    pub fn add_link(&mut self, u: NodeId, v: NodeId, delay_ms: f64) {
        self.add_edge(u, v, delay_ms);
        self.add_edge(v, u, delay_ms);
    }

    /// Adds an asymmetric link with distinct delays per direction.
    pub fn add_asymmetric_link(&mut self, u: NodeId, v: NodeId, uv_ms: f64, vu_ms: f64) {
        self.add_edge(u, v, uv_ms);
        self.add_edge(v, u, vu_ms);
    }

    /// Outgoing edges of `u`.
    pub fn edges(&self, u: NodeId) -> &[Edge] {
        &self.adj[u]
    }

    /// Total number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|e| e.len()).sum()
    }

    /// Single-source shortest path delays (Dijkstra). Unreachable nodes get
    /// `f64::INFINITY`.
    pub fn dijkstra(&self, src: NodeId) -> Vec<f64> {
        self.dijkstra_filtered(src, |_, _| true)
    }

    /// Dijkstra restricted to edges for which `allow(from, edge)` is true.
    ///
    /// Policy routing (valley-free constraints, peering restrictions) is
    /// expressed through the filter rather than by materializing per-policy
    /// subgraphs.
    pub fn dijkstra_filtered(
        &self,
        src: NodeId,
        allow: impl Fn(NodeId, &Edge) -> bool,
    ) -> Vec<f64> {
        let n = self.adj.len();
        let mut dist = vec![f64::INFINITY; n];
        if src >= n {
            return dist;
        }
        dist[src] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            cost: 0.0,
            node: src,
        });
        while let Some(HeapItem { cost, node }) = heap.pop() {
            if cost > dist[node] {
                continue;
            }
            for e in &self.adj[node] {
                if !allow(node, e) {
                    continue;
                }
                let next = cost + e.delay_ms;
                if next < dist[e.to] {
                    dist[e.to] = next;
                    heap.push(HeapItem {
                        cost: next,
                        node: e.to,
                    });
                }
            }
        }
        dist
    }

    /// Shortest-path delay between two nodes (`INFINITY` if unreachable).
    pub fn shortest_delay(&self, src: NodeId, dst: NodeId) -> f64 {
        self.dijkstra(src)[dst]
    }
}

/// Min-heap entry (BinaryHeap is a max-heap, so ordering is reversed).
#[derive(Debug, Clone, Copy)]
struct HeapItem {
    cost: f64,
    node: NodeId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on cost for min-heap behavior; ties broken by node id for
        // determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> Graph {
        // 0 -1ms- 1 -2ms- 2 -3ms- 3
        let mut g = Graph::new(4);
        g.add_link(0, 1, 1.0);
        g.add_link(1, 2, 2.0);
        g.add_link(2, 3, 3.0);
        g
    }

    #[test]
    fn dijkstra_line() {
        let g = line_graph();
        let d = g.dijkstra(0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 6.0]);
        assert_eq!(g.shortest_delay(3, 0), 6.0);
    }

    #[test]
    fn dijkstra_prefers_shortcut() {
        let mut g = line_graph();
        g.add_link(0, 3, 2.5);
        assert_eq!(g.shortest_delay(0, 3), 2.5);
        assert_eq!(g.shortest_delay(0, 2), 3.0); // unchanged
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = Graph::new(3);
        g.add_link(0, 1, 1.0);
        let d = g.dijkstra(0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn directed_asymmetry() {
        let mut g = Graph::new(2);
        g.add_asymmetric_link(0, 1, 5.0, 9.0);
        assert_eq!(g.shortest_delay(0, 1), 5.0);
        assert_eq!(g.shortest_delay(1, 0), 9.0);
    }

    #[test]
    fn filtered_dijkstra_respects_policy() {
        let mut g = line_graph();
        g.add_link(0, 3, 0.5); // forbidden shortcut
                               // Policy: the 0-3 shortcut is not usable.
        let allow =
            |from: NodeId, e: &Edge| !((from == 0 && e.to == 3) || (from == 3 && e.to == 0));
        let d = g.dijkstra_filtered(0, allow);
        assert_eq!(d[3], 6.0);
        // Unfiltered uses the shortcut.
        assert_eq!(g.shortest_delay(0, 3), 0.5);
    }

    #[test]
    fn shortest_paths_satisfy_triangle_inequality() {
        // Shortest-path distance is a quasi-metric: d(a,c) <= d(a,b) + d(b,c).
        let mut g = Graph::new(6);
        let delays = [1.5, 2.0, 0.7, 3.1, 1.1, 2.2, 0.9];
        let links = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)];
        for (&(u, v), &d) in links.iter().zip(delays.iter()) {
            g.add_link(u, v, d);
        }
        let all: Vec<Vec<f64>> = (0..6).map(|s| g.dijkstra(s)).collect();
        for a in 0..6 {
            for b in 0..6 {
                for c in 0..6 {
                    assert!(all[a][c] <= all[a][b] + all[b][c] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut g = Graph::new(4);
        g.add_link(0, 1, 1.0);
        g.add_link(0, 2, 1.0);
        g.add_link(1, 3, 1.0);
        g.add_link(2, 3, 1.0);
        let d1 = g.dijkstra(0);
        let d2 = g.dijkstra(0);
        assert_eq!(d1, d2);
        assert_eq!(d1[3], 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn negative_delay_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn node_and_edge_counts() {
        let mut g = Graph::new(0);
        assert!(g.is_empty());
        let a = g.add_node();
        let b = g.add_node();
        g.add_link(a, b, 1.0);
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edges(a).len(), 1);
    }
}
