//! Simulated message transport with length-prefixed framing.
//!
//! The IDES wire protocol (`ides::protocol`) runs over this layer: nodes
//! exchange framed byte payloads; delivery is delayed by the one-way
//! network latency between the endpoints, driven by the discrete-event
//! queue so an entire protocol exchange simulates deterministically.
//!
//! Framing follows the standard length-prefix pattern (see the Tokio
//! framing tutorial): a `u32` big-endian length followed by that many
//! payload bytes. [`FrameCodec`] handles partial reads so a stream of
//! concatenated frames can be consumed incrementally.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::event::{EventQueue, SimTime};

/// Maximum allowed frame payload (defensive bound against corrupt lengths).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Encodes one frame: 4-byte big-endian length prefix + payload.
pub fn encode_frame(payload: &[u8]) -> Bytes {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame too large");
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    buf.freeze()
}

/// Incremental frame decoder over a byte stream.
#[derive(Debug, Default)]
pub struct FrameCodec {
    buf: BytesMut,
}

/// Errors from [`FrameCodec::decode`].
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Declared frame length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::FrameTooLarge(n) => write!(f, "frame length {n} exceeds maximum"),
        }
    }
}
impl std::error::Error for FrameError {}

impl FrameCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        FrameCodec::default()
    }

    /// Feeds raw bytes into the decode buffer.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Attempts to decode one complete frame; `Ok(None)` means more bytes
    /// are needed.
    pub fn decode(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::FrameTooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Bytes currently buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Address of a node on the simulated network.
pub type Address = usize;

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender address.
    pub from: Address,
    /// Recipient address.
    pub to: Address,
    /// Framed payload bytes.
    pub payload: Bytes,
}

/// Handler interface implemented by protocol endpoints.
pub trait Node {
    /// Called when a frame addressed to this node is delivered.
    /// Outgoing messages are pushed through `ctx`.
    fn on_message(&mut self, from: Address, payload: Bytes, ctx: &mut Context<'_>);
}

/// Send-side API handed to [`Node::on_message`].
pub struct Context<'a> {
    outbox: &'a mut Vec<Envelope>,
    self_addr: Address,
    now: SimTime,
}

impl Context<'_> {
    /// Queues a frame to `to`; it will be delivered after the network latency.
    pub fn send(&mut self, to: Address, payload: Bytes) {
        self.outbox.push(Envelope {
            from: self.self_addr,
            to,
            payload,
        });
    }

    /// Current simulated time in milliseconds.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

/// A deterministic simulated network connecting a set of [`Node`]s.
///
/// Latency between addresses is provided by a callback (typically backed by
/// a [`crate::topology::TransitStubTopology`] one-way delay).
pub struct SimNetwork<'l> {
    latency: Box<dyn Fn(Address, Address) -> f64 + 'l>,
    queue: EventQueue<Envelope>,
    delivered: usize,
}

impl<'l> SimNetwork<'l> {
    /// Creates a network with the given one-way latency function (ms).
    pub fn new(latency: impl Fn(Address, Address) -> f64 + 'l) -> Self {
        SimNetwork {
            latency: Box::new(latency),
            queue: EventQueue::new(),
            delivered: 0,
        }
    }

    /// Injects an initial message from `from` to `to`.
    pub fn send(&mut self, from: Address, to: Address, payload: Bytes) {
        let delay = (self.latency)(from, to).max(0.0);
        self.queue.schedule(delay, Envelope { from, to, payload });
    }

    /// Runs the event loop until quiescence (or `max_events`), dispatching
    /// each delivery to the matching node in `nodes`.
    ///
    /// Returns the simulated completion time in ms.
    pub fn run(&mut self, nodes: &mut [&mut dyn Node], max_events: usize) -> SimTime {
        let mut outbox: Vec<Envelope> = Vec::new();
        let mut processed = 0;
        while let Some((now, env)) = self.queue.pop() {
            processed += 1;
            if processed > max_events {
                break;
            }
            self.delivered += 1;
            if env.to < nodes.len() {
                let mut ctx = Context {
                    outbox: &mut outbox,
                    self_addr: env.to,
                    now,
                };
                nodes[env.to].on_message(env.from, env.payload, &mut ctx);
            }
            for out in outbox.drain(..) {
                let delay = (self.latency)(out.from, out.to).max(0.0);
                self.queue.schedule(delay, out);
            }
        }
        self.queue.now()
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(b"hello ides");
        let mut codec = FrameCodec::new();
        codec.feed(&frame);
        let decoded = codec.decode().unwrap().unwrap();
        assert_eq!(&decoded[..], b"hello ides");
        assert_eq!(codec.pending(), 0);
    }

    #[test]
    fn partial_frames_need_more_bytes() {
        let frame = encode_frame(b"abcdef");
        let mut codec = FrameCodec::new();
        codec.feed(&frame[..3]);
        assert_eq!(codec.decode().unwrap(), None);
        codec.feed(&frame[3..7]);
        assert_eq!(codec.decode().unwrap(), None);
        codec.feed(&frame[7..]);
        assert_eq!(&codec.decode().unwrap().unwrap()[..], b"abcdef");
    }

    #[test]
    fn multiple_frames_in_one_buffer() {
        let mut codec = FrameCodec::new();
        let mut all = Vec::new();
        all.extend_from_slice(&encode_frame(b"one"));
        all.extend_from_slice(&encode_frame(b"two"));
        all.extend_from_slice(&encode_frame(b""));
        codec.feed(&all);
        assert_eq!(&codec.decode().unwrap().unwrap()[..], b"one");
        assert_eq!(&codec.decode().unwrap().unwrap()[..], b"two");
        assert_eq!(&codec.decode().unwrap().unwrap()[..], b"");
        assert_eq!(codec.decode().unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut codec = FrameCodec::new();
        let mut bad = BytesMut::new();
        bad.put_u32(u32::MAX);
        bad.put_slice(b"xx");
        codec.feed(&bad);
        assert!(matches!(codec.decode(), Err(FrameError::FrameTooLarge(_))));
    }

    /// A node that echoes every message back to its sender once.
    struct Echo {
        received: Vec<(Address, Bytes)>,
        echoed: bool,
    }
    impl Node for Echo {
        fn on_message(&mut self, from: Address, payload: Bytes, ctx: &mut Context<'_>) {
            self.received.push((from, payload.clone()));
            if !self.echoed {
                self.echoed = true;
                ctx.send(from, payload);
            }
        }
    }

    #[test]
    fn request_reply_latency_accumulates() {
        // one-way latency 10 ms both directions => echo completes at t=20.
        let mut net = SimNetwork::new(|_, _| 10.0);
        let mut a = Echo {
            received: vec![],
            echoed: true,
        }; // no re-echo
        let mut b = Echo {
            received: vec![],
            echoed: false,
        };
        net.send(0, 1, Bytes::from_static(b"ping"));
        let end = net.run(&mut [&mut a, &mut b], 100);
        assert_eq!(end, 20.0);
        assert_eq!(b.received.len(), 1);
        assert_eq!(a.received.len(), 1);
        assert_eq!(&a.received[0].1[..], b"ping");
        assert_eq!(net.delivered(), 2);
    }

    #[test]
    fn asymmetric_latency() {
        let mut net = SimNetwork::new(|from, to| if from < to { 5.0 } else { 15.0 });
        let mut a = Echo {
            received: vec![],
            echoed: true,
        };
        let mut b = Echo {
            received: vec![],
            echoed: false,
        };
        net.send(0, 1, Bytes::from_static(b"x"));
        let end = net.run(&mut [&mut a, &mut b], 100);
        assert_eq!(end, 20.0); // 5 out + 15 back
    }

    #[test]
    fn max_events_bounds_runaway() {
        // Two nodes that echo forever.
        struct Forever;
        impl Node for Forever {
            fn on_message(&mut self, from: Address, payload: Bytes, ctx: &mut Context<'_>) {
                ctx.send(from, payload);
            }
        }
        let mut net = SimNetwork::new(|_, _| 1.0);
        let mut a = Forever;
        let mut b = Forever;
        net.send(0, 1, Bytes::from_static(b"loop"));
        net.run(&mut [&mut a, &mut b], 50);
        assert!(net.delivered() <= 51);
    }
}
