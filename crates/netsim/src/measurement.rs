//! RTT measurement simulation: queueing noise, min-of-k filtering, loss.
//!
//! The paper's data sets are *measured* RTTs — NLANR takes the minimum of a
//! day of once-per-minute pings; P2PSim uses the King technique (indirect
//! measurement through DNS, noisier). This module turns the deterministic
//! policy-routed base RTTs from [`crate::topology`] into measurement-shaped
//! matrices: a base value plus exponential queueing jitter, with the
//! min-of-k estimator and a configurable probability of outright
//! measurement failure (missing matrix entries).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::topology::TransitStubTopology;
use ides_linalg::Matrix;

/// Parameters of the measurement process.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementParams {
    /// Number of probes per pair; the estimate is the minimum over probes.
    pub probes: usize,
    /// Mean of the exponential queueing-delay jitter added per probe, as a
    /// fraction of the base RTT (e.g. 0.1 = mean jitter is 10 % of base).
    pub jitter_frac: f64,
    /// Additive measurement floor jitter in ms (clock quantization etc.).
    pub floor_jitter_ms: f64,
    /// Probability that a pair's measurement fails entirely → missing entry.
    pub loss_prob: f64,
}

impl MeasurementParams {
    /// NLANR-style: once-a-minute pings over a day, min filter → very clean.
    pub fn nlanr_style() -> Self {
        MeasurementParams {
            probes: 24,
            jitter_frac: 0.08,
            floor_jitter_ms: 0.1,
            loss_prob: 0.0,
        }
    }

    /// King-style indirect measurement: few probes, heavy jitter, losses.
    pub fn king_style() -> Self {
        MeasurementParams {
            probes: 4,
            jitter_frac: 0.35,
            floor_jitter_ms: 0.5,
            loss_prob: 0.02,
        }
    }

    /// Single clean probe (used by the IDES host-join protocol simulation).
    pub fn single_probe() -> Self {
        MeasurementParams {
            probes: 3,
            jitter_frac: 0.1,
            floor_jitter_ms: 0.1,
            loss_prob: 0.0,
        }
    }
}

impl Default for MeasurementParams {
    fn default() -> Self {
        MeasurementParams::nlanr_style()
    }
}

/// One measured RTT: `Some(ms)` or `None` when all probes were lost.
pub type Measured = Option<f64>;

/// Measures a single pair: min over `probes` of `base + Exp(jitter)`.
pub fn measure_rtt(base_ms: f64, params: &MeasurementParams, rng: &mut StdRng) -> Measured {
    if params.loss_prob > 0.0 && rng.gen_bool(params.loss_prob.min(1.0)) {
        return None;
    }
    let mut best = f64::INFINITY;
    for _ in 0..params.probes.max(1) {
        let queueing = exp_sample(params.jitter_frac * base_ms, rng);
        let floor = rng.gen_range(0.0..=params.floor_jitter_ms.max(f64::MIN_POSITIVE));
        let sample = base_ms + queueing + floor;
        if sample < best {
            best = sample;
        }
    }
    Some(best)
}

/// Measures the full host-to-host RTT matrix of a topology.
///
/// Returns `(matrix, mask)` where `mask[(i,j)] == 1.0` marks an observed
/// entry; missing entries are `0.0` in both. Diagonal entries are observed
/// zeros.
pub fn measure_matrix(
    topo: &TransitStubTopology,
    params: &MeasurementParams,
    rng: &mut StdRng,
) -> (Matrix, Matrix) {
    let n = topo.host_count();
    let mut d = Matrix::zeros(n, n);
    let mut mask = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                mask[(i, j)] = 1.0;
                continue;
            }
            match measure_rtt(topo.host_rtt(i, j), params, rng) {
                Some(v) => {
                    d[(i, j)] = v;
                    mask[(i, j)] = 1.0;
                }
                None => {
                    mask[(i, j)] = 0.0;
                }
            }
        }
    }
    (d, mask)
}

/// Measures a rectangular matrix of RTTs from `rows` hosts to `cols` hosts
/// (for AGNP-style asymmetric data sets the two host sets differ).
///
/// Unlike the square all-pairs case, entries here are **one-way-pair**
/// measurements of `rtt(row, col)`; if the same pair appears transposed in
/// another call, jitter makes the two measurements differ, which is one of
/// the sources of observed asymmetry in real data.
pub fn measure_submatrix(
    topo: &TransitStubTopology,
    rows: &[usize],
    cols: &[usize],
    params: &MeasurementParams,
    rng: &mut StdRng,
) -> (Matrix, Matrix) {
    let mut d = Matrix::zeros(rows.len(), cols.len());
    let mut mask = Matrix::zeros(rows.len(), cols.len());
    for (ri, &i) in rows.iter().enumerate() {
        for (cj, &j) in cols.iter().enumerate() {
            if i == j {
                mask[(ri, cj)] = 1.0;
                continue;
            }
            if let Some(v) = measure_rtt(topo.host_rtt(i, j), params, rng) {
                d[(ri, cj)] = v;
                mask[(ri, cj)] = 1.0;
            }
        }
    }
    (d, mask)
}

/// Draws an exponential sample with the given mean (0 if mean <= 0).
fn exp_sample(mean: f64, rng: &mut StdRng) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TransitStubParams;
    use rand::SeedableRng;

    fn topo() -> TransitStubTopology {
        let params = TransitStubParams {
            hosts: 30,
            stubs: 8,
            ..TransitStubParams::default()
        };
        TransitStubTopology::generate(&params, &mut StdRng::seed_from_u64(5))
    }

    #[test]
    fn measured_rtt_at_least_base() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = MeasurementParams::default();
        for base in [1.0, 10.0, 100.0] {
            for _ in 0..100 {
                let m = measure_rtt(base, &p, &mut rng).unwrap();
                assert!(m >= base, "measured {m} below base {base}");
            }
        }
    }

    #[test]
    fn more_probes_tighter_estimate() {
        let mut rng = StdRng::seed_from_u64(1);
        let few = MeasurementParams {
            probes: 1,
            loss_prob: 0.0,
            ..MeasurementParams::king_style()
        };
        let many = MeasurementParams {
            probes: 50,
            loss_prob: 0.0,
            ..MeasurementParams::king_style()
        };
        let base = 50.0;
        let avg = |p: &MeasurementParams, rng: &mut StdRng| -> f64 {
            (0..200)
                .map(|_| measure_rtt(base, p, rng).unwrap())
                .sum::<f64>()
                / 200.0
        };
        let few_avg = avg(&few, &mut rng);
        let many_avg = avg(&many, &mut rng);
        assert!(
            many_avg < few_avg,
            "min-of-50 {many_avg} not below min-of-1 {few_avg}"
        );
        assert!(
            many_avg - base < 0.1 * base,
            "min filter should approach base"
        );
    }

    #[test]
    fn loss_produces_missing_entries() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = MeasurementParams {
            loss_prob: 0.5,
            ..MeasurementParams::default()
        };
        let lost = (0..1000)
            .filter(|_| measure_rtt(10.0, &p, &mut rng).is_none())
            .count();
        assert!((350..650).contains(&lost), "lost {lost}/1000 at p=0.5");
    }

    #[test]
    fn matrix_mask_consistency() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(3);
        let p = MeasurementParams {
            loss_prob: 0.1,
            ..MeasurementParams::king_style()
        };
        let (d, mask) = measure_matrix(&t, &p, &mut rng);
        let n = t.host_count();
        assert_eq!(d.shape(), (n, n));
        let mut missing = 0;
        for i in 0..n {
            assert_eq!(mask[(i, i)], 1.0);
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..n {
                if mask[(i, j)] == 0.0 {
                    missing += 1;
                    assert_eq!(d[(i, j)], 0.0, "missing entry must be zero");
                } else if i != j {
                    assert!(d[(i, j)] > 0.0);
                }
            }
        }
        assert!(missing > 0, "expected some missing entries at 10% loss");
    }

    #[test]
    fn submatrix_shapes() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<usize> = (0..10).collect();
        let cols: Vec<usize> = (10..15).collect();
        let (d, mask) =
            measure_submatrix(&t, &rows, &cols, &MeasurementParams::default(), &mut rng);
        assert_eq!(d.shape(), (10, 5));
        assert_eq!(mask.shape(), (10, 5));
        for i in 0..10 {
            for j in 0..5 {
                assert_eq!(mask[(i, j)], 1.0);
                assert!(d[(i, j)] > 0.0);
            }
        }
    }

    #[test]
    fn zero_jitter_reproduces_base() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = MeasurementParams {
            probes: 1,
            jitter_frac: 0.0,
            floor_jitter_ms: 0.0,
            loss_prob: 0.0,
        };
        let m = measure_rtt(42.0, &p, &mut rng).unwrap();
        assert!((m - 42.0).abs() < 1e-9);
    }
}
