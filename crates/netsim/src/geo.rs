//! Geographic placement of network nodes and propagation delays.
//!
//! Nodes live on the globe; link propagation delay is derived from
//! great-circle distance at roughly two-thirds the speed of light (the
//! usual fiber approximation). Continental regions reproduce the geographic
//! mix described for each of the paper's data sets (e.g. "90 % of NLANR
//! hosts are in North America").

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point on the globe (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, range [-90, 90].
    pub lat: f64,
    /// Longitude in degrees, range [-180, 180].
    pub lon: f64,
}

/// Mean Earth radius in kilometers.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Signal speed in fiber, km per millisecond (~2/3 c).
pub const FIBER_KM_PER_MS: f64 = 200.0;

impl GeoPoint {
    /// Creates a point, clamping latitude and wrapping longitude.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = (lon + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat,
            lon: lon - 180.0,
        }
    }

    /// Great-circle distance to `other` in kilometers (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().min(1.0).asin()
    }

    /// One-way propagation delay to `other` in milliseconds over fiber laid
    /// along the great circle (a lower bound for real paths).
    pub fn propagation_ms(&self, other: &GeoPoint) -> f64 {
        self.distance_km(other) / FIBER_KM_PER_MS
    }
}

/// A rectangular continental region used for random node placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable name ("north-america", …).
    pub name: &'static str,
    /// Latitude range (degrees).
    pub lat_range: (f64, f64),
    /// Longitude range (degrees).
    pub lon_range: (f64, f64),
}

impl Region {
    /// Samples a uniform random point inside the region.
    pub fn sample(&self, rng: &mut StdRng) -> GeoPoint {
        GeoPoint::new(
            rng.gen_range(self.lat_range.0..self.lat_range.1),
            rng.gen_range(self.lon_range.0..self.lon_range.1),
        )
    }

    /// The region's center point.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.lat_range.0 + self.lat_range.1) / 2.0,
            (self.lon_range.0 + self.lon_range.1) / 2.0,
        )
    }
}

/// North America (contiguous US / southern Canada band).
pub const NORTH_AMERICA: Region = Region {
    name: "north-america",
    lat_range: (30.0, 50.0),
    lon_range: (-122.0, -72.0),
};
/// Western / central Europe.
pub const EUROPE: Region = Region {
    name: "europe",
    lat_range: (38.0, 58.0),
    lon_range: (-8.0, 25.0),
};
/// East / south-east Asia.
pub const ASIA: Region = Region {
    name: "asia",
    lat_range: (5.0, 42.0),
    lon_range: (95.0, 140.0),
};
/// South America.
pub const SOUTH_AMERICA: Region = Region {
    name: "south-america",
    lat_range: (-35.0, 5.0),
    lon_range: (-72.0, -40.0),
};
/// Australia / Oceania.
pub const OCEANIA: Region = Region {
    name: "oceania",
    lat_range: (-40.0, -15.0),
    lon_range: (115.0, 153.0),
};

/// All five modeled continental regions, in a fixed order.
pub const ALL_REGIONS: [Region; 5] = [NORTH_AMERICA, EUROPE, ASIA, SOUTH_AMERICA, OCEANIA];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn distance_zero_to_self() {
        let p = GeoPoint::new(40.0, -75.0);
        assert_eq!(p.distance_km(&p), 0.0);
        assert_eq!(p.propagation_ms(&p), 0.0);
    }

    #[test]
    fn distance_symmetric() {
        let a = GeoPoint::new(40.0, -75.0); // ~Philadelphia
        let b = GeoPoint::new(51.5, 0.0); // ~London
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn known_distance_philadelphia_london() {
        let phl = GeoPoint::new(39.95, -75.17);
        let lon = GeoPoint::new(51.51, -0.13);
        let d = phl.distance_km(&lon);
        // True great-circle distance is ~5,700 km.
        assert!((5500.0..5900.0).contains(&d), "distance {d}");
        // One-way fiber propagation ~28 ms; round trip of the order of 60–90 ms
        // matches transatlantic RTTs once routing overhead is added.
        let ms = phl.propagation_ms(&lon);
        assert!((26.0..31.0).contains(&ms), "propagation {ms} ms");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "distance {d} vs {half}");
    }

    #[test]
    fn triangle_inequality_of_great_circle() {
        // Great-circle distance is a metric; the *network* violates the
        // triangle inequality only through routing policy, never geometry.
        let a = GeoPoint::new(40.0, -75.0);
        let b = GeoPoint::new(48.0, 2.0);
        let c = GeoPoint::new(35.0, 139.0);
        assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-9);
    }

    #[test]
    fn constructor_clamps() {
        let p = GeoPoint::new(95.0, 200.0);
        assert_eq!(p.lat, 90.0);
        assert!((-180.0..=180.0).contains(&p.lon));
    }

    #[test]
    fn region_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for region in ALL_REGIONS {
            for _ in 0..50 {
                let p = region.sample(&mut rng);
                assert!(p.lat >= region.lat_range.0 && p.lat <= region.lat_range.1);
                assert!(p.lon >= region.lon_range.0 && p.lon <= region.lon_range.1);
            }
        }
    }

    #[test]
    fn regions_are_far_apart() {
        // Sanity: inter-region distances dominate intra-region ones.
        let na = NORTH_AMERICA.center();
        let eu = EUROPE.center();
        let asia = ASIA.center();
        assert!(na.distance_km(&eu) > 5000.0);
        assert!(na.distance_km(&asia) > 8000.0);
        assert!(eu.distance_km(&asia) > 7000.0);
    }
}
