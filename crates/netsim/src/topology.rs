//! Transit-stub Internet topology generation with routing policies.
//!
//! This is the substrate that replaces the paper's real measurement data
//! sets. It reproduces the two structural phenomena the paper's model
//! exists to capture and that Euclidean embeddings cannot:
//!
//! * **Sub-optimal routing** → triangle-inequality violations. Stub domains
//!   in the same region may hold private peering links that policy allows
//!   only for traffic *between those two stubs*; everyone else detours
//!   through the transit core. A detour through a well-peered host can then
//!   beat the direct policy path (studies cited by the paper put this at up
//!   to ~40 % of pairs).
//! * **Asymmetric routing** → asymmetric distance matrices. Access links
//!   have different up/down delays, and multihomed stubs use hot-potato
//!   (earliest-exit) egress, so forward and reverse paths differ.
//!
//! The generator builds a three-level hierarchy: a geographic transit core
//! (intercontinental cables between specific router pairs only), stub
//! domains homed on one or two transit routers, and end hosts on asymmetric
//! access links.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::geo::{GeoPoint, ALL_REGIONS};
use crate::graph::{Graph, NodeId};

/// Per-hop router processing delay in milliseconds.
const HOP_PROCESSING_MS: f64 = 0.15;
/// Cable length inflation over the great circle (cables are not straight).
const CABLE_INFLATION: f64 = 1.25;

/// Parameters for [`TransitStubTopology::generate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitStubParams {
    /// Number of end hosts to place.
    pub hosts: usize,
    /// Relative weight of each region in `geo::ALL_REGIONS` order when
    /// placing stubs/hosts (need not be normalized).
    pub region_weights: [f64; 5],
    /// Transit (backbone) routers per region.
    pub transits_per_region: usize,
    /// Total number of stub domains.
    pub stubs: usize,
    /// Probability a stub is multihomed to a second transit router.
    pub multihoming_prob: f64,
    /// Probability that a same-region stub pair has a private peering link.
    pub peering_prob: f64,
    /// Mean one-way access-link delay in ms (host ↔ stub router).
    pub access_delay_ms: f64,
    /// Upstream/downstream asymmetry: up-delay multiplier is drawn from
    /// `1.0..=1.0 + access_asymmetry`. Zero gives symmetric access links.
    pub access_asymmetry: f64,
    /// Route-level diversity: each ordered host pair's path delay carries a
    /// deterministic perturbation of up to ± this fraction (traffic
    /// engineering, load balancing, route age). Raises the effective rank
    /// of the distance matrix the way real paths do. Zero disables.
    pub path_diversity: f64,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            hosts: 100,
            region_weights: [0.5, 0.2, 0.15, 0.1, 0.05],
            transits_per_region: 3,
            stubs: 25,
            multihoming_prob: 0.4,
            peering_prob: 0.3,
            access_delay_ms: 2.0,
            access_asymmetry: 1.0,
            path_diversity: 0.08,
        }
    }
}

impl TransitStubParams {
    /// A P2PSim/King-shaped internet at arbitrary scale: the region mix,
    /// peering, and access-link asymmetry of the measured-population
    /// generators, with the stub count growing with `hosts` (capped at
    /// 512) so stub domains stay a few thousand hosts even at 10⁶.
    /// Because host delays derive from O(1) per-host tables — never an
    /// O(hosts²) matrix — topologies from these params stay cheap to
    /// generate and query at millions of hosts; this is the population
    /// behind `ides::service`'s scale scenario.
    pub fn internet_scale(hosts: usize) -> Self {
        TransitStubParams {
            hosts,
            region_weights: [0.4, 0.25, 0.2, 0.1, 0.05],
            transits_per_region: 4,
            stubs: (hosts / 8).clamp(8, 512),
            multihoming_prob: 0.5,
            peering_prob: 0.25,
            access_delay_ms: 5.0,
            access_asymmetry: 2.0,
            path_diversity: 0.15,
        }
    }
}

/// A stub (edge) domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stub {
    /// Graph node of the stub's border router.
    pub router: NodeId,
    /// Region index into `geo::ALL_REGIONS`.
    pub region: usize,
    /// Location of the stub router.
    pub location: GeoPoint,
    /// Home transit routers (1 or 2), ordered by link delay (primary first).
    pub homes: Vec<usize>,
    /// One-way delay to each home transit router, same order as `homes`.
    pub home_delays: Vec<f64>,
}

/// An end host attached to a stub.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Host {
    /// Graph node id of the host.
    pub node: NodeId,
    /// Index of the host's stub domain.
    pub stub: usize,
    /// Upstream (host → stub router) one-way delay, ms.
    pub up_ms: f64,
    /// Downstream (stub router → host) one-way delay, ms.
    pub down_ms: f64,
    /// Host location (near its stub router).
    pub location: GeoPoint,
}

/// A generated transit-stub topology with its policy-routing tables.
#[derive(Debug, Clone)]
pub struct TransitStubTopology {
    /// The underlying link graph (hosts, stub routers, transit routers).
    pub graph: Graph,
    /// Transit router graph nodes (index = transit id).
    pub transit_nodes: Vec<NodeId>,
    /// Transit router locations.
    pub transit_locations: Vec<GeoPoint>,
    /// Region of each transit router.
    pub transit_regions: Vec<usize>,
    /// All stub domains.
    pub stubs: Vec<Stub>,
    /// All end hosts.
    pub hosts: Vec<Host>,
    /// `peering[a]` lists `(b, one_way_delay)` for stubs privately peered
    /// with stub `a`.
    pub peering: Vec<Vec<(usize, f64)>>,
    /// All-pairs shortest one-way delays across the transit core,
    /// `transit_dist[i][j]`.
    pub transit_dist: Vec<Vec<f64>>,
    /// Route-diversity amplitude copied from the generation parameters.
    pub path_diversity: f64,
    /// Per-topology salt for the deterministic route-diversity hash.
    pub diversity_salt: u64,
}

impl TransitStubTopology {
    /// Generates a topology from `params` using the supplied RNG.
    ///
    /// # Panics
    /// Panics if `hosts == 0`, `stubs == 0`, or `transits_per_region == 0`.
    pub fn generate(params: &TransitStubParams, rng: &mut StdRng) -> Self {
        assert!(params.hosts > 0, "need at least one host");
        assert!(params.stubs > 0, "need at least one stub");
        assert!(params.transits_per_region > 0, "need transit routers");

        let mut graph = Graph::new(0);

        // --- Transit core ---------------------------------------------------
        let mut transit_nodes = Vec::new();
        let mut transit_locations = Vec::new();
        let mut transit_regions = Vec::new();
        for (r, region) in ALL_REGIONS.iter().enumerate() {
            for _ in 0..params.transits_per_region {
                transit_nodes.push(graph.add_node());
                transit_locations.push(region.sample(rng));
                transit_regions.push(r);
            }
        }
        let t = transit_nodes.len();
        // Intra-region: ring + all pairs within region (regions are small).
        for i in 0..t {
            for j in (i + 1)..t {
                if transit_regions[i] == transit_regions[j] {
                    let d = link_delay(&transit_locations[i], &transit_locations[j]);
                    graph.add_link(transit_nodes[i], transit_nodes[j], d);
                }
            }
        }
        // Inter-region cables between *specific* router pairs only; missing
        // region pairs force multi-hop backbone detours (path inflation).
        // Region indices: 0 NA, 1 EU, 2 AS, 3 SA, 4 OC.
        const CABLES: [(usize, usize); 5] = [(0, 1), (0, 2), (1, 2), (0, 3), (2, 4)];
        for &(ra, rb) in &CABLES {
            let a_candidates: Vec<usize> = (0..t).filter(|&i| transit_regions[i] == ra).collect();
            let b_candidates: Vec<usize> = (0..t).filter(|&i| transit_regions[i] == rb).collect();
            // Pick the geographically closest pair plus one random backup.
            let mut best = (a_candidates[0], b_candidates[0], f64::INFINITY);
            for &a in &a_candidates {
                for &b in &b_candidates {
                    let d = transit_locations[a].distance_km(&transit_locations[b]);
                    if d < best.2 {
                        best = (a, b, d);
                    }
                }
            }
            let d = link_delay(&transit_locations[best.0], &transit_locations[best.1]);
            graph.add_link(transit_nodes[best.0], transit_nodes[best.1], d);
            if a_candidates.len() > 1 && b_candidates.len() > 1 {
                let a2 = a_candidates[rng.gen_range(0..a_candidates.len())];
                let b2 = b_candidates[rng.gen_range(0..b_candidates.len())];
                if (a2, b2) != (best.0, best.1) {
                    let d2 = link_delay(&transit_locations[a2], &transit_locations[b2]);
                    graph.add_link(transit_nodes[a2], transit_nodes[b2], d2);
                }
            }
        }

        // All-pairs shortest paths over the transit core only.
        let transit_dist = {
            let allow = |from: NodeId, e: &crate::graph::Edge| {
                transit_nodes.contains(&from) && transit_nodes.contains(&e.to)
            };
            transit_nodes
                .iter()
                .map(|&src| {
                    let d = graph.dijkstra_filtered(src, allow);
                    transit_nodes.iter().map(|&dst| d[dst]).collect()
                })
                .collect::<Vec<Vec<f64>>>()
        };

        // --- Stub domains ----------------------------------------------------
        let total_weight: f64 = params.region_weights.iter().sum();
        let mut stubs: Vec<Stub> = Vec::with_capacity(params.stubs);
        for _ in 0..params.stubs {
            let region = sample_region(&params.region_weights, total_weight, rng);
            let location = ALL_REGIONS[region].sample(rng);
            let router = graph.add_node();
            // Home transits: nearest in-region transit is primary.
            let mut in_region: Vec<(usize, f64)> = (0..t)
                .filter(|&i| transit_regions[i] == region)
                .map(|i| (i, link_delay(&location, &transit_locations[i])))
                .collect();
            in_region.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite delays"));
            let mut homes = vec![in_region[0].0];
            let mut home_delays = vec![in_region[0].1];
            if in_region.len() > 1 && rng.gen_bool(params.multihoming_prob) {
                homes.push(in_region[1].0);
                home_delays.push(in_region[1].1);
            }
            for (&h, &d) in homes.iter().zip(home_delays.iter()) {
                graph.add_link(router, transit_nodes[h], d);
            }
            stubs.push(Stub {
                router,
                region,
                location,
                homes,
                home_delays,
            });
        }

        // Private peering between same-region stub pairs.
        let mut peering: Vec<Vec<(usize, f64)>> = vec![Vec::new(); stubs.len()];
        for a in 0..stubs.len() {
            for b in (a + 1)..stubs.len() {
                if stubs[a].region == stubs[b].region && rng.gen_bool(params.peering_prob) {
                    let d = link_delay(&stubs[a].location, &stubs[b].location);
                    peering[a].push((b, d));
                    peering[b].push((a, d));
                    graph.add_link(stubs[a].router, stubs[b].router, d);
                }
            }
        }

        // --- End hosts ---------------------------------------------------------
        // Hosts are placed on stubs with probability proportional to the
        // stub's region weight (so host geography follows `region_weights`).
        let stub_weights: Vec<f64> = stubs
            .iter()
            .map(|s| params.region_weights[s.region].max(1e-9))
            .collect();
        let stub_weight_total: f64 = stub_weights.iter().sum();
        let mut hosts = Vec::with_capacity(params.hosts);
        for _ in 0..params.hosts {
            let mut pick = rng.gen_range(0.0..stub_weight_total);
            let mut stub_idx = 0;
            for (i, &w) in stub_weights.iter().enumerate() {
                if pick < w {
                    stub_idx = i;
                    break;
                }
                pick -= w;
            }
            let node = graph.add_node();
            // Last-mile delay: exponential-ish spread around the mean; the
            // upstream direction is slower by a per-host skew factor
            // (consumer access links are download-biased).
            let base = params.access_delay_ms * (0.25 + rng.gen_range(0.0..1.5));
            let skew = 1.0 + rng.gen_range(0.0..params.access_asymmetry.max(0.0));
            let down_ms = base;
            let up_ms = base * skew;
            graph.add_asymmetric_link(node, stubs[stub_idx].router, up_ms, down_ms);
            let jitter_lat = rng.gen_range(-0.5..0.5);
            let jitter_lon = rng.gen_range(-0.5..0.5);
            let loc = GeoPoint::new(
                stubs[stub_idx].location.lat + jitter_lat,
                stubs[stub_idx].location.lon + jitter_lon,
            );
            hosts.push(Host {
                node,
                stub: stub_idx,
                up_ms,
                down_ms,
                location: loc,
            });
        }

        let diversity_salt = rng.gen::<u64>();
        TransitStubTopology {
            graph,
            transit_nodes,
            transit_locations,
            transit_regions,
            stubs,
            hosts,
            peering,
            transit_dist,
            path_diversity: params.path_diversity.max(0.0),
            diversity_salt,
        }
    }

    /// One-way **policy-routed** delay from stub `a`'s router to stub `b`'s
    /// router.
    ///
    /// Order of preference (mirroring valley-free interdomain routing):
    /// 1. same stub → 0,
    /// 2. private peering link (only between the two peered stubs),
    /// 3. hot-potato transit path: exit through the *source's primary home*
    ///    (earliest exit), then the shortest core path to whichever of the
    ///    destination's homes minimizes the remaining delay.
    ///
    /// The hot-potato rule is what makes stub-level routing asymmetric and
    /// sub-optimal: the reverse path exits through `b`'s primary home, which
    /// generally differs from the forward path.
    pub fn stub_delay(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        if let Some(&(_, d)) = self.peering[a].iter().find(|&&(s, _)| s == b) {
            return d;
        }
        let exit = self.stubs[a].homes[0];
        let exit_delay = self.stubs[a].home_delays[0];
        let sb = &self.stubs[b];
        let mut best = f64::INFINITY;
        for (&home, &hd) in sb.homes.iter().zip(sb.home_delays.iter()) {
            let core = self.transit_dist[exit][home];
            let hops = 2.0 + (core / 15.0).ceil(); // rough hop count for processing delay
            let total = exit_delay + core + hd + hops * HOP_PROCESSING_MS;
            if total < best {
                best = total;
            }
        }
        best
    }

    /// One-way policy-routed delay from host `i` to host `j` (indices into
    /// [`Self::hosts`]).
    ///
    /// Includes the deterministic route-diversity perturbation: real paths
    /// between two sites differ from the clean hierarchical model through
    /// traffic engineering and load balancing, so each ordered (stub pair,
    /// host pair) combination carries a fixed ±`path_diversity` factor.
    pub fn host_delay(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let hi = &self.hosts[i];
        let hj = &self.hosts[j];
        let base = if hi.stub == hj.stub {
            hi.up_ms + hj.down_ms + HOP_PROCESSING_MS
        } else {
            hi.up_ms + self.stub_delay(hi.stub, hj.stub) + hj.down_ms + 2.0 * HOP_PROCESSING_MS
        };
        if self.path_diversity == 0.0 {
            return base;
        }
        // Stub-level wobble (correlated across hosts of the same stubs)
        // plus a smaller host-pair component; both in [-1, 1].
        let stub_w = pair_hash(self.diversity_salt, hi.stub as u64, hj.stub as u64);
        let host_w = pair_hash(self.diversity_salt ^ 0xA5A5_5A5A, i as u64, j as u64);
        let factor = 1.0 + self.path_diversity * (0.65 * stub_w + 0.35 * host_w);
        base * factor.max(0.5)
    }

    /// Round-trip time between hosts `i` and `j` (forward + reverse one-way
    /// delays, which generally differ).
    pub fn host_rtt(&self, i: usize, j: usize) -> f64 {
        self.host_delay(i, j) + self.host_delay(j, i)
    }

    /// Number of end hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }
}

/// Deterministic hash of an ordered pair mapped to `[-1, 1]` (splitmix64).
fn pair_hash(salt: u64, a: u64, b: u64) -> f64 {
    let mut z =
        salt ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
}

/// Physical link delay between two points: inflated great-circle
/// propagation plus one hop of processing.
fn link_delay(a: &GeoPoint, b: &GeoPoint) -> f64 {
    a.propagation_ms(b) * CABLE_INFLATION + HOP_PROCESSING_MS
}

fn sample_region(weights: &[f64; 5], total: f64, rng: &mut StdRng) -> usize {
    let mut pick = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if pick < w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

/// Builds the 4-host ring network of Figure 1 of the paper: four hosts in
/// different domains connected in a cycle with unit distances. The returned
/// matrix is the paper's `D` (shortest path along the ring).
pub fn figure1_distance_matrix() -> ides_linalg::Matrix {
    ides_linalg::Matrix::from_vec(
        4,
        4,
        vec![
            0.0, 1.0, 1.0, 2.0, 1.0, 0.0, 2.0, 1.0, 1.0, 2.0, 0.0, 1.0, 2.0, 1.0, 1.0, 0.0,
        ],
    )
    .expect("static shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_topology(seed: u64) -> TransitStubTopology {
        let params = TransitStubParams {
            hosts: 60,
            stubs: 15,
            ..TransitStubParams::default()
        };
        TransitStubTopology::generate(&params, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn internet_scale_params_generate_deterministic_large_populations() {
        // 50k hosts generate in O(hosts) — no dense matrix — and the
        // stub cap keeps domains bounded. Spot-check determinism and
        // sane RTTs at indices spread across the population.
        let params = TransitStubParams::internet_scale(50_000);
        assert_eq!(params.hosts, 50_000);
        assert_eq!(params.stubs, 512);
        let a = TransitStubTopology::generate(&params, &mut StdRng::seed_from_u64(7));
        let b = TransitStubTopology::generate(&params, &mut StdRng::seed_from_u64(7));
        for &(i, j) in &[(0, 49_999), (123, 40_321), (25_000, 25_001)] {
            let rtt = a.host_rtt(i, j);
            assert!(rtt.is_finite() && rtt > 0.0, "rtt({i},{j}) = {rtt}");
            assert_eq!(rtt.to_bits(), b.host_rtt(i, j).to_bits());
        }
        // Small populations keep at least a handful of stub domains.
        assert_eq!(TransitStubParams::internet_scale(20).stubs, 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_topology(9);
        let b = small_topology(9);
        assert_eq!(a.host_count(), b.host_count());
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(a.host_rtt(i, j), b.host_rtt(i, j));
            }
        }
    }

    #[test]
    fn rtts_are_finite_positive_and_zero_diagonal() {
        let t = small_topology(1);
        let n = t.host_count();
        for i in 0..n {
            assert_eq!(t.host_rtt(i, i), 0.0);
            for j in 0..n {
                let r = t.host_rtt(i, j);
                assert!(r.is_finite(), "rtt({i},{j}) not finite");
                if i != j {
                    assert!(r > 0.0, "rtt({i},{j}) = {r}");
                }
            }
        }
    }

    #[test]
    fn rtt_is_symmetric_but_one_way_is_not() {
        // RTT = fwd + rev is symmetric by construction; the one-way delays
        // themselves must show asymmetry (access links + hot potato).
        let t = small_topology(2);
        let n = t.host_count();
        let mut asym_pairs = 0;
        let mut total = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                assert!((t.host_rtt(i, j) - t.host_rtt(j, i)).abs() < 1e-12);
                total += 1;
                let fwd = t.host_delay(i, j);
                let rev = t.host_delay(j, i);
                if (fwd - rev).abs() > 0.01 * fwd.max(rev) {
                    asym_pairs += 1;
                }
            }
        }
        assert!(
            asym_pairs as f64 > 0.3 * total as f64,
            "only {asym_pairs}/{total} asymmetric one-way pairs"
        );
    }

    #[test]
    fn triangle_inequality_violations_exist() {
        // Policy routing must create detour opportunities: for a meaningful
        // fraction of pairs some relay k gives rtt(i,k)+rtt(k,j) < rtt(i,j).
        let t = small_topology(3);
        let n = t.host_count();
        let rtt: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| t.host_rtt(i, j)).collect())
            .collect();
        let mut violated = 0;
        let mut total = 0;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                total += 1;
                let has_detour =
                    (0..n).any(|k| k != i && k != j && rtt[i][k] + rtt[k][j] < rtt[i][j] * 0.999);
                if has_detour {
                    violated += 1;
                }
            }
        }
        let frac = violated as f64 / total as f64;
        assert!(frac > 0.05, "TIV fraction {frac} too small");
    }

    #[test]
    fn same_stub_hosts_are_close() {
        let t = small_topology(4);
        let n = t.host_count();
        let mut same: Vec<f64> = Vec::new();
        let mut diff: Vec<f64> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let r = t.host_rtt(i, j);
                if t.hosts[i].stub == t.hosts[j].stub {
                    same.push(r);
                } else {
                    diff.push(r);
                }
            }
        }
        if !same.is_empty() && !diff.is_empty() {
            let mean_same: f64 = same.iter().sum::<f64>() / same.len() as f64;
            let mean_diff: f64 = diff.iter().sum::<f64>() / diff.len() as f64;
            assert!(
                mean_same < mean_diff,
                "same-stub {mean_same} >= cross-stub {mean_diff}"
            );
        }
    }

    #[test]
    fn transit_core_is_connected() {
        let t = small_topology(5);
        for row in &t.transit_dist {
            for &d in row {
                assert!(d.is_finite(), "disconnected transit core");
            }
        }
    }

    #[test]
    fn stub_delay_prefers_peering() {
        let t = small_topology(6);
        for (a, peers) in t.peering.iter().enumerate() {
            for &(b, d) in peers {
                assert_eq!(t.stub_delay(a, b), d, "peering link not used for {a}->{b}");
            }
        }
    }

    #[test]
    fn figure1_matrix_shape() {
        let d = figure1_distance_matrix();
        assert_eq!(d.shape(), (4, 4));
        // Symmetric, zero diagonal, violates no triangle inequality (it is
        // a shortest-path metric) but has no exact 2-D embedding.
        for i in 0..4 {
            assert_eq!(d[(i, i)], 0.0);
            for j in 0..4 {
                assert_eq!(d[(i, j)], d[(j, i)]);
            }
        }
        assert_eq!(d[(0, 3)], 2.0);
    }

    #[test]
    fn region_weights_respected() {
        let params = TransitStubParams {
            hosts: 400,
            stubs: 40,
            region_weights: [0.9, 0.1, 0.0, 0.0, 0.0],
            ..TransitStubParams::default()
        };
        let t = TransitStubTopology::generate(&params, &mut StdRng::seed_from_u64(11));
        let na_hosts = t
            .hosts
            .iter()
            .filter(|h| t.stubs[h.stub].region == 0)
            .count();
        assert!(
            na_hosts as f64 > 0.7 * t.host_count() as f64,
            "{na_hosts}/{} hosts in region 0",
            t.host_count()
        );
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        let params = TransitStubParams {
            hosts: 0,
            ..TransitStubParams::default()
        };
        TransitStubTopology::generate(&params, &mut StdRng::seed_from_u64(0));
    }
}
