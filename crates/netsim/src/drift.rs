//! Network drift: slow evolution of path delays over time.
//!
//! IDES coordinates are computed once and reused; on the real Internet,
//! routes and congestion change, so cached vectors go stale. This module
//! models that with a smooth multiplicative drift per stub pair: the
//! drifted RTT at epoch `t` is `base_rtt × (1 + a·sin(ω t + φ))` with
//! per-pair amplitude, frequency and phase derived deterministically from
//! the pair identity. Smooth periodic drift matches the diurnal patterns
//! of real RTT series better than white noise and keeps every run
//! reproducible.

use crate::topology::TransitStubTopology;

/// A drift process layered over a topology.
#[derive(Debug, Clone)]
pub struct DriftModel {
    /// Maximum relative deviation from the base delay (e.g. 0.2 = ±20 %).
    pub amplitude: f64,
    /// Number of epochs in one full drift cycle.
    pub period_epochs: f64,
    /// Salt mixed into the per-pair phase/frequency hash.
    pub salt: u64,
}

impl DriftModel {
    /// Creates a drift model; `amplitude` must be in `[0, 1)` so delays
    /// stay positive.
    pub fn new(amplitude: f64, period_epochs: f64, salt: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(period_epochs > 0.0, "period must be positive");
        DriftModel {
            amplitude,
            period_epochs,
            salt,
        }
    }

    /// The multiplicative drift factor for host pair `(i, j)` at `epoch`.
    ///
    /// Symmetric in `(i, j)` so RTT stays symmetric under drift.
    pub fn factor(&self, i: usize, j: usize, epoch: f64) -> f64 {
        if self.amplitude == 0.0 || i == j {
            return 1.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let h = hash3(self.salt, a as u64, b as u64);
        // Per-pair phase in [0, 2π) and frequency in [0.5, 1.5] cycles.
        let phase = (h & 0xFFFF) as f64 / 65536.0 * std::f64::consts::TAU;
        let freq = 0.5 + ((h >> 16) & 0xFFFF) as f64 / 65536.0;
        let omega = std::f64::consts::TAU * freq / self.period_epochs;
        1.0 + self.amplitude * (omega * epoch + phase).sin()
    }

    /// Drifted RTT between hosts `i` and `j` at `epoch`.
    pub fn rtt(&self, topo: &TransitStubTopology, i: usize, j: usize, epoch: f64) -> f64 {
        topo.host_rtt(i, j) * self.factor(i, j, epoch)
    }

    /// Mean absolute relative deviation of the drifted matrix from the
    /// base matrix at `epoch`, over the given hosts.
    pub fn deviation(&self, topo: &TransitStubTopology, hosts: &[usize], epoch: f64) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (ai, &i) in hosts.iter().enumerate() {
            for &j in hosts.iter().skip(ai + 1) {
                let base = topo.host_rtt(i, j);
                if base > 0.0 {
                    total += (self.rtt(topo, i, j, epoch) - base).abs() / base;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

fn hash3(salt: u64, a: u64, b: u64) -> u64 {
    let mut z =
        salt ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TransitStubParams;
    use rand::SeedableRng;

    fn topo() -> TransitStubTopology {
        let params = TransitStubParams {
            hosts: 20,
            stubs: 5,
            ..TransitStubParams::default()
        };
        TransitStubTopology::generate(&params, &mut rand::rngs::StdRng::seed_from_u64(8))
    }

    #[test]
    fn epoch_zero_is_not_special_but_bounded() {
        let t = topo();
        let drift = DriftModel::new(0.2, 24.0, 1);
        for epoch in [0.0, 3.5, 12.0, 100.0] {
            for i in 0..20 {
                for j in 0..20 {
                    let f = drift.factor(i, j, epoch);
                    assert!((0.8..=1.2).contains(&f), "factor {f} out of band");
                    let r = drift.rtt(&t, i, j, epoch);
                    assert!(r >= 0.0 && r.is_finite());
                }
            }
        }
    }

    #[test]
    fn drift_is_symmetric_and_deterministic() {
        let drift = DriftModel::new(0.3, 24.0, 7);
        for epoch in [1.0, 9.0] {
            for i in 0..10 {
                for j in 0..10 {
                    assert_eq!(drift.factor(i, j, epoch), drift.factor(j, i, epoch));
                }
            }
        }
        let again = DriftModel::new(0.3, 24.0, 7);
        assert_eq!(drift.factor(2, 5, 3.3), again.factor(2, 5, 3.3));
    }

    #[test]
    fn self_delay_never_drifts() {
        let drift = DriftModel::new(0.5, 10.0, 3);
        assert_eq!(drift.factor(4, 4, 7.7), 1.0);
    }

    #[test]
    fn zero_amplitude_is_identity() {
        let t = topo();
        let drift = DriftModel::new(0.0, 24.0, 1);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(drift.rtt(&t, i, j, 5.0), t.host_rtt(i, j));
            }
        }
    }

    #[test]
    fn deviation_grows_from_epoch_origin_on_average() {
        // With random phases the expected |deviation| is ~2a/π at any
        // epoch; just check it is positive and below the amplitude.
        let t = topo();
        let hosts: Vec<usize> = (0..20).collect();
        let drift = DriftModel::new(0.25, 24.0, 5);
        let dev = drift.deviation(&t, &hosts, 6.0);
        assert!(dev > 0.02, "deviation {dev} suspiciously small");
        assert!(dev <= 0.25 + 1e-9, "deviation {dev} above amplitude");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn invalid_amplitude_rejected() {
        DriftModel::new(1.5, 24.0, 0);
    }

    #[test]
    fn different_pairs_drift_differently() {
        let drift = DriftModel::new(0.2, 24.0, 11);
        // At a fixed epoch, factors across pairs should not all coincide.
        let f1 = drift.factor(0, 1, 5.0);
        let f2 = drift.factor(2, 9, 5.0);
        let f3 = drift.factor(4, 17, 5.0);
        assert!((f1 - f2).abs() > 1e-6 || (f1 - f3).abs() > 1e-6);
    }
}
