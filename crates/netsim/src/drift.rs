//! Network drift: slow evolution of path delays over time.
//!
//! IDES coordinates are computed once and reused; on the real Internet,
//! routes and congestion change, so cached vectors go stale. This module
//! models that with a smooth multiplicative drift per stub pair: the
//! drifted RTT at epoch `t` is `base_rtt × (1 + a·sin(ω t + φ))` with
//! per-pair amplitude, frequency and phase derived deterministically from
//! the pair identity. Smooth periodic drift matches the diurnal patterns
//! of real RTT series better than white noise and keeps every run
//! reproducible.

use crate::topology::TransitStubTopology;

/// A drift process layered over a topology.
#[derive(Debug, Clone)]
pub struct DriftModel {
    /// Maximum relative deviation from the base delay (e.g. 0.2 = ±20 %).
    pub amplitude: f64,
    /// Number of epochs in one full drift cycle.
    pub period_epochs: f64,
    /// Salt mixed into the per-pair phase/frequency hash.
    pub salt: u64,
}

impl DriftModel {
    /// Creates a drift model; `amplitude` must be in `[0, 1)` so delays
    /// stay positive.
    pub fn new(amplitude: f64, period_epochs: f64, salt: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(period_epochs > 0.0, "period must be positive");
        DriftModel {
            amplitude,
            period_epochs,
            salt,
        }
    }

    /// The multiplicative drift factor for host pair `(i, j)` at `epoch`.
    ///
    /// Symmetric in `(i, j)` so RTT stays symmetric under drift.
    pub fn factor(&self, i: usize, j: usize, epoch: f64) -> f64 {
        if self.amplitude == 0.0 || i == j {
            return 1.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let h = hash3(self.salt, a as u64, b as u64);
        // Per-pair phase in [0, 2π) and frequency in [0.5, 1.5] cycles.
        let phase = (h & 0xFFFF) as f64 / 65536.0 * std::f64::consts::TAU;
        let freq = 0.5 + ((h >> 16) & 0xFFFF) as f64 / 65536.0;
        let omega = std::f64::consts::TAU * freq / self.period_epochs;
        1.0 + self.amplitude * (omega * epoch + phase).sin()
    }

    /// Drifted RTT between hosts `i` and `j` at `epoch`.
    pub fn rtt(&self, topo: &TransitStubTopology, i: usize, j: usize, epoch: f64) -> f64 {
        topo.host_rtt(i, j) * self.factor(i, j, epoch)
    }

    /// Mean absolute relative deviation of the drifted matrix from the
    /// base matrix at `epoch`, over the given hosts.
    pub fn deviation(&self, topo: &TransitStubTopology, hosts: &[usize], epoch: f64) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (ai, &i) in hosts.iter().enumerate() {
            for &j in hosts.iter().skip(ai + 1) {
                let base = topo.host_rtt(i, j);
                if base > 0.0 {
                    total += (self.rtt(topo, i, j, epoch) - base).abs() / base;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// One drifted measurement emitted by a [`DriftStream`]: the RTT between
/// tracked hosts at positions `i` and `j` (indices into the stream's host
/// list, **not** raw topology host ids) is now `rtt`. Emitted once per
/// unordered pair — drift is symmetric, so consumers apply it in both
/// directions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSample {
    /// Position of the first host in the stream's tracked list.
    pub i: usize,
    /// Position of the second host (`i < j`).
    pub j: usize,
    /// The newly measured RTT.
    pub rtt: f64,
}

/// All measurements that changed at one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochBatch {
    /// The epoch the measurements were taken at.
    pub epoch: f64,
    /// Pairs whose RTT moved more than the stream's threshold since they
    /// were last emitted.
    pub samples: Vec<DriftSample>,
}

/// An epoch-stamped stream of drifted measurements over a tracked host
/// set — the producer side of the streaming-update subsystem.
///
/// Each call to [`DriftStream::next`] advances time by one epoch step and
/// emits the pairs whose drifted RTT moved by more than `threshold`
/// (relative) since that pair was last emitted, which models a measurement
/// infrastructure that only reports meaningful changes. Deterministic: the
/// same topology/model/hosts yield the same stream. The stream is
/// infinite; bound it with `take` or schedule a fixed horizon into a
/// discrete-event queue with [`DriftStream::schedule_into`].
#[derive(Debug)]
pub struct DriftStream<'a> {
    topo: &'a TransitStubTopology,
    model: DriftModel,
    hosts: Vec<usize>,
    epoch_step: f64,
    threshold: f64,
    /// Last *emitted* RTT per tracked pair (row-major over positions).
    last: Vec<f64>,
    epoch: f64,
}

impl<'a> DriftStream<'a> {
    /// Creates a stream over `hosts` (topology host ids) starting at epoch
    /// zero, advancing `epoch_step` per batch and emitting pairs whose RTT
    /// moved more than `threshold` (relative) since last emitted.
    pub fn new(
        topo: &'a TransitStubTopology,
        model: DriftModel,
        hosts: Vec<usize>,
        epoch_step: f64,
        threshold: f64,
    ) -> Self {
        assert!(epoch_step > 0.0, "epoch step must be positive");
        assert!(threshold >= 0.0, "threshold must be nonnegative");
        let n = hosts.len();
        let mut last = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                last[a * n + b] = model.rtt(topo, hosts[a], hosts[b], 0.0);
            }
        }
        DriftStream {
            topo,
            model,
            hosts,
            epoch_step,
            threshold,
            last,
            epoch: 0.0,
        }
    }

    /// The tracked host ids (positions in emitted samples index this).
    pub fn hosts(&self) -> &[usize] {
        &self.hosts
    }

    /// The epoch of the last emitted batch.
    pub fn epoch(&self) -> f64 {
        self.epoch
    }

    /// The full drifted RTT matrix over the tracked hosts at epoch zero —
    /// the matrix a consumer fits its initial model from.
    pub fn initial_matrix(&self) -> ides_linalg::Matrix {
        let n = self.hosts.len();
        ides_linalg::Matrix::from_fn(n, n, |a, b| self.last[a * n + b])
    }

    /// Schedules the next `epochs` batches into a discrete-event queue at
    /// their epoch timestamps (one simulated "time unit" per epoch), so a
    /// simulation can interleave measurement arrivals with other events.
    /// Call on a queue whose clock has not advanced past the stream.
    pub fn schedule_into(&mut self, q: &mut crate::event::EventQueue<EpochBatch>, epochs: usize) {
        for _ in 0..epochs {
            let batch = self.next().expect("drift stream is infinite");
            q.schedule(batch.epoch - q.now(), batch);
        }
    }
}

impl Iterator for DriftStream<'_> {
    type Item = EpochBatch;

    fn next(&mut self) -> Option<EpochBatch> {
        self.epoch += self.epoch_step;
        let n = self.hosts.len();
        let mut samples = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let rtt = self
                    .model
                    .rtt(self.topo, self.hosts[a], self.hosts[b], self.epoch);
                let prev = self.last[a * n + b];
                let moved = if prev > 0.0 {
                    (rtt - prev).abs() / prev
                } else {
                    rtt.abs()
                };
                if moved > self.threshold {
                    self.last[a * n + b] = rtt;
                    self.last[b * n + a] = rtt;
                    samples.push(DriftSample { i: a, j: b, rtt });
                }
            }
        }
        Some(EpochBatch {
            epoch: self.epoch,
            samples,
        })
    }
}

fn hash3(salt: u64, a: u64, b: u64) -> u64 {
    let mut z =
        salt ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TransitStubParams;
    use rand::SeedableRng;

    fn topo() -> TransitStubTopology {
        let params = TransitStubParams {
            hosts: 20,
            stubs: 5,
            ..TransitStubParams::default()
        };
        TransitStubTopology::generate(&params, &mut rand::rngs::StdRng::seed_from_u64(8))
    }

    #[test]
    fn epoch_zero_is_not_special_but_bounded() {
        let t = topo();
        let drift = DriftModel::new(0.2, 24.0, 1);
        for epoch in [0.0, 3.5, 12.0, 100.0] {
            for i in 0..20 {
                for j in 0..20 {
                    let f = drift.factor(i, j, epoch);
                    assert!((0.8..=1.2).contains(&f), "factor {f} out of band");
                    let r = drift.rtt(&t, i, j, epoch);
                    assert!(r >= 0.0 && r.is_finite());
                }
            }
        }
    }

    #[test]
    fn drift_is_symmetric_and_deterministic() {
        let drift = DriftModel::new(0.3, 24.0, 7);
        for epoch in [1.0, 9.0] {
            for i in 0..10 {
                for j in 0..10 {
                    assert_eq!(drift.factor(i, j, epoch), drift.factor(j, i, epoch));
                }
            }
        }
        let again = DriftModel::new(0.3, 24.0, 7);
        assert_eq!(drift.factor(2, 5, 3.3), again.factor(2, 5, 3.3));
    }

    #[test]
    fn self_delay_never_drifts() {
        let drift = DriftModel::new(0.5, 10.0, 3);
        assert_eq!(drift.factor(4, 4, 7.7), 1.0);
    }

    #[test]
    fn zero_amplitude_is_identity() {
        let t = topo();
        let drift = DriftModel::new(0.0, 24.0, 1);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(drift.rtt(&t, i, j, 5.0), t.host_rtt(i, j));
            }
        }
    }

    #[test]
    fn deviation_grows_from_epoch_origin_on_average() {
        // With random phases the expected |deviation| is ~2a/π at any
        // epoch; just check it is positive and below the amplitude.
        let t = topo();
        let hosts: Vec<usize> = (0..20).collect();
        let drift = DriftModel::new(0.25, 24.0, 5);
        let dev = drift.deviation(&t, &hosts, 6.0);
        assert!(dev > 0.02, "deviation {dev} suspiciously small");
        assert!(dev <= 0.25 + 1e-9, "deviation {dev} above amplitude");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn invalid_amplitude_rejected() {
        DriftModel::new(1.5, 24.0, 0);
    }

    #[test]
    fn stream_emits_only_meaningful_changes_and_is_deterministic() {
        let t = topo();
        let hosts: Vec<usize> = (0..10).collect();
        let model = DriftModel::new(0.2, 24.0, 3);
        let mut s1 = DriftStream::new(&t, model.clone(), hosts.clone(), 1.0, 0.02);
        let mut s2 = DriftStream::new(&t, model.clone(), hosts.clone(), 1.0, 0.02);
        for _ in 0..5 {
            let b1 = s1.next().unwrap();
            let b2 = s2.next().unwrap();
            assert_eq!(b1, b2, "stream must be deterministic");
            for s in &b1.samples {
                assert!(s.i < s.j, "pairs emitted once, ordered");
                // Every emitted RTT matches the drift model at that epoch.
                let want = model.rtt(&t, hosts[s.i], hosts[s.j], b1.epoch);
                assert_eq!(s.rtt, want);
            }
        }
        // A huge threshold suppresses all emissions.
        let mut quiet = DriftStream::new(&t, model, hosts, 1.0, 10.0);
        assert!(quiet.next().unwrap().samples.is_empty());
    }

    #[test]
    fn stream_initial_matrix_is_epoch_zero_drift() {
        let t = topo();
        let hosts: Vec<usize> = (2..12).collect();
        let model = DriftModel::new(0.15, 12.0, 9);
        let s = DriftStream::new(&t, model.clone(), hosts.clone(), 1.0, 0.0);
        let m = s.initial_matrix();
        assert_eq!(m.shape(), (10, 10));
        for a in 0..10 {
            for b in 0..10 {
                assert_eq!(m[(a, b)], model.rtt(&t, hosts[a], hosts[b], 0.0));
            }
        }
        assert_eq!(s.hosts(), &hosts[..]);
    }

    #[test]
    fn stream_schedules_batches_in_epoch_order() {
        let t = topo();
        let hosts: Vec<usize> = (0..6).collect();
        let mut s = DriftStream::new(&t, DriftModel::new(0.3, 8.0, 2), hosts, 2.0, 0.0);
        let mut q = crate::event::EventQueue::new();
        s.schedule_into(&mut q, 4);
        assert_eq!(q.len(), 4);
        let mut prev = 0.0;
        while let Some((time, batch)) = q.pop() {
            assert!(time > prev, "epochs must advance");
            assert_eq!(time, batch.epoch);
            prev = time;
        }
        assert_eq!(prev, 8.0); // 4 epochs at step 2
    }

    #[test]
    fn different_pairs_drift_differently() {
        let drift = DriftModel::new(0.2, 24.0, 11);
        // At a fixed epoch, factors across pairs should not all coincide.
        let f1 = drift.factor(0, 1, 5.0);
        let f2 = drift.factor(2, 9, 5.0);
        let f3 = drift.factor(4, 17, 5.0);
        assert!((f1 - f2).abs() > 1e-6 || (f1 - f3).abs() > 1e-6);
    }
}
