//! Alternative topology generators: Waxman random graphs and regular
//! shapes (line, ring, star, clique, binary tree).
//!
//! The transit-stub generator ([`crate::topology`]) is the primary
//! substrate; these provide (a) controlled regular topologies for unit
//! tests and worked examples (the paper's Figure 1 is a ring), and (b) the
//! Waxman model — the classic random-graph baseline in network simulation —
//! as an ablation substrate whose distance matrices *lack* the clustered
//! low-rank structure that transit-stub hierarchies produce.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// Parameters of the Waxman random-graph model.
///
/// Nodes are placed uniformly in the unit square; an edge between `u` and
/// `v` exists with probability `alpha * exp(-dist(u, v) / (beta * L))`
/// where `L` is the maximum possible distance (√2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WaxmanParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Edge-density parameter `alpha` in (0, 1].
    pub alpha: f64,
    /// Locality parameter `beta` in (0, 1]; smaller = more local edges.
    pub beta: f64,
    /// Delay per unit of Euclidean distance (ms).
    pub delay_per_unit_ms: f64,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams {
            nodes: 50,
            alpha: 0.4,
            beta: 0.15,
            delay_per_unit_ms: 30.0,
        }
    }
}

/// A Waxman random graph plus the node coordinates it was built from.
#[derive(Debug, Clone)]
pub struct WaxmanTopology {
    /// The generated graph (symmetric delays).
    pub graph: Graph,
    /// Node positions in the unit square.
    pub positions: Vec<(f64, f64)>,
}

/// Generates a Waxman random graph; an added spanning chain guarantees
/// connectivity regardless of `alpha`/`beta`.
pub fn waxman(params: &WaxmanParams, rng: &mut StdRng) -> WaxmanTopology {
    assert!(params.nodes >= 2, "need at least two nodes");
    assert!(params.alpha > 0.0 && params.alpha <= 1.0, "alpha in (0,1]");
    assert!(params.beta > 0.0 && params.beta <= 1.0, "beta in (0,1]");
    let n = params.nodes;
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let mut graph = Graph::new(n);
    let l = 2.0_f64.sqrt();
    let dist = |a: (f64, f64), b: (f64, f64)| -> f64 {
        ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
    };
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(positions[i], positions[j]);
            let p = params.alpha * (-d / (params.beta * l)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                graph.add_link(i, j, d * params.delay_per_unit_ms);
            }
        }
    }
    // Connectivity backstop: chain node i -> i+1 (nearest-position order).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        positions[a]
            .0
            .partial_cmp(&positions[b].0)
            .expect("finite positions")
    });
    for w in order.windows(2) {
        let (a, b) = (w[0], w[1]);
        if !graph.edges(a).iter().any(|e| e.to == b) {
            let d = dist(positions[a], positions[b]).max(1e-3);
            graph.add_link(a, b, d * params.delay_per_unit_ms);
        }
    }
    WaxmanTopology { graph, positions }
}

/// A ring of `n` nodes with the given per-edge delay (the Figure-1 shape
/// for `n = 4`, `delay = 1`).
pub fn ring(n: usize, delay_ms: f64) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_link(i, (i + 1) % n, delay_ms);
    }
    g
}

/// A line (path) of `n` nodes.
pub fn line(n: usize, delay_ms: f64) -> Graph {
    assert!(n >= 2, "a line needs at least 2 nodes");
    let mut g = Graph::new(n);
    for i in 0..n - 1 {
        g.add_link(i, i + 1, delay_ms);
    }
    g
}

/// A star: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize, delay_ms: f64) -> Graph {
    assert!(n >= 2, "a star needs at least 2 nodes");
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_link(0, i, delay_ms);
    }
    g
}

/// A complete graph with uniform delay.
pub fn clique(n: usize, delay_ms: f64) -> Graph {
    assert!(n >= 2, "a clique needs at least 2 nodes");
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_link(i, j, delay_ms);
        }
    }
    g
}

/// A complete binary tree with `levels` levels (`2^levels − 1` nodes).
/// Tree-like topologies are the paper's §2.2 example of metric spaces that
/// Euclidean embeddings handle poorly.
pub fn binary_tree(levels: usize, delay_ms: f64) -> Graph {
    assert!(levels >= 1, "need at least one level");
    let n = (1usize << levels) - 1;
    let mut g = Graph::new(n);
    for i in 1..n {
        let parent = (i - 1) / 2;
        g.add_link(parent, i, delay_ms);
    }
    g
}

/// All-pairs shortest-path delay matrix of a graph (the "distance matrix"
/// of a regular topology).
pub fn distance_matrix(g: &Graph) -> ides_linalg::Matrix {
    let n = g.len();
    let mut m = ides_linalg::Matrix::zeros(n, n);
    for src in 0..n {
        let d = g.dijkstra(src);
        for (dst, &v) in d.iter().enumerate() {
            m[(src, dst)] = v;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ring4_matches_figure1_up_to_relabeling() {
        // Figure 1 labels the ring 0-1-3-2; permute our 0-1-2-3 ring to
        // that order and the matrices must coincide.
        let g = ring(4, 1.0);
        let m = distance_matrix(&g);
        let perm = [0usize, 1, 3, 2];
        let relabeled = ides_linalg::Matrix::from_fn(4, 4, |i, j| m[(perm[i], perm[j])]);
        assert!(relabeled.approx_eq(&crate::topology::figure1_distance_matrix(), 1e-12));
    }

    #[test]
    fn line_distances() {
        let g = line(5, 2.0);
        let m = distance_matrix(&g);
        assert_eq!(m[(0, 4)], 8.0);
        assert_eq!(m[(1, 3)], 4.0);
        assert_eq!(m[(2, 2)], 0.0);
    }

    #[test]
    fn star_distances() {
        let g = star(6, 3.0);
        let m = distance_matrix(&g);
        for i in 1..6 {
            assert_eq!(m[(0, i)], 3.0);
            for j in 1..6 {
                if i != j {
                    assert_eq!(m[(i, j)], 6.0);
                }
            }
        }
    }

    #[test]
    fn clique_distances() {
        let g = clique(5, 7.0);
        let m = distance_matrix(&g);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m[(i, j)], if i == j { 0.0 } else { 7.0 });
            }
        }
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(3, 1.0); // 7 nodes
        assert_eq!(g.len(), 7);
        let m = distance_matrix(&g);
        // Leaves 3 and 4 share parent 1: distance 2.
        assert_eq!(m[(3, 4)], 2.0);
        // Leaves 3 and 6 go through the root: 2 + 2 = 4.
        assert_eq!(m[(3, 6)], 4.0);
        // Tree metrics satisfy the four-point condition; spot-check the
        // triangle inequality at least.
        for a in 0..7 {
            for b in 0..7 {
                for c in 0..7 {
                    assert!(m[(a, c)] <= m[(a, b)] + m[(b, c)] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn waxman_connected_and_symmetric() {
        let mut rng = StdRng::seed_from_u64(4);
        let topo = waxman(&WaxmanParams::default(), &mut rng);
        let m = distance_matrix(&topo.graph);
        for i in 0..topo.graph.len() {
            for j in 0..topo.graph.len() {
                assert!(m[(i, j)].is_finite(), "disconnected: {i} -> {j}");
                assert!((m[(i, j)] - m[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn waxman_beta_controls_locality() {
        let mut rng = StdRng::seed_from_u64(5);
        let local = waxman(
            &WaxmanParams {
                beta: 0.05,
                ..WaxmanParams::default()
            },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let global = waxman(
            &WaxmanParams {
                beta: 0.9,
                ..WaxmanParams::default()
            },
            &mut rng,
        );
        assert!(
            global.graph.edge_count() > local.graph.edge_count(),
            "higher beta should create more (long) edges: {} vs {}",
            global.graph.edge_count(),
            local.graph.edge_count()
        );
    }

    #[test]
    fn waxman_deterministic_per_seed() {
        let a = waxman(&WaxmanParams::default(), &mut StdRng::seed_from_u64(9));
        let b = waxman(&WaxmanParams::default(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small() {
        ring(2, 1.0);
    }
}
