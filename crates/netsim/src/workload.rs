//! Deterministic serving workloads: seeded event streams that mix
//! distance queries, host admissions (joins), departures (leaves), and
//! landmark drift over one time axis.
//!
//! This is the load side of the `ides::service` serving engine. A
//! [`WorkloadConfig`] describes the client population (open-loop Poisson
//! arrivals or a closed-loop client pool), the operation mix, and the
//! drift process; [`generate`] expands it into a time-ordered
//! [`WorkloadEvent`] list. Generation is **deterministic**: the same
//! topology, node split, and config produce the same event list, byte for
//! byte — which is what lets the serving layer assert bit-identical
//! replay results at any thread count. Join events carry their
//! measurement rows (drifted RTTs to every landmark at the event's
//! epoch), so replaying never re-derives state from timing.
//!
//! Churn — hosts joining and leaving while queries are in flight and the
//! landmark model drifts — is the workload that stresses a serving
//! system's consistency story; the event mix here is weighted toward
//! queries with a configurable churn fraction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::drift::{DriftModel, DriftStream, EpochBatch};
use crate::event::EventQueue;
use crate::topology::TransitStubTopology;

/// One operation of a serving workload. Node ids live in a unified space:
/// `0 .. k` are the landmarks, `k + p` is pool host `p` (valid in queries
/// only while joined).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp {
    /// Estimate the distance from node `a` to node `b`.
    Query {
        /// Source node id.
        a: usize,
        /// Destination node id.
        b: usize,
    },
    /// Admit pool host `host` with the given measured distances to
    /// (`d_out`) and from (`d_in`) each landmark.
    Join {
        /// Pool host index (`0 .. pool_size`).
        host: usize,
        /// Measured distances to each landmark.
        d_out: Vec<f64>,
        /// Measured distances from each landmark.
        d_in: Vec<f64>,
    },
    /// Retire pool host `host` (previously joined).
    Leave {
        /// Pool host index (`0 .. pool_size`).
        host: usize,
    },
    /// One epoch of landmark drift (samples index landmark positions).
    Drift(EpochBatch),
}

/// A timestamped workload operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEvent {
    /// Event time (same axis as drift epochs).
    pub time: f64,
    /// The operation.
    pub op: WorkloadOp,
}

/// How client requests arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: requests arrive by a Poisson process at `rate` per time
    /// unit, regardless of completion (models external demand).
    Open {
        /// Mean arrivals per time unit.
        rate: f64,
    },
    /// Closed loop: `clients` virtual users each think for an
    /// exponentially distributed time between requests (models a bounded
    /// user population; the replay harness may additionally gate on
    /// completion).
    Closed {
        /// Number of virtual clients.
        clients: usize,
        /// Mean think time between one client's requests.
        think_time: f64,
    },
}

/// Workload shape: mix, arrivals, drift.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Seed for every random choice in the generator.
    pub seed: u64,
    /// Total client operations (queries + joins + leaves) to generate.
    pub requests: usize,
    /// Relative weight of query operations.
    pub query_weight: f64,
    /// Relative weight of join operations.
    pub join_weight: f64,
    /// Relative weight of leave operations.
    pub leave_weight: f64,
    /// Arrival process of client operations.
    pub arrivals: ArrivalProcess,
    /// Number of drift epochs spread over the workload horizon (0
    /// disables drift).
    pub drift_epochs: usize,
    /// Time units per drift epoch.
    pub epoch_step: f64,
    /// Maximum relative drift amplitude (0 disables; see
    /// [`DriftModel::new`]).
    pub drift_amplitude: f64,
    /// Epochs per full drift cycle.
    pub drift_period: f64,
    /// Relative-change emission threshold of the drift stream.
    pub drift_threshold: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 20041025,
            requests: 1000,
            query_weight: 0.90,
            join_weight: 0.06,
            leave_weight: 0.04,
            arrivals: ArrivalProcess::Open { rate: 100.0 },
            drift_epochs: 8,
            epoch_step: 1.0,
            drift_amplitude: 0.2,
            drift_period: 24.0,
            drift_threshold: 0.02,
        }
    }
}

/// A generated workload: the time-ordered events plus the node-space
/// bookkeeping a consumer needs to interpret them.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Time-ordered events.
    pub events: Vec<WorkloadEvent>,
    /// Number of landmarks (node ids below this are landmarks).
    pub landmark_count: usize,
    /// Number of pool hosts (node id `landmark_count + p` is pool host
    /// `p`).
    pub pool_size: usize,
}

/// Drifted measurement row of `host` against `landmarks` at `epoch`
/// (symmetric RTTs — the substrate's RTT is symmetric and drift preserves
/// that, so out- and in-rows coincide).
pub fn measurement_row(
    topo: &TransitStubTopology,
    drift: &DriftModel,
    host: usize,
    landmarks: &[usize],
    epoch: f64,
) -> Vec<f64> {
    landmarks
        .iter()
        .map(|&l| drift.rtt(topo, host, l, epoch))
        .collect()
}

/// Expands a [`WorkloadConfig`] into a deterministic, time-ordered event
/// list over `landmarks` (topology host ids; these define the landmark
/// model) and `pool` (topology host ids of the ordinary-host population).
///
/// Invariants the generator maintains while walking forward in time:
/// joins only admit currently-unjoined pool hosts, leaves only retire
/// joined ones, and queries only reference landmarks or joined hosts —
/// so a replayer can apply events in order without validity checks.
/// Infeasible picks (join with a full pool, leave with no hosts) fall
/// back to queries, keeping the event count exact.
pub fn generate(
    topo: &TransitStubTopology,
    landmarks: &[usize],
    pool: &[usize],
    config: &WorkloadConfig,
) -> Workload {
    assert!(!landmarks.is_empty(), "need at least one landmark");
    assert!(
        config.query_weight >= 0.0 && config.join_weight >= 0.0 && config.leave_weight >= 0.0,
        "weights must be nonnegative"
    );
    let total_w = config.query_weight + config.join_weight + config.leave_weight;
    assert!(total_w > 0.0, "at least one weight must be positive");

    let k = landmarks.len();
    let drift = DriftModel::new(config.drift_amplitude, config.drift_period, config.seed);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED_F00D);

    // Time-merge client arrivals and drift epochs through the event
    // queue (ties broken by insertion order: drift first, then clients —
    // an epoch at time t is visible to requests at the same timestamp).
    #[derive(Debug)]
    enum Raw {
        Client,
        Drift(EpochBatch),
    }
    let mut q: EventQueue<Raw> = EventQueue::new();
    if config.drift_epochs > 0 && config.drift_amplitude > 0.0 {
        let mut stream = DriftStream::new(
            topo,
            drift.clone(),
            landmarks.to_vec(),
            config.epoch_step,
            config.drift_threshold,
        );
        for _ in 0..config.drift_epochs {
            let batch = stream.next().expect("drift stream is infinite");
            q.schedule(batch.epoch, Raw::Drift(batch));
        }
    }
    match config.arrivals {
        ArrivalProcess::Open { rate } => {
            assert!(rate > 0.0, "open-loop rate must be positive");
            let mut t = 0.0;
            for _ in 0..config.requests {
                t += exp_sample(&mut rng, 1.0 / rate);
                q.schedule(t, Raw::Client);
            }
        }
        ArrivalProcess::Closed {
            clients,
            think_time,
        } => {
            assert!(clients > 0, "need at least one client");
            assert!(think_time > 0.0, "think time must be positive");
            // Round-robin the request budget over the client pool, each
            // client walking its own think-time clock.
            let mut clocks = vec![0.0f64; clients];
            for r in 0..config.requests {
                let c = r % clients;
                clocks[c] += exp_sample(&mut rng, think_time);
                q.schedule(clocks[c], Raw::Client);
            }
        }
    }

    // Walk the merged timeline, maintaining the joined set.
    let mut events = Vec::with_capacity(q.len());
    let mut joined: Vec<usize> = Vec::new(); // pool positions, insertion order
    let mut is_joined = vec![false; pool.len()];
    let mut epoch_now = 0.0f64;
    while let Some((time, raw)) = q.pop() {
        match raw {
            Raw::Drift(batch) => {
                epoch_now = batch.epoch;
                events.push(WorkloadEvent {
                    time,
                    op: WorkloadOp::Drift(batch),
                });
            }
            Raw::Client => {
                let r = rng.gen_range(0.0..total_w);
                // Infeasible picks (join with a full pool, leave with no
                // joined hosts) fall back to queries — never to the other
                // mutation, which would skew the configured churn mix.
                let wants_join = r < config.join_weight;
                let wants_leave = !wants_join && r < config.join_weight + config.leave_weight;
                let op = if wants_join && joined.len() < pool.len() {
                    // Join a deterministic unjoined pool host.
                    let free: Vec<usize> = (0..pool.len()).filter(|&p| !is_joined[p]).collect();
                    let p = free[rng.gen_range(0..free.len())];
                    is_joined[p] = true;
                    joined.push(p);
                    let row = measurement_row(topo, &drift, pool[p], landmarks, epoch_now);
                    WorkloadOp::Join {
                        host: p,
                        d_out: row.clone(),
                        d_in: row,
                    }
                } else if wants_leave && !joined.is_empty() {
                    let idx = rng.gen_range(0..joined.len());
                    let p = joined.swap_remove(idx);
                    is_joined[p] = false;
                    WorkloadOp::Leave { host: p }
                } else {
                    // Query two distinct nodes among landmarks + joined.
                    let n = k + joined.len();
                    let a = rng.gen_range(0..n);
                    let b = if n > 1 {
                        let mut b = rng.gen_range(0..n - 1);
                        if b >= a {
                            b += 1;
                        }
                        b
                    } else {
                        a
                    };
                    let to_node = |idx: usize| {
                        if idx < k {
                            idx
                        } else {
                            k + joined[idx - k]
                        }
                    };
                    WorkloadOp::Query {
                        a: to_node(a),
                        b: to_node(b),
                    }
                };
                events.push(WorkloadEvent { time, op });
            }
        }
    }
    Workload {
        events,
        landmark_count: k,
        pool_size: pool.len(),
    }
}

/// Exponential sample with the given mean (inverse-CDF on a uniform).
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0f64..1.0);
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TransitStubParams;

    fn topo() -> TransitStubTopology {
        let params = TransitStubParams {
            hosts: 30,
            stubs: 6,
            ..TransitStubParams::default()
        };
        TransitStubTopology::generate(&params, &mut StdRng::seed_from_u64(4))
    }

    fn split() -> (Vec<usize>, Vec<usize>) {
        ((0..10).collect(), (10..30).collect())
    }

    #[test]
    fn generation_is_deterministic() {
        let t = topo();
        let (lm, pool) = split();
        let cfg = WorkloadConfig {
            requests: 300,
            ..WorkloadConfig::default()
        };
        let w1 = generate(&t, &lm, &pool, &cfg);
        let w2 = generate(&t, &lm, &pool, &cfg);
        assert_eq!(w1.events, w2.events);
        assert!(w1.events.len() >= 300, "client ops + drift events");
        let w3 = generate(
            &t,
            &lm,
            &pool,
            &WorkloadConfig {
                seed: 99,
                requests: 300,
                ..WorkloadConfig::default()
            },
        );
        assert_ne!(w1.events, w3.events, "different seed, different stream");
    }

    #[test]
    fn events_are_time_ordered_and_valid() {
        let t = topo();
        let (lm, pool) = split();
        let cfg = WorkloadConfig {
            requests: 500,
            join_weight: 0.2,
            leave_weight: 0.15,
            query_weight: 0.65,
            ..WorkloadConfig::default()
        };
        let w = generate(&t, &lm, &pool, &cfg);
        let k = w.landmark_count;
        let mut prev = 0.0;
        let mut joined = vec![false; w.pool_size];
        let mut client_ops = 0usize;
        let mut drift_ops = 0usize;
        for e in &w.events {
            assert!(e.time >= prev, "events must be time-ordered");
            prev = e.time;
            match &e.op {
                WorkloadOp::Join { host, d_out, d_in } => {
                    client_ops += 1;
                    assert!(!joined[*host], "double join of pool host {host}");
                    joined[*host] = true;
                    assert_eq!(d_out.len(), k);
                    assert_eq!(d_in.len(), k);
                    assert!(d_out.iter().all(|v| v.is_finite() && *v >= 0.0));
                }
                WorkloadOp::Leave { host } => {
                    client_ops += 1;
                    assert!(joined[*host], "leave of unjoined pool host {host}");
                    joined[*host] = false;
                }
                WorkloadOp::Query { a, b } => {
                    client_ops += 1;
                    assert_ne!(a, b, "self-query");
                    for &n in &[*a, *b] {
                        if n >= k {
                            assert!(joined[n - k], "query references unjoined host {n}");
                        }
                    }
                }
                WorkloadOp::Drift(batch) => {
                    drift_ops += 1;
                    for s in &batch.samples {
                        assert!(s.i < s.j && s.j < k, "drift must stay on landmark pairs");
                    }
                }
            }
        }
        assert_eq!(client_ops, 500, "every request materializes");
        assert_eq!(drift_ops, cfg.drift_epochs);
    }

    #[test]
    fn infeasible_join_falls_back_to_query_not_leave() {
        // Tiny pool, nonzero join weight, ZERO leave weight: once the pool
        // is fully joined, further join picks must become queries — the
        // buggy fallthrough turned them into leaves, giving a workload
        // with leave_weight = 0 a nonzero effective leave rate.
        let t = topo();
        let lm: Vec<usize> = (0..10).collect();
        let pool: Vec<usize> = vec![10, 11];
        let cfg = WorkloadConfig {
            requests: 200,
            join_weight: 0.5,
            leave_weight: 0.0,
            query_weight: 0.5,
            ..WorkloadConfig::default()
        };
        let w = generate(&t, &lm, &pool, &cfg);
        let leaves = w
            .events
            .iter()
            .filter(|e| matches!(e.op, WorkloadOp::Leave { .. }))
            .count();
        assert_eq!(leaves, 0, "leave_weight 0 must mean zero leaves");
        let joins = w
            .events
            .iter()
            .filter(|e| matches!(e.op, WorkloadOp::Join { .. }))
            .count();
        assert_eq!(joins, 2, "the whole pool joins, then join picks fall back");
    }

    #[test]
    fn closed_loop_respects_client_count() {
        let t = topo();
        let (lm, pool) = split();
        let cfg = WorkloadConfig {
            requests: 120,
            arrivals: ArrivalProcess::Closed {
                clients: 4,
                think_time: 0.5,
            },
            drift_epochs: 0,
            ..WorkloadConfig::default()
        };
        let w = generate(&t, &lm, &pool, &cfg);
        assert_eq!(w.events.len(), 120);
        assert!(w
            .events
            .iter()
            .all(|e| !matches!(e.op, WorkloadOp::Drift(_))));
    }

    #[test]
    fn zero_drift_amplitude_emits_no_drift() {
        let t = topo();
        let (lm, pool) = split();
        let cfg = WorkloadConfig {
            requests: 50,
            drift_amplitude: 0.0,
            ..WorkloadConfig::default()
        };
        let w = generate(&t, &lm, &pool, &cfg);
        assert!(w
            .events
            .iter()
            .all(|e| !matches!(e.op, WorkloadOp::Drift(_))));
    }
}
