//! Cache-blocked, register-tiled GEMM drivers — the kernel layer every
//! matrix product in the workspace runs on.
//!
//! # Architecture
//!
//! The drivers follow the classic three-loop blocking scheme (Goto/BLIS):
//!
//! * the **k** dimension is split into panels of [`KC`] so one packed slice
//!   of each operand stays resident in L1/L2 across the inner loops,
//! * the **n** dimension is split into slabs of [`NC`] columns,
//! * the **m** dimension is split into bands of [`MC`] rows,
//! * inside a band, an [`MR`]`x`[`NR`] **micro-kernel** accumulates a
//!   register tile over the packed panels; the compiler auto-vectorizes the
//!   `NR`-wide updates, and the `MR`-way row reuse cuts B-panel bandwidth
//!   by `MR` compared to the seed's row-streaming `ikj` loop.
//!
//! Operands are **packed** into contiguous panels before the micro-kernel
//! runs, which is also how the transposed variants (`AᵀB`, `ABᵀ`) reuse the
//! same micro-kernel: transposition happens for free during packing. Packing
//! buffers live in thread-local storage and are reused across calls, so the
//! steady state performs **no heap allocation** — the property the
//! allocation-free NMF/ALS iteration loops in `ides-mf` build on.
//!
//! # Determinism
//!
//! For every output cell the contributions are accumulated in ascending-`k`
//! order within each `KC` panel, and panels are added in ascending order,
//! so results are **bit-identical across runs, block sizes permitting**,
//! and — because row bands are numerically independent — bit-identical with
//! the `parallel` feature on or off. For `k <= KC` the result is bitwise
//! equal to a textbook ascending-`k` dot product.
//!
//! # `parallel` feature
//!
//! With the (default-off) `parallel` cargo feature, products large enough
//! to amortize thread startup are split into row bands executed on std
//! scoped threads (one per available core, capped by band count). Each band
//! writes a disjoint slice of the output, so no synchronization is needed
//! and results do not change.

use std::cell::RefCell;

/// Micro-kernel tile rows (accumulator rows held in registers).
pub const MR: usize = 4;
/// Micro-kernel tile columns (one or two SIMD vectors of `f64`).
pub const NR: usize = 8;
/// Row-band blocking: rows of A packed per macro iteration.
pub const MC: usize = 128;
/// Depth blocking: the shared dimension is processed in panels of `KC`.
pub const KC: usize = 256;
/// Column-slab blocking: columns of B packed per macro iteration.
pub const NC: usize = 1024;

/// Reusable packing buffers (thread-local; see [`with_buffers`]).
#[derive(Default)]
struct Buffers {
    a_panel: Vec<f64>,
    b_panel: Vec<f64>,
}

thread_local! {
    static BUFFERS: RefCell<Buffers> = RefCell::new(Buffers::default());
}

/// How a packed operand is read out of its backing row-major storage.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the operand transposed.
    Trans,
}

/// Computes `out = op(A) * op(B)` into a preallocated row-major `out`.
///
/// * `a` is `m x k` after `a_op` is applied; its physical row stride is
///   `lda` (the stored matrix's column count). Likewise for `b`/`ldb`.
/// * `out` must have exactly `m * n` elements and is fully overwritten.
///
/// This is the single entry point behind `Matrix::{matmul, tr_matmul,
/// matmul_tr}` and their `_into` variants.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    a: &[f64],
    a_op: Op,
    lda: usize,
    b: &[f64],
    b_op: Op,
    ldb: usize,
    out: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    // Only products with substantial per-band work consider fanning out;
    // the size gate comes first so small products (the NMF/ALS inner-loop
    // common case) skip the env lookup entirely and stay allocation-free.
    #[cfg(feature = "parallel")]
    if m >= 2 * MC && m * n * k >= 1 << 23 {
        // `IDES_LINALG_THREADS` overrides the detected core count (useful
        // for pinning bench configurations and for testing the parallel
        // path on single-core machines).
        let threads = std::env::var("IDES_LINALG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|t| t.get())
                    .unwrap_or(1)
            });
        if threads > 1 {
            let bands = threads.min(m.div_ceil(MC));
            let rows_per_band = m.div_ceil(bands).div_ceil(MR) * MR;
            std::thread::scope(|scope| {
                let mut rest = out;
                let mut row0 = 0usize;
                while row0 < m {
                    let rows = rows_per_band.min(m - row0);
                    let (band, tail) = rest.split_at_mut(rows * n);
                    rest = tail;
                    let r0 = row0;
                    scope.spawn(move || {
                        let mut bufs = Buffers::default();
                        gemm_serial(a, a_op, lda, b, b_op, ldb, band, r0, rows, n, k, &mut bufs);
                    });
                    row0 += rows;
                }
            });
            return;
        }
    }

    BUFFERS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        gemm_serial(a, a_op, lda, b, b_op, ldb, out, 0, m, n, k, &mut bufs);
    });
}

/// Sequential blocked GEMM over the row band `[row0, row0 + rows)`.
/// `out_band` covers exactly those rows (row stride `n`).
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    a: &[f64],
    a_op: Op,
    lda: usize,
    b: &[f64],
    b_op: Op,
    ldb: usize,
    out_band: &mut [f64],
    row0: usize,
    rows: usize,
    n: usize,
    k: usize,
    bufs: &mut Buffers,
) {
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let nr_blocks = nc.div_ceil(NR);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, b_op, ldb, jc, nc, pc, kc, &mut bufs.b_panel);
            let mut ic = 0;
            while ic < rows {
                let mc = MC.min(rows - ic);
                let mr_blocks = mc.div_ceil(MR);
                pack_a(a, a_op, lda, row0 + ic, mc, pc, kc, &mut bufs.a_panel);
                for jr in 0..nr_blocks {
                    let b_tile = &bufs.b_panel[jr * kc * NR..(jr + 1) * kc * NR];
                    for ir in 0..mr_blocks {
                        let a_tile = &bufs.a_panel[ir * kc * MR..(ir + 1) * kc * MR];
                        let mut acc = [[0.0f64; NR]; MR];
                        micro_kernel(a_tile, b_tile, kc, &mut acc);
                        write_back(
                            out_band,
                            n,
                            ic + ir * MR,
                            MR.min(mc - ir * MR),
                            jc + jr * NR,
                            NR.min(nc - jr * NR),
                            &acc,
                        );
                    }
                }
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// The register-tiled inner product: `acc += A_tile * B_tile` over `kc`
/// steps. Panels are packed `MR`/`NR`-interleaved so every load is
/// contiguous; the `NR`-wide updates auto-vectorize.
#[inline(always)]
fn micro_kernel(a_tile: &[f64], b_tile: &[f64], kc: usize, acc: &mut [[f64; NR]; MR]) {
    let a_it = a_tile[..kc * MR].chunks_exact(MR);
    let b_it = b_tile[..kc * NR].chunks_exact(NR);
    for (a_frag, b_frag) in a_it.zip(b_it) {
        // Fixed-size views let the compiler drop every bounds check and
        // keep the whole tile in registers.
        let a_frag: &[f64; MR] = a_frag.try_into().expect("chunk size is MR");
        let b_frag: &[f64; NR] = b_frag.try_into().expect("chunk size is NR");
        for (row, &am) in acc.iter_mut().zip(a_frag.iter()) {
            for (c, &bv) in row.iter_mut().zip(b_frag.iter()) {
                *c += am * bv;
            }
        }
    }
}

/// Adds a micro tile into the output band, clipping padded rows/columns.
#[inline]
fn write_back(
    out_band: &mut [f64],
    n: usize,
    tile_row: usize,
    tile_rows: usize,
    col0: usize,
    cols: usize,
    acc: &[[f64; NR]; MR],
) {
    for (m, acc_row) in acc.iter().enumerate().take(tile_rows) {
        let row = tile_row + m;
        let dst = &mut out_band[row * n + col0..row * n + col0 + cols];
        for (d, &v) in dst.iter_mut().zip(acc_row.iter()) {
            *d += v;
        }
    }
}

/// Packs the `mc x kc` block of `op(A)` starting at `(ic, pc)` into
/// `MR`-interleaved panels: `panel[ir][kk * MR + m] = a(ic + ir*MR + m,
/// pc + kk)`, zero-padding ragged edges.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &[f64],
    op: Op,
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    panel: &mut Vec<f64>,
) {
    let mr_blocks = mc.div_ceil(MR);
    panel.clear();
    panel.resize(mr_blocks * kc * MR, 0.0);
    match op {
        Op::NoTrans => {
            // Contiguous reads along each source row, strided panel writes.
            for ir in 0..mr_blocks {
                let rows_here = MR.min(mc - ir * MR);
                let base = ir * kc * MR;
                for m in 0..rows_here {
                    let src = &a[(ic + ir * MR + m) * lda + pc..][..kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[base + kk * MR + m] = v;
                    }
                }
            }
        }
        Op::Trans => {
            // a(i, kk) lives at a[(pc + kk) * lda + i]: each k-step reads
            // MR contiguous source values.
            for ir in 0..mr_blocks {
                let rows_here = MR.min(mc - ir * MR);
                let base = ir * kc * MR;
                for kk in 0..kc {
                    let src = &a[(pc + kk) * lda + ic + ir * MR..][..rows_here];
                    panel[base + kk * MR..base + kk * MR + rows_here].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs the `kc x nc` block of `op(B)` starting at `(pc, jc)` into
/// `NR`-interleaved panels: `panel[jr][kk * NR + j] = b(pc + kk, jc +
/// jr*NR + j)`, zero-padding ragged edges.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[f64],
    op: Op,
    ldb: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    panel: &mut Vec<f64>,
) {
    let nr_blocks = nc.div_ceil(NR);
    panel.clear();
    panel.resize(nr_blocks * kc * NR, 0.0);
    match op {
        Op::NoTrans => {
            for jr in 0..nr_blocks {
                let cols_here = NR.min(nc - jr * NR);
                let base = jr * kc * NR;
                for kk in 0..kc {
                    let src = &b[(pc + kk) * ldb + jc + jr * NR..][..cols_here];
                    panel[base + kk * NR..base + kk * NR + cols_here].copy_from_slice(src);
                }
            }
        }
        Op::Trans => {
            // b(kk, j) lives at b[(jc + j) * ldb + pc + kk]: contiguous
            // reads along each source row, strided panel writes.
            for jr in 0..nr_blocks {
                let cols_here = NR.min(nc - jr * NR);
                let base = jr * kc * NR;
                for j in 0..cols_here {
                    let src = &b[(jc + jr * NR + j) * ldb + pc..][..kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[base + kk * NR + j] = v;
                    }
                }
            }
        }
    }
}

/// Lane-split dot product: four independent partial sums break the
/// floating-point dependency chain so the loop pipelines/vectorizes.
/// Deterministic: lane assignment depends only on index, and the remainder
/// is folded in source order.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 4;
    let mut lanes = [0.0f64; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    for (af, bf) in a_chunks.zip(b_chunks) {
        for ((l, &x), &y) in lanes.iter_mut().zip(af.iter()).zip(bf.iter()) {
            *l += x * y;
        }
    }
    let mut total = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (&x, &y) in a_rem.iter().zip(b_rem.iter()) {
        total += x * y;
    }
    total
}

/// `out[i] = dot(row_i(A), x)` for a row-major `m x k` matrix.
pub fn gemv(a: &[f64], x: &[f64], out: &mut [f64], m: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), k);
    debug_assert_eq!(out.len(), m);
    for (o, row) in out.iter_mut().zip(a.chunks_exact(k.max(1))) {
        *o = dot(row, x);
    }
    if k == 0 {
        out.fill(0.0);
    }
}

/// `out = Aᵀ v` for a row-major `m x k` matrix: an axpy per row, which
/// streams both the matrix row and the accumulator contiguously.
pub fn gemv_t(a: &[f64], v: &[f64], out: &mut [f64], m: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(v.len(), m);
    debug_assert_eq!(out.len(), k);
    out.fill(0.0);
    for (&vi, row) in v.iter().zip(a.chunks_exact(k.max(1))) {
        if vi == 0.0 {
            continue;
        }
        for (o, &x) in out.iter_mut().zip(row.iter()) {
            *o += vi * x;
        }
    }
}

/// Plain reference multiplies used by correctness tests and as benchmark
/// baselines. These are intentionally the "before" implementations.
pub mod reference {
    use crate::error::Result;
    use crate::matrix::Matrix;

    /// Textbook `ijk` triple loop: one dot product per output cell, with a
    /// strided walk down B's columns. The canonical naive baseline.
    pub fn matmul_ijk(a: &Matrix, b: &Matrix) -> Result<Matrix> {
        a.shape_check_matmul(b)?;
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        Ok(out)
    }

    /// The seed's `ikj` loop: accumulator rows stream contiguously, B rows
    /// stream contiguously, zero `a_ik` entries are skipped. This was
    /// `Matrix::matmul` before the blocked kernel layer landed and is kept
    /// as the honest speedup baseline for the kernels benchmark.
    pub fn matmul_ikj(a: &Matrix, b: &Matrix) -> Result<Matrix> {
        a.shape_check_matmul(b)?;
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for (kk, &aik) in a.row(i).iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = b.row(kk);
                let o_row = out.row_mut(i);
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * bv;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn det_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
        Matrix::from_fn(r, c, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
        })
    }

    #[test]
    fn blocked_matches_reference_across_blocking_edges() {
        // Shapes straddling every blocking boundary: micro tile edges,
        // KC/MC/NC boundaries, and far-from-round sizes.
        let shapes = [
            (1, 1, 1),
            (MR, NR, 3),
            (MR + 1, NR + 1, KC + 1),
            (MC + 3, 17, KC - 1),
            (5, NC.min(64) + 5, 9),
            (37, 41, 29),
        ];
        for &(m, n, k) in &shapes {
            let a = det_matrix(m, k, (m * 31 + k) as u64);
            let b = det_matrix(k, n, (k * 17 + n) as u64);
            let fast = a.matmul(&b).unwrap();
            let slow = reference::matmul_ijk(&a, &b).unwrap();
            let tol = 1e-12 * (1.0 + slow.max_abs());
            assert!(
                fast.approx_eq(&slow, tol),
                "({m},{n},{k}): max diff {}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn blocked_is_bitwise_ascending_k_for_small_depth() {
        // For k <= KC the blocked accumulation order equals a textbook
        // ascending-k dot product, so results must be bit-identical.
        let a = det_matrix(23, KC, 5);
        let b = det_matrix(KC, 19, 6);
        let fast = a.matmul(&b).unwrap();
        let slow = reference::matmul_ijk(&a, &b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = det_matrix(33, 21, 7);
        let b = det_matrix(33, 13, 8);
        let fast = a.tr_matmul(&b).unwrap();
        let slow = reference::matmul_ijk(&a.transpose(), &b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12 * (1.0 + slow.max_abs())));

        let a = det_matrix(19, 27, 9);
        let b = det_matrix(23, 27, 10);
        let fast = a.matmul_tr(&b).unwrap();
        let slow = reference::matmul_ijk(&a, &b.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12 * (1.0 + slow.max_abs())));
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(a.matmul(&b).unwrap().shape(), (0, 3));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    /// With the `parallel` feature, row-band fan-out must be bit-identical
    /// to the sequential path (bands are numerically independent).
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_is_bit_identical() {
        let m = 2 * MC + 7; // large enough to cross the fan-out threshold
        let a = det_matrix(m, 300, 21);
        let b = det_matrix(300, 150, 22);
        std::env::set_var("IDES_LINALG_THREADS", "4");
        let par = a.matmul(&b).unwrap();
        std::env::set_var("IDES_LINALG_THREADS", "1");
        let seq = a.matmul(&b).unwrap();
        std::env::remove_var("IDES_LINALG_THREADS");
        assert_eq!(par, seq);
    }

    #[test]
    fn dot_matches_sequential() {
        for len in [0usize, 1, 3, 4, 5, 17, 64, 100] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.21).cos()).collect();
            let seq: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
            assert!(
                (dot(&a, &b) - seq).abs() <= 1e-12 * (1.0 + seq.abs()),
                "len {len}"
            );
        }
    }

    #[test]
    fn gemv_matches_matmul_with_vector() {
        let a = det_matrix(13, 7, 11);
        let x: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let via_matmul = reference::matmul_ijk(&a, &Matrix::col_vector(&x)).unwrap();
        let direct = a.matvec(&x).unwrap();
        for i in 0..13 {
            assert!((direct[i] - via_matmul[(i, 0)]).abs() < 1e-12);
        }
        let v: Vec<f64> = (0..13).map(|i| (i as f64 * 0.5).sin()).collect();
        let via_matmul = reference::matmul_ijk(&a.transpose(), &Matrix::col_vector(&v)).unwrap();
        let direct = a.tr_matvec(&v).unwrap();
        for j in 0..7 {
            assert!((direct[j] - via_matmul[(j, 0)]).abs() < 1e-12);
        }
    }
}
