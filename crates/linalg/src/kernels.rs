//! Cache-blocked, register-tiled GEMM drivers — the kernel layer every
//! matrix product in the workspace runs on.
//!
//! # Architecture
//!
//! The drivers follow the classic three-loop blocking scheme (Goto/BLIS):
//!
//! * the **k** dimension is split into panels of [`KC`] so one packed slice
//!   of each operand stays resident in L1/L2 across the inner loops,
//! * the **n** dimension is split into slabs of [`NC`] columns,
//! * the **m** dimension is split into bands of [`MC`] rows,
//! * inside a band, an [`MR`]`x`[`NR`] **micro-kernel** accumulates a
//!   register tile over the packed panels with fused multiply-adds; the
//!   `MR`-way row reuse cuts B-panel bandwidth by `MR` compared to the
//!   seed's row-streaming `ikj` loop.
//!
//! Operands are **packed** into contiguous panels before the micro-kernel
//! runs, which is also how the transposed variants (`AᵀB`, `ABᵀ`) reuse the
//! same micro-kernel: transposition happens for free during packing. Packing
//! buffers live in thread-local storage and are reused across calls, so the
//! steady state performs **no heap allocation** — the property the
//! allocation-free NMF/ALS iteration loops in `ides-mf` build on.
//!
//! # Micro-kernel back ends and runtime dispatch
//!
//! The micro-kernel and the vector primitives ([`dot`], [`axpy`], [`gemv`],
//! [`gemv_t`]) have three interchangeable back ends, one per [`Isa`]:
//!
//! | detected ISA            | kernel                                        |
//! |-------------------------|-----------------------------------------------|
//! | AVX-512F                | 8×8 tile, one `zmm` accumulator per row       |
//! | AVX2 + FMA              | 8×8 tile as two 4-row halves, `ymm` pairs     |
//! | anything else           | portable scalar tile built on `f64::mul_add`  |
//!
//! The back end is chosen **once per process** (`std::sync::OnceLock`) by
//! `is_x86_feature_detected!`, so binaries built with the (default-on)
//! `simd` cargo feature run correctly on any x86-64 host — no reliance on
//! compile-time `target-cpu` flags. Setting `IDES_LINALG_KERNEL` to
//! `scalar`, `avx2`, or `avx512` forces a back end (requests the CPU cannot
//! honor fall back to auto-detection); building with
//! `--no-default-features` compiles the intrinsics out entirely. On
//! non-x86-64 targets the scalar tile is always used, and `f64::mul_add`
//! lowers to the native FMA instruction wherever one exists.
//!
//! # Determinism
//!
//! For every output cell the contributions are accumulated in ascending-`k`
//! order within each `KC` panel, and panels are added in ascending order,
//! so results are **bit-identical across runs, block sizes permitting**,
//! and — because row bands are numerically independent — bit-identical with
//! the `parallel` feature on or off. Every back end performs the *same*
//! exactly-rounded fused multiply-add per element in the *same* order
//! (`f64::mul_add` ≡ `vfmadd`), so results are also **bit-identical across
//! ISAs**: scalar, AVX2, and AVX-512 kernels agree bitwise, which keeps
//! every factorization built on this layer independent of the host CPU.
//! For `k <= KC` the result is bitwise equal to a textbook ascending-`k`
//! fused dot product ([`reference::matmul_fused`]).
//!
//! # `parallel` feature
//!
//! With the (default-off) `parallel` cargo feature, products large enough
//! to amortize thread startup are split into row bands executed on std
//! scoped threads (one per available core, capped by band count). Each band
//! writes a disjoint slice of the output, so no synchronization is needed
//! and results do not change: all threads use the one process-wide ISA.

use std::cell::RefCell;
use std::sync::OnceLock;

/// Micro-kernel tile rows (accumulator rows held in registers).
pub const MR: usize = 8;
/// Micro-kernel tile columns (one `zmm` / two `ymm` vectors of `f64`).
pub const NR: usize = 8;
/// Row-band blocking: rows of A packed per macro iteration.
pub const MC: usize = 128;
/// Depth blocking: the shared dimension is processed in panels of `KC`.
pub const KC: usize = 256;
/// Column-slab blocking: columns of B packed per macro iteration.
pub const NC: usize = 1024;

/// Reusable packing buffers (thread-local; see [`with_buffers`]).
#[derive(Default)]
struct Buffers {
    a_panel: Vec<f64>,
    b_panel: Vec<f64>,
}

thread_local! {
    static BUFFERS: RefCell<Buffers> = RefCell::new(Buffers::default());
}

/// A micro-kernel / vector-primitive back end. All variants produce
/// bit-identical results; they differ only in speed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Isa {
    /// Portable fused tile built on `f64::mul_add` — the universal
    /// fallback, and the only back end compiled without the `simd` feature.
    Scalar,
    /// 256-bit AVX2+FMA kernels (x86-64 with the `simd` feature).
    Avx2Fma,
    /// 512-bit AVX-512F kernels (x86-64 with the `simd` feature).
    Avx512,
}

static ACTIVE_ISA: OnceLock<Isa> = OnceLock::new();

/// The back end every kernel entry point dispatches to, chosen once per
/// process: the `IDES_LINALG_KERNEL` env var (`scalar` / `avx2` /
/// `avx512`) if set and supported, otherwise the widest ISA the CPU
/// reports. Without the `simd` feature this is always [`Isa::Scalar`].
pub fn active_isa() -> Isa {
    *ACTIVE_ISA.get_or_init(|| {
        let forced = std::env::var("IDES_LINALG_KERNEL").ok();
        select_isa(forced.as_deref())
    })
}

/// Resolves a forced-kernel request against what the CPU supports.
fn select_isa(forced: Option<&str>) -> Isa {
    let isas = available_isas();
    match forced {
        Some("scalar") => Isa::Scalar,
        Some("avx2") if isas.contains(&Isa::Avx2Fma) => Isa::Avx2Fma,
        Some("avx512") if isas.contains(&Isa::Avx512) => Isa::Avx512,
        // Unknown or unsupported requests fall back to auto-detection.
        _ => *isas.last().expect("Scalar is always available"),
    }
}

/// Every back end this build + CPU can run, narrowest first (so the last
/// element is the auto-detected choice). Used by the bitwise-identity test
/// suite to exercise each compiled kernel regardless of dispatch.
pub fn available_isas() -> Vec<Isa> {
    #[allow(unused_mut)]
    let mut isas = vec![Isa::Scalar];
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            isas.push(Isa::Avx2Fma);
        }
        if is_x86_feature_detected!("avx512f") {
            isas.push(Isa::Avx512);
        }
    }
    isas
}

/// How a packed operand is read out of its backing row-major storage.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the operand transposed.
    Trans,
}

/// Computes `out = op(A) * op(B)` into a preallocated row-major `out`.
///
/// * `a` is `m x k` after `a_op` is applied; its physical row stride is
///   `lda` (the stored matrix's column count). Likewise for `b`/`ldb`.
/// * `out` must have exactly `m * n` elements and is fully overwritten.
///
/// This is the single entry point behind `Matrix::{matmul, tr_matmul,
/// matmul_tr}` and their `_into` variants.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    a: &[f64],
    a_op: Op,
    lda: usize,
    b: &[f64],
    b_op: Op,
    ldb: usize,
    out: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let isa = active_isa();

    // Only products with substantial per-band work consider fanning out;
    // the size gate comes first so small products (the NMF/ALS inner-loop
    // common case) skip the env lookup entirely and stay allocation-free.
    #[cfg(feature = "parallel")]
    if m >= 2 * MC && m * n * k >= 1 << 23 {
        // `IDES_LINALG_THREADS` overrides the detected core count (useful
        // for pinning bench configurations and for testing the parallel
        // path on single-core machines).
        let threads = std::env::var("IDES_LINALG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|t| t.get())
                    .unwrap_or(1)
            });
        if threads > 1 {
            let bands = threads.min(m.div_ceil(MC));
            let rows_per_band = m.div_ceil(bands).div_ceil(MR) * MR;
            std::thread::scope(|scope| {
                let mut rest = out;
                let mut row0 = 0usize;
                while row0 < m {
                    let rows = rows_per_band.min(m - row0);
                    let (band, tail) = rest.split_at_mut(rows * n);
                    rest = tail;
                    let r0 = row0;
                    scope.spawn(move || {
                        let mut bufs = Buffers::default();
                        gemm_serial(
                            isa, a, a_op, lda, b, b_op, ldb, band, r0, rows, n, k, &mut bufs,
                        );
                    });
                    row0 += rows;
                }
            });
            return;
        }
    }

    BUFFERS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        gemm_serial(isa, a, a_op, lda, b, b_op, ldb, out, 0, m, n, k, &mut bufs);
    });
}

/// [`gemm`] pinned to one back end, always sequential. This is the hook
/// the bitwise-identity tests and the `blocked_scalar` benchmark use to
/// compare kernels on the same host without re-dispatching.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_isa(
    isa: Isa,
    a: &[f64],
    a_op: Op,
    lda: usize,
    b: &[f64],
    b_op: Op,
    ldb: usize,
    out: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    BUFFERS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        gemm_serial(isa, a, a_op, lda, b, b_op, ldb, out, 0, m, n, k, &mut bufs);
    });
}

/// Sequential blocked GEMM over the row band `[row0, row0 + rows)`.
/// `out_band` covers exactly those rows (row stride `n`).
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    isa: Isa,
    a: &[f64],
    a_op: Op,
    lda: usize,
    b: &[f64],
    b_op: Op,
    ldb: usize,
    out_band: &mut [f64],
    row0: usize,
    rows: usize,
    n: usize,
    k: usize,
    bufs: &mut Buffers,
) {
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let nr_blocks = nc.div_ceil(NR);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, b_op, ldb, jc, nc, pc, kc, &mut bufs.b_panel);
            let mut ic = 0;
            while ic < rows {
                let mc = MC.min(rows - ic);
                let mr_blocks = mc.div_ceil(MR);
                pack_a(a, a_op, lda, row0 + ic, mc, pc, kc, &mut bufs.a_panel);
                for jr in 0..nr_blocks {
                    let b_tile = &bufs.b_panel[jr * kc * NR..(jr + 1) * kc * NR];
                    for ir in 0..mr_blocks {
                        let a_tile = &bufs.a_panel[ir * kc * MR..(ir + 1) * kc * MR];
                        let mut acc = [[0.0f64; NR]; MR];
                        micro_kernel(isa, a_tile, b_tile, kc, &mut acc);
                        write_back(
                            out_band,
                            n,
                            ic + ir * MR,
                            MR.min(mc - ir * MR),
                            jc + jr * NR,
                            NR.min(nc - jr * NR),
                            &acc,
                        );
                    }
                }
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Dispatches one register tile to the selected back end.
#[inline(always)]
fn micro_kernel(isa: Isa, a_tile: &[f64], b_tile: &[f64], kc: usize, acc: &mut [[f64; NR]; MR]) {
    match isa {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `isa` only holds these variants when `available_isas`
        // (i.e. `is_x86_feature_detected!`) reported the feature.
        #[allow(unsafe_code)]
        Isa::Avx2Fma => unsafe { x86::micro_kernel_avx2(a_tile, b_tile, kc, acc) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        #[allow(unsafe_code)]
        Isa::Avx512 => unsafe { x86::micro_kernel_avx512(a_tile, b_tile, kc, acc) },
        _ => micro_kernel_scalar(a_tile, b_tile, kc, acc),
    }
}

/// The portable register-tiled inner product: `acc += A_tile * B_tile`
/// over `kc` steps via `f64::mul_add`. Panels are packed `MR`/`NR`-
/// interleaved so every load is contiguous. Because `mul_add` is the
/// exactly-rounded fused operation, this tile is bit-identical to the
/// AVX2/AVX-512 kernels (same per-element operation, same order).
#[inline(always)]
fn micro_kernel_scalar(a_tile: &[f64], b_tile: &[f64], kc: usize, acc: &mut [[f64; NR]; MR]) {
    let a_it = a_tile[..kc * MR].chunks_exact(MR);
    let b_it = b_tile[..kc * NR].chunks_exact(NR);
    for (a_frag, b_frag) in a_it.zip(b_it) {
        // Fixed-size views let the compiler drop every bounds check and
        // keep the whole tile in registers.
        let a_frag: &[f64; MR] = a_frag.try_into().expect("chunk size is MR");
        let b_frag: &[f64; NR] = b_frag.try_into().expect("chunk size is NR");
        for (row, &am) in acc.iter_mut().zip(a_frag.iter()) {
            for (c, &bv) in row.iter_mut().zip(b_frag.iter()) {
                *c = am.mul_add(bv, *c);
            }
        }
    }
}

/// AVX2+FMA / AVX-512F intrinsics back ends. The only `unsafe` in the
/// crate lives here; every function requires its ISA at runtime (upheld by
/// dispatching through [`active_isa`] / [`available_isas`]) and computes
/// exactly the same fused operations in the same order as the scalar
/// fallbacks, so results are bitwise interchangeable.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod x86 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// 8×8 AVX-512 micro-kernel: one `zmm` accumulator per tile row — 8
    /// independent FMA chains, enough to hide FMA latency on 2-port cores.
    ///
    /// # Safety
    /// Requires AVX-512F at runtime.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn micro_kernel_avx512(
        a_tile: &[f64],
        b_tile: &[f64],
        kc: usize,
        acc: &mut [[f64; NR]; MR],
    ) {
        debug_assert!(a_tile.len() >= kc * MR && b_tile.len() >= kc * NR);
        let mut c0 = _mm512_loadu_pd(acc[0].as_ptr());
        let mut c1 = _mm512_loadu_pd(acc[1].as_ptr());
        let mut c2 = _mm512_loadu_pd(acc[2].as_ptr());
        let mut c3 = _mm512_loadu_pd(acc[3].as_ptr());
        let mut c4 = _mm512_loadu_pd(acc[4].as_ptr());
        let mut c5 = _mm512_loadu_pd(acc[5].as_ptr());
        let mut c6 = _mm512_loadu_pd(acc[6].as_ptr());
        let mut c7 = _mm512_loadu_pd(acc[7].as_ptr());
        let mut ap = a_tile.as_ptr();
        let mut bp = b_tile.as_ptr();
        for _ in 0..kc {
            let bv = _mm512_loadu_pd(bp);
            c0 = _mm512_fmadd_pd(_mm512_set1_pd(*ap), bv, c0);
            c1 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(1)), bv, c1);
            c2 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(2)), bv, c2);
            c3 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(3)), bv, c3);
            c4 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(4)), bv, c4);
            c5 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(5)), bv, c5);
            c6 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(6)), bv, c6);
            c7 = _mm512_fmadd_pd(_mm512_set1_pd(*ap.add(7)), bv, c7);
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        _mm512_storeu_pd(acc[0].as_mut_ptr(), c0);
        _mm512_storeu_pd(acc[1].as_mut_ptr(), c1);
        _mm512_storeu_pd(acc[2].as_mut_ptr(), c2);
        _mm512_storeu_pd(acc[3].as_mut_ptr(), c3);
        _mm512_storeu_pd(acc[4].as_mut_ptr(), c4);
        _mm512_storeu_pd(acc[5].as_mut_ptr(), c5);
        _mm512_storeu_pd(acc[6].as_mut_ptr(), c6);
        _mm512_storeu_pd(acc[7].as_mut_ptr(), c7);
    }

    /// 8×8 AVX2+FMA micro-kernel, processed as two sequential 4-row
    /// halves (4 rows × 2 `ymm` accumulators fit the 16-register file;
    /// the B tile is L1-resident so the second pass re-reads it cheaply).
    /// Per-element accumulation order is unchanged: each output element
    /// still sees its `k` contributions in ascending order.
    ///
    /// # Safety
    /// Requires AVX2 and FMA at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_kernel_avx2(
        a_tile: &[f64],
        b_tile: &[f64],
        kc: usize,
        acc: &mut [[f64; NR]; MR],
    ) {
        debug_assert!(a_tile.len() >= kc * MR && b_tile.len() >= kc * NR);
        for half in 0..2 {
            let r0 = half * 4;
            let mut c0l = _mm256_loadu_pd(acc[r0].as_ptr());
            let mut c0h = _mm256_loadu_pd(acc[r0].as_ptr().add(4));
            let mut c1l = _mm256_loadu_pd(acc[r0 + 1].as_ptr());
            let mut c1h = _mm256_loadu_pd(acc[r0 + 1].as_ptr().add(4));
            let mut c2l = _mm256_loadu_pd(acc[r0 + 2].as_ptr());
            let mut c2h = _mm256_loadu_pd(acc[r0 + 2].as_ptr().add(4));
            let mut c3l = _mm256_loadu_pd(acc[r0 + 3].as_ptr());
            let mut c3h = _mm256_loadu_pd(acc[r0 + 3].as_ptr().add(4));
            let mut ap = a_tile.as_ptr().add(r0);
            let mut bp = b_tile.as_ptr();
            for _ in 0..kc {
                let b_lo = _mm256_loadu_pd(bp);
                let b_hi = _mm256_loadu_pd(bp.add(4));
                let a0 = _mm256_set1_pd(*ap);
                c0l = _mm256_fmadd_pd(a0, b_lo, c0l);
                c0h = _mm256_fmadd_pd(a0, b_hi, c0h);
                let a1 = _mm256_set1_pd(*ap.add(1));
                c1l = _mm256_fmadd_pd(a1, b_lo, c1l);
                c1h = _mm256_fmadd_pd(a1, b_hi, c1h);
                let a2 = _mm256_set1_pd(*ap.add(2));
                c2l = _mm256_fmadd_pd(a2, b_lo, c2l);
                c2h = _mm256_fmadd_pd(a2, b_hi, c2h);
                let a3 = _mm256_set1_pd(*ap.add(3));
                c3l = _mm256_fmadd_pd(a3, b_lo, c3l);
                c3h = _mm256_fmadd_pd(a3, b_hi, c3h);
                ap = ap.add(MR);
                bp = bp.add(NR);
            }
            _mm256_storeu_pd(acc[r0].as_mut_ptr(), c0l);
            _mm256_storeu_pd(acc[r0].as_mut_ptr().add(4), c0h);
            _mm256_storeu_pd(acc[r0 + 1].as_mut_ptr(), c1l);
            _mm256_storeu_pd(acc[r0 + 1].as_mut_ptr().add(4), c1h);
            _mm256_storeu_pd(acc[r0 + 2].as_mut_ptr(), c2l);
            _mm256_storeu_pd(acc[r0 + 2].as_mut_ptr().add(4), c2h);
            _mm256_storeu_pd(acc[r0 + 3].as_mut_ptr(), c3l);
            _mm256_storeu_pd(acc[r0 + 3].as_mut_ptr().add(4), c3h);
        }
    }

    /// AVX-512 [`super::dot`]: lane `i mod 8` partial sums, then the same
    /// fixed reduction tree as the scalar path.
    ///
    /// # Safety
    /// Requires AVX-512F at runtime.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot_avx512(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let mut acc = _mm512_setzero_pd();
        let mut ap = a.as_ptr();
        let mut bp = b.as_ptr();
        for _ in 0..chunks {
            acc = _mm512_fmadd_pd(_mm512_loadu_pd(ap), _mm512_loadu_pd(bp), acc);
            ap = ap.add(8);
            bp = bp.add(8);
        }
        // (l0+l4, l1+l5, l2+l6, l3+l7) — identical tree to `dot_scalar`.
        let s = _mm256_add_pd(
            _mm512_castpd512_pd256(acc),
            _mm512_extractf64x4_pd::<1>(acc),
        );
        let t = _mm_add_pd(_mm256_castpd256_pd128(s), _mm256_extractf128_pd::<1>(s));
        let mut total = _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
        for i in chunks * 8..n {
            total = a[i].mul_add(b[i], total);
        }
        total
    }

    /// AVX2+FMA [`super::dot`]: two `ymm` accumulators hold lanes `0..4`
    /// and `4..8`, reduced through the same tree as the scalar path.
    ///
    /// # Safety
    /// Requires AVX2 and FMA at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let mut ap = a.as_ptr();
        let mut bp = b.as_ptr();
        for _ in 0..chunks {
            acc_lo = _mm256_fmadd_pd(_mm256_loadu_pd(ap), _mm256_loadu_pd(bp), acc_lo);
            acc_hi = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(4)),
                _mm256_loadu_pd(bp.add(4)),
                acc_hi,
            );
            ap = ap.add(8);
            bp = bp.add(8);
        }
        let s = _mm256_add_pd(acc_lo, acc_hi);
        let t = _mm_add_pd(_mm256_castpd256_pd128(s), _mm256_extractf128_pd::<1>(s));
        let mut total = _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
        for i in chunks * 8..n {
            total = a[i].mul_add(b[i], total);
        }
        total
    }

    /// AVX-512 [`super::axpy`]: elementwise fused `y[i] += alpha * x[i]`.
    ///
    /// # Safety
    /// Requires AVX-512F at runtime.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy_avx512(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let chunks = n / 8;
        let av = _mm512_set1_pd(alpha);
        let mut xp = x.as_ptr();
        let mut yp = y.as_mut_ptr();
        for _ in 0..chunks {
            _mm512_storeu_pd(
                yp,
                _mm512_fmadd_pd(av, _mm512_loadu_pd(xp), _mm512_loadu_pd(yp)),
            );
            xp = xp.add(8);
            yp = yp.add(8);
        }
        for i in chunks * 8..n {
            y[i] = alpha.mul_add(x[i], y[i]);
        }
    }

    /// AVX2+FMA [`super::axpy`].
    ///
    /// # Safety
    /// Requires AVX2 and FMA at runtime.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let chunks = n / 4;
        let av = _mm256_set1_pd(alpha);
        let mut xp = x.as_ptr();
        let mut yp = y.as_mut_ptr();
        for _ in 0..chunks {
            _mm256_storeu_pd(
                yp,
                _mm256_fmadd_pd(av, _mm256_loadu_pd(xp), _mm256_loadu_pd(yp)),
            );
            xp = xp.add(4);
            yp = yp.add(4);
        }
        for i in chunks * 4..n {
            y[i] = alpha.mul_add(x[i], y[i]);
        }
    }
}

/// Adds a micro tile into the output band, clipping padded rows/columns.
#[inline]
fn write_back(
    out_band: &mut [f64],
    n: usize,
    tile_row: usize,
    tile_rows: usize,
    col0: usize,
    cols: usize,
    acc: &[[f64; NR]; MR],
) {
    for (m, acc_row) in acc.iter().enumerate().take(tile_rows) {
        let row = tile_row + m;
        let dst = &mut out_band[row * n + col0..row * n + col0 + cols];
        for (d, &v) in dst.iter_mut().zip(acc_row.iter()) {
            *d += v;
        }
    }
}

/// Packs the `mc x kc` block of `op(A)` starting at `(ic, pc)` into
/// `MR`-interleaved panels: `panel[ir][kk * MR + m] = a(ic + ir*MR + m,
/// pc + kk)`, zero-padding ragged edges.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &[f64],
    op: Op,
    lda: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    panel: &mut Vec<f64>,
) {
    let mr_blocks = mc.div_ceil(MR);
    panel.clear();
    panel.resize(mr_blocks * kc * MR, 0.0);
    match op {
        Op::NoTrans => {
            // Contiguous reads along each source row, strided panel writes.
            for ir in 0..mr_blocks {
                let rows_here = MR.min(mc - ir * MR);
                let base = ir * kc * MR;
                for m in 0..rows_here {
                    let src = &a[(ic + ir * MR + m) * lda + pc..][..kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[base + kk * MR + m] = v;
                    }
                }
            }
        }
        Op::Trans => {
            // a(i, kk) lives at a[(pc + kk) * lda + i]: each k-step reads
            // MR contiguous source values.
            for ir in 0..mr_blocks {
                let rows_here = MR.min(mc - ir * MR);
                let base = ir * kc * MR;
                for kk in 0..kc {
                    let src = &a[(pc + kk) * lda + ic + ir * MR..][..rows_here];
                    panel[base + kk * MR..base + kk * MR + rows_here].copy_from_slice(src);
                }
            }
        }
    }
}

/// Packs the `kc x nc` block of `op(B)` starting at `(pc, jc)` into
/// `NR`-interleaved panels: `panel[jr][kk * NR + j] = b(pc + kk, jc +
/// jr*NR + j)`, zero-padding ragged edges.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b: &[f64],
    op: Op,
    ldb: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    panel: &mut Vec<f64>,
) {
    let nr_blocks = nc.div_ceil(NR);
    panel.clear();
    panel.resize(nr_blocks * kc * NR, 0.0);
    match op {
        Op::NoTrans => {
            for jr in 0..nr_blocks {
                let cols_here = NR.min(nc - jr * NR);
                let base = jr * kc * NR;
                for kk in 0..kc {
                    let src = &b[(pc + kk) * ldb + jc + jr * NR..][..cols_here];
                    panel[base + kk * NR..base + kk * NR + cols_here].copy_from_slice(src);
                }
            }
        }
        Op::Trans => {
            // b(kk, j) lives at b[(jc + j) * ldb + pc + kk]: contiguous
            // reads along each source row, strided panel writes.
            for jr in 0..nr_blocks {
                let cols_here = NR.min(nc - jr * NR);
                let base = jr * kc * NR;
                for j in 0..cols_here {
                    let src = &b[(jc + jr * NR + j) * ldb + pc..][..kc];
                    for (kk, &v) in src.iter().enumerate() {
                        panel[base + kk * NR + j] = v;
                    }
                }
            }
        }
    }
}

/// Fused lane-split dot product: eight independent partial sums (lane =
/// index mod 8) break the FMA dependency chain, reduced through a fixed
/// tree `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` with the remainder folded
/// in source order. Every back end computes this exact sequence of fused
/// operations, so the result is bit-identical across ISAs and runs.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_with_isa(active_isa(), a, b)
}

/// [`dot`] pinned to one back end (test/bench hook; same bits regardless).
pub fn dot_with_isa(isa: Isa, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match isa {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `isa` only holds these variants when the CPU reported
        // the feature (see `available_isas`).
        #[allow(unsafe_code)]
        Isa::Avx2Fma => unsafe { x86::dot_avx2(a, b) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        #[allow(unsafe_code)]
        Isa::Avx512 => unsafe { x86::dot_avx512(a, b) },
        _ => dot_scalar(a, b),
    }
}

/// Portable fused dot with the fixed 8-lane structure (see [`dot`]).
#[inline]
fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    const LANES: usize = 8;
    let mut lanes = [0.0f64; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    for (af, bf) in a_chunks.zip(b_chunks) {
        for ((l, &x), &y) in lanes.iter_mut().zip(af.iter()).zip(bf.iter()) {
            *l = x.mul_add(y, *l);
        }
    }
    let s0 = lanes[0] + lanes[4];
    let s1 = lanes[1] + lanes[5];
    let s2 = lanes[2] + lanes[6];
    let s3 = lanes[3] + lanes[7];
    let mut total = (s0 + s2) + (s1 + s3);
    for (&x, &y) in a_rem.iter().zip(b_rem.iter()) {
        total = x.mul_add(y, total);
    }
    total
}

/// Fused `y[i] += alpha * x[i]` over the common length. Elementwise, so
/// bit-identical across back ends by construction.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_with_isa(active_isa(), alpha, x, y)
}

/// [`axpy`] pinned to one back end (test/bench hook; same bits regardless).
pub fn axpy_with_isa(isa: Isa, alpha: f64, x: &[f64], y: &mut [f64]) {
    match isa {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `isa` only holds these variants when the CPU reported
        // the feature (see `available_isas`).
        #[allow(unsafe_code)]
        Isa::Avx2Fma => unsafe { x86::axpy_avx2(alpha, x, y) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        #[allow(unsafe_code)]
        Isa::Avx512 => unsafe { x86::axpy_avx512(alpha, x, y) },
        _ => {
            for (yv, &xv) in y.iter_mut().zip(x.iter()) {
                *yv = alpha.mul_add(xv, *yv);
            }
        }
    }
}

/// `out[i] = dot(row_i(A), x)` for a row-major `m x k` matrix, on the
/// fused SIMD dot path.
pub fn gemv(a: &[f64], x: &[f64], out: &mut [f64], m: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), k);
    debug_assert_eq!(out.len(), m);
    let isa = active_isa();
    for (o, row) in out.iter_mut().zip(a.chunks_exact(k.max(1))) {
        *o = dot_with_isa(isa, row, x);
    }
    if k == 0 {
        out.fill(0.0);
    }
}

/// `out = Aᵀ v` for a row-major `m x k` matrix: a fused axpy per row,
/// which streams both the matrix row and the accumulator contiguously.
pub fn gemv_t(a: &[f64], v: &[f64], out: &mut [f64], m: usize, k: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(v.len(), m);
    debug_assert_eq!(out.len(), k);
    out.fill(0.0);
    let isa = active_isa();
    for (&vi, row) in v.iter().zip(a.chunks_exact(k.max(1))) {
        if vi == 0.0 {
            continue;
        }
        axpy_with_isa(isa, vi, row, out);
    }
}

/// Plain reference multiplies used by correctness tests and as benchmark
/// baselines. These are intentionally the "before" implementations —
/// except [`reference::matmul_fused`], the bitwise oracle for the fused
/// kernels.
pub mod reference {
    use crate::error::Result;
    use crate::matrix::Matrix;

    /// Textbook `ijk` triple loop: one dot product per output cell, with a
    /// strided walk down B's columns. The canonical naive baseline.
    pub fn matmul_ijk(a: &Matrix, b: &Matrix) -> Result<Matrix> {
        a.shape_check_matmul(b)?;
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        Ok(out)
    }

    /// Textbook triple loop with a **fused** ascending-`k` accumulation
    /// (`f64::mul_add` per contribution). This is the bitwise oracle for
    /// the blocked kernels: for `k <= KC` every kernel back end must
    /// reproduce it exactly, not just approximately.
    pub fn matmul_fused(a: &Matrix, b: &Matrix) -> Result<Matrix> {
        a.shape_check_matmul(b)?;
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc = a[(i, p)].mul_add(b[(p, j)], acc);
                }
                out[(i, j)] = acc;
            }
        }
        Ok(out)
    }

    /// The seed's `ikj` loop: accumulator rows stream contiguously, B rows
    /// stream contiguously, zero `a_ik` entries are skipped. This was
    /// `Matrix::matmul` before the blocked kernel layer landed and is kept
    /// as the honest speedup baseline for the kernels benchmark.
    pub fn matmul_ikj(a: &Matrix, b: &Matrix) -> Result<Matrix> {
        a.shape_check_matmul(b)?;
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for (kk, &aik) in a.row(i).iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = b.row(kk);
                let o_row = out.row_mut(i);
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * bv;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn det_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
        Matrix::from_fn(r, c, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
        })
    }

    #[test]
    fn blocked_matches_reference_across_blocking_edges() {
        // Shapes straddling every blocking boundary: micro tile edges,
        // KC/MC/NC boundaries, and far-from-round sizes.
        let shapes = [
            (1, 1, 1),
            (MR, NR, 3),
            (MR + 1, NR + 1, KC + 1),
            (MC + 3, 17, KC - 1),
            (5, NC.min(64) + 5, 9),
            (37, 41, 29),
        ];
        for &(m, n, k) in &shapes {
            let a = det_matrix(m, k, (m * 31 + k) as u64);
            let b = det_matrix(k, n, (k * 17 + n) as u64);
            let fast = a.matmul(&b).unwrap();
            let slow = reference::matmul_ijk(&a, &b).unwrap();
            let tol = 1e-12 * (1.0 + slow.max_abs());
            assert!(
                fast.approx_eq(&slow, tol),
                "({m},{n},{k}): max diff {}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn blocked_is_bitwise_ascending_k_for_small_depth() {
        // For k <= KC the blocked accumulation order equals a textbook
        // ascending-k fused dot product, so results must be bit-identical.
        let a = det_matrix(23, KC, 5);
        let b = det_matrix(KC, 19, 6);
        let fast = a.matmul(&b).unwrap();
        let slow = reference::matmul_fused(&a, &b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn every_isa_is_bitwise_identical() {
        // Tile-edge shapes: full tiles, partial MR/NR tails, k below and
        // across the KC panel boundary. Every compiled back end must
        // produce the same bits for all of them and both pack paths.
        let shapes = [
            (MR, NR, 1),
            (MR, NR, KC),
            (MR - 1, NR - 3, 7),
            (MR + 1, NR + 1, KC + 1),
            (2 * MR + 3, 3 * NR + 5, 2 * KC + 9),
            (1, 1, 3),
        ];
        let isas = available_isas();
        for &(m, n, k) in &shapes {
            let a = det_matrix(m, k, (m * 7 + k) as u64);
            let b = det_matrix(k, n, (n * 13 + k) as u64);
            let mut base = vec![0.0; m * n];
            gemm_with_isa(
                Isa::Scalar,
                a.as_slice(),
                Op::NoTrans,
                k,
                b.as_slice(),
                Op::NoTrans,
                n,
                &mut base,
                m,
                n,
                k,
            );
            for &isa in &isas {
                let mut out = vec![0.0; m * n];
                gemm_with_isa(
                    isa,
                    a.as_slice(),
                    Op::NoTrans,
                    k,
                    b.as_slice(),
                    Op::NoTrans,
                    n,
                    &mut out,
                    m,
                    n,
                    k,
                );
                assert_eq!(out, base, "{isa:?} gemm ({m},{n},{k})");
                // Transposed packing feeds the same micro-kernel.
                let at = a.transpose();
                let mut out_t = vec![0.0; m * n];
                gemm_with_isa(
                    isa,
                    at.as_slice(),
                    Op::Trans,
                    m,
                    b.as_slice(),
                    Op::NoTrans,
                    n,
                    &mut out_t,
                    m,
                    n,
                    k,
                );
                assert_eq!(out_t, base, "{isa:?} gemm-trans ({m},{n},{k})");
            }
        }
    }

    #[test]
    fn dot_and_axpy_bitwise_identical_across_isas() {
        for len in [0usize, 1, 5, 7, 8, 9, 16, 33, 100, 257] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.21).cos() * 2.0).collect();
            let base_dot = dot_with_isa(Isa::Scalar, &a, &b);
            let mut base_y = b.clone();
            axpy_with_isa(Isa::Scalar, 1.7, &a, &mut base_y);
            for isa in available_isas() {
                let d = dot_with_isa(isa, &a, &b);
                assert_eq!(d.to_bits(), base_dot.to_bits(), "{isa:?} dot len {len}");
                let mut y = b.clone();
                axpy_with_isa(isa, 1.7, &a, &mut y);
                assert_eq!(y, base_y, "{isa:?} axpy len {len}");
            }
        }
    }

    #[test]
    fn forced_kernel_requests_resolve_safely() {
        // Supported names select themselves; unsupported or unknown names
        // fall back to auto-detection rather than an illegal kernel.
        let isas = available_isas();
        let auto = *isas.last().unwrap();
        assert_eq!(select_isa(Some("scalar")), Isa::Scalar);
        assert_eq!(select_isa(None), auto);
        assert_eq!(select_isa(Some("mmx")), auto);
        for &isa in &isas {
            let name = match isa {
                Isa::Scalar => "scalar",
                Isa::Avx2Fma => "avx2",
                Isa::Avx512 => "avx512",
            };
            assert_eq!(select_isa(Some(name)), isa);
        }
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = det_matrix(33, 21, 7);
        let b = det_matrix(33, 13, 8);
        let fast = a.tr_matmul(&b).unwrap();
        let slow = reference::matmul_ijk(&a.transpose(), &b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12 * (1.0 + slow.max_abs())));

        let a = det_matrix(19, 27, 9);
        let b = det_matrix(23, 27, 10);
        let fast = a.matmul_tr(&b).unwrap();
        let slow = reference::matmul_ijk(&a, &b.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12 * (1.0 + slow.max_abs())));
    }

    #[test]
    fn empty_operands() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(a.matmul(&b).unwrap().shape(), (0, 3));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    /// With the `parallel` feature, row-band fan-out must be bit-identical
    /// to the sequential path (bands are numerically independent).
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_is_bit_identical() {
        let m = 2 * MC + 7; // large enough to cross the fan-out threshold
        let a = det_matrix(m, 300, 21);
        let b = det_matrix(300, 150, 22);
        std::env::set_var("IDES_LINALG_THREADS", "4");
        let par = a.matmul(&b).unwrap();
        std::env::set_var("IDES_LINALG_THREADS", "1");
        let seq = a.matmul(&b).unwrap();
        std::env::remove_var("IDES_LINALG_THREADS");
        assert_eq!(par, seq);
    }

    #[test]
    fn dot_matches_sequential() {
        for len in [0usize, 1, 3, 4, 5, 17, 64, 100] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.21).cos()).collect();
            let seq: f64 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
            assert!(
                (dot(&a, &b) - seq).abs() <= 1e-12 * (1.0 + seq.abs()),
                "len {len}"
            );
        }
    }

    #[test]
    fn gemv_matches_matmul_with_vector() {
        let a = det_matrix(13, 7, 11);
        let x: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let via_matmul = reference::matmul_ijk(&a, &Matrix::col_vector(&x)).unwrap();
        let direct = a.matvec(&x).unwrap();
        for i in 0..13 {
            assert!((direct[i] - via_matmul[(i, 0)]).abs() < 1e-12);
        }
        let v: Vec<f64> = (0..13).map(|i| (i as f64 * 0.5).sin()).collect();
        let via_matmul = reference::matmul_ijk(&a.transpose(), &Matrix::col_vector(&v)).unwrap();
        let direct = a.tr_matvec(&v).unwrap();
        for j in 0..7 {
            assert!((direct[j] - via_matmul[(j, 0)]).abs() < 1e-12);
        }
    }
}
