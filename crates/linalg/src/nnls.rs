//! Non-negative least squares (Lawson–Hanson active-set method).
//!
//! The paper (§5.1) notes that the host-join least-squares problems
//! (Eqs. 11–12) can be solved under nonnegativity constraints so that
//! predicted distances stay nonnegative when the landmark matrix was
//! factored by NMF. This module provides that constrained solver.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::qr;

/// Solves `min ‖A x − b‖₂` subject to `x ≥ 0` by Lawson–Hanson.
///
/// Terminates in finitely many steps for full-rank `A`; `max_iterations`
/// bounds pathological cycling on degenerate input.
pub fn nnls(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            expected: (m, 1),
            got: (b.len(), 1),
            op: "nnls",
        });
    }
    let max_iterations = 3 * n + 30;
    let mut x = vec![0.0; n];
    let mut passive: Vec<bool> = vec![false; n];

    // Gradient of ½‖Ax−b‖² is Aᵀ(Ax−b); w = −gradient = Aᵀ(b−Ax).
    let gradient = |x: &[f64]| -> Result<Vec<f64>> {
        let ax = a.matvec(x)?;
        let resid: Vec<f64> = b
            .iter()
            .zip(ax.iter())
            .map(|(&bi, &axi)| bi - axi)
            .collect();
        a.tr_matvec(&resid)
    };

    let tol = 1e-10 * a.max_abs().max(1.0) * b.iter().fold(1.0_f64, |m, &v| m.max(v.abs()));

    for _outer in 0..max_iterations {
        let w = gradient(&x)?;
        // Most-violating inactive variable.
        let candidate = (0..n)
            .filter(|&j| !passive[j])
            .max_by(|&i, &j| w[i].partial_cmp(&w[j]).expect("finite gradient"));
        let Some(t) = candidate else { break };
        if w[t] <= tol {
            break; // KKT satisfied.
        }
        passive[t] = true;

        // Inner loop: solve the unconstrained LS on the passive set and
        // backtrack if any passive variable would go negative.
        loop {
            let passive_idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            let ap = a.select_cols(&passive_idx);
            let z = qr::lstsq(&ap, b).or_else(|_| {
                // Rank-deficient passive set: use pseudo-inverse path.
                crate::solve::lstsq_normal(&ap, b)
            })?;
            if z.iter().all(|&v| v > tol) {
                for (k, &j) in passive_idx.iter().enumerate() {
                    x[j] = z[k];
                }
                for (j, xv) in x.iter_mut().enumerate() {
                    if !passive[j] {
                        *xv = 0.0;
                    }
                }
                break;
            }
            // Line search towards z, stopping where the first variable hits 0.
            let mut alpha = f64::INFINITY;
            for (k, &j) in passive_idx.iter().enumerate() {
                if z[k] <= tol {
                    let denom = x[j] - z[k];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (k, &j) in passive_idx.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
            }
            // Move variables that reached zero back to the active set.
            for &j in &passive_idx {
                if x[j] <= tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
            if passive.iter().all(|&p| !p) {
                break;
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_optimum_already_nonnegative() {
        // When the LS optimum is nonnegative, NNLS must return it.
        let a = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = nnls(&a, &b).unwrap();
        let expected = qr::lstsq(&a, &b).unwrap();
        assert!(expected.iter().all(|&v| v >= 0.0), "test premise");
        for (u, v) in x.iter().zip(expected.iter()) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn clamps_negative_coefficient() {
        // Unconstrained solution has a negative coefficient; NNLS should
        // zero it and refit.
        let a = Matrix::from_vec(2, 2, vec![1.0, 1.0, 0.0, 1.0]).unwrap();
        let b = vec![1.0, 2.0]; // unconstrained: x = [-1, 2]
        let unc = qr::lstsq(&a, &b).unwrap();
        assert!(unc[0] < 0.0, "test premise");
        let x = nnls(&a, &b).unwrap();
        assert!(x.iter().all(|&v| v >= 0.0), "{x:?}");
        // With x0 forced to 0, best x1 minimizes (x1-1)^2 + (x1-2)^2 = 1.5.
        assert!(x[0].abs() < 1e-9);
        assert!((x[1] - 1.5).abs() < 1e-8, "{x:?}");
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 + 1.0);
        let x = nnls(&a, &[0.0; 4]).unwrap();
        assert!(x.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn residual_never_worse_than_zero_vector() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 4 + j) as f64 * 0.63).sin());
        let b: Vec<f64> = (0..6).map(|i| (i as f64 * 0.8).cos() * 2.0).collect();
        let x = nnls(&a, &b).unwrap();
        assert!(x.iter().all(|&v| v >= 0.0));
        let ax = a.matvec(&x).unwrap();
        let r2: f64 = b
            .iter()
            .zip(ax.iter())
            .map(|(&bi, &ai)| (bi - ai) * (bi - ai))
            .sum();
        let b2: f64 = b.iter().map(|&v| v * v).sum();
        assert!(r2 <= b2 + 1e-9);
    }

    #[test]
    fn kkt_conditions_hold() {
        let a = Matrix::from_fn(8, 3, |i, j| ((i + 2 * j) as f64 * 0.45).cos() + 0.2);
        let b: Vec<f64> = (0..8).map(|i| 1.0 + (i as f64 * 0.3).sin()).collect();
        let x = nnls(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(ax.iter()).map(|(&bi, &ai)| bi - ai).collect();
        let w = a.tr_matvec(&resid).unwrap();
        for j in 0..3 {
            if x[j] > 1e-8 {
                // Active (positive) coordinates: gradient must vanish.
                assert!(
                    w[j].abs() < 1e-6,
                    "w[{j}] = {} with x[{j}] = {}",
                    w[j],
                    x[j]
                );
            } else {
                // Zero coordinates: gradient must not be ascent direction.
                assert!(w[j] <= 1e-6, "w[{j}] = {} at bound", w[j]);
            }
        }
    }

    #[test]
    fn dimension_mismatch() {
        let a = Matrix::zeros(3, 2);
        assert!(nnls(&a, &[1.0]).is_err());
    }
}
