//! Cholesky decomposition for symmetric positive-definite systems.
//!
//! Used for the normal-equations path of the IDES host-join solve
//! (Eqs. 13–14 of the paper compute `(Dᵒᵘᵗ Y)(YᵀY)⁻¹`; `YᵀY` is SPD when
//! `Y` has full column rank).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Cholesky factor `L` with `A = L Lᵀ`, `L` lower triangular.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

/// Factors a symmetric positive-definite matrix.
///
/// Only the lower triangle of `a` is read. Returns
/// [`LinalgError::NotPositiveDefinite`] when a non-positive pivot is
/// encountered.
pub fn cholesky(a: &Matrix) -> Result<Cholesky> {
    let mut l = a.clone();
    cholesky_in_place(&mut l)?;
    Ok(Cholesky { l })
}

/// Factors `a = L Lᵀ` in place: on success the lower triangle of `a` holds
/// `L` (the strict upper triangle is zeroed). The allocation-free building
/// block behind [`cholesky`] and the workspace-based normal-equation
/// solves in [`crate::solve`].
pub fn cholesky_in_place(a: &mut Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            got: a.shape(),
            op: "cholesky",
        });
    }
    let n = a.rows();
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                a[(i, j)] = s.sqrt();
            } else {
                a[(i, j)] = s / a[(j, j)];
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Rank-1 **update** of a Cholesky factor in place: given lower-triangular
/// `l` with `A = L Lᵀ`, rewrites `l` so that `L Lᵀ = A + v vᵀ`.
///
/// Runs the classic Givens-rotation sweep (Golub & Van Loan §12.5) in
/// `O(n²)` — the streaming-update primitive that lets a cached
/// normal-equation factorization absorb a changed design row without the
/// `O(n³)` refactorization. `v` is consumed as scratch; no heap
/// allocation.
pub fn cholesky_update_in_place(l: &mut Matrix, v: &mut [f64]) -> Result<()> {
    let n = check_factor_and_vec(l, v, "cholesky_update")?;
    for k in 0..n {
        let lkk = l[(k, k)];
        let r = lkk.hypot(v[k]);
        let c = r / lkk;
        let s = v[k] / lkk;
        l[(k, k)] = r;
        for i in (k + 1)..n {
            l[(i, k)] = (l[(i, k)] + s * v[i]) / c;
            v[i] = c * v[i] - s * l[(i, k)];
        }
    }
    Ok(())
}

/// Rank-1 **downdate** of a Cholesky factor in place: given `l` with
/// `A = L Lᵀ`, rewrites `l` so that `L Lᵀ = A − v vᵀ`.
///
/// The hyperbolic-rotation dual of [`cholesky_update_in_place`], also
/// `O(n²)` and allocation-free. Returns
/// [`LinalgError::NotPositiveDefinite`] (leaving `l` partially modified —
/// callers must refactor from scratch) when `A − v vᵀ` is not positive
/// definite, which is how a streaming caller learns that incremental
/// surgery has lost too much mass and a fresh factorization is due.
pub fn cholesky_downdate_in_place(l: &mut Matrix, v: &mut [f64]) -> Result<()> {
    let n = check_factor_and_vec(l, v, "cholesky_downdate")?;
    for k in 0..n {
        let lkk = l[(k, k)];
        let d2 = (lkk - v[k]) * (lkk + v[k]);
        if d2 <= 0.0 || !d2.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let r = d2.sqrt();
        let c = r / lkk;
        let s = v[k] / lkk;
        l[(k, k)] = r;
        for i in (k + 1)..n {
            l[(i, k)] = (l[(i, k)] - s * v[i]) / c;
            v[i] = c * v[i] - s * l[(i, k)];
        }
    }
    Ok(())
}

/// Rank-k **update**: applies [`cholesky_update_in_place`] for every row of
/// `rows`, so that `L Lᵀ` gains `rowsᵀ rows`. `buf` is per-row scratch
/// (resized to the factor's dimension; reusing one buffer across calls
/// keeps the steady state allocation-free).
pub fn cholesky_update_rows(l: &mut Matrix, rows: &Matrix, buf: &mut Vec<f64>) -> Result<()> {
    for h in 0..rows.rows() {
        buf.clear();
        buf.extend_from_slice(rows.row(h));
        cholesky_update_in_place(l, buf)?;
    }
    Ok(())
}

/// Rank-k **downdate**: applies [`cholesky_downdate_in_place`] for every
/// row of `rows`, so that `L Lᵀ` loses `rowsᵀ rows`. On a
/// [`LinalgError::NotPositiveDefinite`] failure the factor is left
/// partially modified; refactor from scratch.
pub fn cholesky_downdate_rows(l: &mut Matrix, rows: &Matrix, buf: &mut Vec<f64>) -> Result<()> {
    for h in 0..rows.rows() {
        buf.clear();
        buf.extend_from_slice(rows.row(h));
        cholesky_downdate_in_place(l, buf)?;
    }
    Ok(())
}

fn check_factor_and_vec(l: &Matrix, v: &[f64], op: &'static str) -> Result<usize> {
    if !l.is_square() {
        return Err(LinalgError::NotSquare { got: l.shape(), op });
    }
    if v.len() != l.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (l.rows(), 1),
            got: (v.len(), 1),
            op,
        });
    }
    Ok(l.rows())
}

/// Solves `L Lᵀ x = b` in place given a factored lower triangle `l`:
/// `b` is overwritten with the solution. No heap allocation.
pub fn solve_cholesky_in_place(l: &Matrix, b: &mut [f64]) -> Result<()> {
    let n = l.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
            op: "cholesky_solve",
        });
    }
    // Forward solve L y = b (y overwrites b).
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * b[j];
        }
        b[i] = s / l[(i, i)];
    }
    // Back solve Lᵀ x = y (x overwrites b).
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= l[(j, i)] * b[j];
        }
        b[i] = s / l[(i, i)];
    }
    Ok(())
}

/// Solves `A xᵀ = bᵀ` for **every row** of `rhs` in place, given a factored
/// lower triangle `l`: row `h` of `rhs` enters holding one right-hand side
/// and leaves holding the corresponding solution.
///
/// This is the multi-RHS building block of the batched host join
/// (`ides::projection::join_hosts_with`): one Cholesky factorization of the
/// shared Gram matrix serves every right-hand-side row, and because each
/// row is solved by exactly the arithmetic of [`solve_cholesky_in_place`],
/// the batched solutions are bit-identical to per-host solves. No heap
/// allocation.
pub fn solve_cholesky_rows_in_place(l: &Matrix, rhs: &mut Matrix) -> Result<()> {
    if rhs.cols() != l.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (rhs.rows(), l.rows()),
            got: rhs.shape(),
            op: "cholesky_solve_rows",
        });
    }
    for h in 0..rhs.rows() {
        solve_cholesky_in_place(l, rhs.row_mut(h))?;
    }
    Ok(())
}

impl Cholesky {
    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via the two triangular solves `L y = b`, `Lᵀ x = y`.
    #[allow(clippy::needless_range_loop)] // indexed triangular solves read clearest
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
                op: "cholesky_solve",
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A xᵀ = bᵀ` for every row of `rhs` in place; see
    /// [`solve_cholesky_rows_in_place`].
    pub fn solve_rows_in_place(&self, rhs: &mut Matrix) -> Result<()> {
        solve_cholesky_rows_in_place(&self.l, rhs)
    }

    /// Rank-1 update: after this, the factorization is of `A + v vᵀ`.
    pub fn update(&mut self, v: &[f64]) -> Result<()> {
        let mut buf = v.to_vec();
        cholesky_update_in_place(&mut self.l, &mut buf)
    }

    /// Rank-1 downdate: after this, the factorization is of `A − v vᵀ`.
    /// On [`LinalgError::NotPositiveDefinite`] the factor is no longer
    /// valid and must be rebuilt.
    pub fn downdate(&mut self, v: &[f64]) -> Result<()> {
        let mut buf = v.to_vec();
        cholesky_downdate_in_place(&mut self.l, &mut buf)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_multi(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.l.rows() {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.l.rows(), 0),
                got: b.shape(),
                op: "cholesky_solve_multi",
            });
        }
        let mut x = Matrix::zeros(self.l.rows(), b.cols());
        for j in 0..b.cols() {
            let xj = self.solve(&b.col(j))?;
            x.set_col(j, &xj);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_spd() {
        let a = Matrix::from_vec(
            3,
            3,
            vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0],
        )
        .unwrap();
        let c = cholesky(&a).unwrap();
        let expected =
            Matrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 6.0, 1.0, 0.0, -8.0, 5.0, 3.0]).unwrap();
        assert!(c.l().approx_eq(&expected, 1e-12));
        // L Lᵀ reconstructs A.
        let recon = c.l().matmul_tr(c.l()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_spd_system() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let c = cholesky(&a).unwrap();
        let x = c.solve(&[10.0, 8.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 10.0).abs() < 1e-12);
        assert!((ax[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
        let zero = Matrix::zeros(2, 2);
        assert!(cholesky(&zero).is_err());
    }

    #[test]
    fn rejects_non_square() {
        assert!(cholesky(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_rows_in_place_matches_per_vector_solve() {
        let b = Matrix::from_fn(5, 3, |i, j| ((i * 2 + j) as f64 * 0.7).sin());
        let g = &b.tr_matmul(&b).unwrap() + &Matrix::identity(3).scale(0.3);
        let c = cholesky(&g).unwrap();
        let mut rhs = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 - 1.5);
        let expected: Vec<Vec<f64>> = (0..4).map(|h| c.solve(rhs.row(h)).unwrap()).collect();
        c.solve_rows_in_place(&mut rhs).unwrap();
        for h in 0..4 {
            for j in 0..3 {
                // Bitwise: the row solve is the same arithmetic.
                assert_eq!(rhs[(h, j)].to_bits(), expected[h][j].to_bits());
            }
        }
        // Shape mismatch rejected.
        let mut bad = Matrix::zeros(2, 4);
        assert!(c.solve_rows_in_place(&mut bad).is_err());
    }

    /// Deterministic SPD test matrix `BᵀB + αI`.
    fn spd(n: usize, alpha: f64) -> Matrix {
        let b = Matrix::from_fn(n + 2, n, |i, j| ((i * n + j) as f64 * 0.53).sin());
        &b.tr_matmul(&b).unwrap() + &Matrix::identity(n).scale(alpha)
    }

    #[test]
    fn rank1_update_matches_refactorization() {
        let n = 6;
        let a = spd(n, 0.5);
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos() * 0.7).collect();
        let mut l = cholesky(&a).unwrap().l().clone();
        let mut scratch = v.clone();
        cholesky_update_in_place(&mut l, &mut scratch).unwrap();
        // A + v vᵀ, factored from scratch.
        let mut updated = a.clone();
        for i in 0..n {
            for j in 0..n {
                updated[(i, j)] += v[i] * v[j];
            }
        }
        let fresh = cholesky(&updated).unwrap();
        assert!(
            l.approx_eq(fresh.l(), 1e-10),
            "updated factor diverges from refactorization"
        );
    }

    #[test]
    fn rank1_downdate_inverts_update() {
        let n = 5;
        let a = spd(n, 1.0);
        let v: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin()).collect();
        let mut l = cholesky(&a).unwrap().l().clone();
        let before = l.clone();
        let mut s1 = v.clone();
        cholesky_update_in_place(&mut l, &mut s1).unwrap();
        let mut s2 = v.clone();
        cholesky_downdate_in_place(&mut l, &mut s2).unwrap();
        assert!(l.approx_eq(&before, 1e-10), "downdate(update(L)) != L");
    }

    #[test]
    fn downdate_that_breaks_pd_is_rejected() {
        let a = Matrix::identity(3);
        let mut l = cholesky(&a).unwrap().l().clone();
        // Removing 2·e₀e₀ᵀ from I is indefinite.
        let mut v = vec![2.0, 0.0, 0.0];
        assert!(matches!(
            cholesky_downdate_in_place(&mut l, &mut v),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rank_k_rows_update_and_downdate() {
        let n = 4;
        let a = spd(n, 0.8);
        let rows = Matrix::from_fn(3, n, |i, j| ((i * n + j) as f64 * 0.77).cos() * 0.5);
        let mut l = cholesky(&a).unwrap().l().clone();
        let mut buf = Vec::new();
        cholesky_update_rows(&mut l, &rows, &mut buf).unwrap();
        let expected = &a + &rows.tr_matmul(&rows).unwrap();
        assert!(l.matmul_tr(&l).unwrap().approx_eq(&expected, 1e-10));
        cholesky_downdate_rows(&mut l, &rows, &mut buf).unwrap();
        assert!(l.matmul_tr(&l).unwrap().approx_eq(&a, 1e-9));
    }

    #[test]
    fn update_shape_validation() {
        let mut l = cholesky(&Matrix::identity(3)).unwrap().l().clone();
        assert!(cholesky_update_in_place(&mut l, &mut [1.0, 2.0]).is_err());
        assert!(cholesky_downdate_in_place(&mut l, &mut [1.0, 2.0]).is_err());
        let mut rect = Matrix::zeros(2, 3);
        assert!(cholesky_update_in_place(&mut rect, &mut [1.0, 2.0]).is_err());
    }

    #[test]
    fn cholesky_struct_update_downdate() {
        let a = spd(4, 0.6);
        let mut c = cholesky(&a).unwrap();
        let v = [0.3, -0.2, 0.5, 0.1];
        c.update(&v).unwrap();
        let mut want = a.clone();
        for i in 0..4 {
            for j in 0..4 {
                want[(i, j)] += v[i] * v[j];
            }
        }
        assert!(c.l().matmul_tr(c.l()).unwrap().approx_eq(&want, 1e-10));
        c.downdate(&v).unwrap();
        assert!(c.l().matmul_tr(c.l()).unwrap().approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_multi_consistency() {
        let b = Matrix::from_fn(4, 3, |i, j| ((i + j) as f64 * 0.4).cos());
        let g = &b.matmul_tr(&b).unwrap() + &Matrix::identity(4).scale(0.5);
        let c = cholesky(&g).unwrap();
        let rhs = Matrix::from_fn(4, 2, |i, j| (i as f64 + 1.0) * (j as f64 - 0.5));
        let x = c.solve_multi(&rhs).unwrap();
        assert!(g.matmul(&x).unwrap().approx_eq(&rhs, 1e-10));
    }
}
