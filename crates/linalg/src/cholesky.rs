//! Cholesky decomposition for symmetric positive-definite systems.
//!
//! Used for the normal-equations path of the IDES host-join solve
//! (Eqs. 13–14 of the paper compute `(Dᵒᵘᵗ Y)(YᵀY)⁻¹`; `YᵀY` is SPD when
//! `Y` has full column rank).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Cholesky factor `L` with `A = L Lᵀ`, `L` lower triangular.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

/// Factors a symmetric positive-definite matrix.
///
/// Only the lower triangle of `a` is read. Returns
/// [`LinalgError::NotPositiveDefinite`] when a non-positive pivot is
/// encountered.
pub fn cholesky(a: &Matrix) -> Result<Cholesky> {
    let mut l = a.clone();
    cholesky_in_place(&mut l)?;
    Ok(Cholesky { l })
}

/// Factors `a = L Lᵀ` in place: on success the lower triangle of `a` holds
/// `L` (the strict upper triangle is zeroed). The allocation-free building
/// block behind [`cholesky`] and the workspace-based normal-equation
/// solves in [`crate::solve`].
pub fn cholesky_in_place(a: &mut Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            got: a.shape(),
            op: "cholesky",
        });
    }
    let n = a.rows();
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                a[(i, j)] = s.sqrt();
            } else {
                a[(i, j)] = s / a[(j, j)];
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Solves `L Lᵀ x = b` in place given a factored lower triangle `l`:
/// `b` is overwritten with the solution. No heap allocation.
pub fn solve_cholesky_in_place(l: &Matrix, b: &mut [f64]) -> Result<()> {
    let n = l.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
            op: "cholesky_solve",
        });
    }
    // Forward solve L y = b (y overwrites b).
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * b[j];
        }
        b[i] = s / l[(i, i)];
    }
    // Back solve Lᵀ x = y (x overwrites b).
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= l[(j, i)] * b[j];
        }
        b[i] = s / l[(i, i)];
    }
    Ok(())
}

/// Solves `A xᵀ = bᵀ` for **every row** of `rhs` in place, given a factored
/// lower triangle `l`: row `h` of `rhs` enters holding one right-hand side
/// and leaves holding the corresponding solution.
///
/// This is the multi-RHS building block of the batched host join
/// (`ides::projection::join_hosts_with`): one Cholesky factorization of the
/// shared Gram matrix serves every right-hand-side row, and because each
/// row is solved by exactly the arithmetic of [`solve_cholesky_in_place`],
/// the batched solutions are bit-identical to per-host solves. No heap
/// allocation.
pub fn solve_cholesky_rows_in_place(l: &Matrix, rhs: &mut Matrix) -> Result<()> {
    if rhs.cols() != l.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (rhs.rows(), l.rows()),
            got: rhs.shape(),
            op: "cholesky_solve_rows",
        });
    }
    for h in 0..rhs.rows() {
        solve_cholesky_in_place(l, rhs.row_mut(h))?;
    }
    Ok(())
}

impl Cholesky {
    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via the two triangular solves `L y = b`, `Lᵀ x = y`.
    #[allow(clippy::needless_range_loop)] // indexed triangular solves read clearest
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
                op: "cholesky_solve",
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l[(i, j)] * y[j];
            }
            y[i] = s / self.l[(i, i)];
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * x[j];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A xᵀ = bᵀ` for every row of `rhs` in place; see
    /// [`solve_cholesky_rows_in_place`].
    pub fn solve_rows_in_place(&self, rhs: &mut Matrix) -> Result<()> {
        solve_cholesky_rows_in_place(&self.l, rhs)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_multi(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.l.rows() {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.l.rows(), 0),
                got: b.shape(),
                op: "cholesky_solve_multi",
            });
        }
        let mut x = Matrix::zeros(self.l.rows(), b.cols());
        for j in 0..b.cols() {
            let xj = self.solve(&b.col(j))?;
            x.set_col(j, &xj);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_spd() {
        let a = Matrix::from_vec(
            3,
            3,
            vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0],
        )
        .unwrap();
        let c = cholesky(&a).unwrap();
        let expected =
            Matrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 6.0, 1.0, 0.0, -8.0, 5.0, 3.0]).unwrap();
        assert!(c.l().approx_eq(&expected, 1e-12));
        // L Lᵀ reconstructs A.
        let recon = c.l().matmul_tr(c.l()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_spd_system() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let c = cholesky(&a).unwrap();
        let x = c.solve(&[10.0, 8.0]).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!((ax[0] - 10.0).abs() < 1e-12);
        assert!((ax[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            cholesky(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
        let zero = Matrix::zeros(2, 2);
        assert!(cholesky(&zero).is_err());
    }

    #[test]
    fn rejects_non_square() {
        assert!(cholesky(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_rows_in_place_matches_per_vector_solve() {
        let b = Matrix::from_fn(5, 3, |i, j| ((i * 2 + j) as f64 * 0.7).sin());
        let g = &b.tr_matmul(&b).unwrap() + &Matrix::identity(3).scale(0.3);
        let c = cholesky(&g).unwrap();
        let mut rhs = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 - 1.5);
        let expected: Vec<Vec<f64>> = (0..4).map(|h| c.solve(rhs.row(h)).unwrap()).collect();
        c.solve_rows_in_place(&mut rhs).unwrap();
        for h in 0..4 {
            for j in 0..3 {
                // Bitwise: the row solve is the same arithmetic.
                assert_eq!(rhs[(h, j)].to_bits(), expected[h][j].to_bits());
            }
        }
        // Shape mismatch rejected.
        let mut bad = Matrix::zeros(2, 4);
        assert!(c.solve_rows_in_place(&mut bad).is_err());
    }

    #[test]
    fn solve_multi_consistency() {
        let b = Matrix::from_fn(4, 3, |i, j| ((i + j) as f64 * 0.4).cos());
        let g = &b.matmul_tr(&b).unwrap() + &Matrix::identity(4).scale(0.5);
        let c = cholesky(&g).unwrap();
        let rhs = Matrix::from_fn(4, 2, |i, j| (i as f64 + 1.0) * (j as f64 - 0.5));
        let x = c.solve_multi(&rhs).unwrap();
        assert!(g.matmul(&x).unwrap().approx_eq(&rhs, 1e-10));
    }
}
