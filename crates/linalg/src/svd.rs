//! Singular value decomposition.
//!
//! Three algorithms are provided:
//!
//! * [`svd`] — full SVD. Dispatches to the **blocked Golub–Kahan** path
//!   ([`crate::factor::svd_with`]: bidiagonalization + implicit-shift QR
//!   with GEMM-accumulated `U`/`V`) above [`crate::factor::SMALL`], and to
//!   one-sided Jacobi at or below it; Jacobi is also the fallback if the
//!   shift iteration ever fails to converge.
//! * [`svd_jacobi`] — full SVD by **one-sided Jacobi** rotations. Slower
//!   than bidiagonalization but simple, numerically robust, and highly
//!   accurate for small singular values; the small-matrix workhorse and
//!   the accuracy oracle of the blocked property suite.
//! * [`svd_truncated`] — rank-`d` **subspace (orthogonal) iteration**, the
//!   right tool when only the leading `d ≪ n` singular triples are needed
//!   (the common case in distance-matrix factorization). Its per-iteration
//!   re-orthonormalization rides the blocked QR.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a singular value decomposition `A = U S Vᵀ`.
///
/// `u` is `m x k`, `v` is `n x k` (both with orthonormal columns) and
/// `singular_values` holds the `k` singular values in non-increasing order,
/// where `k = min(m, n)` for a full SVD or the requested rank for a
/// truncated one.
#[derive(Debug, Clone, Default)]
pub struct Svd {
    /// Left singular vectors (columns), `m x k`.
    pub u: Matrix,
    /// Singular values in non-increasing order, length `k`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors (columns), `n x k`.
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs `U S Vᵀ` as the single kernel GEMM `U (V S)ᵀ`,
    /// scaling the (smaller) right factor instead of cloning `U`.
    pub fn reconstruct(&self) -> Matrix {
        let vs = Matrix::from_fn(self.v.rows(), self.v.cols(), |i, j| {
            self.v[(i, j)] * self.singular_values[j]
        });
        self.u.matmul_tr(&vs).expect("shapes agree by construction")
    }

    /// Truncates the decomposition to the leading `d` triples.
    pub fn truncate(&self, d: usize) -> Svd {
        let d = d.min(self.singular_values.len());
        let cols: Vec<usize> = (0..d).collect();
        Svd {
            u: self.u.select_cols(&cols),
            singular_values: self.singular_values[..d].to_vec(),
            v: self.v.select_cols(&cols),
        }
    }

    /// Numerical rank: number of singular values above `tol * s_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * smax)
            .count()
    }
}

/// Maximum number of one-sided Jacobi sweeps before giving up.
const MAX_JACOBI_SWEEPS: usize = 60;

/// Computes the full SVD of `a`.
///
/// Dispatches on size: matrices whose smaller dimension is at most
/// [`crate::factor::SMALL`] use one-sided Jacobi ([`svd_jacobi`]); larger
/// ones run the blocked Golub–Kahan path ([`crate::factor::svd_with`]),
/// falling back to Jacobi in the (defensive) event the implicit-shift
/// iteration does not converge. Repeated large-matrix callers should hold
/// a [`crate::factor::FactorWorkspace`] and call the `_with` variant
/// directly, which allocates nothing once warm.
pub fn svd(a: &Matrix) -> Result<Svd> {
    if a.rows().min(a.cols()) <= crate::factor::SMALL {
        return svd_jacobi(a);
    }
    let mut ws = crate::factor::FactorWorkspace::new();
    let mut out = Svd {
        u: Matrix::zeros(0, 0),
        singular_values: Vec::new(),
        v: Matrix::zeros(0, 0),
    };
    match crate::factor::svd_with(a, &mut ws, &mut out) {
        Ok(()) => Ok(out),
        Err(LinalgError::NoConvergence { .. }) => svd_jacobi(a),
        Err(e) => Err(e),
    }
}

/// Computes the full SVD of `a` by one-sided Jacobi rotations — the
/// small-matrix path and accuracy fallback of [`svd`].
///
/// Works for any shape; internally operates on the transposed matrix when
/// `m < n` and swaps `u`/`v` back at the end.
pub fn svd_jacobi(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            singular_values: vec![],
            v: Matrix::zeros(n, 0),
        });
    }
    if m < n {
        let t = svd_jacobi(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        });
    }

    // Work on columns of W (a copy of A); V accumulates the rotations.
    let mut w = a.clone();
    let mut v = Matrix::identity(n);
    let eps = 1e-14;
    // Scale tolerance by the Frobenius norm so convergence is relative.
    let fnorm = w.frobenius_norm();
    if fnorm == 0.0 {
        // Zero matrix: U = any orthonormal basis (identity block), S = 0.
        let mut u = Matrix::zeros(m, n);
        for i in 0..n {
            u[(i, i)] = 1.0;
        }
        return Ok(Svd {
            u,
            singular_values: vec![0.0; n],
            v,
        });
    }
    let tol = eps * fnorm * fnorm;

    let mut converged = false;
    for _sweep in 0..MAX_JACOBI_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Compute the 2x2 Gram block for columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                off = off.max(apq.abs());
                if apq.abs() <= tol {
                    continue;
                }
                // Jacobi rotation that zeroes the off-diagonal Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Rotate columns p and q of W and V.
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    w[(i, p)] = c * wp - s * wq;
                    w[(i, q)] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off <= tol {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            op: "svd (one-sided Jacobi)",
            iterations: MAX_JACOBI_SWEEPS,
        });
    }

    // Singular values are the column norms of W; U = W with normalized columns.
    let mut triples: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm = (0..m).map(|i| w[(i, j)] * w[(i, j)]).sum::<f64>().sqrt();
            (norm, j)
        })
        .collect();
    triples.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("norms are finite"));

    let mut u = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut sv = Vec::with_capacity(n);
    let smax = triples[0].0;
    let rank_tol = 1e-13 * smax;
    let mut degenerate: Vec<usize> = Vec::new();
    for (dst, &(norm, src)) in triples.iter().enumerate() {
        sv.push(norm);
        if norm > rank_tol {
            for i in 0..m {
                u[(i, dst)] = w[(i, src)] / norm;
            }
        } else {
            degenerate.push(dst);
        }
        for i in 0..n {
            v_sorted[(i, dst)] = v[(i, src)];
        }
    }
    // For (numerically) zero singular values the Jacobi columns vanish;
    // complete U to an orthonormal set by Gram-Schmidt against the
    // coordinate basis so the documented invariant UᵀU = I always holds.
    for &dst in &degenerate {
        for trial in 0..m {
            let mut cand = vec![0.0; m];
            cand[trial] = 1.0;
            // Orthogonalize against all previously filled columns (twice,
            // for numerical safety).
            for _ in 0..2 {
                for j in 0..n {
                    if j == dst {
                        continue;
                    }
                    let dot: f64 = (0..m).map(|i| cand[i] * u[(i, j)]).sum();
                    for (i, c) in cand.iter_mut().enumerate() {
                        *c -= dot * u[(i, j)];
                    }
                }
            }
            let norm: f64 = cand.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.5 {
                for (i, c) in cand.iter().enumerate() {
                    u[(i, dst)] = c / norm;
                }
                break;
            }
        }
    }
    Ok(Svd {
        u,
        singular_values: sv,
        v: v_sorted,
    })
}

/// Options for [`svd_truncated`].
#[derive(Debug, Clone, Copy)]
pub struct TruncatedSvdOptions {
    /// Extra subspace columns carried during iteration (improves accuracy of
    /// the trailing requested triples). Default 8.
    pub oversample: usize,
    /// Maximum subspace iterations. Default 200.
    pub max_iterations: usize,
    /// Relative convergence tolerance on singular-value change. Default 1e-10.
    pub tolerance: f64,
}

impl Default for TruncatedSvdOptions {
    fn default() -> Self {
        TruncatedSvdOptions {
            oversample: 8,
            max_iterations: 200,
            tolerance: 1e-10,
        }
    }
}

/// Computes the leading `d` singular triples of `a` by subspace iteration
/// on `AᵀA` with QR re-orthonormalization on the blocked factorization
/// layer. Allocating convenience wrapper over [`svd_truncated_with`].
///
/// Deterministic: the start basis is a fixed quasi-random (but seedless)
/// matrix, so repeated runs give identical results.
pub fn svd_truncated(a: &Matrix, d: usize, opts: TruncatedSvdOptions) -> Result<Svd> {
    let mut ws = crate::factor::FactorWorkspace::new();
    let mut out = Svd::default();
    svd_truncated_with(a, d, opts, &mut ws, &mut out)?;
    Ok(out)
}

/// Staging buffers for one truncated-SVD run, taken out of the
/// [`crate::factor::FactorWorkspace`] for the duration of the call so the
/// workspace itself stays free for the nested `qr_with` / `svd_with`
/// factorizations, and put back on every exit path.
struct TruncStage {
    v: Matrix,
    av: Matrix,
    atav: Matrix,
    qr: crate::qr::Qr,
    svd: Svd,
    sv: Vec<f64>,
    prev: Vec<f64>,
}

/// [`svd_truncated`] into a caller-owned [`Svd`] and
/// [`crate::factor::FactorWorkspace`]: subspace iteration whose iterates,
/// re-orthonormalizations, projection SVD, and outputs all live in
/// workspace-owned buffers, so a warm workspace serves repeated calls of
/// one shape **without allocating**.
///
/// Differences from a fresh [`svd_truncated`] call are operational only:
/// the projection SVD always runs the blocked Golub–Kahan path
/// ([`crate::factor::svd_with`]) rather than dispatching to Jacobi below
/// the small-size cutoff (Jacobi would allocate; it remains the defensive
/// fallback if the shift iteration fails to converge, at the cost of
/// allocations on that path). `out` is unspecified on error.
pub fn svd_truncated_with(
    a: &Matrix,
    d: usize,
    opts: TruncatedSvdOptions,
    ws: &mut crate::factor::FactorWorkspace,
    out: &mut Svd,
) -> Result<()> {
    let mut st = TruncStage {
        v: std::mem::take(&mut ws.trunc_v),
        av: std::mem::take(&mut ws.trunc_av),
        atav: std::mem::take(&mut ws.trunc_atav),
        qr: std::mem::take(&mut ws.trunc_qr),
        svd: std::mem::take(&mut ws.trunc_svd),
        sv: std::mem::take(&mut ws.trunc_sv),
        prev: std::mem::take(&mut ws.trunc_prev),
    };
    let result = svd_truncated_core(a, d, opts, ws, &mut st, out);
    ws.trunc_v = st.v;
    ws.trunc_av = st.av;
    ws.trunc_atav = st.atav;
    ws.trunc_qr = st.qr;
    ws.trunc_svd = st.svd;
    ws.trunc_sv = st.sv;
    ws.trunc_prev = st.prev;
    result
}

/// Copies the leading `k` triples of `full` into `out` (reshaped).
fn emit_truncated(full: &Svd, k: usize, out: &mut Svd) {
    let m = full.u.rows();
    let n = full.v.rows();
    out.u.reset_shape(m, k);
    for i in 0..m {
        out.u.row_mut(i).copy_from_slice(&full.u.row(i)[..k]);
    }
    out.v.reset_shape(n, k);
    for i in 0..n {
        out.v.row_mut(i).copy_from_slice(&full.v.row(i)[..k]);
    }
    out.singular_values.clear();
    out.singular_values
        .extend_from_slice(&full.singular_values[..k]);
}

fn svd_truncated_core(
    a: &Matrix,
    d: usize,
    opts: TruncatedSvdOptions,
    ws: &mut crate::factor::FactorWorkspace,
    st: &mut TruncStage,
    out: &mut Svd,
) -> Result<()> {
    let (m, n) = a.shape();
    let k = d.min(m).min(n);
    if k == 0 {
        out.u.reset_shape(m, 0);
        out.v.reset_shape(n, 0);
        out.singular_values.clear();
        return Ok(());
    }
    // If the requested rank is close to full, the exact algorithm is cheaper.
    let p = (k + opts.oversample).min(n).min(m);
    if p * 2 >= n.min(m) {
        match crate::factor::svd_with(a, ws, &mut st.svd) {
            Ok(()) => {}
            Err(LinalgError::NoConvergence { .. }) => st.svd = svd_jacobi(a)?,
            Err(e) => return Err(e),
        }
        emit_truncated(&st.svd, k, out);
        return Ok(());
    }

    // Deterministic pseudo-random start basis (Weyl sequence).
    st.v.reset_shape(n, p);
    for i in 0..n {
        for (j, x) in st.v.row_mut(i).iter_mut().enumerate() {
            let t = ((i as f64 + 1.0) * 0.754877666 + (j as f64 + 1.0) * 0.569840296).fract();
            *x = 2.0 * t - 1.0;
        }
    }
    crate::factor::qr_with(&st.v, ws, &mut st.qr)?;
    std::mem::swap(&mut st.v, &mut st.qr.q);

    st.prev.clear();
    st.prev.resize(k, f64::INFINITY);
    for _it in 0..opts.max_iterations {
        // v <- orth(Aᵀ (A v))
        st.av.reset_shape(m, p);
        a.matmul_into(&st.v, &mut st.av)?;
        st.atav.reset_shape(n, p);
        a.tr_matmul_into(&st.av, &mut st.atav)?;
        crate::factor::qr_with(&st.atav, ws, &mut st.qr)?;
        std::mem::swap(&mut st.v, &mut st.qr.q);

        // Estimate singular values from column norms of A v.
        st.av.reset_shape(m, p);
        a.matmul_into(&st.v, &mut st.av)?;
        st.sv.clear();
        st.sv.extend((0..k).map(|j| {
            (0..m)
                .map(|i| st.av[(i, j)] * st.av[(i, j)])
                .sum::<f64>()
                .sqrt()
        }));
        // Unstable sort: allocation-free (stable sort's merge buffer would
        // break the warm-path zero-alloc contract).
        st.sv
            .sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
        let max_rel_change = st
            .sv
            .iter()
            .zip(st.prev.iter())
            .map(|(&s, &ps)| {
                if ps.is_infinite() {
                    f64::INFINITY
                } else {
                    (s - ps).abs() / ps.max(1e-300)
                }
            })
            .fold(0.0_f64, f64::max);
        std::mem::swap(&mut st.prev, &mut st.sv);
        if max_rel_change < opts.tolerance {
            break;
        }
    }

    // Project A onto the subspace and take an exact small SVD:
    // A V = U' S W'ᵀ  =>  A ≈ U' S (V W')ᵀ.
    st.av.reset_shape(m, p);
    a.matmul_into(&st.v, &mut st.av)?;
    match crate::factor::svd_with(&st.av, ws, &mut st.svd) {
        Ok(()) => {}
        Err(LinalgError::NoConvergence { .. }) => st.svd = svd_jacobi(&st.av)?,
        Err(e) => return Err(e),
    }
    // out.u / singular values: leading k of the projection SVD; out.v is
    // the single GEMM `V_sub · W_k`, reading the first k columns of the
    // small right factor in place via its leading dimension.
    out.u.reset_shape(m, k);
    for i in 0..m {
        out.u.row_mut(i).copy_from_slice(&st.svd.u.row(i)[..k]);
    }
    out.singular_values.clear();
    out.singular_values
        .extend_from_slice(&st.svd.singular_values[..k]);
    out.v.reset_shape(n, k);
    crate::kernels::gemm(
        st.v.as_slice(),
        crate::kernels::Op::NoTrans,
        p,
        st.svd.v.as_slice(),
        crate::kernels::Op::NoTrans,
        st.svd.v.cols(),
        out.v.as_mut_slice(),
        n,
        k,
        p,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &Matrix, tol: f64) {
        let qtq = q.tr_matmul(q).unwrap();
        let i = Matrix::identity(q.cols());
        assert!(qtq.approx_eq(&i, tol), "max diff {}", qtq.max_abs_diff(&i));
    }

    #[test]
    fn svd_diagonal() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let s = svd(&a).unwrap();
        assert_eq!(s.singular_values.len(), 3);
        assert!((s.singular_values[0] - 3.0).abs() < 1e-12);
        assert!((s.singular_values[1] - 2.0).abs() < 1e-12);
        assert!((s.singular_values[2] - 1.0).abs() < 1e-12);
        assert!(s.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn svd_paper_distance_matrix() {
        // The worked example from §4.1 of the paper: S = diag(4, 2, 2, 0).
        let d = Matrix::from_vec(
            4,
            4,
            vec![
                0.0, 1.0, 1.0, 2.0, 1.0, 0.0, 2.0, 1.0, 1.0, 2.0, 0.0, 1.0, 2.0, 1.0, 1.0, 0.0,
            ],
        )
        .unwrap();
        let s = svd(&d).unwrap();
        assert!((s.singular_values[0] - 4.0).abs() < 1e-10);
        assert!((s.singular_values[1] - 2.0).abs() < 1e-10);
        assert!((s.singular_values[2] - 2.0).abs() < 1e-10);
        assert!(s.singular_values[3].abs() < 1e-10);
        assert!(s.reconstruct().approx_eq(&d, 1e-9));
        // Rank-3 truncation is exact because s4 = 0.
        assert!(s.truncate(3).reconstruct().approx_eq(&d, 1e-9));
        assert_eq!(s.rank(1e-9), 3);
    }

    #[test]
    fn svd_reconstruction_and_orthogonality_random() {
        let a = Matrix::from_fn(8, 5, |i, j| ((i * 5 + j) as f64 * 0.7).sin() * 3.0 + 0.1);
        let s = svd(&a).unwrap();
        assert_orthonormal_cols(&s.u, 1e-10);
        assert_orthonormal_cols(&s.v, 1e-10);
        assert!(s.reconstruct().approx_eq(&a, 1e-9));
        // Non-increasing singular values.
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_wide_matrix() {
        let a = Matrix::from_fn(3, 6, |i, j| (i as f64 + 1.0) * (j as f64 - 2.5));
        let s = svd(&a).unwrap();
        assert_eq!(s.u.shape(), (3, 3));
        assert_eq!(s.v.shape(), (6, 3));
        assert!(s.reconstruct().approx_eq(&a, 1e-9));
        // This matrix is rank 1.
        assert_eq!(s.rank(1e-9), 1);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let s = svd(&a).unwrap();
        assert!(s.singular_values.iter().all(|&x| x == 0.0));
        assert!(s.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn svd_empty() {
        let a = Matrix::zeros(0, 0);
        let s = svd(&a).unwrap();
        assert!(s.singular_values.is_empty());
    }

    #[test]
    fn svd_asymmetric_exact() {
        // SVD must handle asymmetric matrices; check singular values of
        // [[0, 1], [-1, 0]] are both 1.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, -1.0, 0.0]).unwrap();
        let s = svd(&a).unwrap();
        assert!((s.singular_values[0] - 1.0).abs() < 1e-12);
        assert!((s.singular_values[1] - 1.0).abs() < 1e-12);
        assert!(s.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn truncated_matches_full_on_low_rank() {
        // Build an exactly rank-3 60x60 matrix.
        let b = Matrix::from_fn(60, 3, |i, j| ((i + j) as f64 * 0.31).sin() + 0.2);
        let c = Matrix::from_fn(3, 60, |i, j| ((i * 2 + j) as f64 * 0.17).cos());
        let a = b.matmul(&c).unwrap();
        let full = svd(&a).unwrap();
        let trunc = svd_truncated(&a, 3, TruncatedSvdOptions::default()).unwrap();
        for i in 0..3 {
            assert!(
                (full.singular_values[i] - trunc.singular_values[i]).abs()
                    < 1e-6 * full.singular_values[0],
                "sv {i}: {} vs {}",
                full.singular_values[i],
                trunc.singular_values[i]
            );
        }
        assert!(trunc
            .reconstruct()
            .approx_eq(&a, 1e-6 * full.singular_values[0]));
    }

    #[test]
    fn truncated_low_rank_approximation_error() {
        // For a general matrix the rank-d truncation error equals
        // sqrt(sum of squared discarded singular values) (Eckart–Young).
        let a = Matrix::from_fn(40, 40, |i, j| {
            ((i * 13 + j * 7) as f64 * 0.05).sin() + (i == j) as u8 as f64
        });
        let full = svd(&a).unwrap();
        let d = 10;
        let trunc = svd_truncated(&a, d, TruncatedSvdOptions::default()).unwrap();
        let err = (&a - &trunc.reconstruct()).frobenius_norm();
        let expected: f64 = full.singular_values[d..]
            .iter()
            .map(|s| s * s)
            .sum::<f64>()
            .sqrt();
        assert!(
            (err - expected).abs() <= 1e-5 * expected.max(1.0),
            "err {err} vs optimal {expected}"
        );
    }

    #[test]
    fn truncated_falls_back_to_exact_when_rank_near_full() {
        let a = Matrix::from_fn(6, 6, |i, j| ((i + 2 * j) as f64).cos());
        let t = svd_truncated(&a, 5, TruncatedSvdOptions::default()).unwrap();
        let f = svd(&a).unwrap();
        for i in 0..5 {
            assert!((t.singular_values[i] - f.singular_values[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn truncate_method() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            ((i * j) as f64 * 0.3).sin() + 2.0 * (i == j) as u8 as f64
        });
        let s = svd(&a).unwrap();
        let t = s.truncate(2);
        assert_eq!(t.u.shape(), (5, 2));
        assert_eq!(t.v.shape(), (5, 2));
        assert_eq!(t.singular_values.len(), 2);
        // Truncating beyond available rank is a no-op.
        let t6 = s.truncate(10);
        assert_eq!(t6.singular_values.len(), 5);
    }
}
