//! # ides-linalg
//!
//! Self-contained dense linear algebra for the IDES reproduction
//! (Mao & Saul, *Modeling Distances in Large-Scale Networks by Matrix
//! Factorization*, IMC 2004).
//!
//! Everything the paper's algorithms need — and nothing more — implemented
//! in plain safe Rust with no external BLAS/LAPACK:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with BLAS-like kernels,
//! * [`kernels`] — the cache-blocked, register-tiled GEMM layer behind
//!   every matrix product (see below),
//! * [`factor`] — the blocked Householder factorization layer: compact-WY
//!   QR, Golub–Kahan bidiagonal SVD, and tridiagonal symmetric eig, all
//!   GEMM-rich with allocation-free `_with` workspace variants,
//! * [`qr`] — Householder QR and QR least squares (blocked; the scalar
//!   reference survives as `qr::reference`),
//! * [`svd`] — full SVD (blocked Golub–Kahan above the small cutoff,
//!   one-sided Jacobi below it / as fallback) plus truncated
//!   subspace-iteration SVD,
//! * [`eig`] — symmetric eigendecomposition (blocked tridiagonalization +
//!   implicit QL, cyclic Jacobi small/fallback; for PCA),
//! * [`lu`], [`cholesky`] — exact solves for the host-join normal
//!   equations, plus `O(n²)` rank-1/rank-k Cholesky up/downdates and the
//!   incrementally maintained [`solve::CachedGram`] behind the streaming
//!   update path,
//! * [`nnls`] — Lawson–Hanson nonnegative least squares (§5.1 option),
//! * [`pca`] — the projection used by the ICS / Virtual Landmark baselines,
//! * [`random`] — seeded random matrices for NMF initialization.
//!
//! # The kernel layer
//!
//! `Matrix::{matmul, tr_matmul, matmul_tr, matvec, tr_matvec}` and their
//! allocation-free `*_into` twins all run on one blocked GEMM driver in
//! [`kernels`]: operands are packed into contiguous panels (transposition
//! is free at packing time) and consumed by an explicit-FMA
//! [`kernels::MR`]`x`[`kernels::NR`] register-tile micro-kernel, with
//! [`kernels::MC`]/[`kernels::KC`]/[`kernels::NC`] cache blocking
//! (defaults 128/256/1024, tuned on the kernels benchmark). The
//! micro-kernel back end — 512-bit AVX-512F, 256-bit AVX2+FMA, or the
//! portable `f64::mul_add` scalar tile — is chosen **once per process**
//! by runtime CPU detection ([`kernels::active_isa`]; override with
//! `IDES_LINALG_KERNEL=scalar|avx2|avx512`, or compile vector kernels
//! out via `--no-default-features`). Packing
//! buffers are thread-local and reused, so steady-state products allocate
//! nothing — the foundation of the allocation-free NMF/ALS iteration
//! loops in `ides-mf`. Per output cell, contributions accumulate in
//! ascending-`k` fused order **identically on every back end**, so
//! results are bitwise equal across ISAs and deterministic run-to-run;
//! for depths `<= KC` they match a fused textbook dot product bit for
//! bit.
//!
//! ## The `parallel` feature
//!
//! The off-by-default `parallel` cargo feature lets large products fan out
//! across row bands on std scoped threads (thread count from the host, or
//! the `IDES_LINALG_THREADS` env var). Bands are numerically independent,
//! so **results are bit-identical with the feature on or off**; small
//! products stay on the sequential path regardless.
//!
//! ```
//! use ides_linalg::{Matrix, svd::svd};
//!
//! // The 4-host example from §4.1 of the paper.
//! let d = Matrix::from_vec(4, 4, vec![
//!     0.0, 1.0, 1.0, 2.0,
//!     1.0, 0.0, 2.0, 1.0,
//!     1.0, 2.0, 0.0, 1.0,
//!     2.0, 1.0, 1.0, 0.0,
//! ]).unwrap();
//! let f = svd(&d).unwrap();
//! assert!((f.singular_values[0] - 4.0).abs() < 1e-9);
//! assert!(f.singular_values[3].abs() < 1e-9); // rank 3 => exact d=3 factorization
//! ```

#![warn(missing_docs)]
// Unsafe code is denied crate-wide and allowed back in exactly one place:
// the feature-gated `kernels::x86` module holding the AVX2/AVX-512 FMA
// intrinsics behind runtime CPU-feature detection.
#![deny(unsafe_code)]

pub mod cholesky;
pub mod chunked;
pub mod eig;
pub mod error;
pub mod factor;
pub mod kernels;
pub mod lu;
pub mod matrix;
pub mod nnls;
pub mod pca;
pub mod qr;
pub mod random;
pub mod solve;
pub mod svd;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
