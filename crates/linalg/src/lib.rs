//! # ides-linalg
//!
//! Self-contained dense linear algebra for the IDES reproduction
//! (Mao & Saul, *Modeling Distances in Large-Scale Networks by Matrix
//! Factorization*, IMC 2004).
//!
//! Everything the paper's algorithms need — and nothing more — implemented
//! in plain safe Rust with no external BLAS/LAPACK:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with BLAS-like kernels,
//! * [`qr`] — Householder QR and QR least squares,
//! * [`svd`] — one-sided Jacobi SVD plus truncated subspace-iteration SVD,
//! * [`eig`] — cyclic-Jacobi symmetric eigendecomposition (for PCA),
//! * [`lu`], [`cholesky`] — exact solves for the host-join normal equations,
//! * [`nnls`] — Lawson–Hanson nonnegative least squares (§5.1 option),
//! * [`pca`] — the projection used by the ICS / Virtual Landmark baselines,
//! * [`random`] — seeded random matrices for NMF initialization.
//!
//! ```
//! use ides_linalg::{Matrix, svd::svd};
//!
//! // The 4-host example from §4.1 of the paper.
//! let d = Matrix::from_vec(4, 4, vec![
//!     0.0, 1.0, 1.0, 2.0,
//!     1.0, 0.0, 2.0, 1.0,
//!     1.0, 2.0, 0.0, 1.0,
//!     2.0, 1.0, 1.0, 0.0,
//! ]).unwrap();
//! let f = svd(&d).unwrap();
//! assert!((f.singular_values[0] - 4.0).abs() < 1e-9);
//! assert!(f.singular_values[3].abs() < 1e-9); // rank 3 => exact d=3 factorization
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cholesky;
pub mod eig;
pub mod error;
pub mod lu;
pub mod matrix;
pub mod nnls;
pub mod pca;
pub mod qr;
pub mod random;
pub mod solve;
pub mod svd;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
