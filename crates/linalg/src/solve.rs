//! High-level solvers built on the factorizations: pseudo-inverse,
//! normal-equations least squares, and ridge regularization.

use crate::cholesky::cholesky;
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

use crate::svd::{svd, Svd};

/// Moore–Penrose pseudo-inverse via SVD.
///
/// Singular values below `rcond * s_max` are treated as zero. Use
/// `rcond = 1e-12` for well-scaled data.
pub fn pinv(a: &Matrix, rcond: f64) -> Result<Matrix> {
    let Svd {
        u,
        singular_values,
        v,
    } = svd(a)?;
    let smax = singular_values.first().copied().unwrap_or(0.0);
    let cutoff = rcond * smax;
    // pinv(A) = V S⁺ Uᵀ.
    let mut vs = v.clone();
    for j in 0..vs.cols() {
        let s = singular_values[j];
        let inv = if s > cutoff { 1.0 / s } else { 0.0 };
        for i in 0..vs.rows() {
            vs[(i, j)] *= inv;
        }
    }
    vs.matmul_tr(&u)
}

/// Least squares via the **normal equations**: `x = (AᵀA)⁻¹ Aᵀ b`.
///
/// This is the formulation written in Eqs. (13–14) of the paper. It squares
/// the condition number, so [`crate::qr::lstsq`] is preferred for ill-conditioned
/// systems; both are exposed so the experiment harness can ablate the two.
/// Falls back to the SVD pseudo-inverse when `AᵀA` is singular (e.g. when
/// fewer than `d` reference nodes are observed).
pub fn lstsq_normal(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), 1),
            got: (b.len(), 1),
            op: "lstsq_normal",
        });
    }
    let ata = a.tr_matmul(a)?;
    let atb = a.tr_matvec(b)?;
    match cholesky(&ata) {
        Ok(c) => c.solve(&atb),
        Err(_) => {
            // Rank-deficient: minimum-norm solution via pseudo-inverse.
            let p = pinv(a, 1e-12)?;
            p.matvec(b)
        }
    }
}

/// Ridge-regularized least squares: `x = (AᵀA + λI)⁻¹ Aᵀ b`.
///
/// With `lambda > 0` the system is always SPD, so this never fails for
/// finite input. Used by the robust host-join path when very few landmarks
/// are observed.
pub fn lstsq_ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), 1),
            got: (b.len(), 1),
            op: "lstsq_ridge",
        });
    }
    if lambda < 0.0 {
        return Err(LinalgError::InvalidArgument(
            "ridge lambda must be nonnegative",
        ));
    }
    let mut ata = a.tr_matmul(a)?;
    for i in 0..ata.rows() {
        ata[(i, i)] += lambda;
    }
    let atb = a.tr_matvec(b)?;
    match cholesky(&ata) {
        Ok(c) => c.solve(&atb),
        Err(_) => lstsq_normal(a, b),
    }
}

/// QR-based least squares re-exported beside the normal-equations variant.
pub use crate::qr::{lstsq as lstsq_qr, lstsq_multi as lstsq_qr_multi};

/// Reusable scratch space for [`lstsq_ridge_with`]: the `AᵀA` Gram matrix
/// and `Aᵀb` right-hand side. Reused across solves of the same width (the
/// ALS row sweeps and host joins solve thousands of small systems of one
/// fixed dimension), so the steady state allocates nothing.
#[derive(Debug, Default)]
pub struct NormalEqWorkspace {
    ata: Matrix,
    atb: Vec<f64>,
}

impl NormalEqWorkspace {
    /// Creates a workspace pre-sized for systems of width `k`.
    pub fn new(k: usize) -> Self {
        NormalEqWorkspace {
            ata: Matrix::zeros(k, k),
            atb: vec![0.0; k],
        }
    }

    fn fit_to(&mut self, k: usize) {
        self.ata.reset_shape(k, k);
        self.atb.clear();
        self.atb.resize(k, 0.0);
    }
}

/// Allocation-free ridge least squares: like [`lstsq_ridge`], but the Gram
/// matrix, right-hand side, and Cholesky factorization all live in `ws`,
/// and the solution is written into `out` (length = `a.cols()`).
///
/// Falls back to the allocating [`lstsq_normal`] pseudo-inverse path only
/// when `AᵀA + λI` is numerically indefinite (rank-deficient input with
/// `lambda = 0`), which mirrors [`lstsq_ridge`]'s behavior.
pub fn lstsq_ridge_with(
    a: &Matrix,
    b: &[f64],
    lambda: f64,
    ws: &mut NormalEqWorkspace,
    out: &mut [f64],
) -> Result<()> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), 1),
            got: (b.len(), 1),
            op: "lstsq_ridge",
        });
    }
    if lambda < 0.0 {
        return Err(LinalgError::InvalidArgument(
            "ridge lambda must be nonnegative",
        ));
    }
    let k = a.cols();
    if out.len() != k {
        return Err(LinalgError::ShapeMismatch {
            expected: (k, 1),
            got: (out.len(), 1),
            op: "lstsq_ridge_with",
        });
    }
    ws.fit_to(k);
    a.tr_matmul_into(a, &mut ws.ata)?;
    for i in 0..k {
        ws.ata[(i, i)] += lambda;
    }
    a.tr_matvec_into(b, &mut ws.atb)?;
    match crate::cholesky::cholesky_in_place(&mut ws.ata) {
        Ok(()) => {
            out.copy_from_slice(&ws.atb);
            crate::cholesky::solve_cholesky_in_place(&ws.ata, out)
        }
        Err(_) => {
            let x = lstsq_normal(a, b)?;
            out.copy_from_slice(&x);
            Ok(())
        }
    }
}

/// Batched, multi-right-hand-side ridge least squares: solves
/// `min ‖A xₕᵀ − bₕ‖² + λ‖xₕ‖²` for **every row** `bₕ` of `b` with a
/// single factorization.
///
/// * `a` is the shared `k x d` design matrix (one reference node per row).
/// * `b` is `hosts x k` — one right-hand side per row.
/// * `out` is reshaped to `hosts x d`; row `h` receives host `h`'s solution.
///
/// The Gram matrix `AᵀA + λI` is formed and Cholesky-factored **once**, and
/// the right-hand sides are assembled as the single GEMM `B·A` (row `h` of
/// which is `Aᵀbₕ`), so the per-host cost collapses to one triangular
/// solve. Because every output cell of the blocked GEMM accumulates over
/// the shared `k` dimension in the same order regardless of the batch's
/// row count, the solutions are **bit-identical** to solving each host
/// separately through the same batched path — the property the evaluation
/// sharding relies on.
///
/// Falls back to the per-row [`lstsq_normal`] pseudo-inverse path when
/// `AᵀA + λI` is numerically indefinite (rank-deficient input with
/// `lambda = 0`), mirroring [`lstsq_ridge_with`]. Steady-state allocation
/// is zero once `ws` and `out` have reached their high-water shapes.
pub fn lstsq_ridge_multi_with(
    a: &Matrix,
    b: &Matrix,
    lambda: f64,
    ws: &mut NormalEqWorkspace,
    out: &mut Matrix,
) -> Result<()> {
    if a.rows() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            expected: (b.rows(), a.rows()),
            got: b.shape(),
            op: "lstsq_ridge_multi",
        });
    }
    if lambda < 0.0 {
        return Err(LinalgError::InvalidArgument(
            "ridge lambda must be nonnegative",
        ));
    }
    let d = a.cols();
    let hosts = b.rows();
    out.reset_shape(hosts, d);
    ws.fit_to(d);
    a.tr_matmul_into(a, &mut ws.ata)?;
    for i in 0..d {
        ws.ata[(i, i)] += lambda;
    }
    match crate::cholesky::cholesky_in_place(&mut ws.ata) {
        Ok(()) => {
            // RHS for all hosts in one GEMM: row h of B·A is Aᵀ bₕ.
            b.matmul_into(a, out)?;
            crate::cholesky::solve_cholesky_rows_in_place(&ws.ata, out)
        }
        Err(_) => {
            for h in 0..hosts {
                let x = lstsq_normal(a, b.row(h))?;
                out.row_mut(h).copy_from_slice(&x);
            }
            Ok(())
        }
    }
}

/// An incrementally maintained normal-equation factorization: the Cholesky
/// factor of the Gram matrix `AᵀA + λI` of a `k x d` design matrix,
/// cached so that
///
/// * multi-RHS solves run with **no factorization at all** (one triangular
///   solve per right-hand side, exactly the arithmetic of
///   [`lstsq_ridge_multi_with`]), and
/// * replacing one design row costs `O(d²)` (one rank-1 Cholesky update
///   plus one downdate) instead of the `O(k d² + d³)` refactorization.
///
/// This is the streaming-update primitive behind `ides`' epoch-driven
/// coordinate maintenance: when a landmark's factor row drifts, the cached
/// join system absorbs the change by [`CachedGram::replace_row`] rather
/// than refactoring, and joins keep being served from the same factor.
#[derive(Debug, Clone)]
pub struct CachedGram {
    /// Cholesky factor `L` of `AᵀA + λI` (lower triangle).
    l: Matrix,
    lambda: f64,
    /// Rank-1 scratch, reused across updates.
    buf: Vec<f64>,
}

impl CachedGram {
    /// Factors `AᵀA + λI` from scratch. Runs the same arithmetic as
    /// [`lstsq_ridge_multi_with`]'s factorization step, so solves through
    /// the cache are bit-identical to one-shot batched solves.
    pub fn factor(a: &Matrix, lambda: f64) -> Result<Self> {
        if lambda < 0.0 {
            return Err(LinalgError::InvalidArgument(
                "ridge lambda must be nonnegative",
            ));
        }
        let mut cg = CachedGram {
            l: Matrix::zeros(a.cols(), a.cols()),
            lambda,
            buf: Vec::with_capacity(a.cols()),
        };
        cg.refactor(a)?;
        Ok(cg)
    }

    /// Rebuilds a cache directly from a previously computed factor — the
    /// **snapshot handoff**: a serving layer that publishes immutable
    /// coordinate snapshots clones the maintained factor out of its writer
    /// (see [`CachedGram::l`]) and reconstitutes a read-only solver on the
    /// snapshot side without paying the `O(k d² + d³)` refactorization, so
    /// publishing an epoch costs `O(d²)` per Gram. The factor is taken at
    /// face value (only its shape and diagonal are validated): solves
    /// through the handed-off cache are bit-identical to solves through
    /// the original because they share the exact factor entries.
    pub fn from_factor(l: Matrix, lambda: f64) -> Result<Self> {
        if l.rows() != l.cols() {
            return Err(LinalgError::ShapeMismatch {
                expected: (l.rows(), l.rows()),
                got: l.shape(),
                op: "CachedGram::from_factor",
            });
        }
        if lambda < 0.0 {
            return Err(LinalgError::InvalidArgument(
                "ridge lambda must be nonnegative",
            ));
        }
        if (0..l.rows()).any(|i| !l[(i, i)].is_finite() || l[(i, i)] <= 0.0) {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let d = l.rows();
        Ok(CachedGram {
            l,
            lambda,
            buf: Vec::with_capacity(d),
        })
    }

    /// Refactors from the current design matrix (e.g. after a bulk factor
    /// refresh, or after a failed downdate). Reuses the cached buffers.
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        let d = a.cols();
        self.l.reset_shape(d, d);
        a.tr_matmul_into(a, &mut self.l)?;
        for i in 0..d {
            self.l[(i, i)] += self.lambda;
        }
        crate::cholesky::cholesky_in_place(&mut self.l)
    }

    /// System width `d`.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The ridge term baked into the Gram matrix.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The cached lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Absorbs the addition of design row `row`: the factorization becomes
    /// that of `AᵀA + row rowᵀ + λI`. `O(d²)`.
    pub fn update_row(&mut self, row: &[f64]) -> Result<()> {
        self.buf.clear();
        self.buf.extend_from_slice(row);
        crate::cholesky::cholesky_update_in_place(&mut self.l, &mut self.buf)
    }

    /// Absorbs the removal of design row `row`. On
    /// [`LinalgError::NotPositiveDefinite`] the cache is invalid — call
    /// [`CachedGram::refactor`].
    pub fn downdate_row(&mut self, row: &[f64]) -> Result<()> {
        self.buf.clear();
        self.buf.extend_from_slice(row);
        crate::cholesky::cholesky_downdate_in_place(&mut self.l, &mut self.buf)
    }

    /// Absorbs an in-place change of one design row from `old_row` to
    /// `new_row` — the update runs first so the intermediate matrix stays
    /// safely positive definite. `O(d²)` total.
    pub fn replace_row(&mut self, old_row: &[f64], new_row: &[f64]) -> Result<()> {
        self.update_row(new_row)?;
        self.downdate_row(old_row)
    }

    /// Solves `(AᵀA + λI) x = rhs` for a single right-hand side in place
    /// (`rhs` must already hold `Aᵀb`). No heap allocation.
    pub fn solve_in_place(&self, rhs: &mut [f64]) -> Result<()> {
        crate::cholesky::solve_cholesky_in_place(&self.l, rhs)
    }

    /// Solves `(AᵀA + λI) xᵀ = bᵀ` for every row of `rhs` in place — the
    /// normal-equation solve step of a batched host join, with the
    /// factorization amortized across the cache's whole lifetime. Callers
    /// supply `rhs` rows already multiplied through `Aᵀ` (i.e. row `h`
    /// holds `Aᵀ bₕ`, assembled by one `B·A` GEMM).
    pub fn solve_rows_in_place(&self, rhs: &mut Matrix) -> Result<()> {
        crate::cholesky::solve_cholesky_rows_in_place(&self.l, rhs)
    }
}

/// Last-writer tracking per design-matrix row — the row-disjointness test
/// behind dependency-DAG planning over [`CachedGram`] row surgery.
///
/// A [`CachedGram::replace_row`] call touches exactly one row of the
/// design matrix `A` (and, through `AᵀA`, the whole factor — which is why
/// *commits* must stay serialized). Two replacements are independent, in
/// the sense that their **solve** inputs can both be computed from the
/// pre-update state, exactly when their row indices are disjoint; a
/// planner records each row write here and chains any operation that
/// touches a previously written row behind its last writer. Note this is
/// an ordering aid, not a commutativity claim: rank-1 Cholesky surgery on
/// `L` does not commute bitwise, so a deterministic plan must still apply
/// the replacements in a fixed order.
#[derive(Debug, Clone)]
pub struct RowWriters {
    last: Vec<Option<usize>>,
}

impl RowWriters {
    /// Tracker for a design matrix with `rows` rows, all unwritten.
    pub fn new(rows: usize) -> RowWriters {
        RowWriters {
            last: vec![None; rows],
        }
    }

    /// Records that `writer` replaces design row `row`; returns the
    /// previous writer of that row (the dependency), if any.
    pub fn note(&mut self, row: usize, writer: usize) -> Option<usize> {
        self.last.get_mut(row).and_then(|w| w.replace(writer))
    }

    /// The last recorded writer of `row`, if any.
    pub fn last(&self, row: usize) -> Option<usize> {
        self.last.get(row).copied().flatten()
    }

    /// Forgets every recorded write — what a full refactorization
    /// ([`CachedGram::refactor`]) does to row-level history.
    pub fn reset(&mut self) {
        self.last.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 7.0, 2.0, 6.0]).unwrap();
        let p = pinv(&a, 1e-12).unwrap();
        assert!(a.matmul(&p).unwrap().approx_eq(&Matrix::identity(2), 1e-10));
    }

    #[test]
    fn pinv_penrose_conditions() {
        // Rank-deficient rectangular matrix; verify all four Penrose axioms.
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0]).unwrap(); // rank 1
        let p = pinv(&a, 1e-12).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.approx_eq(&a, 1e-9), "A P A != A");
        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(pap.approx_eq(&p, 1e-9), "P A P != P");
        let ap = a.matmul(&p).unwrap();
        assert!(ap.approx_eq(&ap.transpose(), 1e-9), "(AP)ᵀ != AP");
        let pa = p.matmul(&a).unwrap();
        assert!(pa.approx_eq(&pa.transpose(), 1e-9), "(PA)ᵀ != PA");
    }

    #[test]
    fn normal_equations_match_qr_when_well_conditioned() {
        let a = Matrix::from_fn(8, 3, |i, j| {
            ((i * 3 + j) as f64 * 0.9).sin() + (j == 0) as u8 as f64
        });
        let b: Vec<f64> = (0..8).map(|i| (i as f64 * 1.3).cos()).collect();
        let x1 = lstsq_normal(&a, &b).unwrap();
        let x2 = crate::qr::lstsq(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-8, "{x1:?} vs {x2:?}");
        }
    }

    #[test]
    fn normal_equations_rank_deficient_falls_back() {
        // Columns identical: AᵀA singular; minimum-norm solution splits the
        // coefficient evenly between the two columns.
        let a = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let b = vec![2.0, 4.0, 6.0];
        let x = lstsq_normal(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let a = Matrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        let x0 = lstsq_ridge(&a, &b, 0.0).unwrap();
        let x1 = lstsq_ridge(&a, &b, 1.0).unwrap();
        for i in 0..3 {
            assert!((x0[i] - b[i]).abs() < 1e-12);
            assert!((x1[i] - b[i] / 2.0).abs() < 1e-12); // (I + I)⁻¹ b
        }
        assert!(lstsq_ridge(&a, &b, -1.0).is_err());
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let a = Matrix::zeros(3, 2);
        assert!(lstsq_normal(&a, &[1.0]).is_err());
        assert!(lstsq_ridge(&a, &[1.0], 0.1).is_err());
    }

    #[test]
    fn multi_rhs_matches_single_solves() {
        let a = Matrix::from_fn(9, 4, |i, j| ((i * 4 + j) as f64 * 0.63).sin() + 0.2);
        let b = Matrix::from_fn(6, 9, |h, i| ((h * 9 + i) as f64 * 0.31).cos() * 5.0);
        for lambda in [0.0, 0.5] {
            let mut ws = NormalEqWorkspace::default();
            let mut out = Matrix::zeros(0, 0);
            lstsq_ridge_multi_with(&a, &b, lambda, &mut ws, &mut out).unwrap();
            assert_eq!(out.shape(), (6, 4));
            for h in 0..6 {
                let x = lstsq_ridge(&a, b.row(h), lambda).unwrap();
                for j in 0..4 {
                    assert!(
                        (out[(h, j)] - x[j]).abs() < 1e-10,
                        "host {h} λ={lambda}: {:?} vs {x:?}",
                        out.row(h)
                    );
                }
            }
        }
    }

    #[test]
    fn multi_rhs_rank_deficient_falls_back() {
        // Duplicate columns: AᵀA singular at λ=0; per-row minimum-norm
        // solutions split the coefficient evenly, like `lstsq_normal`.
        let a = Matrix::from_vec(3, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]).unwrap();
        let b = Matrix::from_vec(2, 3, vec![2.0, 4.0, 6.0, 4.0, 8.0, 12.0]).unwrap();
        let mut ws = NormalEqWorkspace::default();
        let mut out = Matrix::zeros(0, 0);
        lstsq_ridge_multi_with(&a, &b, 0.0, &mut ws, &mut out).unwrap();
        assert!((out[(0, 0)] - 1.0).abs() < 1e-9);
        assert!((out[(0, 1)] - 1.0).abs() < 1e-9);
        assert!((out[(1, 0)] - 2.0).abs() < 1e-9);
        assert!((out[(1, 1)] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cached_gram_matches_one_shot_multi_rhs_bitwise() {
        let a = Matrix::from_fn(20, 8, |i, j| {
            (0.5 * (i as f64 + 3.0) * (j as f64 + 1.0)).sin() + 0.4
        });
        let b = Matrix::from_fn(5, 20, |h, i| ((h * 20 + i) as f64 * 0.19).cos() * 3.0);
        for lambda in [0.0, 0.25] {
            let cg = CachedGram::factor(&a, lambda).unwrap();
            // Cached path: one GEMM for the RHS rows, then cached solves.
            let mut cached = b.matmul(&a).unwrap();
            cg.solve_rows_in_place(&mut cached).unwrap();
            // One-shot path.
            let mut ws = NormalEqWorkspace::default();
            let mut oneshot = Matrix::zeros(0, 0);
            lstsq_ridge_multi_with(&a, &b, lambda, &mut ws, &mut oneshot).unwrap();
            for h in 0..5 {
                for j in 0..8 {
                    assert_eq!(
                        cached[(h, j)].to_bits(),
                        oneshot[(h, j)].to_bits(),
                        "λ={lambda} host {h} col {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn cached_gram_replace_row_tracks_refactorization() {
        let mut a = Matrix::from_fn(12, 4, |i, j| ((i * 4 + j) as f64 * 0.61).sin() + 0.3);
        let mut cg = CachedGram::factor(&a, 0.1).unwrap();
        // Replace three rows, one at a time, through the rank-1 path.
        for (step, row) in [2usize, 7, 11].into_iter().enumerate() {
            let old: Vec<f64> = a.row(row).to_vec();
            let newr: Vec<f64> = old
                .iter()
                .enumerate()
                .map(|(j, &v)| v + 0.2 * ((step * 4 + j) as f64 * 0.9).cos())
                .collect();
            a.set_row(row, &newr);
            cg.replace_row(&old, &newr).unwrap();
        }
        let fresh = CachedGram::factor(&a, 0.1).unwrap();
        assert!(
            cg.l().approx_eq(fresh.l(), 1e-9),
            "incrementally maintained factor drifted: {}",
            cg.l().max_abs_diff(fresh.l())
        );
        assert_eq!(cg.dim(), 4);
        assert!((cg.lambda() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn cached_gram_from_factor_solves_bit_identically() {
        let a = Matrix::from_fn(15, 6, |i, j| {
            (0.37 * (i as f64 + 1.0) * (j as f64 + 2.0)).sin() + 0.6
        });
        let writer = CachedGram::factor(&a, 0.05).unwrap();
        // Snapshot handoff: clone the factor out, reconstitute a solver.
        let snap = CachedGram::from_factor(writer.l().clone(), writer.lambda()).unwrap();
        let rhs = Matrix::from_fn(3, 15, |h, i| ((h * 15 + i) as f64 * 0.23).cos());
        let mut rw = rhs.matmul(&a).unwrap();
        let mut rs = rw.clone();
        writer.solve_rows_in_place(&mut rw).unwrap();
        snap.solve_rows_in_place(&mut rs).unwrap();
        for h in 0..3 {
            for j in 0..6 {
                assert_eq!(rw[(h, j)].to_bits(), rs[(h, j)].to_bits());
            }
        }
        // Validation: non-square, negative lambda, non-positive diagonal.
        assert!(CachedGram::from_factor(Matrix::zeros(2, 3), 0.0).is_err());
        assert!(CachedGram::from_factor(Matrix::identity(3), -0.1).is_err());
        assert!(CachedGram::from_factor(Matrix::zeros(3, 3), 0.0).is_err());
    }

    #[test]
    fn cached_gram_rejects_negative_lambda_and_bad_downdate() {
        let a = Matrix::identity(3);
        assert!(CachedGram::factor(&a, -1.0).is_err());
        let mut cg = CachedGram::factor(&a, 0.0).unwrap();
        // Downdating more than the Gram holds must fail, signalling a
        // refactor; refactor then restores a valid cache.
        assert!(cg.downdate_row(&[5.0, 0.0, 0.0]).is_err());
        cg.refactor(&a).unwrap();
        let mut rhs = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        cg.solve_rows_in_place(&mut rhs).unwrap();
        assert!((rhs[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_rhs_shape_and_lambda_validation() {
        let a = Matrix::zeros(3, 2);
        let mut ws = NormalEqWorkspace::default();
        let mut out = Matrix::zeros(0, 0);
        // b columns must equal a rows.
        let bad = Matrix::zeros(2, 4);
        assert!(lstsq_ridge_multi_with(&a, &bad, 0.1, &mut ws, &mut out).is_err());
        let b = Matrix::zeros(2, 3);
        assert!(lstsq_ridge_multi_with(&a, &b, -1.0, &mut ws, &mut out).is_err());
        // Empty batch is fine.
        let empty = Matrix::zeros(0, 3);
        lstsq_ridge_multi_with(&a, &empty, 0.1, &mut ws, &mut out).unwrap();
        assert_eq!(out.shape(), (0, 2));
    }

    #[test]
    fn row_writers_track_last_writer_per_row() {
        let mut w = RowWriters::new(3);
        assert_eq!(w.last(0), None);
        assert_eq!(w.note(0, 7), None, "first write has no dependency");
        assert_eq!(w.note(2, 8), None, "disjoint row is independent");
        assert_eq!(w.note(0, 9), Some(7), "same row chains on its writer");
        assert_eq!(w.last(0), Some(9));
        assert_eq!(w.last(1), None);
        // Out-of-range rows are inert rather than panicking.
        assert_eq!(w.note(99, 1), None);
        assert_eq!(w.last(99), None);
        w.reset();
        assert_eq!(w.last(0), None);
        assert_eq!(w.last(2), None);
    }
}
