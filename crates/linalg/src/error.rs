//! Error type shared by all `ides-linalg` operations.

use std::fmt;

/// Result alias using [`LinalgError`].
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Shape (or dimension pair) the operation required.
        expected: (usize, usize),
        /// Shape actually supplied.
        got: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Shape actually supplied.
        got: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The matrix is singular (or numerically so) and cannot be factored/solved.
    Singular {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// Matrix is not positive definite (Cholesky).
    NotPositiveDefinite,
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm.
        op: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was out of its valid range.
    InvalidArgument(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got, op } => write!(
                f,
                "{op}: shape mismatch (expected compatible with {}x{}, got {}x{})",
                expected.0, expected.1, got.0, got.1
            ),
            LinalgError::NotSquare { got, op } => {
                write!(f, "{op}: matrix must be square, got {}x{}", got.0, got.1)
            }
            LinalgError::Singular { op } => write!(f, "{op}: matrix is singular"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "cholesky: matrix is not positive definite")
            }
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: no convergence after {iterations} iterations")
            }
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LinalgError::ShapeMismatch {
            expected: (2, 3),
            got: (3, 2),
            op: "matmul",
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));
        let e = LinalgError::NoConvergence {
            op: "svd",
            iterations: 30,
        };
        assert!(e.to_string().contains("30"));
        let e = LinalgError::Singular { op: "lu_solve" };
        assert!(e.to_string().contains("singular"));
    }
}
