//! Householder QR decomposition and QR-based least squares.
//!
//! Since the blocked factorization layer landed, [`qr`] runs the
//! compact-WY blocked algorithm in [`crate::factor`] (GEMM-rich trailing
//! updates and Q accumulation); the original scalar-loop implementation is
//! preserved as [`reference::qr_unblocked`] — the correctness oracle for
//! the property suite and the honest "before" baseline of the `factor`
//! benchmark group. For matrices with at most [`crate::factor::PANEL`]
//! columns the two are **bit-identical** (a single panel runs the
//! reference arithmetic end to end).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// QR decomposition `A = Q R` of an `m x n` matrix with `m >= n`.
///
/// `q` is `m x n` with orthonormal columns (thin Q), `r` is `n x n` upper
/// triangular. Produced by [`qr`] / [`crate::factor::qr_with`].
#[derive(Debug, Clone, Default)]
pub struct Qr {
    /// Thin orthonormal factor, `m x n`.
    pub q: Matrix,
    /// Upper-triangular factor, `n x n`.
    pub r: Matrix,
}

/// Computes the thin QR decomposition of `a` (`m x n`, `m >= n`) using
/// blocked Householder reflections (see [`crate::factor`]).
///
/// Householder QR is backward stable, unlike classical Gram-Schmidt; the
/// columns of `q` stay orthonormal to machine precision even for poorly
/// conditioned inputs. Repeated callers should hold a
/// [`crate::factor::FactorWorkspace`] and use [`crate::factor::qr_with`],
/// which allocates nothing once warm.
pub fn qr(a: &Matrix) -> Result<Qr> {
    let mut ws = crate::factor::FactorWorkspace::new();
    let mut out = Qr::default();
    crate::factor::qr_with(a, &mut ws, &mut out)?;
    Ok(out)
}

/// The pre-blocking scalar implementation, kept as the correctness oracle
/// and benchmark baseline for the blocked layer.
pub mod reference {
    use super::{LinalgError, Matrix, Qr, Result};

    /// The seed's unblocked Householder QR: one scalar rank-1 update per
    /// reflector per column, `Q` formed by reverse scalar application.
    /// This was [`super::qr`] before the blocked factorization layer.
    pub fn qr_unblocked(a: &Matrix) -> Result<Qr> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, n),
                got: (m, n),
                op: "qr (requires rows >= cols)",
            });
        }
        let mut r = a.clone();
        // Accumulate Householder vectors; v[k] has length m-k.
        let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
            let alpha = {
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                if v[0] >= 0.0 {
                    -norm
                } else {
                    norm
                }
            };
            if alpha == 0.0 {
                // Column already zero below (and at) the diagonal; identity
                // reflector.
                vs.push(vec![0.0; m - k]);
                continue;
            }
            v[0] -= alpha;
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 == 0.0 {
                vs.push(vec![0.0; m - k]);
                continue;
            }
            // Apply reflector H = I - 2 v vᵀ / (vᵀv) to the trailing block.
            for j in k..n {
                let dot: f64 = (k..m).map(|i| v[i - k] * r[(i, j)]).sum();
                let s = 2.0 * dot / vnorm2;
                for i in k..m {
                    r[(i, j)] -= s * v[i - k];
                }
            }
            vs.push(v);
        }

        // Form thin Q by applying the reflectors in reverse to the first n
        // columns of the identity.
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        for k in (0..n).rev() {
            let v = &vs[k];
            let vnorm2: f64 = v.iter().map(|x| x * x).sum();
            if vnorm2 == 0.0 {
                continue;
            }
            for j in 0..n {
                let dot: f64 = (k..m).map(|i| v[i - k] * q[(i, j)]).sum();
                let s = 2.0 * dot / vnorm2;
                for i in k..m {
                    q[(i, j)] -= s * v[i - k];
                }
            }
        }

        // Zero out numerical noise below the diagonal of R and truncate.
        let mut r_thin = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r_thin[(i, j)] = r[(i, j)];
            }
        }
        Ok(Qr { q, r: r_thin })
    }
}

/// Solves the upper-triangular system `R x = b` by back substitution.
///
/// Returns [`LinalgError::Singular`] if a diagonal entry of `r` is
/// negligibly small relative to the largest diagonal entry.
pub fn solve_upper_triangular(r: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = r.rows();
    if !r.is_square() {
        return Err(LinalgError::NotSquare {
            got: r.shape(),
            op: "solve_upper_triangular",
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
            op: "solve_upper_triangular",
        });
    }
    let mut x = b.to_vec();
    solve_upper_triangular_in_place(r, &mut x)?;
    Ok(x)
}

/// [`solve_upper_triangular`] overwriting `b` with the solution — the
/// allocation-free variant the batched host join uses to back-substitute
/// every right-hand-side row of a `QᵀB` product in place.
///
/// The singular check (any diagonal entry negligibly small relative to the
/// largest) runs up front, so `b` is untouched on error.
pub fn solve_upper_triangular_in_place(r: &Matrix, b: &mut [f64]) -> Result<()> {
    let n = r.rows();
    if !r.is_square() {
        return Err(LinalgError::NotSquare {
            got: r.shape(),
            op: "solve_upper_triangular",
        });
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
            op: "solve_upper_triangular",
        });
    }
    let max_diag = (0..n).fold(0.0_f64, |m, i| m.max(r[(i, i)].abs()));
    let tol = max_diag * 1e-13;
    if (0..n).any(|i| r[(i, i)].abs() <= tol) {
        return Err(LinalgError::Singular {
            op: "solve_upper_triangular",
        });
    }
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= r[(i, j)] * b[j];
        }
        b[i] = s / r[(i, i)];
    }
    Ok(())
}

/// Solves the least-squares problem `min ‖A x − b‖₂` via QR.
///
/// `a` is `m x n` with `m >= n` and full column rank.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), 1),
            got: (b.len(), 1),
            op: "lstsq",
        });
    }
    let Qr { q, r } = qr(a)?;
    let qtb = q.tr_matvec(b)?;
    solve_upper_triangular(&r, &qtb)
}

/// Solves `min ‖A X − B‖_F` column-by-column; `B` is `m x k`, result `n x k`.
pub fn lstsq_multi(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            expected: (a.rows(), 0),
            got: b.shape(),
            op: "lstsq_multi",
        });
    }
    let Qr { q, r } = qr(a)?;
    let qtb = q.tr_matmul(b)?;
    let mut x = Matrix::zeros(a.cols(), b.cols());
    for j in 0..b.cols() {
        let col = qtb.col(j);
        let xj = solve_upper_triangular(&r, &col)?;
        x.set_col(j, &xj);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthonormal_cols(q: &Matrix, tol: f64) {
        let qtq = q.tr_matmul(q).unwrap();
        let i = Matrix::identity(q.cols());
        assert!(
            qtq.approx_eq(&i, tol),
            "QᵀQ is not identity: max diff {}",
            qtq.max_abs_diff(&i)
        );
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = Matrix::from_vec(
            3,
            3,
            vec![12.0, -51.0, 4.0, 6.0, 167.0, -68.0, -4.0, 24.0, -41.0],
        )
        .unwrap();
        let Qr { q, r } = qr(&a).unwrap();
        assert_orthonormal_cols(&q, 1e-12);
        let recon = q.matmul(&r).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
        // R is upper triangular.
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = Matrix::from_fn(7, 3, |i, j| ((i * 3 + j) as f64).sin() + 0.1 * i as f64);
        let Qr { q, r } = qr(&a).unwrap();
        assert_eq!(q.shape(), (7, 3));
        assert_eq!(r.shape(), (3, 3));
        assert_orthonormal_cols(&q, 1e-12);
        assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-10));
    }

    #[test]
    fn qr_rejects_wide() {
        let a = Matrix::zeros(2, 3);
        assert!(qr(&a).is_err());
    }

    #[test]
    fn qr_handles_zero_column() {
        let a = Matrix::from_vec(3, 2, vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0]).unwrap();
        let Qr { q, r } = qr(&a).unwrap();
        assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn back_substitution() {
        let r = Matrix::from_vec(3, 3, vec![2.0, 1.0, -1.0, 0.0, 3.0, 2.0, 0.0, 0.0, 4.0]).unwrap();
        let x = solve_upper_triangular(&r, &[1.0, 8.0, 8.0]).unwrap();
        // x3 = 2, x2 = (8-4)/3 = 4/3, x1 = (1 - 4/3 + 2)/2
        assert!((x[2] - 2.0).abs() < 1e-14);
        assert!((x[1] - 4.0 / 3.0).abs() < 1e-14);
        assert!((x[0] - (1.0 - 4.0 / 3.0 + 2.0) / 2.0).abs() < 1e-14);
    }

    #[test]
    fn back_substitution_singular() {
        let r = Matrix::from_vec(2, 2, vec![1.0, 1.0, 0.0, 0.0]).unwrap();
        assert!(matches!(
            solve_upper_triangular(&r, &[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn lstsq_exact_system() {
        // Square nonsingular: least squares equals exact solve.
        let a = Matrix::from_vec(2, 2, vec![3.0, 1.0, 1.0, 2.0]).unwrap();
        let x = lstsq(&a, &[9.0, 8.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_overdetermined_line_fit() {
        // Fit y = 2x + 1 with noise-free samples: design [x 1].
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { xs[i] } else { 1.0 });
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let coef = lstsq(&a, &b).unwrap();
        assert!((coef[0] - 2.0).abs() < 1e-12);
        assert!((coef[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns() {
        let a = Matrix::from_fn(6, 3, |i, j| {
            ((i + 1) * (j + 2)) as f64 + ((i * j) as f64).cos()
        });
        let b: Vec<f64> = (0..6).map(|i| (i as f64).sin() * 3.0).collect();
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(ax.iter()).map(|(&bi, &ai)| bi - ai).collect();
        // Normal equations: Aᵀ r = 0 at the minimizer.
        let at_r = a.tr_matvec(&resid).unwrap();
        assert!(at_r.iter().all(|v| v.abs() < 1e-9), "Aᵀr = {at_r:?}");
    }

    #[test]
    fn lstsq_multi_matches_columnwise() {
        let a = Matrix::from_fn(5, 2, |i, j| {
            (i + j + 1) as f64 + if j == 1 { 0.3 } else { 0.0 }
        });
        let b = Matrix::from_fn(5, 3, |i, j| ((i * 2 + j) as f64).sin());
        let x = lstsq_multi(&a, &b).unwrap();
        for j in 0..3 {
            let xj = lstsq(&a, &b.col(j)).unwrap();
            for i in 0..2 {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }
}
