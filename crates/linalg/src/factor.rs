//! The blocked Householder factorization layer: QR, bidiagonal SVD and
//! tridiagonal symmetric eigendecomposition, all driven by the cache-blocked
//! GEMM kernels in [`crate::kernels`].
//!
//! # Why this layer exists
//!
//! After the kernel layer made matrix products ~30x faster, the dense
//! decompositions — scalar-loop Householder QR, one-sided Jacobi SVD,
//! cyclic-Jacobi eigendecomposition — became the dominant cost of every
//! factorization-bound path (SVD coordinates, the Lipschitz+PCA baseline,
//! QR-backed host joins). This module restructures them the standard
//! LAPACK way: accumulate `PANEL` Householder reflectors at a time into a
//! compact-WY block reflector `I − V T Vᵀ` and apply it with **two GEMMs**
//! instead of `PANEL` rank-1 updates, so the bulk of the flops runs on the
//! packed, register-tiled kernel layer.
//!
//! # The unified workspace API
//!
//! Every decomposition comes in two flavors, mirroring
//! [`crate::solve::lstsq_ridge_multi_with`]:
//!
//! * a plain entry point ([`crate::qr::qr`], [`crate::svd::svd`],
//!   [`crate::eig::symmetric_eig`]) that allocates its own scratch, and
//! * a `_with` variant ([`qr_with`], [`svd_with`], [`symmetric_eig_with`])
//!   that runs entirely inside a caller-owned [`FactorWorkspace`] and a
//!   caller-owned output, so repeated factorizations (batched host joins,
//!   evaluation sweeps, streaming refreshes) allocate **nothing** once the
//!   buffers reach their high-water shapes.
//!
//! # Algorithms and blocking parameters
//!
//! * **QR** ([`qr_with`]): blocked Householder with compact-WY
//!   accumulation. Panels of [`PANEL`] columns are factored with the exact
//!   scalar arithmetic of the unblocked reference
//!   ([`crate::qr::reference::qr_unblocked`]); the trailing matrix is then
//!   updated as `A ← A − V Tᵀ (Vᵀ A)` (two GEMMs), and the thin `Q` is
//!   formed by backward block accumulation (two GEMMs per panel). When the
//!   matrix has at most [`PANEL`] columns there is a single panel and no
//!   trailing update, and `Q` is formed by the reference's scalar loop —
//!   so the result is **bit-identical to the unblocked algorithm** in that
//!   regime (property-tested).
//! * **SVD** ([`svd_with`]): `dlabrd`-style **panel** Golub–Kahan
//!   bidiagonalization — each [`PANEL`]-wide panel accumulates `X`/`Y`
//!   update matrices so the trailing block is updated as **two GEMMs**
//!   (`A ← A − U·Yᵀ − X·Vᵀ`) instead of per-column rank-1 sweeps; the
//!   streamed reference handles the final partial panel, so inputs of at
//!   most [`PANEL`] columns are bit-identical to the streamed algorithm
//!   by construction. Blocked compact-WY accumulation of `U` and `V` on
//!   the GEMM layer, then implicit-shift QR iteration on the bidiagonal.
//!   The Givens sweeps are applied to **transposed** copies of `U`/`V`
//!   staged in the idle panel buffers: on row-major storage a rotation of
//!   two columns is a strided gather, but on the transpose it is an
//!   elementwise pass over two contiguous rows that auto-vectorizes —
//!   same per-element operations in the same order, so bitwise-identical
//!   output, at a fraction of the time (the sweeps were >90 % of SVD time
//!   on distance-matrix inputs). One-sided Jacobi
//!   ([`crate::svd::svd_jacobi`]) is kept as the small-matrix path and
//!   the accuracy/robustness fallback.
//! * **Symmetric eig** ([`symmetric_eig_with`]): Householder
//!   tridiagonalization (symmetric rank-2 updates), blocked accumulation
//!   of the reflector product, implicit-shift QL (`tql2`) on the
//!   tridiagonal — with the eigenvector rotations applied on a transposed
//!   copy of `Z`, same trick as the SVD sweeps — and one final GEMM `Q·Z`
//!   to assemble the eigenvectors.
//!   Cyclic Jacobi ([`crate::eig::symmetric_eig_jacobi`]) remains the
//!   small-matrix path and fallback.
//!
//! Under the `parallel` cargo feature the panel updates fan out exactly
//! like every other product on the kernel layer — the trailing updates and
//! block accumulations are plain GEMMs, whose row bands are numerically
//! independent — so results are **bit-identical** with the feature on or
//! off.

use crate::eig::SymmetricEig;
use crate::error::{LinalgError, Result};
use crate::kernels::{self, Op};
use crate::matrix::Matrix;
use crate::qr::Qr;
use crate::svd::Svd;

/// Panel width of the blocked algorithms: reflectors accumulated per
/// compact-WY block. Matrices with at most this many columns are factored
/// by the scalar reference arithmetic (a single panel has no trailing
/// update to block).
pub const PANEL: usize = 32;

/// Below or at this dimension the dispatching entry points
/// ([`crate::svd::svd`], [`crate::eig::symmetric_eig`]) use the Jacobi
/// algorithms: at small sizes the O(n³) constant of a Jacobi sweep is
/// irrelevant and its accuracy on tiny spectra is unbeatable.
pub const SMALL: usize = 32;

/// Maximum implicit-shift iterations per singular value / eigenvalue.
const MAX_SHIFT_ITERS: usize = 50;

/// Reusable scratch for the blocked factorizations. One workspace serves
/// QR, SVD and symmetric eig interchangeably; buffers grow to their
/// high-water shapes and are then reused without allocation.
#[derive(Debug, Default, Clone)]
pub struct FactorWorkspace {
    /// Working copy of the input (`m x n`).
    work: Matrix,
    /// Left/column Householder reflectors, stored as columns (`m x n`);
    /// column `k`'s support starts at row `k`.
    vl: Matrix,
    /// `vᵀv` per left reflector.
    vl_n2: Vec<f64>,
    /// Right-reflector store for the bidiagonalization / tridiagonal
    /// reduction (`n x n`); column `j`'s support starts at row `j`.
    vr: Matrix,
    /// `vᵀv` per right reflector.
    vr_n2: Vec<f64>,
    /// Compact-WY triangular factor (`PANEL x PANEL`).
    t: Matrix,
    /// Block-apply buffer `W = Vᵀ A` (`PANEL x n`).
    w: Matrix,
    /// Block-apply buffer `W₂ = T W` (`PANEL x n`).
    w2: Matrix,
    /// Block-apply buffer `P = V W₂` (`m x n`).
    p: Matrix,
    /// Orthogonal-factor scratch (tridiagonal `Q`, permutation staging).
    q: Matrix,
    /// Rotation accumulator for the tridiagonal QL iteration.
    z: Matrix,
    /// Transposed-input staging for wide (`m < n`) SVD inputs.
    at: Matrix,
    /// Diagonal of the reduced (bi/tri)diagonal form.
    d: Vec<f64>,
    /// Off-diagonal of the reduced form (shifted NR layout for the SVD).
    e: Vec<f64>,
    /// Length-`max(m, n)` vector scratch.
    small: Vec<f64>,
    /// Second vector scratch.
    small2: Vec<f64>,
    /// Deferred Givens cosines (row-swept application).
    cs: Vec<f64>,
    /// Deferred Givens sines.
    sn: Vec<f64>,
    /// Second deferred rotation buffer (the SVD needs U- and V-streams).
    cs2: Vec<f64>,
    /// Second deferred rotation buffer.
    sn2: Vec<f64>,
    /// Descending-order permutation of the computed spectrum.
    perm: Vec<usize>,
    /// `dlabrd` panel accumulator `X` (`m x PANEL`): column `j` holds
    /// `β'·Ã·u` for the panel's `j`-th right reflector.
    x: Matrix,
    /// `dlabrd` panel accumulator `Y` (`n x PANEL`): column `j` holds
    /// `β·Ãᵀ·v` for the panel's `j`-th left reflector.
    y: Matrix,
    /// Panel correction coefficients (four `PANEL`-long sections:
    /// `u1`, `u2` for the `Y` columns, `v1`, `v2` for the `X` columns).
    coef: Vec<f64>,
    /// Subspace-iteration staging for [`crate::svd::svd_truncated_with`]:
    /// the current right basis `V` (`n x p`).
    pub(crate) trunc_v: Matrix,
    /// Truncated-SVD staging: `A·V` (`m x p`).
    pub(crate) trunc_av: Matrix,
    /// Truncated-SVD staging: `Aᵀ·(A·V)` (`n x p`).
    pub(crate) trunc_atav: Matrix,
    /// Truncated-SVD staging: the re-orthonormalization QR output.
    pub(crate) trunc_qr: Qr,
    /// Truncated-SVD staging: the projection-SVD output.
    pub(crate) trunc_svd: Svd,
    /// Truncated-SVD staging: current singular-value estimates.
    pub(crate) trunc_sv: Vec<f64>,
    /// Truncated-SVD staging: previous iteration's estimates.
    pub(crate) trunc_prev: Vec<f64>,
}

impl FactorWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        FactorWorkspace::default()
    }
}

// ---------------------------------------------------------------------------
// Shared Householder + compact-WY machinery
// ---------------------------------------------------------------------------

/// Computes the Householder reflector of `store`'s column `col` over rows
/// `row0..rows`, reading the source values from `src`'s same region, using
/// the exact arithmetic of the scalar reference: `α = −sign(x₀)‖x‖`,
/// `v = x − α e₁`, `H = I − (2/vᵀv) v vᵀ`. Writes `v` into `store` column
/// `col` (zero elsewhere is the caller's invariant), records `vᵀv` in
/// `n2[col]`, and returns `α` (0 for an identity reflector).
fn householder_col(
    src: &Matrix,
    src_col: usize,
    row0: usize,
    rows: usize,
    store: &mut Matrix,
    n2: &mut [f64],
    col: usize,
) -> f64 {
    for i in row0..rows {
        store[(i, col)] = src[(i, src_col)];
    }
    let norm = (row0..rows)
        .map(|i| store[(i, col)] * store[(i, col)])
        .sum::<f64>()
        .sqrt();
    let alpha = if store[(row0, col)] >= 0.0 {
        -norm
    } else {
        norm
    };
    if alpha == 0.0 {
        for i in row0..rows {
            store[(i, col)] = 0.0;
        }
        n2[col] = 0.0;
        return 0.0;
    }
    store[(row0, col)] -= alpha;
    let vnorm2 = (row0..rows)
        .map(|i| store[(i, col)] * store[(i, col)])
        .sum::<f64>();
    if vnorm2 == 0.0 {
        for i in row0..rows {
            store[(i, col)] = 0.0;
        }
        n2[col] = 0.0;
        return 0.0;
    }
    n2[col] = vnorm2;
    alpha
}

/// Builds the compact-WY triangular factor `T` (upper triangular,
/// `nb x nb`) for reflector columns `k0..k0+nb` of `v`, so that
/// `H_{k0} ⋯ H_{k0+nb−1} = I − V T Vᵀ` with `βⱼ = 2/vⱼᵀvⱼ`.
fn build_t(v: &Matrix, n2: &[f64], k0: usize, nb: usize, t: &mut Matrix, tmp: &mut Vec<f64>) {
    let rows = v.rows();
    t.reset_shape(nb, nb);
    tmp.clear();
    tmp.resize(nb, 0.0);
    for j in 0..nb {
        let col = k0 + j;
        let beta = if n2[col] == 0.0 { 0.0 } else { 2.0 / n2[col] };
        // tmp = V_{0..j}ᵀ v_j (v_j's support starts at row `col`).
        for (i, tv) in tmp.iter_mut().enumerate().take(j) {
            let mut s = 0.0;
            for r in col..rows {
                s += v[(r, k0 + i)] * v[(r, col)];
            }
            *tv = s;
        }
        // T_{0..j, j} = −βⱼ · T_{0..j,0..j} · tmp ; T_{j,j} = βⱼ.
        for i in 0..j {
            let mut s = 0.0;
            for (l, &tv) in tmp.iter().enumerate().take(j).skip(i) {
                s += t[(i, l)] * tv;
            }
            t[(i, j)] = -beta * s;
        }
        t[(j, j)] = beta;
    }
}

/// Applies the block reflector of columns `k0..k1` of `v` to
/// `target[k0.., col0..]`: `B ← B − V T' (Vᵀ B)` where `T' = Tᵀ` when
/// `t_trans` (the trailing update applies `(I − V T Vᵀ)ᵀ`) and `T' = T`
/// otherwise (forward products, used by the backward accumulation).
/// Three GEMMs on the kernel layer; all scratch lives in `ws`.
#[allow(clippy::too_many_arguments)]
fn apply_block_reflector(
    v: &Matrix,
    n2: &[f64],
    k0: usize,
    k1: usize,
    t_trans: bool,
    target: &mut Matrix,
    col0: usize,
    t: &mut Matrix,
    w: &mut Matrix,
    w2: &mut Matrix,
    p: &mut Matrix,
    tmp: &mut Vec<f64>,
) {
    let nb = k1 - k0;
    let rows = target.rows();
    let ld = target.cols();
    let cols = ld - col0;
    if nb == 0 || cols == 0 || rows <= k0 {
        return;
    }
    build_t(v, n2, k0, nb, t, tmp);
    let vld = v.cols();
    let band = rows - k0;
    // W = Vᵀ · B  (nb x cols).
    w.reset_shape(nb, cols);
    kernels::gemm(
        &v.as_slice()[k0 * vld + k0..],
        Op::Trans,
        vld,
        &target.as_slice()[k0 * ld + col0..],
        Op::NoTrans,
        ld,
        w.as_mut_slice(),
        nb,
        cols,
        band,
    );
    // W₂ = T' · W  (nb x cols).
    w2.reset_shape(nb, cols);
    kernels::gemm(
        t.as_slice(),
        if t_trans { Op::Trans } else { Op::NoTrans },
        nb,
        w.as_slice(),
        Op::NoTrans,
        cols,
        w2.as_mut_slice(),
        nb,
        cols,
        nb,
    );
    // P = V · W₂  (band x cols), then B ← B − P.
    p.reset_shape(band, cols);
    kernels::gemm(
        &v.as_slice()[k0 * vld + k0..],
        Op::NoTrans,
        vld,
        w2.as_slice(),
        Op::NoTrans,
        cols,
        p.as_mut_slice(),
        band,
        cols,
        nb,
    );
    for i in 0..band {
        let dst = &mut target.row_mut(k0 + i)[col0..];
        for (dv, &pv) in dst.iter_mut().zip(p.row(i).iter()) {
            *dv -= pv;
        }
    }
}

/// Accumulates `Q ← H_0 H_1 ⋯ H_{K−1} · Q` by backward application of the
/// reflectors stored in `v`'s columns (column `j`'s support starts at row
/// `j`). Scalar reference arithmetic when `K <= PANEL` (bit-identity with
/// the unblocked algorithms), blocked compact-WY otherwise.
fn accumulate_reflectors(v: &Matrix, n2: &[f64], q: &mut Matrix, ws: &mut ScratchRefs<'_>) {
    let k_total = n2.len();
    let rows = q.rows();
    let cols = q.cols();
    if k_total <= PANEL {
        for k in (0..k_total).rev() {
            let vn = n2[k];
            if vn == 0.0 {
                continue;
            }
            for j in 0..cols {
                let dot: f64 = (k..rows).map(|i| v[(i, k)] * q[(i, j)]).sum();
                let s = 2.0 * dot / vn;
                for i in k..rows {
                    q[(i, j)] -= s * v[(i, k)];
                }
            }
        }
        return;
    }
    let mut k0 = (k_total - 1) / PANEL * PANEL;
    loop {
        let k1 = (k0 + PANEL).min(k_total);
        apply_block_reflector(v, n2, k0, k1, false, q, 0, ws.t, ws.w, ws.w2, ws.p, ws.tmp);
        if k0 == 0 {
            break;
        }
        k0 -= PANEL;
    }
}

/// Mutable views over the block-apply scratch, so the driver loops can
/// borrow the reflector stores and the scratch simultaneously.
struct ScratchRefs<'a> {
    t: &'a mut Matrix,
    w: &'a mut Matrix,
    w2: &'a mut Matrix,
    p: &'a mut Matrix,
    tmp: &'a mut Vec<f64>,
}

// ---------------------------------------------------------------------------
// Blocked QR
// ---------------------------------------------------------------------------

/// Blocked Householder QR into a caller-owned [`Qr`] and
/// [`FactorWorkspace`] — the allocation-free variant of [`crate::qr::qr`].
///
/// `a` is `m x n` with `m >= n`; `out.q` becomes the thin `m x n`
/// orthonormal factor and `out.r` the `n x n` upper triangle. See the
/// [module docs](self) for the blocking scheme and the bit-identity
/// guarantee at `n <= PANEL`.
pub fn qr_with(a: &Matrix, ws: &mut FactorWorkspace, out: &mut Qr) -> Result<()> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::ShapeMismatch {
            expected: (n, n),
            got: (m, n),
            op: "qr (requires rows >= cols)",
        });
    }
    ws.work.reset_shape(m, n);
    ws.work.as_mut_slice().copy_from_slice(a.as_slice());
    ws.vl.reset_shape(m, n);
    ws.vl_n2.clear();
    ws.vl_n2.resize(n, 0.0);

    let mut k0 = 0;
    while k0 < n {
        let k1 = (k0 + PANEL).min(n);
        for k in k0..k1 {
            let alpha = householder_col(&ws.work, k, k, m, &mut ws.vl, &mut ws.vl_n2, k);
            if alpha == 0.0 {
                continue;
            }
            let vn = ws.vl_n2[k];
            // Scalar reference application to the panel's own columns.
            for j in k..k1 {
                let dot: f64 = (k..m).map(|i| ws.vl[(i, k)] * ws.work[(i, j)]).sum();
                let s = 2.0 * dot / vn;
                for i in k..m {
                    ws.work[(i, j)] -= s * ws.vl[(i, k)];
                }
            }
        }
        if k1 < n {
            // Trailing update B ← (I − V T Vᵀ)ᵀ B via two GEMMs.
            apply_block_reflector(
                &ws.vl,
                &ws.vl_n2,
                k0,
                k1,
                true,
                &mut ws.work,
                k1,
                &mut ws.t,
                &mut ws.w,
                &mut ws.w2,
                &mut ws.p,
                &mut ws.small,
            );
        }
        k0 = k1;
    }

    // Thin Q by backward accumulation over the identity block.
    out.q.reset_shape(m, n);
    for j in 0..n {
        out.q[(j, j)] = 1.0;
    }
    let mut scratch = ScratchRefs {
        t: &mut ws.t,
        w: &mut ws.w,
        w2: &mut ws.w2,
        p: &mut ws.p,
        tmp: &mut ws.small,
    };
    accumulate_reflectors(&ws.vl, &ws.vl_n2, &mut out.q, &mut scratch);

    // R: upper triangle of the reduced working copy.
    out.r.reset_shape(n, n);
    for i in 0..n {
        for j in i..n {
            out.r[(i, j)] = ws.work[(i, j)];
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Blocked SVD (Golub–Kahan bidiagonalization + implicit-shift QR)
// ---------------------------------------------------------------------------

/// Blocked SVD into a caller-owned [`Svd`] and [`FactorWorkspace`] — the
/// allocation-free Golub–Kahan path behind [`crate::svd::svd`].
///
/// Any shape is accepted (wide inputs run on a transposed staging copy).
/// Returns [`LinalgError::NoConvergence`] if the implicit-shift iteration
/// fails (the dispatching [`crate::svd::svd`] falls back to one-sided
/// Jacobi in that case); `out` is unspecified on error.
pub fn svd_with(a: &Matrix, ws: &mut FactorWorkspace, out: &mut Svd) -> Result<()> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        out.u.reset_shape(m, 0);
        out.singular_values.clear();
        out.v.reset_shape(n, 0);
        return Ok(());
    }
    if m < n {
        // Stage the transpose and swap U/V afterwards.
        ws.at.reset_shape(n, m);
        for i in 0..m {
            for j in 0..n {
                ws.at[(j, i)] = a[(i, j)];
            }
        }
        let at = std::mem::take(&mut ws.at);
        let result = svd_core(&at, ws, out);
        ws.at = at;
        result?;
        std::mem::swap(&mut out.u, &mut out.v);
        return Ok(());
    }
    svd_core(a, ws, out)
}

/// [`svd_with`] core for `m >= n` inputs.
fn svd_core(a: &Matrix, ws: &mut FactorWorkspace, out: &mut Svd) -> Result<()> {
    let (m, n) = a.shape();

    // --- Golub–Kahan bidiagonalization -----------------------------------
    ws.work.reset_shape(m, n);
    ws.work.as_mut_slice().copy_from_slice(a.as_slice());
    ws.vl.reset_shape(m, n);
    ws.vl_n2.clear();
    ws.vl_n2.resize(n, 0.0);
    ws.vr.reset_shape(n, n);
    ws.vr_n2.clear();
    ws.vr_n2.resize(n, 0.0);
    ws.d.clear();
    ws.d.resize(n, 0.0);
    // NR-layout superdiagonal: e[0] = 0, e[i] couples d[i−1], d[i].
    ws.e.clear();
    ws.e.resize(n, 0.0);
    ws.small.clear();
    ws.small.resize(n, 0.0);

    bidiagonalize(ws, m, n);

    // --- Accumulate U (m x n) and V (n x n) on the GEMM layer -------------
    out.u.reset_shape(m, n);
    for j in 0..n {
        out.u[(j, j)] = 1.0;
    }
    {
        let mut scratch = ScratchRefs {
            t: &mut ws.t,
            w: &mut ws.w,
            w2: &mut ws.w2,
            p: &mut ws.p,
            tmp: &mut ws.small,
        };
        accumulate_reflectors(&ws.vl, &ws.vl_n2, &mut out.u, &mut scratch);
    }
    out.v.reset_shape(n, n);
    for j in 0..n {
        out.v[(j, j)] = 1.0;
    }
    {
        let mut scratch = ScratchRefs {
            t: &mut ws.t,
            w: &mut ws.w,
            w2: &mut ws.w2,
            p: &mut ws.p,
            tmp: &mut ws.small,
        };
        accumulate_reflectors(&ws.vr, &ws.vr_n2, &mut out.v, &mut scratch);
    }

    // --- Implicit-shift QR iteration on the bidiagonal --------------------
    bidiag_qr(ws, &mut out.u, &mut out.v)?;

    // --- Sort the spectrum descending and emit ----------------------------
    let d = &ws.d;
    ws.perm.clear();
    ws.perm.extend(0..n);
    // Unstable sort: allocation-free (the stable sort's merge buffer would
    // break the zero-alloc contract of the `_with` variants) and still
    // deterministic for a fixed input.
    ws.perm
        .sort_unstable_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("finite singular values"));
    out.singular_values.clear();
    out.singular_values.extend(ws.perm.iter().map(|&i| ws.d[i]));
    permute_cols(&mut out.u, &ws.perm, &mut ws.p);
    permute_cols(&mut out.v, &ws.perm, &mut ws.p);
    Ok(())
}

/// Golub–Kahan bidiagonalization of `ws.work` (`m x n`, `m >= n`),
/// producing left reflectors in `ws.vl`, right reflectors in `ws.vr`, the
/// diagonal in `ws.d` and the superdiagonal in `ws.e` (NR layout).
///
/// Dispatch: while more than [`PANEL`] columns remain, panels are reduced
/// by the BLAS-3 `dlabrd` scheme ([`bidiag_panel`]) and the trailing block
/// is updated by two GEMMs per panel; the final (or only) `<= PANEL`
/// columns run the streamed rank-1 reference ([`bidiagonalize_streamed`]).
/// A matrix with at most `PANEL` columns therefore takes the streamed path
/// end to end, which keeps single-panel results **bit-identical** to the
/// pre-blocking algorithm (property-tested); wider matrices agree to the
/// usual reordering tolerance (~1e-9 relative on the test spectra).
fn bidiagonalize(ws: &mut FactorWorkspace, m: usize, n: usize) {
    let mut k0 = 0;
    while n - k0 > PANEL {
        bidiag_panel(ws, m, n, k0);
        k0 += PANEL;
    }
    bidiagonalize_streamed(ws, m, n, k0);
}

/// Streamed rank-1 Golub–Kahan reduction of columns `k_start..n`: each
/// left/right reflector is applied to the whole trailing block before the
/// next one is formed. This is the reference arithmetic the panel path
/// must reproduce, and the production path for the last partial panel.
fn bidiagonalize_streamed(ws: &mut FactorWorkspace, m: usize, n: usize, k_start: usize) {
    for k in k_start..n {
        // Left reflector zeroing column k below the diagonal.
        let alpha = householder_col(&ws.work, k, k, m, &mut ws.vl, &mut ws.vl_n2, k);
        if alpha != 0.0 {
            let vn = ws.vl_n2[k];
            // w = Bᵀ v over the trailing block, streamed row-major.
            let w = &mut ws.small;
            for wj in w.iter_mut().take(n).skip(k) {
                *wj = 0.0;
            }
            for i in k..m {
                let vi = ws.vl[(i, k)];
                if vi == 0.0 {
                    continue;
                }
                let row = ws.work.row(i);
                for (wj, &bv) in w[k..n].iter_mut().zip(row[k..].iter()) {
                    *wj += vi * bv;
                }
            }
            // B ← B − (2/vᵀv) v wᵀ.
            for i in k..m {
                let c = 2.0 * ws.vl[(i, k)] / vn;
                if c == 0.0 {
                    continue;
                }
                let row = ws.work.row_mut(i);
                for (bv, &wj) in row[k..].iter_mut().zip(w[k..n].iter()) {
                    *bv -= c * wj;
                }
            }
        }
        ws.d[k] = ws.work[(k, k)];

        if k + 2 < n {
            // Right reflector zeroing row k beyond the superdiagonal. The
            // reflector lives in vr column k+1 (support rows k+1..n).
            let col = k + 1;
            let norm = (col..n)
                .map(|j| ws.work[(k, j)] * ws.work[(k, j)])
                .sum::<f64>()
                .sqrt();
            let alpha = if ws.work[(k, col)] >= 0.0 {
                -norm
            } else {
                norm
            };
            if alpha != 0.0 {
                for j in col..n {
                    ws.vr[(j, col)] = ws.work[(k, j)];
                }
                ws.vr[(col, col)] -= alpha;
                let vn = (col..n)
                    .map(|j| ws.vr[(j, col)] * ws.vr[(j, col)])
                    .sum::<f64>();
                if vn != 0.0 {
                    ws.vr_n2[col] = vn;
                    // Apply from the right to rows k..m: contiguous row dots.
                    for i in k..m {
                        let row = ws.work.row_mut(i);
                        let mut z = 0.0;
                        for (j, &rv) in row.iter().enumerate().skip(col) {
                            z += ws.vr[(j, col)] * rv;
                        }
                        let c = 2.0 * z / vn;
                        if c != 0.0 {
                            for (j, rv) in row.iter_mut().enumerate().skip(col) {
                                *rv -= c * ws.vr[(j, col)];
                            }
                        }
                    }
                } else {
                    for j in col..n {
                        ws.vr[(j, col)] = 0.0;
                    }
                }
            }
            ws.e[k + 1] = ws.work[(k, k + 1)];
        } else if k + 1 < n {
            ws.e[k + 1] = ws.work[(k, k + 1)];
        }
    }
}

/// `dlabrd`-style BLAS-3 panel step: reduces columns `k0..k0+PANEL` to
/// bidiagonal form while only touching the panel's own rows/columns, then
/// applies the accumulated update to the trailing block as **two GEMMs**.
///
/// Instead of applying each reflector to the whole trailing block (the
/// streamed path's `2·PANEL` rank-1 sweeps), the update is kept factored:
/// after the panel, the trailing block satisfies
///
/// ```text
/// A ← A − V_l · Yᵀ − X · V_rᵀ
/// ```
///
/// where column `j` of `Y = β·Ãᵀ·v_j` / `X = β'·Ã·u_j` is the (scaled)
/// product of the *virtually updated* matrix `Ã` with the panel's `j`-th
/// left/right reflector. Within the panel, only the current column (step 1)
/// and row (step 4) are materialized, with the lazy contributions folded in
/// via short fused dot products; the `Y`/`X` columns themselves are
/// corrected for the panel's earlier reflectors through the `u1/u2/v1/v2`
/// coefficient vectors (LAPACK `dlabrd`'s five GEMV shapes, here as fused
/// row sweeps on [`kernels::dot`]/[`kernels::axpy`]). This moves roughly
/// half of the bidiagonalization's flops — the trailing update — onto the
/// blocked GEMM kernel; the other half (the `Y`/`X` products) streams
/// through the SIMD dot/axpy primitives.
fn bidiag_panel(ws: &mut FactorWorkspace, m: usize, n: usize, k0: usize) {
    let nb = PANEL;
    let k1 = k0 + nb;
    debug_assert!(k1 < n, "panel must have a trailing block");
    let FactorWorkspace {
        work,
        vl,
        vl_n2,
        vr,
        vr_n2,
        x,
        y,
        d,
        e,
        small,
        small2,
        coef,
        p,
        ..
    } = ws;
    x.reset_shape(m, nb);
    y.reset_shape(n, nb);
    small2.resize(m.max(n), 0.0);
    coef.resize(4 * nb, 0.0);
    let isa = kernels::active_isa();

    for i in k0..k1 {
        let jl = i - k0; // local reflector index within the panel
        let (u1, rest) = coef.split_at_mut(nb);
        let (u2, rest) = rest.split_at_mut(nb);
        let (v1, v2) = rest.split_at_mut(nb);

        // (1) Materialize column i (rows i..m): fold in the panel's lazy
        //     updates, work(r,i) −= vl_r·y_i + x_r·u_i.
        if jl > 0 {
            let y_row_i = &y.row(i)[..jl];
            let vr_row_i = &vr.row(i)[k0 + 1..k0 + 1 + jl];
            for r in i..m {
                let lhs = kernels::dot_with_isa(isa, &vl.row(r)[k0..i], y_row_i);
                let rhs = kernels::dot_with_isa(isa, &x.row(r)[..jl], vr_row_i);
                work[(r, i)] -= lhs + rhs;
            }
        }

        // (2) Left Householder on the updated column i.
        let alpha = householder_col(work, i, i, m, vl, vl_n2, i);
        d[i] = if alpha != 0.0 { alpha } else { work[(i, i)] };

        // (3) Y column jl = β·Ãᵀ·v over cols i+1..n: raw product against
        //     the stale block plus u1/u2 corrections for the panel's
        //     earlier reflectors (all in one row sweep over work).
        if alpha != 0.0 {
            let beta = 2.0 / vl_n2[i];
            let y_raw = &mut small2[..n];
            y_raw[i + 1..n].fill(0.0);
            u1[..jl].fill(0.0);
            u2[..jl].fill(0.0);
            for r in i..m {
                let vi = vl[(r, i)];
                if vi == 0.0 {
                    continue;
                }
                kernels::axpy_with_isa(isa, vi, &work.row(r)[i + 1..], &mut y_raw[i + 1..n]);
                kernels::axpy_with_isa(isa, vi, &vl.row(r)[k0..i], &mut u1[..jl]);
                kernels::axpy_with_isa(isa, vi, &x.row(r)[..jl], &mut u2[..jl]);
            }
            for c in i + 1..n {
                let corr = kernels::dot_with_isa(isa, &y.row(c)[..jl], &u1[..jl])
                    + kernels::dot_with_isa(isa, &vr.row(c)[k0 + 1..k0 + 1 + jl], &u2[..jl]);
                y[(c, jl)] = beta * (small2[c] - corr);
            }
        }
        // α == 0 leaves Y's column zero (reset_shape) — a no-op reflector.

        // (4) Materialize row i (cols i+1..n), now including the left
        //     reflector just formed (t = jl term uses the fresh Y column).
        {
            let vl_row_i = &vl.row(i)[k0..i + 1];
            let x_row_i = &x.row(i)[..jl];
            for c in i + 1..n {
                let lhs = kernels::dot_with_isa(isa, vl_row_i, &y.row(c)[..jl + 1]);
                let rhs = kernels::dot_with_isa(isa, x_row_i, &vr.row(c)[k0 + 1..k0 + 1 + jl]);
                work[(i, c)] -= lhs + rhs;
            }
        }

        // (5) Right Householder on the updated row i (stored in vr column
        //     i+1, support rows i+1..n), exactly as the streamed path.
        let mut have_right = false;
        if i + 2 < n {
            let col = i + 1;
            let row_i = work.row(i);
            let norm = row_i[col..n].iter().map(|&v| v * v).sum::<f64>().sqrt();
            let alpha_r = if row_i[col] >= 0.0 { -norm } else { norm };
            if alpha_r != 0.0 {
                for j in col..n {
                    vr[(j, col)] = work[(i, j)];
                }
                vr[(col, col)] -= alpha_r;
                let vn = (col..n).map(|j| vr[(j, col)] * vr[(j, col)]).sum::<f64>();
                if vn != 0.0 {
                    vr_n2[col] = vn;
                    e[i + 1] = alpha_r;
                    have_right = true;
                } else {
                    for j in col..n {
                        vr[(j, col)] = 0.0;
                    }
                }
            }
            if !have_right {
                e[i + 1] = work[(i, col)];
            }
        } else {
            // i + 2 == n: the trailing block is one column — no right
            // reflector (mirrors the streamed `k + 2 < n` condition).
            e[i + 1] = work[(i, i + 1)];
        }

        // (6) X column jl = β'·Ã·u over rows i+1..m: raw row dots against
        //     the stale block, corrected by v1 (left reflectors t <= jl,
        //     via Y) and v2 (right reflectors t < jl).
        if have_right {
            let col = i + 1;
            let beta_r = 2.0 / vr_n2[col];
            // Contiguous copy of u (vr column i+1) for the row dots.
            let u = &mut small[..n];
            for (j, uj) in u.iter_mut().enumerate().skip(col) {
                *uj = vr[(j, col)];
            }
            v1[..jl + 1].fill(0.0);
            v2[..jl].fill(0.0);
            for c in col..n {
                let uc = vr[(c, col)];
                if uc == 0.0 {
                    continue;
                }
                kernels::axpy_with_isa(isa, uc, &y.row(c)[..jl + 1], &mut v1[..jl + 1]);
                kernels::axpy_with_isa(isa, uc, &vr.row(c)[k0 + 1..k0 + 1 + jl], &mut v2[..jl]);
            }
            let u = &small[col..n];
            for r in i + 1..m {
                let raw = kernels::dot_with_isa(isa, &work.row(r)[col..], u);
                let corr = kernels::dot_with_isa(isa, &vl.row(r)[k0..i + 1], &v1[..jl + 1])
                    + kernels::dot_with_isa(isa, &x.row(r)[..jl], &v2[..jl]);
                x[(r, jl)] = beta_r * (raw - corr);
            }
        }
        // No right reflector leaves X's column zero — a no-op update.
    }

    // Trailing update A ← A − V_l·Yᵀ − X·V_rᵀ over rows/cols k1.., as two
    // GEMMs on the kernel layer (the BLAS-3 payoff of the panel scheme).
    let rows = m - k1;
    let cols = n - k1;
    let ld = n;
    p.reset_shape(rows, cols);
    kernels::gemm(
        &vl.as_slice()[k1 * vl.cols() + k0..],
        Op::NoTrans,
        vl.cols(),
        &y.as_slice()[k1 * nb..],
        Op::Trans,
        nb,
        p.as_mut_slice(),
        rows,
        cols,
        nb,
    );
    for r in 0..rows {
        let dst = &mut work.row_mut(k1 + r)[k1..];
        for (dv, &pv) in dst.iter_mut().zip(p.row(r).iter()) {
            *dv -= pv;
        }
    }
    p.reset_shape(rows, cols);
    kernels::gemm(
        &x.as_slice()[k1 * nb..],
        Op::NoTrans,
        nb,
        &vr.as_slice()[k1 * ld + k0 + 1..],
        Op::Trans,
        ld,
        p.as_mut_slice(),
        rows,
        cols,
        nb,
    );
    for r in 0..rows {
        let dst = &mut work.row_mut(k1 + r)[k1..];
        for (dv, &pv) in dst.iter_mut().zip(p.row(r).iter()) {
            *dv -= pv;
        }
    }
}

/// Reorders `m`'s columns as `m[:, perm[dst]] → dst` through the staging
/// buffer `stage`.
fn permute_cols(m: &mut Matrix, perm: &[usize], stage: &mut Matrix) {
    let (rows, cols) = m.shape();
    stage.reset_shape(rows, cols);
    stage.as_mut_slice().copy_from_slice(m.as_slice());
    for (dst, &src) in perm.iter().enumerate() {
        if dst == src {
            continue;
        }
        for i in 0..rows {
            m[(i, dst)] = stage[(i, src)];
        }
    }
}

/// Transposes `src` into `dst` (reshaped to fit; allocation-free once
/// `dst`'s backing buffer has grown to size).
fn transpose_into(src: &Matrix, dst: &mut Matrix) {
    let (r, c) = src.shape();
    dst.reset_shape(c, r);
    for i in 0..r {
        for (j, &x) in src.row(i).iter().enumerate() {
            dst[(j, i)] = x;
        }
    }
}

/// Applies the Givens rotation `(c, s)` to rows `i < j` of `mat`
/// elementwise: `row_i ← c·row_i + s·row_j`, `row_j ← c·row_j − s·row_i`
/// (old values on the right). The two rows are contiguous and every
/// element is independent, so the loop auto-vectorizes.
#[inline]
fn rot_rows(mat: &mut Matrix, i: usize, j: usize, c: f64, s: f64) {
    let cols = mat.cols();
    let (head, tail) = mat.as_mut_slice().split_at_mut(j * cols);
    let ra = &mut head[i * cols..(i + 1) * cols];
    let rb = &mut tail[..cols];
    for (x, z) in ra.iter_mut().zip(rb.iter_mut()) {
        let xv = *x;
        let zv = *z;
        *x = xv * c + zv * s;
        *z = zv * c - xv * s;
    }
}

/// Implicit-shift QR iteration on the bidiagonal `(ws.d, ws.e)` with
/// rotations accumulated into `u` / `v` columns. `ws.e` uses the shifted
/// layout `e[i]` couples `d[i−1], d[i]` (`e[0]` unused and zero).
///
/// The rotations act on *column pairs* of `u`/`v`; applied directly to the
/// row-major layout that is a strided sweep with a serial dependency along
/// each row, which defeats vectorization. Instead the iteration runs on
/// the **transposes** (staged in the panel `ws.x`/`ws.y` buffers, idle by
/// this phase), where each rotation is an elementwise pass over two
/// contiguous rows ([`rot_rows`]) that the compiler vectorizes. Each
/// element still sees the same operations in the same order as the direct
/// column sweep, so the results are bit-identical — only the loop nest
/// changes. The transposes are folded back into `u`/`v` on success.
fn bidiag_qr(ws: &mut FactorWorkspace, u: &mut Matrix, v: &mut Matrix) -> Result<()> {
    let n = ws.d.len();
    let eps = f64::EPSILON;
    let mut anorm = 0.0f64;
    for i in 0..n {
        anorm = anorm.max(ws.d[i].abs() + ws.e[i].abs());
    }
    let tiny = eps * anorm;

    transpose_into(u, &mut ws.x);
    transpose_into(v, &mut ws.y);
    let ut = &mut ws.x;
    let vt = &mut ws.y;

    for k in (0..n).rev() {
        let mut its = 0;
        loop {
            // Find the start of the unreduced block ending at k.
            let mut l = k;
            let mut cancel = false;
            loop {
                if l == 0 || ws.e[l].abs() <= tiny {
                    ws.e[l] = 0.0;
                    break;
                }
                if ws.d[l - 1].abs() <= tiny {
                    cancel = true;
                    break;
                }
                l -= 1;
            }
            if cancel {
                // d[l−1] ~ 0: annihilate e[l] with rotations against row
                // l−1, accumulated into U.
                ws.cs.clear();
                ws.sn.clear();
                let first = l;
                let mut c = 0.0f64;
                let mut s = 1.0f64;
                for i in l..=k {
                    let f = s * ws.e[i];
                    ws.e[i] *= c;
                    if f.abs() <= tiny {
                        break;
                    }
                    let g = ws.d[i];
                    let h = f.hypot(g);
                    ws.d[i] = h;
                    c = g / h;
                    s = -f / h;
                    ws.cs.push(c);
                    ws.sn.push(s);
                }
                // Deferred application: pairs (l−1, i) for consecutive i
                // from `first`, as row pairs of the transposed U.
                for (idx, (&c, &s)) in ws.cs.iter().zip(ws.sn.iter()).enumerate() {
                    rot_rows(ut, l - 1, first + idx, c, s);
                }
            }
            let z = ws.d[k];
            if l == k {
                if z < 0.0 {
                    ws.d[k] = -z;
                    for x in vt.row_mut(k).iter_mut() {
                        *x = -*x;
                    }
                }
                break;
            }
            its += 1;
            if its > MAX_SHIFT_ITERS {
                return Err(LinalgError::NoConvergence {
                    op: "svd (implicit-shift bidiagonal QR)",
                    iterations: MAX_SHIFT_ITERS,
                });
            }
            // Wilkinson-style shift from the trailing 2x2 of BᵀB.
            let x = ws.d[l];
            let nm = k - 1;
            let y = ws.d[nm];
            let mut g = ws.e[nm];
            let mut h = ws.e[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
            g = f.hypot(1.0);
            let sg = if f >= 0.0 { g.abs() } else { -g.abs() };
            f = ((x - z) * (x + z) + h * (y / (f + sg) - h)) / x;
            // Chase the bulge; defer the U/V rotations for row sweeps.
            ws.cs.clear();
            ws.sn.clear();
            ws.cs2.clear();
            ws.sn2.clear();
            let mut c = 1.0f64;
            let mut s = 1.0f64;
            let mut x = x;
            for j in l..=nm {
                let i = j + 1;
                g = ws.e[i];
                let mut y = ws.d[i];
                h = s * g;
                g *= c;
                let mut zr = f.hypot(h);
                ws.e[j] = zr;
                c = f / zr;
                s = h / zr;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                ws.cs.push(c);
                ws.sn.push(s);
                zr = f.hypot(h);
                ws.d[j] = zr;
                if zr != 0.0 {
                    c = f / zr;
                    s = h / zr;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                ws.cs2.push(c);
                ws.sn2.push(s);
            }
            ws.e[l] = 0.0;
            ws.e[k] = f;
            ws.d[k] = x;
            // Deferred rotation application: V takes the (cs, sn) stream,
            // U the (cs2, sn2) stream, pairs (j, j+1) for j = l..=nm, each
            // an elementwise pass over two rows of the transpose.
            for (idx, j) in (l..=nm).enumerate() {
                rot_rows(vt, j, j + 1, ws.cs[idx], ws.sn[idx]);
            }
            for (idx, j) in (l..=nm).enumerate() {
                rot_rows(ut, j, j + 1, ws.cs2[idx], ws.sn2[idx]);
            }
        }
    }
    transpose_into(ut, u);
    transpose_into(vt, v);
    Ok(())
}

// ---------------------------------------------------------------------------
// Blocked symmetric eigendecomposition
// ---------------------------------------------------------------------------

/// Blocked symmetric eigendecomposition into a caller-owned
/// [`SymmetricEig`] and [`FactorWorkspace`] — the allocation-free
/// tridiagonalization + implicit-QL path behind
/// [`crate::eig::symmetric_eig`].
///
/// Only the symmetric part of `a` is read (the input is symmetrized into
/// the working copy, like the Jacobi path). Returns
/// [`LinalgError::NoConvergence`] if the QL iteration stalls (the
/// dispatching entry point falls back to Jacobi); `out` is unspecified on
/// error.
pub fn symmetric_eig_with(
    a: &Matrix,
    ws: &mut FactorWorkspace,
    out: &mut SymmetricEig,
) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            got: a.shape(),
            op: "symmetric_eig",
        });
    }
    let n = a.rows();
    if n == 0 {
        out.eigenvalues.clear();
        out.eigenvectors.reset_shape(0, 0);
        return Ok(());
    }

    // --- Householder tridiagonalization ----------------------------------
    ws.work.reset_shape(n, n);
    ws.work.as_mut_slice().copy_from_slice(a.as_slice());
    ws.work.symmetrize();
    ws.vr.reset_shape(n, n);
    ws.vr_n2.clear();
    ws.vr_n2.resize(n, 0.0);
    ws.d.clear();
    ws.d.resize(n, 0.0);
    // EISPACK layout: e[i] couples d[i], d[i+1]; e[n-1] is iteration
    // scratch (always zero between steps).
    ws.e.clear();
    ws.e.resize(n, 0.0);
    ws.small.clear();
    ws.small.resize(n, 0.0);
    ws.small2.clear();
    ws.small2.resize(n, 0.0);

    for k in 0..n.saturating_sub(2) {
        // Reflector zeroing column k below the subdiagonal; stored in vr
        // column k+1 (support rows k+1..n).
        let col = k + 1;
        let alpha = householder_col(&ws.work, k, col, n, &mut ws.vr, &mut ws.vr_n2, col);
        ws.e[k] = if alpha == 0.0 {
            ws.work[(col, k)]
        } else {
            alpha
        };
        if alpha == 0.0 {
            continue;
        }
        let vn = ws.vr_n2[col];
        let beta = 2.0 / vn;
        // p = β A v over the trailing block (rows/cols k+1..n).
        let p = &mut ws.small;
        let w = &mut ws.small2;
        for (i, pi) in p.iter_mut().enumerate().take(n).skip(col) {
            let row = ws.work.row(i);
            let mut s = 0.0;
            for (j, &rv) in row.iter().enumerate().skip(col) {
                s += rv * ws.vr[(j, col)];
            }
            *pi = beta * s;
        }
        // w = p − (β/2)(pᵀv) v ; A ← A − v wᵀ − w vᵀ.
        let kdot: f64 = (col..n).map(|i| p[i] * ws.vr[(i, col)]).sum();
        let half = 0.5 * beta * kdot;
        for i in col..n {
            w[i] = p[i] - half * ws.vr[(i, col)];
        }
        for i in col..n {
            let vi = ws.vr[(i, col)];
            let wi = w[i];
            let row = ws.work.row_mut(i);
            for j in col..n {
                row[j] -= vi * w[j] + wi * ws.vr[(j, col)];
            }
        }
    }
    for i in 0..n {
        ws.d[i] = ws.work[(i, i)];
    }
    if n >= 2 {
        ws.e[n - 2] = ws.work[(n - 2, n - 1)];
    }

    // --- Accumulate the reflector product Q (n x n) -----------------------
    ws.q.reset_shape(n, n);
    for j in 0..n {
        ws.q[(j, j)] = 1.0;
    }
    {
        let vr = std::mem::take(&mut ws.vr);
        let vr_n2 = std::mem::take(&mut ws.vr_n2);
        let mut q = std::mem::take(&mut ws.q);
        let mut scratch = ScratchRefs {
            t: &mut ws.t,
            w: &mut ws.w,
            w2: &mut ws.w2,
            p: &mut ws.p,
            tmp: &mut ws.small,
        };
        accumulate_reflectors(&vr, &vr_n2, &mut q, &mut scratch);
        ws.vr = vr;
        ws.vr_n2 = vr_n2;
        ws.q = q;
    }

    // --- Implicit-shift QL on the tridiagonal (tql2) ----------------------
    ws.z.reset_shape(n, n);
    for j in 0..n {
        ws.z[(j, j)] = 1.0;
    }
    tql2(ws)?;

    // --- Eigenvectors = Q · Z, sorted descending --------------------------
    let d = &ws.d;
    ws.perm.clear();
    ws.perm.extend(0..n);
    ws.perm
        .sort_unstable_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("finite eigenvalues"));
    out.eigenvalues.clear();
    out.eigenvalues.extend(ws.perm.iter().map(|&i| ws.d[i]));
    out.eigenvectors.reset_shape(n, n);
    kernels::gemm(
        ws.q.as_slice(),
        Op::NoTrans,
        n,
        ws.z.as_slice(),
        Op::NoTrans,
        n,
        out.eigenvectors.as_mut_slice(),
        n,
        n,
        n,
    );
    permute_cols(&mut out.eigenvectors, &ws.perm, &mut ws.p);
    Ok(())
}

/// [`rot_rows`] with the QL sign convention of [`tql2`]:
/// `row_j ← s·row_i + c·row_j`, `row_i ← c·row_i − s·row_j` (old values on
/// the right), for rows `i < j`.
#[inline]
fn rot_rows_ql(mat: &mut Matrix, i: usize, j: usize, c: f64, s: f64) {
    let cols = mat.cols();
    let (head, tail) = mat.as_mut_slice().split_at_mut(j * cols);
    let ra = &mut head[i * cols..(i + 1) * cols];
    let rb = &mut tail[..cols];
    for (x, z) in ra.iter_mut().zip(rb.iter_mut()) {
        let f = *z;
        *z = s * *x + c * f;
        *x = c * *x - s * f;
    }
}

/// EISPACK `tql2`: implicit-shift QL on the tridiagonal `(ws.d, ws.e)`
/// with rotations accumulated into `ws.z` (deferred per step and applied
/// in one row sweep). `ws.e[i]` couples `d[i], d[i+1]`.
///
/// Like [`bidiag_qr`], the rotation sweeps run on the **transpose** of the
/// accumulator (staged in `ws.x`), turning each strided column-pair update
/// into a vectorizable pass over two contiguous rows with bit-identical
/// per-element arithmetic; `ws.z` is rebuilt from the transpose on
/// success.
fn tql2(ws: &mut FactorWorkspace) -> Result<()> {
    let n = ws.d.len();
    let eps = f64::EPSILON;
    transpose_into(&ws.z, &mut ws.x);
    for l in 0..n {
        let mut iter = 0;
        loop {
            let mut mm = l;
            while mm + 1 < n {
                let dd = ws.d[mm].abs() + ws.d[mm + 1].abs();
                if ws.e[mm].abs() <= eps * dd {
                    break;
                }
                mm += 1;
            }
            if mm == l {
                break;
            }
            iter += 1;
            if iter > MAX_SHIFT_ITERS {
                return Err(LinalgError::NoConvergence {
                    op: "symmetric_eig (implicit QL)",
                    iterations: MAX_SHIFT_ITERS,
                });
            }
            let mut g = (ws.d[l + 1] - ws.d[l]) / (2.0 * ws.e[l]);
            let mut r = g.hypot(1.0);
            let sg = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = ws.d[mm] - ws.d[l] + ws.e[l] / (g + sg);
            let mut s = 1.0f64;
            let mut c = 1.0f64;
            let mut p = 0.0f64;
            ws.cs.clear();
            ws.sn.clear();
            let mut underflow = false;
            let mut stop_i = l;
            for i in (l..mm).rev() {
                let f = s * ws.e[i];
                let b = c * ws.e[i];
                r = f.hypot(g);
                ws.e[i + 1] = r;
                if r == 0.0 {
                    ws.d[i + 1] -= p;
                    ws.e[mm] = 0.0;
                    underflow = true;
                    stop_i = i;
                    break;
                }
                s = f / r;
                c = g / r;
                g = ws.d[i + 1] - p;
                r = (ws.d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                ws.d[i + 1] = g + p;
                g = c * r - b;
                ws.cs.push(c);
                ws.sn.push(s);
            }
            // Deferred rotation application: pairs (i, i+1) for i from
            // mm−1 down to the last computed index, in computation order,
            // as row pairs of the transposed accumulator.
            let first = if underflow { stop_i + 1 } else { l };
            for ((&c, &s), i) in ws.cs.iter().zip(ws.sn.iter()).zip((first..mm).rev()) {
                rot_rows_ql(&mut ws.x, i, i + 1, c, s);
            }
            if underflow {
                continue;
            }
            ws.d[l] -= p;
            ws.e[l] = g;
            ws.e[mm] = 0.0;
        }
    }
    transpose_into(&ws.x, &mut ws.z);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
        Matrix::from_fn(r, c, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
        })
    }

    /// Runs the bidiagonalization phase alone (the [`svd_core`] setup
    /// followed by either the dispatching [`bidiagonalize`] or the
    /// streamed reference end to end) and returns `(d, e, vl, vr)`.
    fn bidiag_outputs(a: &Matrix, streamed_only: bool) -> (Vec<f64>, Vec<f64>, Matrix, Matrix) {
        let (m, n) = a.shape();
        let mut ws = FactorWorkspace::new();
        ws.work.reset_shape(m, n);
        ws.work.as_mut_slice().copy_from_slice(a.as_slice());
        ws.vl.reset_shape(m, n);
        ws.vl_n2.resize(n, 0.0);
        ws.vr.reset_shape(n, n);
        ws.vr_n2.resize(n, 0.0);
        ws.d.resize(n, 0.0);
        ws.e.resize(n, 0.0);
        ws.small.resize(n, 0.0);
        if streamed_only {
            bidiagonalize_streamed(&mut ws, m, n, 0);
        } else {
            bidiagonalize(&mut ws, m, n);
        }
        (ws.d, ws.e, ws.vl, ws.vr)
    }

    #[test]
    fn single_panel_bidiagonalization_is_bitwise_streamed() {
        // n <= PANEL dispatches to the streamed reference end to end, so
        // every output — diagonals and reflectors — is bitwise equal.
        for &(m, n) in &[(PANEL, PANEL), (80, PANEL), (60, 17), (45, 1)] {
            let a = det_matrix(m, n, (m * 13 + n) as u64);
            let (d_p, e_p, vl_p, vr_p) = bidiag_outputs(&a, false);
            let (d_s, e_s, vl_s, vr_s) = bidiag_outputs(&a, true);
            assert_eq!(d_p, d_s, "d not bitwise for {m}x{n}");
            assert_eq!(e_p, e_s, "e not bitwise for {m}x{n}");
            assert_eq!(vl_p.as_slice(), vl_s.as_slice(), "vl {m}x{n}");
            assert_eq!(vr_p.as_slice(), vr_s.as_slice(), "vr {m}x{n}");
        }
    }

    #[test]
    fn panel_bidiagonalization_matches_streamed_across_panels() {
        // Multi-panel shapes: the dlabrd panel path reorders the update
        // arithmetic (deferred GEMMs instead of streamed rank-1s), so the
        // bidiagonal must agree to rounding — 1e-9 relative — but not
        // bitwise.
        for &(m, n) in &[
            (PANEL + 1, PANEL + 1),
            (100, 80),
            (90, 90),
            (PANEL * 3 + 5, PANEL * 2 + 3),
            (150, PANEL + 1),
        ] {
            let a = det_matrix(m, n, (m * 17 + n) as u64);
            let (d_p, e_p, _, _) = bidiag_outputs(&a, false);
            let (d_s, e_s, _, _) = bidiag_outputs(&a, true);
            let anorm = d_s
                .iter()
                .chain(e_s.iter())
                .fold(0.0f64, |acc, &x| acc.max(x.abs()));
            for i in 0..n {
                assert!(
                    (d_p[i] - d_s[i]).abs() <= 1e-9 * anorm,
                    "{m}x{n}: d[{i}] panel {} vs streamed {}",
                    d_p[i],
                    d_s[i]
                );
                assert!(
                    (e_p[i] - e_s[i]).abs() <= 1e-9 * anorm,
                    "{m}x{n}: e[{i}] panel {} vs streamed {}",
                    e_p[i],
                    e_s[i]
                );
            }
        }
    }
}
