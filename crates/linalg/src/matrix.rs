//! Dense, row-major, `f64` matrix type and elementwise / BLAS-like kernels.
//!
//! The matrix type here is intentionally small and auditable: the numerical
//! core of the IDES reproduction (SVD, NMF, least squares) is built on these
//! kernels, so everything is plain safe Rust with no external BLAS.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::error::{LinalgError, Result};
use crate::kernels;

/// Validates that a preallocated output matrix has exactly the shape the
/// operation will produce.
fn check_out_shape(out: &Matrix, rows: usize, cols: usize, op: &'static str) -> Result<()> {
    if out.shape() != (rows, cols) {
        return Err(LinalgError::ShapeMismatch {
            expected: (rows, cols),
            got: out.shape(),
            op,
        });
    }
    Ok(())
}

/// A dense matrix of `f64` stored in row-major order.
///
/// Invariants: `data.len() == rows * cols`; `rows` and `cols` may be zero
/// (an empty matrix), in which case `data` is empty.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a slice of rows. All rows must be equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::ShapeMismatch {
                    expected: (1, cols),
                    got: (1, r.len()),
                    op: if i > 0 {
                        "from_rows"
                    } else {
                        "from_rows (first row)"
                    },
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a column vector (`n x 1`) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Builds a row vector (`1 x n`) from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrites column `j` with the entries of `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.rows);
        for (i, &x) in v.iter().enumerate() {
            self[(i, j)] = x;
        }
    }

    /// Overwrites row `i` with the entries of `v`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.cols);
        self.row_mut(i).copy_from_slice(v);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Returns the main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        self.diag().iter().sum()
    }

    /// Validates the inner dimensions for `self * other`.
    pub(crate) fn shape_check_matmul(&self, other: &Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, other.cols),
                got: other.shape(),
                op: "matmul",
            });
        }
        Ok(())
    }

    /// Matrix product `self * other`.
    ///
    /// Runs on the cache-blocked kernel layer ([`crate::kernels`]); see
    /// [`Matrix::matmul_into`] for the allocation-free variant.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        self.shape_check_matmul(other)?;
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Writes `self * other` into a preallocated output of exactly the
    /// right shape, without heap allocation in the steady state.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        self.shape_check_matmul(other)?;
        check_out_shape(out, self.rows, other.cols, "matmul_into")?;
        kernels::gemm(
            &self.data,
            kernels::Op::NoTrans,
            self.cols,
            &other.data,
            kernels::Op::NoTrans,
            other.cols,
            &mut out.data,
            self.rows,
            other.cols,
            self.cols,
        );
        Ok(())
    }

    /// `selfᵀ * other` without materializing the transpose.
    pub fn tr_matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.tr_matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Writes `selfᵀ * other` into a preallocated output.
    pub fn tr_matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, other.cols),
                got: other.shape(),
                op: "tr_matmul",
            });
        }
        check_out_shape(out, self.cols, other.cols, "tr_matmul_into")?;
        kernels::gemm(
            &self.data,
            kernels::Op::Trans,
            self.cols,
            &other.data,
            kernels::Op::NoTrans,
            other.cols,
            &mut out.data,
            self.cols,
            other.cols,
            self.rows,
        );
        Ok(())
    }

    /// `self * otherᵀ` without materializing the transpose.
    pub fn matmul_tr(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_tr_into(other, &mut out)?;
        Ok(out)
    }

    /// Writes `self * otherᵀ` into a preallocated output.
    pub fn matmul_tr_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (other.rows, self.cols),
                got: other.shape(),
                op: "matmul_tr",
            });
        }
        check_out_shape(out, self.rows, other.rows, "matmul_tr_into")?;
        kernels::gemm(
            &self.data,
            kernels::Op::NoTrans,
            self.cols,
            &other.data,
            kernels::Op::Trans,
            other.cols,
            &mut out.data,
            self.rows,
            other.rows,
            self.cols,
        );
        Ok(())
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// Writes `self * v` into a preallocated output slice.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (v.len(), 1),
                op: "matvec",
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                got: (out.len(), 1),
                op: "matvec_into",
            });
        }
        kernels::gemv(&self.data, v, out, self.rows, self.cols);
        Ok(())
    }

    /// Transposed matrix-vector product `selfᵀ * v`.
    pub fn tr_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.cols];
        self.tr_matvec_into(v, &mut out)?;
        Ok(out)
    }

    /// Writes `selfᵀ * v` into a preallocated output slice.
    pub fn tr_matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 1),
                got: (v.len(), 1),
                op: "tr_matvec",
            });
        }
        if out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (out.len(), 1),
                op: "tr_matvec_into",
            });
        }
        kernels::gemv_t(&self.data, v, out, self.rows, self.cols);
        Ok(())
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Elementwise division; entries where `other` is zero map to zero
    /// (the convention used by masked NMF updates).
    pub fn hadamard_div_or_zero(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(
            other,
            "hadamard_div",
            |a, b| if b == 0.0 { 0.0 } else { a / b },
        )
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                expected: self.shape(),
                got: other.shape(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Multiplies every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm: `sqrt(sum of squared entries)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (the max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Minimum entry, or `None` for an empty matrix.
    pub fn min(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::min)
    }

    /// Maximum entry, or `None` for an empty matrix.
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::max)
    }

    /// Extracts the sub-matrix of the given rows and all columns.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Gathers the given rows into `out`, reshaping it to
    /// `indices.len() x self.cols()`. Reuses `out`'s existing capacity, so
    /// repeated gathers (e.g. the ALS row solves) allocate nothing once the
    /// buffer has grown to its high-water mark.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.reset_shape(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// Reshapes in place to `rows x cols`, zero-filling the contents.
    /// Existing capacity is reused; this only allocates when the new shape
    /// exceeds the largest shape the matrix has held.
    pub fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Appends `row` as a new bottom row, preserving existing contents.
    /// An empty matrix adopts the row's length as its column count.
    /// Amortized `O(cols)` through the data vector's retained capacity.
    ///
    /// # Panics
    /// Panics when the matrix is nonempty and `row.len() != cols`.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 {
            self.cols = row.len();
        } else {
            assert_eq!(row.len(), self.cols, "push_row: wrong row length");
        }
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Swaps rows `i` and `j` in place (`O(cols)`, no allocation).
    pub fn swap_rows(&mut self, i: usize, j: usize) {
        if i == j {
            return;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (a, b) = self.data.split_at_mut(hi * self.cols);
        a[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut b[..self.cols]);
    }

    /// Keeps the first `rows` rows and drops every row at or after index
    /// `rows`, preserving the column count and the underlying capacity
    /// (no reallocation). A no-op when the matrix already has at most
    /// `rows` rows.
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows < self.rows {
            self.rows = rows;
            self.data.truncate(rows * self.cols);
        }
    }

    /// Extracts the sub-matrix of the given columns and all rows.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            for (dst, &src) in indices.iter().enumerate() {
                out[(i, dst)] = self[(i, src)];
            }
        }
        out
    }

    /// Extracts the contiguous block `[r0, r1) x [c0, c1)`.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        debug_assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Horizontally concatenates `self` and `other` (same row count).
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                expected: (self.rows, 0),
                got: other.shape(),
                op: "hcat",
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` and `other` (same column count).
    pub fn vcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                expected: (0, self.cols),
                got: other.shape(),
                op: "vcat",
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// True if every entry of `self` is within `tol` of `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute difference between two same-shaped matrices.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        debug_assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// True if all entries are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// True if all entries are `>= -tol`.
    pub fn is_nonnegative(&self, tol: f64) -> bool {
        self.data.iter().all(|&x| x >= -tol)
    }

    /// Symmetrizes in place: `A <- (A + Aᵀ)/2`. Requires a square matrix.
    pub fn symmetrize(&mut self) {
        debug_assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Iterator over `(i, j, value)` triples in row-major order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k / cols, k % cols, v))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(10) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > 10 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        self.zip_with(rhs, "add", |a, b| a + b)
            .expect("checked shapes")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        self.zip_with(rhs, "sub", |a, b| a - b)
            .expect("checked shapes")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix mul shape mismatch")
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl MulAssign<f64> for Matrix {
    fn mul_assign(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x2(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_shape_check() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_ragged_rejected() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_rows(&rows).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        let t = a.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(a, t.transpose());
        assert_eq!(a[(1, 4)], t[(4, 1)]);
    }

    #[test]
    fn matmul_small() {
        let a = m2x2(1.0, 2.0, 3.0, 4.0);
        let b = m2x2(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m2x2(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + 2 * j) as f64);
        let i = Matrix::identity(4);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.5);
        let b = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let fast = a.tr_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn matmul_tr_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.5);
        let b = Matrix::from_fn(5, 3, |i, j| (2 * i + j) as f64);
        let fast = a.matmul_tr(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn matvec_and_tr_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.tr_matvec(&[1.0]).is_err());
    }

    #[test]
    fn hadamard_and_div() {
        let a = m2x2(1.0, 2.0, 3.0, 4.0);
        let b = m2x2(2.0, 0.0, 0.5, 4.0);
        assert_eq!(a.hadamard(&b).unwrap(), m2x2(2.0, 0.0, 1.5, 16.0));
        assert_eq!(
            a.hadamard_div_or_zero(&b).unwrap(),
            m2x2(0.5, 0.0, 6.0, 1.0)
        );
    }

    #[test]
    fn norms_and_reductions() {
        let a = m2x2(3.0, -4.0, 0.0, 0.0);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.mean(), -0.25);
        assert_eq!(a.min(), Some(-4.0));
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn select_rows_cols_block() {
        let a = Matrix::from_fn(4, 4, |i, j| (10 * i + j) as f64);
        let r = a.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[20.0, 21.0, 22.0, 23.0]);
        assert_eq!(r.row(1), &[0.0, 1.0, 2.0, 3.0]);
        let c = a.select_cols(&[3, 1]);
        assert_eq!(c.col(0), vec![3.0, 13.0, 23.0, 33.0]);
        let b = a.block(1, 3, 2, 4);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b[(0, 0)], 12.0);
        assert_eq!(b[(1, 1)], 23.0);
    }

    #[test]
    fn concat() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 1, 7.0);
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h[(1, 2)], 7.0);
        let c = Matrix::filled(1, 2, 9.0);
        let v = a.vcat(&c).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v[(2, 0)], 9.0);
        assert!(a.hcat(&c).is_err());
        assert!(a.vcat(&b).is_err());
    }

    #[test]
    fn symmetrize() {
        let mut a = m2x2(1.0, 4.0, 2.0, 5.0);
        a.symmetrize();
        assert_eq!(a, m2x2(1.0, 3.0, 3.0, 5.0));
    }

    #[test]
    fn operators() {
        let a = m2x2(1.0, 2.0, 3.0, 4.0);
        let b = m2x2(4.0, 3.0, 2.0, 1.0);
        assert_eq!(&a + &b, Matrix::filled(2, 2, 5.0));
        assert_eq!(&a - &a, Matrix::zeros(2, 2));
        assert_eq!((-&a).scale(-1.0), a);
        let mut c = a.clone();
        c += &b;
        c -= &b;
        assert_eq!(c, a);
        c *= 2.0;
        assert_eq!(c, a.scale(2.0));
    }

    #[test]
    fn iter_entries_order() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let entries: Vec<_> = a.iter_entries().collect();
        assert_eq!(
            entries,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]
        );
    }

    #[test]
    fn diag_helpers() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diag(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn push_swap_truncate_rows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]); // empty matrix adopts the width
        m.push_row(&[3.0, 4.0]);
        m.push_row(&[5.0, 6.0]);
        assert_eq!(m.shape(), (3, 2));
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1); // self-swap is a no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.truncate_rows(2);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.truncate_rows(5); // growing truncate is a no-op
        assert_eq!(m.shape(), (2, 2));
        // Churn at a bounded high-water mark allocates nothing further:
        // capacity for 3 rows was retained above.
        let cap = {
            m.push_row(&[7.0, 8.0]);
            m.truncate_rows(2);
            m.data.capacity()
        };
        for _ in 0..10 {
            m.push_row(&[9.0, 9.0]);
            m.truncate_rows(2);
        }
        assert_eq!(m.data.capacity(), cap);
    }

    #[test]
    #[should_panic(expected = "push_row")]
    fn push_row_wrong_width_panics() {
        let mut m = Matrix::zeros(1, 3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn finite_and_nonnegative_checks() {
        let a = m2x2(1.0, 2.0, 3.0, 4.0);
        assert!(a.all_finite());
        assert!(a.is_nonnegative(0.0));
        let b = m2x2(1.0, f64::NAN, 3.0, 4.0);
        assert!(!b.all_finite());
        let c = m2x2(1.0, -1e-13, 3.0, 4.0);
        assert!(c.is_nonnegative(1e-12));
        assert!(!c.is_nonnegative(0.0));
    }
}
