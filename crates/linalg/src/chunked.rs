//! Persistent (copy-on-write) chunked row storage.
//!
//! [`ChunkedRows`] stores a table of fixed-width rows as a two-level tree
//! of reference-counted chunks: rows pack into [`CHUNK_ROWS`]-row chunks
//! (`Arc<Vec<T>>`), chunks pack into [`SPINE_CHUNKS`]-chunk spine blocks
//! (`Arc<SpineBlock>`), and the spine vector itself sits behind one more
//! `Arc`. Cloning the table is therefore **O(1)** — a single `Arc`
//! increment regardless of row count. The first mutation after a clone
//! copies the spine vector (`O(len / (CHUNK_ROWS · SPINE_CHUNKS))` `Arc`
//! bumps — ~64 pointers at a million rows), and each mutated row copies
//! only its own chunk and spine block (`Arc::make_mut` down the path),
//! so two clones share every chunk they have not diverged on.
//!
//! This is the storage behind `ides::service`'s snapshot publish: the
//! writer keeps a `ChunkedRows` table, and *publishing* a snapshot is one
//! clone whose cost tracks the spine length — independent of how many
//! rows the table holds — while the published snapshot stays immutable
//! under the writer's subsequent copy-on-write mutations.
//!
//! Reads go through [`ChunkedRows::row`] (a contiguous `&[T]` — rows
//! never straddle chunks). The element type is `Copy + Default`
//! (`f64` coordinate rows, `bool` liveness flags), which keeps chunk
//! copies `memcpy`-cheap.

use std::sync::Arc;

/// Rows per leaf chunk. A power of two so row addressing is shift/mask;
/// 256 rows of a 32-wide `f64` table is a 64 KiB chunk — big enough to
/// amortize the `Arc` overhead, small enough that a single-row write
/// copies little.
pub const CHUNK_ROWS: usize = 256;

/// Leaf chunks per spine block. Bounds the copy cost of the spine
/// vector on the first write after a clone: one million rows is ~4000
/// chunks but only ~64 spine blocks, so diverging the spine stays
/// O(tens) of `Arc` bumps.
pub const SPINE_CHUNKS: usize = 64;

/// One spine block: up to [`SPINE_CHUNKS`] leaf chunks.
#[derive(Debug, Clone)]
struct SpineBlock<T: Copy> {
    chunks: Vec<Arc<Vec<T>>>,
}

/// A copy-on-write table of fixed-width rows (see the [module
/// docs](self)).
#[derive(Debug, Clone)]
pub struct ChunkedRows<T: Copy + Default = f64> {
    cols: usize,
    len: usize,
    spine: Arc<Vec<Arc<SpineBlock<T>>>>,
}

impl<T: Copy + Default> ChunkedRows<T> {
    /// An empty table of `cols`-wide rows (`cols >= 1`).
    pub fn new(cols: usize) -> Self {
        assert!(cols >= 1, "ChunkedRows needs at least one column");
        ChunkedRows {
            cols,
            len: 0,
            spine: Arc::new(Vec::new()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of leaf chunks currently allocated.
    pub fn chunk_count(&self) -> usize {
        self.len.div_ceil(CHUNK_ROWS)
    }

    fn locate(&self, row: usize) -> (usize, usize, usize) {
        let chunk = row / CHUNK_ROWS;
        (chunk / SPINE_CHUNKS, chunk % SPINE_CHUNKS, row % CHUNK_ROWS)
    }

    /// Row `row` as a contiguous slice. Panics when out of range.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.len, "row {row} out of range (len {})", self.len);
        let (s, c, r) = self.locate(row);
        &self.spine[s].chunks[c][r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable access to row `row`, copying the row's chunk (and spine
    /// block) first if they are shared with a clone. Panics when out of
    /// range.
    pub fn row_mut(&mut self, row: usize) -> &mut [T] {
        assert!(row < self.len, "row {row} out of range (len {})", self.len);
        let (s, c, r) = self.locate(row);
        let cols = self.cols;
        let spine = Arc::make_mut(&mut self.spine);
        let block = Arc::make_mut(&mut spine[s]);
        let chunk = Arc::make_mut(&mut block.chunks[c]);
        &mut chunk[r * cols..(r + 1) * cols]
    }

    /// Overwrites row `row` with `values` (must be `cols` long).
    pub fn set_row(&mut self, row: usize, values: &[T]) {
        assert_eq!(values.len(), self.cols, "row width mismatch");
        self.row_mut(row).copy_from_slice(values);
    }

    /// Appends a row (must be `cols` long), growing the tree as needed.
    pub fn push_row(&mut self, values: &[T]) {
        assert_eq!(values.len(), self.cols, "row width mismatch");
        let (s, c, r) = self.locate(self.len);
        let spine = Arc::make_mut(&mut self.spine);
        if s == spine.len() {
            spine.push(Arc::new(SpineBlock { chunks: Vec::new() }));
        }
        let block = Arc::make_mut(&mut spine[s]);
        if c == block.chunks.len() {
            block
                .chunks
                .push(Arc::new(Vec::with_capacity(CHUNK_ROWS * self.cols)));
        }
        let chunk = Arc::make_mut(&mut block.chunks[c]);
        debug_assert_eq!(chunk.len(), r * self.cols);
        chunk.extend_from_slice(values);
        self.len += 1;
    }

    /// Appends `n` default-valued rows.
    pub fn push_default_rows(&mut self, n: usize) {
        let zero = vec![T::default(); self.cols];
        for _ in 0..n {
            self.push_row(&zero);
        }
    }

    /// Drops all rows, keeping the column width. Chunks are released (a
    /// clone taken earlier keeps its own references).
    pub fn clear(&mut self) {
        self.len = 0;
        self.spine = Arc::new(Vec::new());
    }

    /// Iterates rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[T]> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Number of leaf chunks physically shared (same allocation) between
    /// `self` and `other` — the observable face of copy-on-write: after
    /// `let b = a.clone()`, every chunk is shared; after one `set_row`,
    /// exactly one chunk has diverged.
    pub fn shared_chunks_with(&self, other: &ChunkedRows<T>) -> usize {
        if Arc::ptr_eq(&self.spine, &other.spine) {
            return self.chunk_count().min(other.chunk_count());
        }
        let mut shared = 0;
        for (sa, sb) in self.spine.iter().zip(other.spine.iter()) {
            if Arc::ptr_eq(sa, sb) {
                shared += sa.chunks.len();
                continue;
            }
            for (ca, cb) in sa.chunks.iter().zip(sb.chunks.iter()) {
                if Arc::ptr_eq(ca, cb) {
                    shared += 1;
                }
            }
        }
        shared
    }
}

impl<T: Copy + Default + PartialEq> PartialEq for ChunkedRows<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.cols == other.cols
            && self.rows().zip(other.rows()).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(rows: usize, cols: usize) -> (ChunkedRows<f64>, Vec<Vec<f64>>) {
        let mut t = ChunkedRows::new(cols);
        let mut shadow = Vec::with_capacity(rows);
        for i in 0..rows {
            let row: Vec<f64> = (0..cols).map(|j| (i * cols + j) as f64 * 0.5).collect();
            t.push_row(&row);
            shadow.push(row);
        }
        (t, shadow)
    }

    #[test]
    fn push_and_read_round_trip() {
        // Cross several chunk and spine boundaries.
        let rows = CHUNK_ROWS * SPINE_CHUNKS + CHUNK_ROWS + 7;
        let (t, shadow) = filled(rows, 3);
        assert_eq!(t.len(), rows);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.chunk_count(), rows.div_ceil(CHUNK_ROWS));
        for (i, want) in shadow.iter().enumerate() {
            assert_eq!(t.row(i), want.as_slice());
        }
        let collected: Vec<&[f64]> = t.rows().collect();
        assert_eq!(collected.len(), rows);
    }

    #[test]
    fn set_row_and_row_mut_update_in_place() {
        let (mut t, mut shadow) = filled(600, 4);
        t.set_row(0, &[9.0; 4]);
        shadow[0] = vec![9.0; 4];
        t.row_mut(599)[2] = -1.0;
        shadow[599][2] = -1.0;
        t.set_row(257, &[7.0; 4]);
        shadow[257] = vec![7.0; 4];
        for (i, want) in shadow.iter().enumerate() {
            assert_eq!(t.row(i), want.as_slice(), "row {i}");
        }
    }

    #[test]
    fn clone_shares_all_chunks_until_mutation() {
        let (mut t, _) = filled(CHUNK_ROWS * 5 + 10, 2);
        let snap = t.clone();
        let chunks = t.chunk_count();
        assert_eq!(t.shared_chunks_with(&snap), chunks);
        // One row write diverges exactly one chunk.
        t.set_row(CHUNK_ROWS * 2 + 3, &[1.0, 2.0]);
        assert_eq!(t.shared_chunks_with(&snap), chunks - 1);
        // Writing another row of the SAME chunk diverges nothing more.
        t.set_row(CHUNK_ROWS * 2 + 4, &[3.0, 4.0]);
        assert_eq!(t.shared_chunks_with(&snap), chunks - 1);
        t.set_row(0, &[5.0, 6.0]);
        assert_eq!(t.shared_chunks_with(&snap), chunks - 2);
    }

    #[test]
    fn clones_are_immutable_under_source_mutation() {
        let (mut t, shadow) = filled(CHUNK_ROWS * 3, 3);
        let frozen = t.clone();
        for i in 0..t.len() {
            t.set_row(i, &[-1.0, -2.0, -3.0]);
        }
        t.push_row(&[0.0; 3]);
        for (i, want) in shadow.iter().enumerate() {
            assert_eq!(frozen.row(i), want.as_slice(), "frozen row {i} changed");
        }
        assert_eq!(frozen.len(), CHUNK_ROWS * 3);
        assert_eq!(t.shared_chunks_with(&frozen), 0);
    }

    #[test]
    fn push_after_clone_does_not_disturb_clone() {
        let (mut t, _) = filled(CHUNK_ROWS + CHUNK_ROWS / 2, 2);
        let frozen = t.clone();
        let tail_before: Vec<f64> = frozen.row(frozen.len() - 1).to_vec();
        // Push into the partially filled chunk: the writer copies it.
        for i in 0..CHUNK_ROWS {
            t.push_row(&[i as f64, 0.0]);
        }
        assert_eq!(frozen.len(), CHUNK_ROWS + CHUNK_ROWS / 2);
        assert_eq!(frozen.row(frozen.len() - 1), tail_before.as_slice());
        // The full (cold) chunk is still shared; the partial one diverged.
        assert!(t.shared_chunks_with(&frozen) >= 1);
    }

    #[test]
    fn bool_rows_work() {
        let mut t: ChunkedRows<bool> = ChunkedRows::new(1);
        t.push_default_rows(300);
        assert!(!t.row(299)[0]);
        t.row_mut(299)[0] = true;
        assert!(t.row(299)[0]);
        assert_eq!(t.rows().filter(|r| r[0]).count(), 1);
        let u = t.clone();
        t.row_mut(0)[0] = true;
        assert!(!u.row(0)[0]);
        assert_eq!(t, t.clone());
        assert!(t != u);
    }

    #[test]
    fn clear_releases_rows_but_not_clones() {
        let (mut t, shadow) = filled(CHUNK_ROWS + 1, 2);
        let keep = t.clone();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.chunk_count(), 0);
        assert_eq!(keep.len(), CHUNK_ROWS + 1);
        assert_eq!(keep.row(5), shadow[5].as_slice());
        t.push_row(&[1.0, 2.0]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let (t, _) = filled(10, 2);
        let _ = t.row(10);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_wrong_width_panics() {
        let mut t: ChunkedRows<f64> = ChunkedRows::new(3);
        t.push_row(&[1.0, 2.0]);
    }
}
