//! Symmetric eigendecomposition.
//!
//! Used by the Lipschitz+PCA baseline (ICS / Virtual Landmark), which
//! diagonalizes the covariance matrix of the Lipschitz coordinates.
//!
//! [`symmetric_eig`] dispatches on size: matrices larger than
//! [`crate::factor::SMALL`] run the blocked Householder tridiagonalization
//! plus implicit-QL path ([`crate::factor::symmetric_eig_with`]); small
//! ones (and the defensive non-convergence fallback) use the cyclic
//! Jacobi method, kept as [`symmetric_eig_jacobi`] — also the accuracy
//! oracle of the blocked property suite.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition `A = Q Λ Qᵀ`.
#[derive(Debug, Clone, Default)]
pub struct SymmetricEig {
    /// Eigenvalues in non-increasing order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as columns, in the order of `eigenvalues`.
    pub eigenvectors: Matrix,
}

impl SymmetricEig {
    /// Reconstructs `Q Λ Qᵀ` as the single kernel GEMM `Q (Q Λ)ᵀ`,
    /// scaling one factor copy instead of cloning-then-scaling.
    pub fn reconstruct(&self) -> Matrix {
        let q = &self.eigenvectors;
        let ql = Matrix::from_fn(q.rows(), q.cols(), |i, j| q[(i, j)] * self.eigenvalues[j]);
        ql.matmul_tr(q).expect("square by construction")
    }
}

const MAX_SWEEPS: usize = 100;

/// Computes all eigenvalues and eigenvectors of a symmetric matrix.
///
/// The input must be symmetric; only the symmetric part is used. Returns
/// [`LinalgError::NotSquare`] for non-square input. Dispatches to the
/// blocked tridiagonalization path above [`crate::factor::SMALL`] (with
/// cyclic Jacobi as the defensive non-convergence fallback) and to cyclic
/// Jacobi at small sizes. Repeated large-matrix callers should hold a
/// [`crate::factor::FactorWorkspace`] and call
/// [`crate::factor::symmetric_eig_with`] directly.
pub fn symmetric_eig(a: &Matrix) -> Result<SymmetricEig> {
    if a.rows() <= crate::factor::SMALL || !a.is_square() {
        return symmetric_eig_jacobi(a);
    }
    let mut ws = crate::factor::FactorWorkspace::new();
    let mut out = SymmetricEig::default();
    match crate::factor::symmetric_eig_with(a, &mut ws, &mut out) {
        Ok(()) => Ok(out),
        Err(LinalgError::NoConvergence { .. }) => symmetric_eig_jacobi(a),
        Err(e) => Err(e),
    }
}

/// Cyclic-Jacobi symmetric eigendecomposition — the small-matrix path and
/// accuracy fallback of [`symmetric_eig`].
///
/// Convergence is guaranteed in theory for symmetric matrices; the
/// iteration cap exists as a defensive bound.
pub fn symmetric_eig_jacobi(a: &Matrix) -> Result<SymmetricEig> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            got: a.shape(),
            op: "symmetric_eig",
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEig {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        });
    }
    let mut m = a.clone();
    m.symmetrize(); // tolerate tiny asymmetry from accumulated round-off
    let mut q = Matrix::identity(n);

    let off_norm = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        (2.0 * s).sqrt()
    };
    let tol = 1e-14 * m.frobenius_norm().max(1e-300);

    let mut converged = false;
    for _ in 0..MAX_SWEEPS {
        if off_norm(&m) <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for qq in (p + 1)..n {
                let apq = m[(p, qq)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(qq, qq)];
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Apply the rotation J(p, q, θ) on both sides: M <- Jᵀ M J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, qq)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, qq)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(qq, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(qq, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors: Q <- Q J.
                for k in 0..n {
                    let qkp = q[(k, p)];
                    let qkq = q[(k, qq)];
                    q[(k, p)] = c * qkp - s * qkq;
                    q[(k, qq)] = s * qkp + c * qkq;
                }
            }
        }
    }
    if !converged && off_norm(&m) > tol * 100.0 {
        return Err(LinalgError::NoConvergence {
            op: "symmetric_eig (Jacobi)",
            iterations: MAX_SWEEPS,
        });
    }

    // Sort eigenpairs by descending eigenvalue.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
    let mut vecs = Matrix::zeros(n, n);
    for (dst, &(_, src)) in pairs.iter().enumerate() {
        for i in 0..n {
            vecs[(i, dst)] = q[(i, src)];
        }
    }
    Ok(SymmetricEig {
        eigenvalues,
        eigenvectors: vecs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eig_diagonal() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let e = symmetric_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 5.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eig_2x2_known() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = symmetric_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        assert!(e.reconstruct().approx_eq(&a, 1e-10));
    }

    #[test]
    fn eig_reconstruction_random_symmetric() {
        let mut a = Matrix::from_fn(7, 7, |i, j| ((i * 7 + j) as f64 * 0.37).sin());
        a.symmetrize();
        let e = symmetric_eig(&a).unwrap();
        assert!(e.reconstruct().approx_eq(&a, 1e-9));
        // Eigenvectors orthonormal.
        let qtq = e.eigenvectors.tr_matmul(&e.eigenvectors).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(7), 1e-10));
        // Trace preserved.
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-9);
    }

    #[test]
    fn eig_rejects_non_square() {
        assert!(symmetric_eig(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn eig_empty() {
        let e = symmetric_eig(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn eig_psd_matrix_nonnegative_eigenvalues() {
        // Gram matrices are PSD; all eigenvalues must be >= 0.
        let b = Matrix::from_fn(6, 3, |i, j| ((i + j) as f64 * 0.7).cos());
        let g = b.matmul_tr(&b).unwrap();
        let e = symmetric_eig(&g).unwrap();
        for &l in &e.eigenvalues {
            assert!(l > -1e-10, "eigenvalue {l} negative");
        }
        // Rank of G is at most 3.
        assert!(e.eigenvalues[3].abs() < 1e-9);
    }
}
