//! Random matrix constructors (seeded, for reproducible experiments).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Uniform random matrix with entries in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

/// Standard-normal random matrix (Box–Muller from uniform draws).
pub fn gaussian(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    })
}

/// Convenience: a seeded RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_range_and_determinism() {
        let mut r1 = seeded_rng(42);
        let mut r2 = seeded_rng(42);
        let a = uniform(10, 10, 2.0, 5.0, &mut r1);
        let b = uniform(10, 10, 2.0, 5.0, &mut r2);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&x| (2.0..5.0).contains(&x)));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = seeded_rng(7);
        let g = gaussian(200, 200, &mut rng);
        let mean = g.mean();
        let var = g
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (g.as_slice().len() as f64);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(5, 5, 0.0, 1.0, &mut seeded_rng(1));
        let b = uniform(5, 5, 0.0, 1.0, &mut seeded_rng(2));
        assert_ne!(a, b);
    }
}
