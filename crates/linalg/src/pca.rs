//! Principal component analysis on row-vector data.
//!
//! The ICS / Virtual Landmark baselines embed hosts by their Lipschitz
//! coordinates (rows of distances to landmarks) and project onto the
//! `d`-dimensional subspace of maximum variance. This module provides that
//! projection.

use crate::eig::{symmetric_eig, symmetric_eig_jacobi, SymmetricEig};
use crate::error::{LinalgError, Result};
use crate::factor::{symmetric_eig_with, FactorWorkspace};
use crate::matrix::Matrix;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means of the training data (length = input dimension).
    pub mean: Vec<f64>,
    /// Principal axes as columns, `p x d` (input dim × components).
    pub components: Matrix,
    /// Variance captured by each retained component, non-increasing.
    pub explained_variance: Vec<f64>,
}

/// Fits PCA on the rows of `data` (`n` samples × `p` features), retaining
/// the top `d` components.
///
/// Uses the eigendecomposition of the `p x p` covariance matrix, which is
/// the formulation in the ICS paper and efficient when `p` (number of
/// landmarks) is small. The decomposition runs on the blocked
/// factorization layer once `p` exceeds [`crate::factor::SMALL`]; repeated
/// fitters (dimension sweeps) should hold a
/// [`crate::factor::FactorWorkspace`] and call [`fit_with`].
pub fn fit(data: &Matrix, d: usize) -> Result<Pca> {
    let mut ws = FactorWorkspace::new();
    fit_with(data, d, &mut ws)
}

/// [`fit`] with a caller-owned workspace for the covariance
/// eigendecomposition — the factorization-layer entry point the IDES
/// evaluation sweeps share.
pub fn fit_with(data: &Matrix, d: usize, ws: &mut FactorWorkspace) -> Result<Pca> {
    let (n, p) = data.shape();
    if n == 0 || p == 0 {
        return Err(LinalgError::InvalidArgument("pca: empty data"));
    }
    let d = d.min(p);
    // Column means.
    let mut mean = vec![0.0; p];
    for i in 0..n {
        for (j, m) in mean.iter_mut().enumerate() {
            *m += data[(i, j)];
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    // Covariance (biased, 1/n — the scaling does not affect the axes).
    let centered = Matrix::from_fn(n, p, |i, j| data[(i, j)] - mean[j]);
    let cov = centered.tr_matmul(&centered)?.scale(1.0 / n as f64);
    // Same dispatch as `symmetric_eig`, but through the caller's workspace
    // on the blocked path (Jacobi at small sizes / on non-convergence).
    let eig = if p <= crate::factor::SMALL {
        symmetric_eig(&cov)?
    } else {
        let mut out = SymmetricEig::default();
        match symmetric_eig_with(&cov, ws, &mut out) {
            Ok(()) => out,
            // Straight to Jacobi: re-dispatching through `symmetric_eig`
            // would rerun the whole blocked path just to fail again.
            Err(LinalgError::NoConvergence { .. }) => symmetric_eig_jacobi(&cov)?,
            Err(e) => return Err(e),
        }
    };
    let cols: Vec<usize> = (0..d).collect();
    Ok(Pca {
        mean,
        components: eig.eigenvectors.select_cols(&cols),
        explained_variance: eig.eigenvalues[..d].iter().map(|&l| l.max(0.0)).collect(),
    })
}

impl Pca {
    /// Projects rows of `data` into the principal subspace (`n x d`).
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        if data.cols() != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: (0, self.mean.len()),
                got: data.shape(),
                op: "pca_transform",
            });
        }
        let centered =
            Matrix::from_fn(data.rows(), data.cols(), |i, j| data[(i, j)] - self.mean[j]);
        centered.matmul(&self.components)
    }

    /// Projects a single row vector.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        let mut scratch = Vec::new();
        let mut out = vec![0.0; self.dim()];
        self.transform_row_into(row, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Projects a single row into a preallocated `out` (length [`Pca::dim`]),
    /// using `scratch` for the centered row. Reuses both buffers' capacity,
    /// so repeated projections (e.g. embedding every ordinary host in an
    /// evaluation sweep) allocate nothing in the steady state.
    pub fn transform_row_into(
        &self,
        row: &[f64],
        scratch: &mut Vec<f64>,
        out: &mut [f64],
    ) -> Result<()> {
        if row.len() != self.mean.len() {
            return Err(LinalgError::ShapeMismatch {
                expected: (1, self.mean.len()),
                got: (1, row.len()),
                op: "pca_transform_row",
            });
        }
        scratch.clear();
        scratch.extend(row.iter().zip(self.mean.iter()).map(|(&x, &m)| x - m));
        self.components.tr_matvec_into(scratch, out)
    }

    /// Number of retained components.
    pub fn dim(&self) -> usize {
        self.components.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points along the line y = 2x (plus a tiny orthogonal wiggle):
        // the first principal axis must be ∝ (1, 2)/√5.
        let data = Matrix::from_fn(50, 2, |i, j| {
            let t = i as f64 / 10.0 - 2.5;
            let wiggle = 0.01 * ((i * 7) as f64).sin();
            if j == 0 {
                t - 2.0 * wiggle / 5.0_f64.sqrt()
            } else {
                2.0 * t + wiggle / 5.0_f64.sqrt()
            }
        });
        let pca = fit(&data, 1).unwrap();
        let axis = pca.components.col(0);
        let expected = [1.0 / 5.0_f64.sqrt(), 2.0 / 5.0_f64.sqrt()];
        // Axis sign is arbitrary.
        let dot = axis[0] * expected[0] + axis[1] * expected[1];
        assert!(dot.abs() > 0.9999, "axis {axis:?}");
        assert!(pca.explained_variance[0] > 1.0);
    }

    #[test]
    fn variance_ordering_and_total() {
        let data = Matrix::from_fn(30, 4, |i, j| {
            ((i * (j + 1)) as f64 * 0.21).sin() * (4 - j) as f64
        });
        let pca = fit(&data, 4).unwrap();
        for w in pca.explained_variance.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert_eq!(pca.dim(), 4);
    }

    #[test]
    fn transform_centers_data() {
        let data = Matrix::from_fn(10, 3, |i, j| (i + j) as f64 + 100.0);
        let pca = fit(&data, 2).unwrap();
        let t = pca.transform(&data).unwrap();
        // Projected data must have zero mean per component.
        for j in 0..2 {
            let mean: f64 = (0..10).map(|i| t[(i, j)]).sum::<f64>() / 10.0;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let data = Matrix::from_fn(12, 3, |i, j| ((i * 3 + j) as f64 * 0.53).cos());
        let pca = fit(&data, 2).unwrap();
        let all = pca.transform(&data).unwrap();
        for i in 0..12 {
            let row = pca.transform_row(data.row(i)).unwrap();
            for j in 0..2 {
                assert!((row[j] - all[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn d_clamped_to_feature_count() {
        let data = Matrix::from_fn(5, 2, |i, j| (i * 2 + j) as f64);
        let pca = fit(&data, 10).unwrap();
        assert_eq!(pca.dim(), 2);
    }

    #[test]
    fn empty_rejected() {
        assert!(fit(&Matrix::zeros(0, 3), 1).is_err());
        let pca = fit(&Matrix::from_fn(4, 2, |i, j| (i + j) as f64), 1).unwrap();
        assert!(pca.transform(&Matrix::zeros(2, 3)).is_err());
        assert!(pca.transform_row(&[1.0]).is_err());
    }
}
