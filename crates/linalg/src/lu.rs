//! LU decomposition with partial pivoting; exact solves and inverses.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// LU decomposition `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strict lower triangle holds `L` (unit diagonal
    /// implied), upper triangle holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

/// Factors a square matrix with partial pivoting.
pub fn lu(a: &Matrix) -> Result<Lu> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            got: a.shape(),
            op: "lu",
        });
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Pivot: largest absolute value in column k at or below row k.
        let mut pivot_row = k;
        let mut pivot_val = m[(k, k)].abs();
        for i in (k + 1)..n {
            if m[(i, k)].abs() > pivot_val {
                pivot_val = m[(i, k)].abs();
                pivot_row = i;
            }
        }
        if pivot_val == 0.0 {
            return Err(LinalgError::Singular { op: "lu" });
        }
        if pivot_row != k {
            for j in 0..n {
                let tmp = m[(k, j)];
                m[(k, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            perm.swap(k, pivot_row);
            sign = -sign;
        }
        let pivot = m[(k, k)];
        for i in (k + 1)..n {
            let factor = m[(i, k)] / pivot;
            m[(i, k)] = factor;
            for j in (k + 1)..n {
                let mkj = m[(k, j)];
                m[(i, j)] -= factor * mkj;
            }
        }
    }
    Ok(Lu { lu: m, perm, sign })
}

impl Lu {
    /// Solves `A x = b` using the precomputed factorization.
    #[allow(clippy::needless_range_loop)] // indexed triangular solves read clearest
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 1),
                got: (b.len(), 1),
                op: "lu_solve",
            });
        }
        // Forward substitution with permuted b (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for j in 0..i {
                s -= self.lu[(i, j)] * y[j];
            }
            y[i] = s;
        }
        // Back substitution on U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            let d = self.lu[(i, i)];
            if d == 0.0 {
                return Err(LinalgError::Singular { op: "lu_solve" });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve_multi(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                expected: (n, 0),
                got: b.shape(),
                op: "lu_solve_multi",
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let xj = self.solve(&b.col(j))?;
            x.set_col(j, &xj);
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        self.solve_multi(&Matrix::identity(n))
    }
}

/// Convenience: solve `A x = b` in one call.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    lu(a)?.solve(b)
}

/// Convenience: invert a square matrix.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    lu(a)?.inverse()
}

/// Convenience: determinant of a square matrix (0 if singular).
pub fn det(a: &Matrix) -> Result<f64> {
    match lu(a) {
        Ok(f) => Ok(f.det()),
        Err(LinalgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(lu(&a), Err(LinalgError::Singular { .. })));
        assert_eq!(det(&a).unwrap(), 0.0);
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_vec(3, 3, vec![6.0, 1.0, 1.0, 4.0, -2.0, 5.0, 2.0, 8.0, 7.0]).unwrap();
        assert!((det(&a).unwrap() - (-306.0)).abs() < 1e-9);
        assert!((det(&Matrix::identity(5)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 7.0, 2.0, 3.0, 6.0, 1.0, 2.0, 5.0, 3.0]).unwrap();
        let ainv = inverse(&a).unwrap();
        let prod = a.matmul(&ainv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn solve_multi_matches_columns() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 1.0, 1.0, 2.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![9.0, 1.0, 8.0, 0.0]).unwrap();
        let f = lu(&a).unwrap();
        let x = f.solve_multi(&b).unwrap();
        for j in 0..2 {
            let xj = f.solve(&b.col(j)).unwrap();
            assert_eq!(x.col(j), xj);
        }
        // Verify A X = B.
        assert!(a.matmul(&x).unwrap().approx_eq(&b, 1e-10));
    }

    #[test]
    fn non_square_rejected() {
        assert!(lu(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_dimension_mismatch() {
        let a = Matrix::identity(3);
        let f = lu(&a).unwrap();
        assert!(f.solve(&[1.0, 2.0]).is_err());
    }
}
