//! Dev harness: wall-clock timing of the blocked QR and SVD at n=512 on
//! the factor bench's distance-matrix-like input (no criterion overhead;
//! handy under `perf`).
use ides_linalg::qr::qr;
use ides_linalg::svd::svd;
use ides_linalg::{random, Matrix};
use std::time::Instant;

/// Same generator as crates/bench/benches/factor.rs: positive, zero
/// diagonal, near-low-rank.
fn test_matrix(n: usize) -> Matrix {
    let mut rng = random::seeded_rng(99);
    let base = random::uniform(n, 8, 0.5, 2.0, &mut rng);
    let mut m = base.matmul_tr(&base).unwrap().scale(10.0);
    for i in 0..n {
        m[(i, i)] = 0.0;
    }
    m
}

fn main() {
    let n = 512usize;
    let a = test_matrix(n);
    let t = Instant::now();
    let q = qr(&a).unwrap();
    println!(
        "qr total: {:.1} ms ({} cols)",
        t.elapsed().as_secs_f64() * 1e3,
        q.r.cols()
    );
    let t = Instant::now();
    let s = svd(&a).unwrap();
    println!(
        "svd total: {:.1} ms (sv0 {:.3})",
        t.elapsed().as_secs_f64() * 1e3,
        s.singular_values[0]
    );
}
