//! Quick wall-clock comparison of the blocked factorization layer against
//! the unblocked references at n = 512 (the committed `BENCH_*.json`
//! trajectory runs the `factor` bench group; this is the 10-second spot
//! check). Run with `cargo run --release -p ides-linalg --example
//! factor_speed`.

use ides_linalg::{random, Matrix};
use std::time::Instant;

fn test_matrix(n: usize) -> Matrix {
    let mut rng = random::seeded_rng(99);
    let base = random::uniform(n, 8, 0.5, 2.0, &mut rng);
    let mut m = base.matmul_tr(&base).unwrap().scale(10.0);
    for i in 0..n {
        m[(i, i)] = 0.0;
    }
    m
}

fn main() {
    let n = 512;
    let a = test_matrix(n);
    let t = Instant::now();
    let _ = ides_linalg::qr::qr(&a).unwrap();
    println!("qr blocked/{n}: {:?}", t.elapsed());
    let t = Instant::now();
    let _ = ides_linalg::qr::reference::qr_unblocked(&a).unwrap();
    println!("qr unblocked/{n}: {:?}", t.elapsed());
    let t = Instant::now();
    let s = ides_linalg::svd::svd(&a).unwrap();
    println!(
        "svd blocked/{n}: {:?} (s0={})",
        t.elapsed(),
        s.singular_values[0]
    );
    let t = Instant::now();
    let s = ides_linalg::svd::svd_jacobi(&a).unwrap();
    println!(
        "svd jacobi/{n}: {:?} (s0={})",
        t.elapsed(),
        s.singular_values[0]
    );
    let mut sym = a.clone();
    sym.symmetrize();
    let t = Instant::now();
    let e = ides_linalg::eig::symmetric_eig(&sym).unwrap();
    println!(
        "eig blocked/{n}: {:?} (l0={})",
        t.elapsed(),
        e.eigenvalues[0]
    );
    let t = Instant::now();
    let e = ides_linalg::eig::symmetric_eig_jacobi(&sym).unwrap();
    println!(
        "eig jacobi/{n}: {:?} (l0={})",
        t.elapsed(),
        e.eigenvalues[0]
    );
}
