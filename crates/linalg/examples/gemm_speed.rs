//! Quick speedup probe: blocked matmul vs the seed ikj loop at 512x512.
use ides_linalg::kernels::reference;
use ides_linalg::{random, Matrix};
use std::time::Instant;

fn time<F: FnMut() -> Matrix>(mut f: F, reps: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let n = 512;
    let mut rng = random::seeded_rng(1);
    let a = random::uniform(n, n, -1.0, 1.0, &mut rng);
    let b = random::uniform(n, n, -1.0, 1.0, &mut rng);
    let blocked = time(|| a.matmul(&b).unwrap(), 5);
    let ikj = time(|| reference::matmul_ikj(&a, &b).unwrap(), 3);
    let ijk = time(|| reference::matmul_ijk(&a, &b).unwrap(), 1);
    println!("blocked: {:.1} ms", blocked * 1e3);
    println!("seed ikj: {:.1} ms  ({:.2}x)", ikj * 1e3, ikj / blocked);
    println!("naive ijk: {:.1} ms  ({:.2}x)", ijk * 1e3, ijk / blocked);
}
