//! Dev harness: times the blocked GEMM under each compiled kernel back
//! end on this host. Not part of the bench trajectory.
use ides_linalg::kernels::{available_isas, gemm_with_isa, Op};
use std::time::Instant;

fn main() {
    let n = 512usize;
    let a: Vec<f64> = (0..n * n)
        .map(|i| ((i * 37) % 101) as f64 * 0.01 - 0.5)
        .collect();
    let mut out = vec![0.0f64; n * n];
    let flops = 2.0 * (n as f64).powi(3);
    for isa in available_isas() {
        // warm
        gemm_with_isa(
            isa,
            &a,
            Op::NoTrans,
            n,
            &a,
            Op::NoTrans,
            n,
            &mut out,
            n,
            n,
            n,
        );
        let mut best = f64::INFINITY;
        for _ in 0..7 {
            let t = Instant::now();
            gemm_with_isa(
                isa,
                &a,
                Op::NoTrans,
                n,
                &a,
                Op::NoTrans,
                n,
                &mut out,
                n,
                n,
                n,
            );
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!(
            "{isa:?}: {:.3} ms  {:.1} GFLOPS",
            best * 1e3,
            flops / best / 1e9
        );
    }
}
