//! Counting-allocator enforcement of the `_with` factorization variants'
//! zero-allocation contract: once the [`FactorWorkspace`], the output
//! struct, and the thread-local GEMM packing buffers have reached their
//! high-water shapes, repeated `qr_with` / `svd_with` /
//! `symmetric_eig_with` calls on same-shaped inputs must not touch the
//! heap at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ides_linalg::eig::SymmetricEig;
use ides_linalg::factor::{self, FactorWorkspace};
use ides_linalg::qr::Qr;
use ides_linalg::svd::Svd;
use ides_linalg::Matrix;

struct CountingAllocator;

thread_local! {
    /// Per-thread allocation counter: only the thread that opened a
    /// [`count_allocs`] window counts, and only its own allocations.
    /// Without this attribution the libtest harness's *main* thread races
    /// the counted window (its blocking channel `recv` lazily allocates an
    /// mpmc `Context` on first use) and the zero-alloc assertions fail
    /// intermittently; a process-global counter would also cross-count
    /// parallel test threads. Const-initialized so reading it never
    /// allocates inside the allocator itself.
    static THREAD_ALLOCS: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Bumps the current thread's counter if it is inside a counting window;
/// safe to call from the allocator (never allocates, tolerates TLS
/// teardown).
fn count_here() {
    let _ = THREAD_ALLOCS.try_with(|c| {
        if let Some(n) = c.get() {
            c.set(Some(n + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_here();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_here();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` and returns the number of allocation calls **this thread**
/// made during it.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    THREAD_ALLOCS.with(|c| c.set(Some(0)));
    let r = f();
    let calls = THREAD_ALLOCS.with(|c| c.replace(None)).unwrap_or(0);
    (calls, r)
}

fn det_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
    Matrix::from_fn(r, c, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
    })
}

#[test]
fn qr_with_allocates_nothing_on_reuse() {
    let a = det_matrix(150, 70, 1);
    let b = det_matrix(150, 70, 2);
    let mut ws = FactorWorkspace::new();
    let mut out = Qr::default();
    // Warm the workspace, the output, and the thread-local GEMM buffers.
    factor::qr_with(&a, &mut ws, &mut out).unwrap();
    let (calls, ()) = count_allocs(|| {
        for m in [&a, &b, &a, &b] {
            factor::qr_with(m, &mut ws, &mut out).unwrap();
        }
    });
    assert_eq!(calls, 0, "warm qr_with allocated {calls} times");
}

#[test]
fn svd_with_allocates_nothing_on_reuse() {
    let a = det_matrix(120, 60, 3);
    let b = det_matrix(120, 60, 4);
    let mut ws = FactorWorkspace::new();
    let mut out = Svd {
        u: Matrix::zeros(0, 0),
        singular_values: Vec::new(),
        v: Matrix::zeros(0, 0),
    };
    factor::svd_with(&a, &mut ws, &mut out).unwrap();
    let (calls, ()) = count_allocs(|| {
        for m in [&a, &b, &a, &b] {
            factor::svd_with(m, &mut ws, &mut out).unwrap();
        }
    });
    assert_eq!(calls, 0, "warm svd_with allocated {calls} times");
}

#[test]
fn svd_truncated_with_allocates_nothing_on_reuse() {
    // 100x100 at rank 6 (+8 oversample) keeps the subspace-iteration path
    // (2·14 < 100): iterates, re-orthonormalizations, the projection SVD,
    // and the output GEMM must all run in workspace-owned buffers.
    let a = det_matrix(100, 100, 9);
    let b = det_matrix(100, 100, 10);
    let opts = ides_linalg::svd::TruncatedSvdOptions::default();
    let mut ws = FactorWorkspace::new();
    let mut out = Svd::default();
    ides_linalg::svd::svd_truncated_with(&a, 6, opts, &mut ws, &mut out).unwrap();
    let (calls, ()) = count_allocs(|| {
        for m in [&a, &b, &a, &b] {
            ides_linalg::svd::svd_truncated_with(m, 6, opts, &mut ws, &mut out).unwrap();
        }
    });
    assert_eq!(calls, 0, "warm svd_truncated_with allocated {calls} times");
}

#[test]
fn symmetric_eig_with_allocates_nothing_on_reuse() {
    let mut a = det_matrix(90, 90, 5);
    a.symmetrize();
    let mut b = det_matrix(90, 90, 6);
    b.symmetrize();
    let mut ws = FactorWorkspace::new();
    let mut out = SymmetricEig::default();
    factor::symmetric_eig_with(&a, &mut ws, &mut out).unwrap();
    let (calls, ()) = count_allocs(|| {
        for m in [&a, &b, &a, &b] {
            factor::symmetric_eig_with(m, &mut ws, &mut out).unwrap();
        }
    });
    assert_eq!(calls, 0, "warm symmetric_eig_with allocated {calls} times");
}

#[test]
fn shrinking_shapes_do_not_reallocate() {
    // After factoring the largest shape, smaller same-kind factorizations
    // must run inside the existing capacity.
    let big = det_matrix(160, 80, 7);
    let small = det_matrix(100, 40, 8);
    let mut ws = FactorWorkspace::new();
    let mut out = Qr::default();
    factor::qr_with(&big, &mut ws, &mut out).unwrap();
    let (calls, ()) = count_allocs(|| {
        factor::qr_with(&small, &mut ws, &mut out).unwrap();
        factor::qr_with(&big, &mut ws, &mut out).unwrap();
    });
    assert_eq!(calls, 0, "shape shrink/regrow allocated {calls} times");
}
