//! Property tests pinning the blocked kernel layer to the naive reference
//! multiply: across random shapes — including empty, 1×n, and non-square
//! operands — every product the kernels compute must match the textbook
//! triple loop to ≤ 1e-12.

use ides_linalg::kernels::{reference, KC, MR, NR};
use ides_linalg::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix with entries in [-2, 2].
fn det_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(0xDEADBEEF);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
    })
}

fn assert_close(fast: &Matrix, slow: &Matrix, what: &str) {
    assert_eq!(fast.shape(), slow.shape(), "{what}: shape");
    let tol = 1e-12 * (1.0 + slow.max_abs());
    assert!(
        fast.approx_eq(slow, tol),
        "{what}: max abs diff {} exceeds {tol}",
        fast.max_abs_diff(slow)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `matmul` equals the naive reference across random shapes, with
    /// zero dimensions (empty), single rows/columns, and non-square
    /// operands all included in the strategy.
    #[test]
    fn matmul_matches_naive((m, n, k) in (0usize..24, 0usize..24, 0usize..24), seed in 0u64..10_000) {
        let a = det_matrix(m, k, seed);
        let b = det_matrix(k, n, seed ^ 0xABCD);
        let fast = a.matmul(&b).unwrap();
        let slow = reference::matmul_ijk(&a, &b).unwrap();
        assert_close(&fast, &slow, "matmul");
        // Shallow depth means the blocked accumulation order is exactly
        // ascending-k (fused), so the match against the fused reference is
        // bitwise, not just approximate.
        let fused = reference::matmul_fused(&a, &b).unwrap();
        prop_assert_eq!(fast, fused);
    }

    /// `tr_matmul` equals transposing then multiplying naively.
    #[test]
    fn tr_matmul_matches_naive((r, c, n) in (0usize..24, 0usize..24, 0usize..24), seed in 0u64..10_000) {
        let a = det_matrix(r, c, seed);
        let b = det_matrix(r, n, seed ^ 0x1234);
        let fast = a.tr_matmul(&b).unwrap();
        let slow = reference::matmul_ijk(&a.transpose(), &b).unwrap();
        assert_close(&fast, &slow, "tr_matmul");
    }

    /// `matmul_tr` equals multiplying by the naive transpose.
    #[test]
    fn matmul_tr_matches_naive((m, n, k) in (0usize..24, 0usize..24, 0usize..24), seed in 0u64..10_000) {
        let a = det_matrix(m, k, seed);
        let b = det_matrix(n, k, seed ^ 0x5678);
        let fast = a.matmul_tr(&b).unwrap();
        let slow = reference::matmul_ijk(&a, &b.transpose()).unwrap();
        assert_close(&fast, &slow, "matmul_tr");
    }

    /// `matvec` / `tr_matvec` equal the naive column-vector product.
    #[test]
    fn matvec_matches_naive((m, k) in (0usize..40, 0usize..40), seed in 0u64..10_000) {
        let a = det_matrix(m, k, seed);
        let x = det_matrix(k, 1, seed ^ 0x42).into_vec();
        let fast = a.matvec(&x).unwrap();
        let slow = reference::matmul_ijk(&a, &Matrix::col_vector(&x)).unwrap();
        for i in 0..m {
            prop_assert!((fast[i] - slow[(i, 0)]).abs() <= 1e-12 * (1.0 + slow[(i, 0)].abs()));
        }
        let v = det_matrix(m, 1, seed ^ 0x43).into_vec();
        let fast_t = a.tr_matvec(&v).unwrap();
        let slow_t = reference::matmul_ijk(&a.transpose(), &Matrix::col_vector(&v)).unwrap();
        for j in 0..k {
            prop_assert!((fast_t[j] - slow_t[(j, 0)]).abs() <= 1e-12 * (1.0 + slow_t[(j, 0)].abs()));
        }
    }

    /// The `_into` variants write the same values as the allocating ones
    /// and reject mis-shaped outputs instead of resizing silently.
    #[test]
    fn into_variants_match((m, n, k) in (1usize..16, 1usize..16, 1usize..16), seed in 0u64..10_000) {
        let a = det_matrix(m, k, seed);
        let b = det_matrix(k, n, seed ^ 0x77);
        let mut out = Matrix::zeros(m, n);
        a.matmul_into(&b, &mut out).unwrap();
        prop_assert_eq!(out, a.matmul(&b).unwrap());
        let mut wrong = Matrix::zeros(m + 1, n);
        prop_assert!(a.matmul_into(&b, &mut wrong).is_err());
    }
}

/// Shapes that straddle every blocking boundary — micro-tile edges and the
/// `KC` panel edge — still match the naive reference.
#[test]
fn blocking_boundary_shapes_match() {
    let cases = [
        (1, 1, 1),
        (1, NR + 1, KC + 3),
        (MR + 1, 1, KC - 1),
        (MR * 3 + 2, NR * 2 + 5, KC + KC / 2),
        (130, 70, KC * 2 + 1),
    ];
    for &(m, n, k) in &cases {
        let a = det_matrix(m, k, (m * 100 + n * 10 + k) as u64);
        let b = det_matrix(k, n, (k * 100 + m) as u64);
        let fast = a.matmul(&b).unwrap();
        let slow = reference::matmul_ijk(&a, &b).unwrap();
        assert_close(&fast, &slow, "boundary matmul");
        let fast_t = a.matmul_tr(&b.transpose()).unwrap();
        assert_close(&fast_t, &slow, "boundary matmul_tr");
    }
}

/// The two reference implementations agree with each other (sanity for the
/// benchmark baselines).
#[test]
fn references_agree() {
    let a = det_matrix(37, 29, 1);
    let b = det_matrix(29, 31, 2);
    let ijk = reference::matmul_ijk(&a, &b).unwrap();
    let ikj = reference::matmul_ikj(&a, &b).unwrap();
    assert_close(&ikj, &ijk, "ikj vs ijk");
}
