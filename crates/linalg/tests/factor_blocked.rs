//! Property suite for the blocked factorization layer: every blocked
//! algorithm is pinned against its unblocked reference (scalar Householder
//! QR, one-sided Jacobi SVD, cyclic Jacobi eig) across shapes straddling
//! the panel boundaries — square-ish, very tall, rank-deficient — with
//! orthogonality and reconstruction held to 1e-9, and blocked QR held
//! **bit-identical** to the unblocked algorithm whenever the matrix has at
//! most `PANEL` columns (a single panel runs the reference arithmetic end
//! to end).

use ides_linalg::eig::{symmetric_eig, symmetric_eig_jacobi, SymmetricEig};
use ides_linalg::factor::{self, FactorWorkspace, PANEL, SMALL};
use ides_linalg::qr::{self, reference::qr_unblocked, Qr};
use ides_linalg::svd::{svd, svd_jacobi, Svd};
use ides_linalg::Matrix;

/// Deterministic dense test matrix with O(1) entries and no structure.
fn det_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(12345);
    Matrix::from_fn(r, c, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
    })
}

/// Rank-`k` matrix: product of two random factors.
fn low_rank(r: usize, c: usize, k: usize, seed: u64) -> Matrix {
    let a = det_matrix(r, k, seed);
    let b = det_matrix(k, c, seed.wrapping_add(7));
    a.matmul(&b).unwrap()
}

fn assert_orthonormal_cols(q: &Matrix, tol: f64, what: &str) {
    let qtq = q.tr_matmul(q).unwrap();
    let i = Matrix::identity(q.cols());
    assert!(
        qtq.approx_eq(&i, tol),
        "{what}: QᵀQ deviates from identity by {}",
        qtq.max_abs_diff(&i)
    );
}

// ---------------------------------------------------------------------------
// QR
// ---------------------------------------------------------------------------

#[test]
fn blocked_qr_matches_reference_across_shapes() {
    // Shapes straddling the panel boundary, incl. m ≈ n and m ≫ n.
    for &(m, n) in &[
        (PANEL + 1, PANEL + 1),
        (PANEL * 2 + 3, PANEL * 2 + 3),
        (97, 91),
        (200, 64),
        (333, 40),
        (500, 37),
        (130, 129),
    ] {
        let a = det_matrix(m, n, (m * 7 + n) as u64);
        let blocked = qr::qr(&a).unwrap();
        let reference = qr_unblocked(&a).unwrap();
        assert_eq!(blocked.q.shape(), (m, n));
        assert_eq!(blocked.r.shape(), (n, n));
        assert_orthonormal_cols(&blocked.q, 1e-11, &format!("qr {m}x{n}"));
        // Reconstruction against the input.
        let recon = blocked.q.matmul(&blocked.r).unwrap();
        assert!(
            recon.approx_eq(&a, 1e-9),
            "qr {m}x{n}: |QR - A| = {}",
            recon.max_abs_diff(&a)
        );
        // R upper triangular with the reference's magnitudes on the diagonal
        // (signs and low bits may differ panel-wise; diagonal magnitudes are
        // pinned by the sign convention, which both algorithms share).
        for i in 0..n {
            for j in 0..i {
                assert_eq!(blocked.r[(i, j)], 0.0);
            }
            assert!(
                (blocked.r[(i, i)].abs() - reference.r[(i, i)].abs()).abs()
                    <= 1e-9 * (1.0 + reference.r[(i, i)].abs()),
                "qr {m}x{n}: diag {i}"
            );
        }
    }
}

#[test]
fn blocked_qr_bit_identical_to_unblocked_within_one_panel() {
    // n <= PANEL => a single panel runs the reference arithmetic end to
    // end: results must be bitwise equal, not merely close.
    for &(m, n) in &[
        (PANEL, PANEL),
        (64, PANEL),
        (200, 17),
        (45, 1),
        (333, PANEL - 1),
    ] {
        let a = det_matrix(m, n, (m * 31 + n) as u64);
        let blocked = qr::qr(&a).unwrap();
        let reference = qr_unblocked(&a).unwrap();
        assert_eq!(
            blocked.q.as_slice(),
            reference.q.as_slice(),
            "Q not bitwise for {m}x{n}"
        );
        assert_eq!(
            blocked.r.as_slice(),
            reference.r.as_slice(),
            "R not bitwise for {m}x{n}"
        );
    }
}

#[test]
fn blocked_qr_rank_deficient_and_zero_columns() {
    // Rank-3 tall matrix: QR must still produce an orthonormal Q and an
    // exact reconstruction (R picks up ~zero diagonal entries).
    let a = low_rank(120, 50, 3, 9);
    let Qr { q, r } = qr::qr(&a).unwrap();
    assert_orthonormal_cols(&q, 1e-10, "rank-deficient qr");
    assert!(q.matmul(&r).unwrap().approx_eq(&a, 1e-9));
    // Explicit zero column crossing a panel boundary.
    let mut b = det_matrix(100, PANEL + 5, 11);
    for i in 0..100 {
        b[(i, PANEL + 1)] = 0.0;
    }
    let f = qr::qr(&b).unwrap();
    assert!(f.q.matmul(&f.r).unwrap().approx_eq(&b, 1e-9));
}

#[test]
fn qr_with_reuses_workspace_across_shapes() {
    let mut ws = FactorWorkspace::new();
    let mut out = Qr::default();
    for &(m, n) in &[(80, 40), (120, 90), (40, 40), (90, 12)] {
        let a = det_matrix(m, n, (m + n) as u64);
        factor::qr_with(&a, &mut ws, &mut out).unwrap();
        let fresh = qr::qr(&a).unwrap();
        assert_eq!(out.q.as_slice(), fresh.q.as_slice(), "{m}x{n}");
        assert_eq!(out.r.as_slice(), fresh.r.as_slice(), "{m}x{n}");
    }
    // Wide input still rejected through the workspace entry point.
    assert!(factor::qr_with(&Matrix::zeros(3, 5), &mut ws, &mut out).is_err());
}

// ---------------------------------------------------------------------------
// SVD
// ---------------------------------------------------------------------------

fn check_svd_against_jacobi(a: &Matrix, tag: &str) {
    let blocked = svd(a).unwrap();
    let oracle = svd_jacobi(a).unwrap();
    let (m, n) = a.shape();
    let k = m.min(n);
    assert_eq!(blocked.u.shape(), (m, k.max(n.min(m))), "{tag}: u shape");
    assert_eq!(blocked.singular_values.len(), k, "{tag}: sv count");
    assert_orthonormal_cols(&blocked.u, 1e-9, &format!("{tag} U"));
    assert_orthonormal_cols(&blocked.v, 1e-9, &format!("{tag} V"));
    let smax = oracle.singular_values[0].max(1e-300);
    for (i, (b, o)) in blocked
        .singular_values
        .iter()
        .zip(oracle.singular_values.iter())
        .enumerate()
    {
        assert!(
            (b - o).abs() <= 1e-9 * smax,
            "{tag}: sv {i}: blocked {b} vs jacobi {o}"
        );
        assert!(*b >= -1e-12, "{tag}: negative singular value {b}");
    }
    // Non-increasing order.
    for w in blocked.singular_values.windows(2) {
        assert!(w[0] >= w[1] - 1e-12 * smax, "{tag}: not sorted");
    }
    let recon = blocked.reconstruct();
    assert!(
        recon.approx_eq(a, 1e-9 * (1.0 + smax)),
        "{tag}: |USVᵀ - A| = {}",
        recon.max_abs_diff(a)
    );
}

#[test]
fn blocked_svd_matches_jacobi_square_and_tall() {
    for &(m, n, seed) in &[
        (SMALL + 1, SMALL + 1, 1u64), // just past the dispatch cutoff
        (90, 85, 2),                  // m ≈ n across panel boundaries
        (130, 130, 3),                // square, multiple panels
        (400, 50, 4),                 // m ≫ n
        (250, 33, 5),
    ] {
        let a = det_matrix(m, n, seed);
        check_svd_against_jacobi(&a, &format!("svd {m}x{n}"));
    }
}

#[test]
fn blocked_svd_wide_matrix_via_transpose() {
    let a = det_matrix(40, 120, 6);
    check_svd_against_jacobi(&a, "svd 40x120");
    let s = svd(&a).unwrap();
    assert_eq!(s.u.shape(), (40, 40));
    assert_eq!(s.v.shape(), (120, 40));
}

#[test]
fn blocked_svd_rank_deficient() {
    // Exact rank 5 in a 140x60 matrix: trailing singular values ~0 and the
    // reconstruction still holds to 1e-9.
    let a = low_rank(140, 60, 5, 21);
    let s = svd(&a).unwrap();
    let smax = s.singular_values[0];
    for &sv in &s.singular_values[5..] {
        assert!(sv.abs() <= 1e-10 * smax, "phantom singular value {sv}");
    }
    assert!(s.reconstruct().approx_eq(&a, 1e-9 * (1.0 + smax)));
    assert_orthonormal_cols(&s.u, 1e-9, "rank-deficient U");
    assert_orthonormal_cols(&s.v, 1e-9, "rank-deficient V");
}

#[test]
fn blocked_svd_distance_matrix_like() {
    // Positive, zero-diagonal, near-low-rank input — the IDES workload.
    let base = det_matrix(96, 8, 31).map(|x| x.abs() + 0.5);
    let mut d = base.matmul_tr(&base).unwrap().scale(10.0);
    for i in 0..96 {
        d[(i, i)] = 0.0;
    }
    check_svd_against_jacobi(&d, "svd distance-like 96x96");
}

#[test]
fn svd_with_workspace_reuse_matches_dispatch() {
    let mut ws = FactorWorkspace::new();
    let mut out = Svd {
        u: Matrix::zeros(0, 0),
        singular_values: Vec::new(),
        v: Matrix::zeros(0, 0),
    };
    for &(m, n, seed) in &[(70, 60, 41u64), (60, 70, 42), (150, 40, 43)] {
        let a = det_matrix(m, n, seed);
        factor::svd_with(&a, &mut ws, &mut out).unwrap();
        let oracle = svd_jacobi(&a).unwrap();
        let smax = oracle.singular_values[0];
        for (b, o) in out
            .singular_values
            .iter()
            .zip(oracle.singular_values.iter())
        {
            assert!((b - o).abs() <= 1e-9 * smax, "{m}x{n}");
        }
        assert!(
            out.reconstruct().approx_eq(&a, 1e-9 * (1.0 + smax)),
            "{m}x{n}"
        );
    }
}

// ---------------------------------------------------------------------------
// Symmetric eig
// ---------------------------------------------------------------------------

fn check_eig_against_jacobi(a: &Matrix, tag: &str) {
    let blocked = symmetric_eig(a).unwrap();
    let oracle = symmetric_eig_jacobi(a).unwrap();
    let n = a.rows();
    assert_eq!(blocked.eigenvalues.len(), n, "{tag}");
    let scale = oracle
        .eigenvalues
        .iter()
        .fold(0.0f64, |m, &l| m.max(l.abs()))
        .max(1e-300);
    for (i, (b, o)) in blocked
        .eigenvalues
        .iter()
        .zip(oracle.eigenvalues.iter())
        .enumerate()
    {
        assert!(
            (b - o).abs() <= 1e-9 * scale,
            "{tag}: eigenvalue {i}: blocked {b} vs jacobi {o}"
        );
    }
    assert_orthonormal_cols(&blocked.eigenvectors, 1e-9, &format!("{tag} Q"));
    let recon = blocked.reconstruct();
    assert!(
        recon.approx_eq(a, 1e-9 * (1.0 + scale)),
        "{tag}: |QΛQᵀ - A| = {}",
        recon.max_abs_diff(a)
    );
    // Trace preserved.
    let sum: f64 = blocked.eigenvalues.iter().sum();
    assert!(
        (sum - a.trace()).abs() <= 1e-8 * (1.0 + scale),
        "{tag}: trace"
    );
}

#[test]
fn blocked_eig_matches_jacobi() {
    for &(n, seed) in &[(SMALL + 1, 51u64), (80, 52), (129, 53), (160, 54)] {
        let mut a = det_matrix(n, n, seed);
        a.symmetrize();
        check_eig_against_jacobi(&a, &format!("eig {n}"));
    }
}

#[test]
fn blocked_eig_psd_and_rank_deficient() {
    // Gram matrix of a rank-6 factor: PSD with exactly 6 nonzero
    // eigenvalues — the PCA covariance workload.
    let b = det_matrix(100, 6, 61);
    let g = b.matmul_tr(&b).unwrap();
    let e = symmetric_eig(&g).unwrap();
    let scale = e.eigenvalues[0];
    for &l in &e.eigenvalues {
        assert!(l >= -1e-9 * scale, "negative eigenvalue {l}");
    }
    for &l in &e.eigenvalues[6..] {
        assert!(l.abs() <= 1e-9 * scale, "phantom eigenvalue {l}");
    }
    assert!(e.reconstruct().approx_eq(&g, 1e-9 * (1.0 + scale)));
}

#[test]
fn blocked_eig_clustered_spectrum() {
    // Repeated eigenvalues (block diagonal with equal blocks) stress the
    // QL deflation logic.
    let n = 90;
    let a = Matrix::from_fn(n, n, |i, j| {
        if i / 30 == j / 30 {
            if i == j {
                2.0
            } else {
                0.5
            }
        } else {
            0.0
        }
    });
    check_eig_against_jacobi(&a, "eig clustered 90");
}

#[test]
fn eig_with_workspace_reuse_matches_dispatch() {
    let mut ws = FactorWorkspace::new();
    let mut out = SymmetricEig::default();
    for &(n, seed) in &[(70, 71u64), (110, 72), (40, 73)] {
        let mut a = det_matrix(n, n, seed);
        a.symmetrize();
        factor::symmetric_eig_with(&a, &mut ws, &mut out).unwrap();
        let oracle = symmetric_eig_jacobi(&a).unwrap();
        let scale = oracle.eigenvalues[0].abs().max(1e-300);
        for (b, o) in out.eigenvalues.iter().zip(oracle.eigenvalues.iter()) {
            assert!((b - o).abs() <= 1e-9 * scale, "n={n}");
        }
    }
    // Non-square rejected.
    assert!(factor::symmetric_eig_with(&Matrix::zeros(2, 3), &mut ws, &mut out).is_err());
}

/// With the `parallel` feature, the blocked factorizations must be
/// bit-identical at any thread count: their panel updates are ordinary
/// kernel-layer GEMMs, whose row bands are numerically independent. The
/// shapes are chosen large enough that the trailing-update GEMMs cross
/// the kernel layer's fan-out threshold.
#[cfg(feature = "parallel")]
#[test]
fn parallel_factorizations_are_bit_identical() {
    let a = det_matrix(1024, 400, 77);
    std::env::set_var("IDES_LINALG_THREADS", "4");
    let qr_par = qr::qr(&a).unwrap();
    let svd_par = svd(&a).unwrap();
    std::env::set_var("IDES_LINALG_THREADS", "1");
    let qr_seq = qr::qr(&a).unwrap();
    let svd_seq = svd(&a).unwrap();
    std::env::remove_var("IDES_LINALG_THREADS");
    assert_eq!(qr_par.q.as_slice(), qr_seq.q.as_slice());
    assert_eq!(qr_par.r.as_slice(), qr_seq.r.as_slice());
    assert_eq!(svd_par.u.as_slice(), svd_seq.u.as_slice());
    assert_eq!(svd_par.v.as_slice(), svd_seq.v.as_slice());
    assert_eq!(svd_par.singular_values, svd_seq.singular_values);
}
