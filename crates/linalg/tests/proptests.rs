//! Property-based tests for the dense linear-algebra kernels.

use ides_linalg::cholesky::{cholesky, cholesky_downdate_in_place, cholesky_update_in_place};
use ides_linalg::qr::{lstsq, qr};
use ides_linalg::solve::CachedGram;
use ides_linalg::svd::{svd, svd_truncated, TruncatedSvdOptions};
use ides_linalg::{eig::symmetric_eig, lu, nnls::nnls, solve::pinv, Matrix};
use proptest::prelude::*;

/// Strategy: a small matrix shape (the matrices themselves are built
/// deterministically from a seed).
fn small_shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..8, 1usize..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution((r, c) in small_shape(), seed in 0u64..1000) {
        let a = deterministic_matrix(r, c, seed);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associative(seed in 0u64..1000) {
        let a = deterministic_matrix(4, 3, seed);
        let b = deterministic_matrix(3, 5, seed.wrapping_add(1));
        let c = deterministic_matrix(5, 2, seed.wrapping_add(2));
        let ab_c = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let a_bc = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(ab_c.approx_eq(&a_bc, 1e-8 * (1.0 + ab_c.max_abs())));
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..1000) {
        let a = deterministic_matrix(3, 4, seed);
        let b = deterministic_matrix(4, 3, seed.wrapping_add(7));
        let c = deterministic_matrix(4, 3, seed.wrapping_add(13));
        let lhs = a.matmul(&(&b + &c)).unwrap();
        let rhs = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9 * (1.0 + lhs.max_abs())));
    }

    #[test]
    fn transpose_of_product(seed in 0u64..1000) {
        let a = deterministic_matrix(4, 3, seed);
        let b = deterministic_matrix(3, 5, seed.wrapping_add(3));
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn qr_reconstructs(v in prop::collection::vec(-10.0_f64..10.0, 20)) {
        let a = Matrix::from_vec(5, 4, v).unwrap();
        let f = qr(&a).unwrap();
        prop_assert!(f.q.matmul(&f.r).unwrap().approx_eq(&a, 1e-8));
        let qtq = f.q.tr_matmul(&f.q).unwrap();
        prop_assert!(qtq.approx_eq(&Matrix::identity(4), 1e-9));
    }

    #[test]
    fn svd_reconstructs_and_is_sorted(v in prop::collection::vec(-10.0_f64..10.0, 24)) {
        let a = Matrix::from_vec(6, 4, v).unwrap();
        let f = svd(&a).unwrap();
        prop_assert!(f.reconstruct().approx_eq(&a, 1e-7));
        for w in f.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        for &s in &f.singular_values {
            prop_assert!(s >= 0.0);
        }
        // Orthonormality of both factors.
        prop_assert!(f.u.tr_matmul(&f.u).unwrap().approx_eq(&Matrix::identity(4), 1e-8));
        prop_assert!(f.v.tr_matmul(&f.v).unwrap().approx_eq(&Matrix::identity(4), 1e-8));
    }

    #[test]
    fn svd_frobenius_norm_identity(v in prop::collection::vec(-5.0_f64..5.0, 25)) {
        // ‖A‖_F² = Σ σᵢ².
        let a = Matrix::from_vec(5, 5, v).unwrap();
        let f = svd(&a).unwrap();
        let sum_sq: f64 = f.singular_values.iter().map(|s| s * s).sum();
        let fro2 = a.frobenius_norm().powi(2);
        prop_assert!((sum_sq - fro2).abs() < 1e-7 * (1.0 + fro2));
    }

    #[test]
    fn truncated_svd_never_beats_eckart_young(v in prop::collection::vec(-5.0_f64..5.0, 49), d in 1usize..4) {
        // The optimal rank-d error is sqrt(Σ_{i>d} σᵢ²); subspace iteration
        // must be within a small factor of it and never (meaningfully) below.
        let a = Matrix::from_vec(7, 7, v).unwrap();
        let full = svd(&a).unwrap();
        let optimal: f64 = full.singular_values[d..].iter().map(|s| s * s).sum::<f64>().sqrt();
        let t = svd_truncated(&a, d, TruncatedSvdOptions::default()).unwrap();
        let err = (&a - &t.reconstruct()).frobenius_norm();
        prop_assert!(err >= optimal - 1e-6, "err {} below optimal {}", err, optimal);
        prop_assert!(err <= optimal * 1.0 + 1e-4 + optimal * 1e-3, "err {} far above optimal {}", err, optimal);
    }

    #[test]
    fn eig_reconstructs_symmetric(v in prop::collection::vec(-10.0_f64..10.0, 36)) {
        let mut a = Matrix::from_vec(6, 6, v).unwrap();
        a.symmetrize();
        let e = symmetric_eig(&a).unwrap();
        prop_assert!(e.reconstruct().approx_eq(&a, 1e-7));
        let trace_sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((trace_sum - a.trace()).abs() < 1e-8 * (1.0 + a.trace().abs()));
    }

    #[test]
    fn lu_solve_roundtrip(v in prop::collection::vec(-10.0_f64..10.0, 16), b in prop::collection::vec(-10.0_f64..10.0, 4)) {
        let mut a = Matrix::from_vec(4, 4, v).unwrap();
        // Diagonal dominance guarantees nonsingularity.
        for i in 0..4 {
            let row_sum: f64 = a.row(i).iter().map(|x| x.abs()).sum();
            a[(i, i)] = row_sum + 1.0;
        }
        let x = lu::solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(b.iter()) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    #[test]
    fn lstsq_normal_gradient_zero(v in prop::collection::vec(-5.0_f64..5.0, 18), b in prop::collection::vec(-5.0_f64..5.0, 6)) {
        let a = Matrix::from_vec(6, 3, v).unwrap();
        if let Ok(x) = lstsq(&a, &b) {
            let ax = a.matvec(&x).unwrap();
            let resid: Vec<f64> = b.iter().zip(ax.iter()).map(|(&bi, &ai)| bi - ai).collect();
            let grad = a.tr_matvec(&resid).unwrap();
            for g in grad {
                prop_assert!(g.abs() < 1e-6, "gradient component {}", g);
            }
        }
    }

    #[test]
    fn pinv_penrose_1(v in prop::collection::vec(-5.0_f64..5.0, 12)) {
        let a = Matrix::from_vec(4, 3, v).unwrap();
        let p = pinv(&a, 1e-10).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        prop_assert!(apa.approx_eq(&a, 1e-6 * (1.0 + a.max_abs())));
    }

    #[test]
    fn cholesky_update_matches_from_scratch((n, _) in small_shape(), seed in 0u64..1000) {
        // A = BᵀB + I is SPD; a rank-1 updated factor must match the
        // from-scratch factorization of A + vvᵀ within 1e-9.
        let b = deterministic_matrix(n + 2, n, seed);
        let a = &b.tr_matmul(&b).unwrap() + &Matrix::identity(n);
        let v: Vec<f64> = deterministic_matrix(1, n, seed.wrapping_add(17)).row(0).to_vec();
        let mut l = cholesky(&a).unwrap().l().clone();
        let mut scratch = v.clone();
        cholesky_update_in_place(&mut l, &mut scratch).unwrap();
        let mut plus = a.clone();
        for i in 0..n {
            for j in 0..n {
                plus[(i, j)] += v[i] * v[j];
            }
        }
        let fresh = cholesky(&plus).unwrap();
        prop_assert!(
            l.approx_eq(fresh.l(), 1e-9 * (1.0 + fresh.l().max_abs())),
            "update drifted by {}", l.max_abs_diff(fresh.l())
        );
        // Downdating the same vector recovers the original factor.
        let mut scratch = v.clone();
        cholesky_downdate_in_place(&mut l, &mut scratch).unwrap();
        let orig = cholesky(&a).unwrap();
        prop_assert!(l.approx_eq(orig.l(), 1e-9 * (1.0 + orig.l().max_abs())));
    }

    #[test]
    fn cached_gram_replace_row_matches_refactor((n, _) in small_shape(), seed in 0u64..1000) {
        // Replacing a design row through rank-1 surgery must match a
        // from-scratch factorization of the edited design matrix.
        let k = n + 3;
        let mut a = deterministic_matrix(k, n, seed);
        let mut cg = CachedGram::factor(&a, 0.5).unwrap();
        let new_row: Vec<f64> = deterministic_matrix(1, n, seed.wrapping_add(31)).row(0).to_vec();
        let old_row: Vec<f64> = a.row(1).to_vec();
        a.set_row(1, &new_row);
        cg.replace_row(&old_row, &new_row).unwrap();
        let fresh = CachedGram::factor(&a, 0.5).unwrap();
        prop_assert!(
            cg.l().approx_eq(fresh.l(), 1e-9 * (1.0 + fresh.l().max_abs())),
            "cached gram drifted by {}", cg.l().max_abs_diff(fresh.l())
        );
    }

    #[test]
    fn nnls_is_nonnegative_and_no_worse_than_zero(v in prop::collection::vec(-5.0_f64..5.0, 15), b in prop::collection::vec(-5.0_f64..5.0, 5)) {
        let a = Matrix::from_vec(5, 3, v).unwrap();
        let x = nnls(&a, &b).unwrap();
        for &xi in &x {
            prop_assert!(xi >= 0.0);
        }
        let ax = a.matvec(&x).unwrap();
        let r2: f64 = b.iter().zip(ax.iter()).map(|(&bi, &ai)| (bi - ai) * (bi - ai)).sum();
        let b2: f64 = b.iter().map(|&v| v * v).sum();
        prop_assert!(r2 <= b2 + 1e-8);
    }
}

/// Deterministic pseudo-random matrix from a seed (keeps shrinking fast by
/// avoiding huge proptest vectors for multi-matrix laws).
fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0 - 5.0
    })
}
