//! Pins the batched host-join path to **zero allocations per additional
//! host** once the workspace is warm, extending the PR-1 zero-alloc suite
//! for the NMF/ALS loops to the join layer.
//!
//! Method: a counting global allocator measures two batched joins that
//! differ only in host count (300 vs 600 hosts) against warm buffers. The
//! per-batch costs (one QR or Cholesky factorization of the shared
//! reference system) appear in both measurements identically, so any
//! per-host allocation would surface as a positive count delta
//! proportional to the 300 extra hosts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ides::projection::{join_hosts_into, BatchHostVectors, JoinOptions, JoinSolver, JoinWorkspace};
use ides_linalg::Matrix;

struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The counters are process-global, so concurrently running tests would
/// bleed allocations into each other's measured regions; every test that
/// measures holds this lock for its full body.
static MEASURED: Mutex<()> = Mutex::new(());

/// Runs `f` and returns `(allocation calls, allocated bytes)` during it.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let r = f();
    (
        ALLOC_CALLS.load(Ordering::Relaxed) - calls0,
        ALLOC_BYTES.load(Ordering::Relaxed) - bytes0,
        r,
    )
}

/// Deterministic full-column-rank reference matrix (k x d).
fn reference(k: usize, d: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut m = Matrix::from_fn(k, d, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 + 0.5
    });
    for i in 0..d.min(k) {
        m[(i, i)] += 3.0;
    }
    m
}

fn measurements(hosts: usize, k: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(hosts, k, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * 80.0 + 1.0
    })
}

/// The acceptance check: with a warm workspace and output batch, joining
/// 600 hosts allocates exactly as much as joining 300 — zero allocations
/// per additional host — on both factorization-sharing solver paths.
#[test]
fn batched_join_zero_alloc_per_additional_host() {
    let _serial = MEASURED.lock().unwrap();
    let k = 24;
    let d = 8;
    let x_refs = reference(k, d, 1);
    let y_refs = reference(k, d, 2);
    let d_out_big = measurements(600, k, 3);
    let d_in_big = measurements(600, k, 4);
    // Row-prefix views would share storage; independent matrices keep the
    // measurement inputs themselves out of the measured region.
    let d_out_small = Matrix::from_fn(300, k, |r, c| d_out_big[(r, c)]);
    let d_in_small = Matrix::from_fn(300, k, |r, c| d_in_big[(r, c)]);

    for (label, opts) in [
        (
            "qr",
            JoinOptions {
                solver: JoinSolver::Qr,
                ridge: 0.0,
            },
        ),
        (
            "normal_eq",
            JoinOptions {
                solver: JoinSolver::NormalEquations,
                ridge: 0.0,
            },
        ),
        (
            "ridge",
            JoinOptions {
                solver: JoinSolver::NormalEquations,
                ridge: 0.01,
            },
        ),
    ] {
        let mut ws = JoinWorkspace::new();
        let mut batch = BatchHostVectors::new();
        // Warm every buffer to its 600-host high-water mark.
        join_hosts_into(
            &mut ws, &x_refs, &y_refs, &d_out_big, &d_in_big, opts, &mut batch,
        )
        .expect("warm join");

        let (calls_small, _, _) = count_allocs(|| {
            join_hosts_into(
                &mut ws,
                &x_refs,
                &y_refs,
                &d_out_small,
                &d_in_small,
                opts,
                &mut batch,
            )
            .expect("300-host join")
        });
        let (calls_big, bytes_big, _) = count_allocs(|| {
            join_hosts_into(
                &mut ws, &x_refs, &y_refs, &d_out_big, &d_in_big, opts, &mut batch,
            )
            .expect("600-host join")
        });
        let delta = calls_big.saturating_sub(calls_small);
        assert!(
            delta == 0,
            "{label}: 300 extra hosts performed {delta} heap allocations \
             (300-host batch: {calls_small} calls, 600-host batch: \
             {calls_big} calls / {bytes_big} B): the batched join is \
             supposed to be allocation-free per additional host"
        );
    }
}

/// The per-batch factorization cost itself is bounded: joining through the
/// warm workspace allocates only the O(1)-per-batch factorization buffers
/// (QR path) or nothing at all (normal-equation/ridge paths).
#[test]
fn warm_normal_equation_batch_allocates_nothing_at_all() {
    let _serial = MEASURED.lock().unwrap();
    let k = 16;
    let d = 6;
    let x_refs = reference(k, d, 7);
    let y_refs = reference(k, d, 8);
    let d_out = measurements(200, k, 9);
    let d_in = measurements(200, k, 10);
    let opts = JoinOptions {
        solver: JoinSolver::NormalEquations,
        ridge: 0.0,
    };
    let mut ws = JoinWorkspace::new();
    let mut batch = BatchHostVectors::new();
    join_hosts_into(&mut ws, &x_refs, &y_refs, &d_out, &d_in, opts, &mut batch).expect("warm");
    let (calls, bytes, _) = count_allocs(|| {
        join_hosts_into(&mut ws, &x_refs, &y_refs, &d_out, &d_in, opts, &mut batch)
            .expect("warm join")
    });
    assert!(
        calls == 0,
        "warm normal-equation batch join performed {calls} allocations ({bytes} B)"
    );
}
