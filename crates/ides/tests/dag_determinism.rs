//! DAG-vs-serial bit-identity for planned epoch application.
//!
//! The dependency-DAG executor's contract: the committed state after
//! `StreamingServer::apply_epoch_planned` — factor model, coordinate
//! table, and every subsequently served answer — is **bit-identical to
//! serial application** at any thread count (and, at the engine layer, at
//! any shard count). Parallelism changes when a solve runs, never what it
//! reads or the order its result merges.
//!
//! The matrix CI lane (`determinism-stress`) runs this suite across
//! `IDES_LINALG_THREADS` x `IDES_LINALG_KERNEL` configurations; the
//! explicit-thread tests below additionally pin 1/2/4/7 threads in-process
//! so the guarantee holds regardless of the ambient environment.

use ides::service::{NodeId, ServiceConfig, ShardedEngine};
use ides::streaming::dag::PlanStats;
use ides::streaming::{
    EpochUpdate, MeasurementDelta, RejoinTables, StalenessPolicy, StreamingServer,
};
use ides::BatchHostVectors;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 4, 7];

/// Deterministic positive measurement table (`hosts x k`).
fn meas_table(hosts: usize, k: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    Matrix::from_fn(hosts, k, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        10.0 + ((state >> 33) as f64 / (1u64 << 31) as f64) * 90.0
    })
}

fn server(k: usize, dim: usize, seed: u64, threshold: f64) -> StreamingServer {
    let lm = DistanceMatrix::full("lm", meas_table(k, k, seed)).expect("landmark matrix");
    StreamingServer::new(
        &lm,
        dim,
        StalenessPolicy {
            deviation_threshold: threshold,
            ..StalenessPolicy::default()
        },
    )
    .expect("server")
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: component {i} differs: {x} vs {y}"
        );
    }
}

fn assert_models_eq(a: &StreamingServer, b: &StreamingServer, context: &str) {
    for l in 0..a.landmark_count() {
        assert_bits_eq(
            a.model().outgoing(l),
            b.model().outgoing(l),
            &format!("{context}: outgoing row {l}"),
        );
        assert_bits_eq(
            a.model().incoming(l),
            b.model().incoming(l),
            &format!("{context}: incoming row {l}"),
        );
    }
}

fn assert_coords_eq(a: &BatchHostVectors, b: &BatchHostVectors, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: host count");
    for h in 0..a.len() {
        assert_bits_eq(
            a.outgoing(h),
            b.outgoing(h),
            &format!("{context}: host {h} out"),
        );
        assert_bits_eq(
            a.incoming(h),
            b.incoming(h),
            &format!("{context}: host {h} in"),
        );
    }
}

/// Applies `epochs` with an explicit executor thread count and returns the
/// final coordinate table plus the per-epoch outcomes and plan stats.
fn run_planned(
    mut srv: StreamingServer,
    meas: &Matrix,
    affected: &[usize],
    epochs: &[EpochUpdate],
    threads: usize,
) -> (
    StreamingServer,
    BatchHostVectors,
    Vec<(ides::streaming::EpochOutcome, PlanStats)>,
) {
    let mut coords = BatchHostVectors::new();
    srv.join_batch_cached(meas, meas, &mut coords)
        .expect("initial join");
    let mut log = Vec::new();
    for update in epochs {
        let res = srv
            .apply_epoch_planned(
                update,
                Some(RejoinTables::full(affected, meas, meas, &mut coords)),
                Some(threads),
            )
            .expect("apply epoch");
        log.push(res);
    }
    (srv, coords, log)
}

/// Drift `pairs` distinct landmark pairs by the given factor.
fn drift_epoch(srv: &StreamingServer, epoch: f64, pairs: usize, factor: f64) -> EpochUpdate {
    let k = srv.landmark_count();
    let mut deltas = Vec::new();
    for p in 0..pairs {
        let i = (p * 3) % k;
        let j = (p * 5 + 1) % k;
        if i == j {
            continue;
        }
        deltas.push(MeasurementDelta {
            from: i,
            to: j,
            rtt: srv.landmark_matrix()[(i, j)] * factor,
        });
    }
    EpochUpdate { epoch, deltas }
}

#[test]
fn dag_application_is_bitwise_serial_at_any_thread_count() {
    let k = 16;
    let hosts = 40;
    let srv = server(k, 6, 77, 0.5); // absorb tier throughout
    let meas = meas_table(hosts, k, 78);
    let affected: Vec<usize> = (0..hosts).step_by(3).collect();
    let epochs: Vec<EpochUpdate> = (1..=4)
        .map(|e| drift_epoch(&srv, e as f64, 2 + e, 1.0 + 0.01 * e as f64))
        .collect();

    let (serial_srv, serial_coords, serial_log) =
        run_planned(srv.clone(), &meas, &affected, &epochs, 1);
    // The mixed epochs really exercise width: absorbs + rejoins.
    assert!(serial_log.iter().any(|(_, s)| s.max_width > 1));
    for &threads in &THREAD_COUNTS {
        let ctx = format!("{threads} threads");
        let (dag_srv, dag_coords, dag_log) =
            run_planned(srv.clone(), &meas, &affected, &epochs, threads);
        assert_eq!(serial_log, dag_log, "{ctx}: outcomes/stats diverged");
        assert_models_eq(&serial_srv, &dag_srv, &ctx);
        assert_coords_eq(&serial_coords, &dag_coords, &ctx);
        // Answers served from the maintained caches agree bitwise too.
        let mut probe_serial = BatchHostVectors::new();
        let mut probe_dag = BatchHostVectors::new();
        serial_srv
            .join_batch_cached(&meas, &meas, &mut probe_serial)
            .expect("serial probe");
        dag_srv
            .join_batch_cached(&meas, &meas, &mut probe_dag)
            .expect("dag probe");
        assert_coords_eq(&probe_serial, &probe_dag, &format!("{ctx}: probe join"));
    }
}

#[test]
fn refresh_barrier_epoch_stays_bitwise() {
    let k = 12;
    let hosts = 18;
    let srv = server(k, 5, 31, 0.01); // tiny threshold: refresh tier
    let meas = meas_table(hosts, k, 32);
    let affected: Vec<usize> = (0..hosts).collect();
    let epochs = vec![drift_epoch(&srv, 1.0, 8, 1.4)];

    let (serial_srv, serial_coords, serial_log) =
        run_planned(srv.clone(), &meas, &affected, &epochs, 1);
    let (outcome, stats) = &serial_log[0];
    assert!(outcome.refreshed, "drift must cross the refresh threshold");
    // Plan: one barrier node + one rejoin per host, in two groups.
    assert_eq!(stats.nodes, 1 + hosts);
    assert_eq!(stats.groups, 2);
    assert_eq!(stats.max_width, hosts);
    assert_eq!(stats.critical_path, 2);
    for &threads in &THREAD_COUNTS {
        let ctx = format!("refresh at {threads} threads");
        let (dag_srv, dag_coords, dag_log) =
            run_planned(srv.clone(), &meas, &affected, &epochs, threads);
        assert_eq!(serial_log, dag_log, "{ctx}: outcomes/stats diverged");
        assert_models_eq(&serial_srv, &dag_srv, &ctx);
        assert_coords_eq(&serial_coords, &dag_coords, &ctx);
    }
}

#[test]
fn empty_epoch_plans_to_nothing_and_changes_nothing() {
    let mut srv = server(10, 4, 55, 0.5);
    let before = srv.clone();
    let (outcome, stats) = srv
        .apply_epoch_planned(
            &EpochUpdate {
                epoch: 1.0,
                deltas: Vec::new(),
            },
            None,
            Some(4),
        )
        .expect("empty epoch");
    assert_eq!(outcome.applied, 0);
    assert_eq!(outcome.absorbed, 0);
    assert_eq!(stats, PlanStats::default());
    assert_models_eq(&before, &srv, "empty epoch");
}

#[test]
fn repeated_same_row_deltas_still_one_absorb_node() {
    // Many deltas to one landmark pair dedup to two absorb nodes (from +
    // to), not a chain: apply_epoch coalesces per-landmark before
    // planning. The chain path is exercised at the EpochDag level
    // (streaming::dag unit tests); here we pin the planner's shape.
    let mut srv = server(10, 4, 91, 0.5);
    let rtt = srv.landmark_matrix()[(1, 7)];
    let update = EpochUpdate {
        epoch: 1.0,
        deltas: (0..5)
            .map(|i| MeasurementDelta {
                from: 1,
                to: 7,
                rtt: rtt * (1.0 + 0.002 * i as f64),
            })
            .collect(),
    };
    let (outcome, stats) = srv
        .apply_epoch_planned(&update, None, Some(4))
        .expect("epoch");
    assert_eq!(outcome.applied, 5);
    assert_eq!(outcome.absorbed, 2);
    assert_eq!(stats.nodes, 2);
    assert_eq!(stats.groups, 1, "distinct landmarks, one antichain");
    assert_eq!(stats.max_width, 2);
}

/// Engine-level: a `QueryEngine` under the ambient `IDES_LINALG_THREADS`
/// resolution serves bit-identical snapshots at every thread count. Env
/// mutation is process-global, so every env-touching assertion lives in
/// this one test (the suite's own process, per CI lane).
#[test]
fn engine_epochs_bitwise_across_thread_env() {
    use ides::service::QueryEngine;

    let k = 12;
    let hosts = 15;
    let srv = server(k, 5, 63, 0.5);
    let meas = meas_table(hosts, k, 64);

    let run = |threads: Option<&str>| -> Vec<Vec<f64>> {
        match threads {
            Some(t) => std::env::set_var("IDES_LINALG_THREADS", t),
            None => std::env::remove_var("IDES_LINALG_THREADS"),
        }
        let engine = QueryEngine::new(srv.clone(), ServiceConfig::default()).expect("engine");
        let ids = engine.join_many(&meas, &meas).expect("admit hosts");
        for e in 1..=3 {
            let update = drift_epoch(&srv, e as f64, 4, 1.0 + 0.01 * e as f64);
            engine.apply_epoch(&update).expect("epoch");
        }
        let snap = engine.snapshot();
        ids.iter()
            .map(|id| match id {
                NodeId::Host(s) => {
                    let mut row = snap.host_outgoing(*s).to_vec();
                    row.extend_from_slice(snap.host_incoming(*s));
                    row
                }
                NodeId::Landmark(_) => unreachable!("join returns hosts"),
            })
            .collect()
    };

    let baseline = run(Some("1"));
    for t in ["2", "4", "7"] {
        let got = run(Some(t));
        for (h, (a, b)) in baseline.iter().zip(got.iter()).enumerate() {
            assert_bits_eq(a, b, &format!("IDES_LINALG_THREADS={t}, host {h}"));
        }
    }
    std::env::remove_var("IDES_LINALG_THREADS");
}

#[test]
fn sharded_epochs_bitwise_across_shard_counts() {
    let k = 12;
    let hosts = 24;
    let srv = server(k, 5, 47, 0.5);
    let meas = meas_table(hosts, k, 48);

    let run = |shards: usize| -> Vec<Vec<f64>> {
        let engine =
            ShardedEngine::new(srv.clone(), shards, ServiceConfig::default()).expect("engine");
        let ids = engine.join_many(&meas, &meas).expect("admit hosts");
        for e in 1..=3 {
            let update = drift_epoch(&srv, e as f64, 5, 1.0 + 0.015 * e as f64);
            engine.apply_epoch(&update).expect("epoch");
        }
        ids.iter()
            .map(|&id| {
                let (mut out, inc) = engine.host_coords(id).expect("coords");
                out.extend(inc);
                out
            })
            .collect()
    };

    let single = run(1);
    for shards in [2usize, 4] {
        let got = run(shards);
        for (h, (a, b)) in single.iter().zip(got.iter()).enumerate() {
            assert_bits_eq(a, b, &format!("{shards} shards, host {h}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mixed epochs: DAG output is bitwise serial at 2/4/7 threads.
    #[test]
    fn planned_epochs_match_serial_bitwise(
        seed in 0u64..1_000,
        epochs in 1usize..4,
        pair_drifts in prop::collection::vec((0usize..10, 0usize..10, 0.98f64..1.05), 1..8),
        affected_mask in 0u32..4096,
    ) {
        let k = 10;
        let hosts = 12;
        let srv = server(k, 4, seed, 0.5);
        let meas = meas_table(hosts, k, seed ^ 0xABCD);
        let affected: Vec<usize> = (0..hosts).filter(|h| affected_mask >> h & 1 == 1).collect();
        let updates: Vec<EpochUpdate> = (1..=epochs)
            .map(|e| EpochUpdate {
                epoch: e as f64,
                deltas: pair_drifts
                    .iter()
                    .filter(|(i, j, _)| i != j)
                    .map(|&(i, j, f)| MeasurementDelta {
                        from: i,
                        to: j,
                        rtt: srv.landmark_matrix()[(i, j)] * f,
                    })
                    .collect(),
            })
            .collect();
        let (serial_srv, serial_coords, serial_log) =
            run_planned(srv.clone(), &meas, &affected, &updates, 1);
        for &threads in &THREAD_COUNTS {
            let (dag_srv, dag_coords, dag_log) =
                run_planned(srv.clone(), &meas, &affected, &updates, threads);
            prop_assert_eq!(&serial_log, &dag_log, "log at {} threads", threads);
            assert_models_eq(&serial_srv, &dag_srv, &format!("{threads} threads"));
            assert_coords_eq(&serial_coords, &dag_coords, &format!("{threads} threads"));
        }
    }
}
