//! Pins the grouped partial-join failure sweep to the former
//! one-join-per-host algorithm: the per-host observed subsets come from
//! the same RNG stream, and the batched per-subset factorization must
//! reproduce every host's coordinates — and therefore the whole error
//! sweep — **bit for bit**.

use ides::eval::evaluate_ides_with_failures;
use ides::projection::{join_host_subset_with, HostVectors, JoinWorkspace};
use ides::system::{split_landmarks, IdesConfig, InformationServer};
use ides_datasets::generators::nlanr_like;
use ides_datasets::DistanceMatrix;
use ides_mf::metrics::modified_relative_error;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The pre-grouping sweep, replicated verbatim: one independent subset
/// draw and one batch-of-one join per host, ridge retry on failure.
fn per_host_reference(
    data: &DistanceMatrix,
    landmarks: &[usize],
    ordinary: &[usize],
    config: IdesConfig,
    unobserved_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<HostVectors>) {
    let lm = data.submatrix(landmarks, landmarks);
    let server = InformationServer::build(&lm, config).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m = landmarks.len();
    let keep = m - ((m as f64 * unobserved_fraction).round() as usize).min(m);

    let mut ws = JoinWorkspace::new();
    let mut ids = Vec::new();
    let mut joined = Vec::new();
    for &h in ordinary {
        let complete = landmarks
            .iter()
            .all(|&l| data.get(h, l).is_some() && data.get(l, h).is_some());
        if !complete {
            continue;
        }
        let mut idx: Vec<usize> = (0..m).collect();
        idx.shuffle(&mut rng);
        idx.truncate(keep.max(1));
        idx.sort_unstable();
        let d_out: Vec<f64> = idx
            .iter()
            .map(|&i| data.get(h, landmarks[i]).unwrap())
            .collect();
        let d_in: Vec<f64> = idx
            .iter()
            .map(|&i| data.get(landmarks[i], h).unwrap())
            .collect();
        let result = server
            .join_partial_with(&mut ws, &idx, &d_out, &d_in)
            .or_else(|_| {
                let mut cfg = server.join_options();
                cfg.ridge = 1e-6;
                join_host_subset_with(
                    &mut ws,
                    server.model().x(),
                    server.model().y(),
                    &idx,
                    &d_out,
                    &d_in,
                    cfg,
                )
            });
        if let Ok(v) = result {
            ids.push(h);
            joined.push(v);
        }
    }
    (ids, joined)
}

fn reference_errors(data: &DistanceMatrix, ids: &[usize], joined: &[HostVectors]) -> Vec<f64> {
    let mut errors = Vec::new();
    for (i, &hi) in ids.iter().enumerate() {
        for (j, &hj) in ids.iter().enumerate() {
            if i == j {
                continue;
            }
            if let Some(actual) = data.get(hi, hj) {
                if actual > 0.0 {
                    errors.push(modified_relative_error(
                        actual,
                        joined[i].distance_to_host(&joined[j]),
                    ));
                }
            }
        }
    }
    errors
}

#[test]
fn grouped_failure_sweep_is_bit_identical_to_per_host_joins() {
    let ds = nlanr_like(60, 33).unwrap();
    let (landmarks, ordinary) = split_landmarks(60, 20, 5);
    // 0 %: every host shares the full landmark set (one group);
    // 30 % / 60 %: mixed distinct subsets, incl. the k < d ridge regime
    // at high failure rates with small keep counts.
    for unobserved in [0.0, 0.3, 0.6, 0.85] {
        for seed in [1u64, 9] {
            let config = IdesConfig::new(8);
            let grouped = evaluate_ides_with_failures(
                &ds.matrix, &landmarks, &ordinary, config, unobserved, seed,
            )
            .unwrap();
            let (ids, joined) =
                per_host_reference(&ds.matrix, &landmarks, &ordinary, config, unobserved, seed);
            assert_eq!(
                grouped.hosts_joined,
                ids.len(),
                "f={unobserved} seed={seed}"
            );
            let expected = reference_errors(&ds.matrix, &ids, &joined);
            assert_eq!(
                grouped.errors.len(),
                expected.len(),
                "f={unobserved} seed={seed}"
            );
            for (k, (g, e)) in grouped.errors.iter().zip(expected.iter()).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    e.to_bits(),
                    "f={unobserved} seed={seed}: error {k}: grouped {g} vs per-host {e}"
                );
            }
        }
    }
}

#[test]
fn grouped_failure_sweep_nmf_solver_bit_identical() {
    // The NMF config routes joins through the NNLS solver (per-host inner
    // solve, amortized gather) — the grouping must hold there too.
    let ds = nlanr_like(40, 17).unwrap();
    let (landmarks, ordinary) = split_landmarks(40, 15, 3);
    let config = IdesConfig::nmf(6);
    let grouped =
        evaluate_ides_with_failures(&ds.matrix, &landmarks, &ordinary, config, 0.4, 7).unwrap();
    let (ids, joined) = per_host_reference(&ds.matrix, &landmarks, &ordinary, config, 0.4, 7);
    assert_eq!(grouped.hosts_joined, ids.len());
    let expected = reference_errors(&ds.matrix, &ids, &joined);
    assert_eq!(grouped.errors.len(), expected.len());
    for (g, e) in grouped.errors.iter().zip(expected.iter()) {
        assert_eq!(g.to_bits(), e.to_bits());
    }
}
