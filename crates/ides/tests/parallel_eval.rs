//! Byte-identity of the sharded (`parallel` feature) evaluation sweeps:
//! running the §6 evaluators at any thread count must produce exactly the
//! same `PredictionResult` payload (errors bitwise, host and pair counts)
//! as the single-threaded sweep, because shard boundaries only partition
//! per-host-independent work and shard outputs merge in fixed order.
//!
//! The thread count is driven through `IDES_LINALG_THREADS` — the same
//! override the GEMM kernels honor. This file is its own test binary (own
//! process) and runs everything from one `#[test]`, so the env-var
//! mutation cannot race other tests.

#![cfg(feature = "parallel")]

use ides::eval::{
    evaluate_gnp, evaluate_ics, evaluate_ides, evaluate_ides_with_failures, PredictionResult,
};
use ides::system::{split_landmarks, IdesConfig};
use ides_mf::gnp::GnpConfig;

fn assert_results_identical(a: &PredictionResult, b: &PredictionResult, context: &str) {
    assert_eq!(a.hosts_joined, b.hosts_joined, "{context}: hosts_joined");
    assert_eq!(
        a.pairs_evaluated, b.pairs_evaluated,
        "{context}: pairs_evaluated"
    );
    assert_eq!(a.errors.len(), b.errors.len(), "{context}: error count");
    for (i, (x, y)) in a.errors.iter().zip(b.errors.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: error {i} differs: {x} vs {y}"
        );
    }
}

#[test]
fn sharded_evaluation_is_byte_identical_to_sequential() {
    let ds = ides_datasets::generators::nlanr_like(60, 33).expect("dataset");
    let (landmarks, ordinary) = split_landmarks(60, 20, 5);
    let gnp_cfg = GnpConfig {
        landmark_evals: 10_000,
        host_evals: 1_000,
        ..GnpConfig::new(6)
    };

    let run_all = || {
        let ides_svd =
            evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::new(8)).expect("ides");
        let ides_nmf =
            evaluate_ides(&ds.matrix, &landmarks, &ordinary, IdesConfig::nmf(8)).expect("nmf");
        let ics = evaluate_ics(&ds.matrix, &landmarks, &ordinary, 8).expect("ics");
        let gnp = evaluate_gnp(&ds.matrix, &landmarks, &ordinary, gnp_cfg).expect("gnp");
        let failures = evaluate_ides_with_failures(
            &ds.matrix,
            &landmarks,
            &ordinary,
            IdesConfig::new(8),
            0.3,
            17,
        )
        .expect("failures");
        [ides_svd, ides_nmf, ics, gnp, failures]
    };

    std::env::set_var("IDES_LINALG_THREADS", "1");
    let sequential = run_all();
    for threads in ["2", "4", "7"] {
        std::env::set_var("IDES_LINALG_THREADS", threads);
        let sharded = run_all();
        for (label, (a, b)) in ["ides/svd", "ides/nmf", "ics", "gnp", "failures"]
            .iter()
            .zip(sequential.iter().zip(sharded.iter()))
        {
            assert_results_identical(a, b, &format!("{label} @ {threads} threads"));
        }
    }
    std::env::remove_var("IDES_LINALG_THREADS");
}
