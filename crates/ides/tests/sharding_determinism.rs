//! The sharding and chunk-tree contracts:
//!
//! 1. A [`ShardedEngine`] at **any** shard count serves bit-identical
//!    answers — and ends with a bit-identical host coordinate table — to
//!    a single [`QueryEngine`] replaying the same workload. Sharding is
//!    a layout choice, not a semantics choice.
//! 2. Consecutive snapshots share all but the touched chunks of the
//!    coordinate tree: publish cost is O(changed chunks), not O(hosts).
//! 3. The version-tagged pair cache never serves a stale answer across
//!    publishes on either endpoint's shard.

use ides::service::{replay, NodeId, QueryEngine, ServiceConfig, ShardedEngine};
use ides::streaming::{StalenessPolicy, StreamingServer};
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use ides_mf::FactorModel;
use ides_netsim::workload::{self, Workload, WorkloadConfig};

const LANDMARKS: usize = 12;
const DIM: usize = 5;

struct Setup {
    server: StreamingServer,
    workload: Workload,
}

fn setup() -> Setup {
    let ds = ides_datasets::generators::p2psim_like(60, 404).expect("dataset");
    let landmarks: Vec<usize> = ds.row_hosts[..LANDMARKS].to_vec();
    let pool: Vec<usize> = ds.row_hosts[LANDMARKS..LANDMARKS + 36].to_vec();
    let drift = ides_netsim::drift::DriftModel::new(0.2, 24.0, 404);
    let lm = Matrix::from_fn(LANDMARKS, LANDMARKS, |a, b| {
        drift.rtt(&ds.topology, landmarks[a], landmarks[b], 0.0)
    });
    let server = StreamingServer::new(
        &DistanceMatrix::full("lm", lm).unwrap(),
        DIM,
        StalenessPolicy::default(),
    )
    .expect("server");
    let workload = workload::generate(
        &ds.topology,
        &landmarks,
        &pool,
        &WorkloadConfig {
            seed: 404,
            requests: 700,
            join_weight: 0.14,
            leave_weight: 0.06,
            query_weight: 0.80,
            drift_amplitude: 0.2,
            drift_epochs: 5,
            ..WorkloadConfig::default()
        },
    );
    Setup { server, workload }
}

/// Every live host's `(outgoing ‖ incoming)` row as raw bit patterns,
/// sorted — a layout-independent fingerprint of the coordinate table.
fn coord_multiset_single(engine: &QueryEngine) -> Vec<Vec<u64>> {
    let snap = engine.snapshot();
    let mut rows: Vec<Vec<u64>> = (0..snap.slot_count())
        .filter(|&s| snap.is_live(s))
        .map(|s| {
            snap.host_outgoing(s)
                .iter()
                .chain(snap.host_incoming(s))
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn coord_multiset_sharded(engine: &ShardedEngine) -> Vec<Vec<u64>> {
    let mut rows: Vec<Vec<u64>> = Vec::new();
    for i in 0..engine.shard_count() {
        let snap = engine.shard(i).snapshot();
        for s in 0..snap.slot_count() {
            if snap.is_live(s) {
                rows.push(
                    snap.host_outgoing(s)
                        .iter()
                        .chain(snap.host_incoming(s))
                        .map(|v| v.to_bits())
                        .collect(),
                );
            }
        }
    }
    rows.sort();
    rows
}

#[test]
fn sharded_replay_is_bit_identical_to_single_engine_at_any_shard_count() {
    let s = setup();
    let single = QueryEngine::new(s.server.clone(), ServiceConfig::default()).expect("engine");
    let reference = replay::replay(&single, &s.workload, 2).expect("single replay");
    assert!(reference.joins > 0 && reference.leaves > 0 && reference.epochs == 5);
    let reference_coords = coord_multiset_single(&single);
    assert!(!reference_coords.is_empty(), "hosts must survive the run");

    for shards in [1usize, 2, 4, 7] {
        let engine = ShardedEngine::new(s.server.clone(), shards, ServiceConfig::default())
            .expect("sharded engine");
        let report = replay::replay(&engine, &s.workload, 2).expect("sharded replay");
        assert_eq!(report.joins, reference.joins, "{shards} shards: joins");
        assert_eq!(report.leaves, reference.leaves, "{shards} shards: leaves");
        assert_eq!(report.epochs, reference.epochs, "{shards} shards: epochs");
        assert_eq!(
            report.answers.len(),
            reference.answers.len(),
            "{shards} shards: answer count"
        );
        for (i, (a, b)) in report.answers.iter().zip(&reference.answers).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{shards} shards: answer {i} diverged ({a} vs {b})"
            );
        }
        assert_eq!(
            coord_multiset_sharded(&engine),
            reference_coords,
            "{shards} shards: final coordinate tables diverged"
        );
    }
}

#[test]
fn sharded_replay_is_thread_count_invariant() {
    let s = setup();
    let run_at = |threads: usize| {
        let engine =
            ShardedEngine::new(s.server.clone(), 3, ServiceConfig::default()).expect("engine");
        replay::replay(&engine, &s.workload, threads).expect("replay")
    };
    let one = run_at(1);
    for threads in [2, 5] {
        let other = run_at(threads);
        assert_eq!(one.final_version, other.final_version);
        for (a, b) in one.answers.iter().zip(&other.answers) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "answers diverged at {threads} threads"
            );
        }
    }
}

fn small_engine() -> QueryEngine {
    let ds = ides_datasets::generators::p2psim_like(40, 77).expect("dataset");
    let sub: Vec<usize> = (0..10).collect();
    let lm = ds.matrix.submatrix(&sub, &sub);
    let server = StreamingServer::new(&lm, 4, StalenessPolicy::default()).expect("server");
    QueryEngine::new(server, ServiceConfig::default()).expect("engine")
}

fn row(seed: u64, k: usize) -> Vec<f64> {
    let mut state = seed;
    (0..k)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 40.0 + 5.0
        })
        .collect()
}

#[test]
fn consecutive_snapshots_share_all_untouched_chunks() {
    let engine = small_engine();
    // Grow a table that spans many chunks (coords cols = 2·dim = 8, so
    // 256 rows/chunk; 2000 hosts ≈ 8 chunks).
    for i in 0..2000u64 {
        engine.join_direct(&row(i, 10), &row(i + 9000, 10)).unwrap();
    }
    let before = engine.snapshot();
    let chunks = before.coords().chunk_count();
    assert!(chunks >= 8, "table must span several chunks, got {chunks}");

    // One more admission touches exactly one coordinate chunk: the new
    // snapshot shares every other chunk with its predecessor by pointer.
    engine.join_direct(&row(5000, 10), &row(5001, 10)).unwrap();
    let after = engine.snapshot();
    assert!(
        !std::sync::Arc::ptr_eq(&before, &after),
        "publish must swap"
    );
    let shared = after.coords().shared_chunks_with(before.coords());
    assert!(
        shared >= chunks - 1,
        "publish copied more than the touched chunk: {shared}/{chunks} shared"
    );

    // A leave flips one liveness bit: again all but one coordinate chunk
    // (none, actually — coords untouched) and all but one live chunk
    // shared.
    let before = after;
    engine.leave(NodeId::Host(3)).unwrap();
    let after = engine.snapshot();
    assert_eq!(
        after.coords().shared_chunks_with(before.coords()),
        after.coords().chunk_count(),
        "a leave must not copy any coordinate chunk"
    );

    // The snapshots remain independently consistent: the retired slot is
    // dead only in the newer one, and live rows are bit-identical.
    assert!(before.is_live(3) && !after.is_live(3));
    for s in [0usize, 4, 255, 256, 1999] {
        for j in 0..4 {
            assert_eq!(
                before.host_outgoing(s)[j].to_bits(),
                after.host_outgoing(s)[j].to_bits()
            );
        }
    }
}

#[test]
fn estimates_track_snapshot_rows_bit_for_bit_across_churn() {
    let engine = small_engine();
    let mut live: Vec<NodeId> = (0..600u64)
        .map(|i| engine.join_direct(&row(i, 10), &row(i + 7000, 10)).unwrap())
        .collect();
    // Churn: retire every third host, admit replacements (free-list
    // reuse), then spot-check that served estimates equal dots of the
    // published rows exactly.
    let retired: Vec<NodeId> = live.iter().copied().step_by(3).collect();
    for id in &retired {
        engine.leave(*id).unwrap();
    }
    live.retain(|id| !retired.contains(id));
    for i in 0..150u64 {
        live.push(
            engine
                .join_direct(&row(20_000 + i, 10), &row(30_000 + i, 10))
                .unwrap(),
        );
    }
    let snap = engine.snapshot();
    for (i, &a) in live.iter().enumerate().step_by(37) {
        let b = live[(i * 31 + 7) % live.len()];
        let served = engine.estimate(a, b).unwrap();
        let (NodeId::Host(sa), NodeId::Host(sb)) = (a, b) else {
            unreachable!()
        };
        let direct = FactorModel::dot(snap.host_outgoing(sa), snap.host_incoming(sb));
        assert_eq!(served.to_bits(), direct.to_bits(), "pair ({a:?}, {b:?})");
    }
}

#[test]
fn pair_cache_never_serves_across_a_publish() {
    // Same-shard and cross-shard pairs: after ANY publish that changes an
    // endpoint's coordinates, the served answer equals the fresh
    // snapshot's dot — the old cached value must not leak through.
    let s = setup();
    let engine = ShardedEngine::new(s.server, 2, ServiceConfig::default()).expect("engine");
    let a = engine
        .join_direct(&row(1, LANDMARKS), &row(2, LANDMARKS))
        .unwrap();
    let b = engine
        .join_direct(&row(3, LANDMARKS), &row(4, LANDMARKS))
        .unwrap();
    let before = engine.estimate(a, b).unwrap();
    let _warm = engine.estimate(a, b).unwrap(); // cached now

    // An epoch re-solves every host's coordinates on both shards.
    let update = ides::streaming::EpochUpdate {
        epoch: 1.0,
        deltas: vec![
            ides::streaming::MeasurementDelta {
                from: 0,
                to: 1,
                rtt: 64.0,
            },
            ides::streaming::MeasurementDelta {
                from: 1,
                to: 0,
                rtt: 64.0,
            },
        ],
    };
    engine.apply_epoch(&update).unwrap();
    let after = engine.estimate(a, b).unwrap();
    let (ao, _) = engine.host_coords(a).unwrap();
    let (_, bi) = engine.host_coords(b).unwrap();
    let fresh = FactorModel::dot(&ao, &bi);
    assert_eq!(
        after.to_bits(),
        fresh.to_bits(),
        "stale cache entry served after epoch publish"
    );
    assert_ne!(
        before.to_bits(),
        after.to_bits(),
        "epoch must actually move the estimate for this test to bite"
    );
}
