//! Property-based tests for the IDES host-join algebra, including the
//! bit-identity contract between batched and sequential joins.

use ides::projection::{
    join_host, join_host_with, join_hosts_with, JoinOptions, JoinSolver, JoinWorkspace,
};
use ides_linalg::Matrix;
use ides_mf::FactorModel;
use proptest::prelude::*;

/// Deterministic full-column-rank reference matrix (k x d, k >= d).
fn reference(k: usize, d: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut m = Matrix::from_fn(k, d, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
    });
    // Bias the diagonal so the matrix is comfortably full rank.
    for i in 0..d.min(k) {
        m[(i, i)] += 3.0;
    }
    m
}

/// Asserts two vectors are equal down to the last bit.
fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: component {i} differs: {x} vs {y}"
        );
    }
}

/// Joins every measurement row batched and sequentially with the given
/// options and asserts the results are bit-identical.
fn assert_batch_matches_sequential(
    x_refs: &Matrix,
    y_refs: &Matrix,
    d_out: &Matrix,
    d_in: &Matrix,
    opts: JoinOptions,
    context: &str,
) {
    let mut ws = JoinWorkspace::new();
    let batch = join_hosts_with(&mut ws, x_refs, y_refs, d_out, d_in, opts)
        .unwrap_or_else(|e| panic!("{context}: batch join failed: {e}"));
    assert_eq!(batch.len(), d_out.rows(), "{context}");
    let mut seq_ws = JoinWorkspace::new();
    for (h, joined) in batch.iter().enumerate() {
        let single = join_host_with(&mut seq_ws, x_refs, y_refs, d_out.row(h), d_in.row(h), opts)
            .unwrap_or_else(|e| panic!("{context}: sequential join of host {h} failed: {e}"));
        assert_bits_eq(
            &joined.outgoing,
            &single.outgoing,
            &format!("{context}: host {h} outgoing"),
        );
        assert_bits_eq(
            &joined.incoming,
            &single.incoming,
            &format!("{context}: host {h} incoming"),
        );
    }
}

/// Batched joins of an SVD landmark model (complete data) are bit-identical
/// to one-host-at-a-time joins for every solver.
#[test]
fn batched_join_bit_identical_svd_model() {
    let ds = ides_datasets::generators::nlanr_like(40, 7).expect("dataset");
    let landmarks: Vec<usize> = (0..20).collect();
    let lm = ds.matrix.submatrix(&landmarks, &landmarks);
    let server =
        ides::system::InformationServer::build(&lm, ides::system::IdesConfig::new(8)).unwrap();
    let hosts: Vec<usize> = (20..40).collect();
    let d_out = Matrix::from_fn(hosts.len(), landmarks.len(), |r, c| {
        ds.matrix.get(hosts[r], landmarks[c]).unwrap()
    });
    let d_in = Matrix::from_fn(hosts.len(), landmarks.len(), |r, c| {
        ds.matrix.get(landmarks[c], hosts[r]).unwrap()
    });
    for (solver, ridge) in [
        (JoinSolver::Qr, 0.0),
        (JoinSolver::NormalEquations, 0.0),
        (JoinSolver::Qr, 0.05),
        (JoinSolver::NonNegative, 0.0),
    ] {
        assert_batch_matches_sequential(
            server.model().x(),
            server.model().y(),
            &d_out,
            &d_in,
            JoinOptions { solver, ridge },
            &format!("svd model, {solver:?} ridge={ridge}"),
        );
    }
}

/// Same bit-identity for an NMF model fit on **masked** (incomplete) data,
/// including the NNLS solver the paper pairs with NMF.
#[test]
fn batched_join_bit_identical_nmf_masked_model() {
    let ds = ides_datasets::generators::nlanr_like(36, 11).expect("dataset");
    let landmarks: Vec<usize> = (0..18).collect();
    let lm = ds.matrix.submatrix(&landmarks, &landmarks);
    // Punch a hole pattern into the landmark matrix; NMF handles the mask.
    let mut values = lm.values().clone();
    let mut mask = ides_linalg::Matrix::filled(18, 18, 1.0);
    for i in 0..18 {
        let j = (i * 5 + 3) % 18;
        if i != j {
            mask[(i, j)] = 0.0;
            values[(i, j)] = 0.0;
        }
    }
    let masked = ides_datasets::DistanceMatrix::with_mask("masked-lm", values, mask).unwrap();
    let server =
        ides::system::InformationServer::build(&masked, ides::system::IdesConfig::nmf(6)).unwrap();
    let hosts: Vec<usize> = (18..36).collect();
    let d_out = Matrix::from_fn(hosts.len(), landmarks.len(), |r, c| {
        ds.matrix.get(hosts[r], landmarks[c]).unwrap()
    });
    let d_in = Matrix::from_fn(hosts.len(), landmarks.len(), |r, c| {
        ds.matrix.get(landmarks[c], hosts[r]).unwrap()
    });
    for (solver, ridge) in [
        (JoinSolver::NonNegative, 0.0),
        (JoinSolver::Qr, 0.0),
        (JoinSolver::NormalEquations, 0.0),
        (JoinSolver::NormalEquations, 0.1),
    ] {
        assert_batch_matches_sequential(
            server.model().x(),
            server.model().y(),
            &d_out,
            &d_in,
            JoinOptions { solver, ridge },
            &format!("nmf masked model, {solver:?} ridge={ridge}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched multi-RHS joins are bit-identical to sequential per-host
    /// joins on arbitrary well-posed systems, for every solver and with
    /// and without ridge regularization.
    #[test]
    fn batched_join_bit_identical_random_systems(
        seed in 0u64..300,
        hosts in 1usize..12,
        solver_idx in 0usize..3,
        ridged in proptest::bool::ANY
    ) {
        let k = 7;
        let d = 3;
        let x_refs = reference(k, d, seed);
        let y_refs = reference(k, d, seed ^ 0xBEEF);
        // Nonnegative measurements keep NNLS meaningful.
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
        let mut gen = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 50.0
        };
        let d_out = Matrix::from_fn(hosts, k, |_, _| gen());
        let d_in = Matrix::from_fn(hosts, k, |_, _| gen());
        let solver = [JoinSolver::Qr, JoinSolver::NormalEquations, JoinSolver::NonNegative]
            [solver_idx];
        let ridge = if ridged { 0.25 } else { 0.0 };
        assert_batch_matches_sequential(
            &x_refs,
            &y_refs,
            &d_out,
            &d_in,
            JoinOptions { solver, ridge },
            &format!("random system seed={seed} {solver:?} ridge={ridge}"),
        );
    }

    /// When the measurements are *exactly* generated by some vector pair,
    /// the least-squares join recovers that pair (all three solvers agree
    /// on consistent systems; NNLS requires the target to be nonnegative).
    #[test]
    fn join_recovers_generating_vectors(
        seed in 0u64..500,
        u in prop::collection::vec(-3.0f64..3.0, 3),
        v in prop::collection::vec(-3.0f64..3.0, 3)
    ) {
        let x_refs = reference(7, 3, seed);
        let y_refs = reference(7, 3, seed ^ 0xABCD);
        let d_out: Vec<f64> = (0..7).map(|i| FactorModel::dot(&u, y_refs.row(i))).collect();
        let d_in: Vec<f64> = (0..7).map(|i| FactorModel::dot(x_refs.row(i), &v)).collect();
        for solver in [JoinSolver::Qr, JoinSolver::NormalEquations] {
            let host = join_host(&x_refs, &y_refs, &d_out, &d_in, JoinOptions { solver, ridge: 0.0 })
                .unwrap();
            for (a, b) in host.outgoing.iter().zip(u.iter()) {
                prop_assert!((a - b).abs() < 1e-6, "{:?} vs {:?}", host.outgoing, u);
            }
            for (a, b) in host.incoming.iter().zip(v.iter()) {
                prop_assert!((a - b).abs() < 1e-6, "{:?} vs {:?}", host.incoming, v);
            }
        }
    }

    /// NNLS joins recover nonnegative generating vectors from nonnegative
    /// reference systems.
    #[test]
    fn nnls_join_recovers_nonnegative_vectors(
        seed in 0u64..200,
        u in prop::collection::vec(0.1f64..3.0, 3),
        v in prop::collection::vec(0.1f64..3.0, 3)
    ) {
        let x_refs = reference(7, 3, seed).map(|x| x.abs() + 0.1);
        let y_refs = reference(7, 3, seed ^ 0x1234).map(|x| x.abs() + 0.1);
        let d_out: Vec<f64> = (0..7).map(|i| FactorModel::dot(&u, y_refs.row(i))).collect();
        let d_in: Vec<f64> = (0..7).map(|i| FactorModel::dot(x_refs.row(i), &v)).collect();
        let host = join_host(
            &x_refs,
            &y_refs,
            &d_out,
            &d_in,
            JoinOptions { solver: JoinSolver::NonNegative, ridge: 0.0 },
        )
        .unwrap();
        // The residual at the recovered point must be (near) zero.
        for (i, &target) in d_out.iter().enumerate() {
            let got = FactorModel::dot(&host.outgoing, y_refs.row(i));
            prop_assert!((got - target).abs() < 1e-4 * (1.0 + target.abs()), "out {} vs {}", got, target);
        }
        for (i, &target) in d_in.iter().enumerate() {
            let got = FactorModel::dot(x_refs.row(i), &host.incoming);
            prop_assert!((got - target).abs() < 1e-4 * (1.0 + target.abs()), "in {} vs {}", got, target);
        }
    }

    /// The join residual is never worse than the zero-vector residual
    /// (least squares can always do at least as well as predicting 0).
    #[test]
    fn join_no_worse_than_zero(
        seed in 0u64..500,
        d_out in prop::collection::vec(0.0f64..100.0, 6),
        d_in in prop::collection::vec(0.0f64..100.0, 6)
    ) {
        let x_refs = reference(6, 3, seed);
        let y_refs = reference(6, 3, seed ^ 0x77);
        let host =
            join_host(&x_refs, &y_refs, &d_out, &d_in, JoinOptions::default()).unwrap();
        let resid_out: f64 = d_out
            .iter()
            .enumerate()
            .map(|(i, &t)| (t - FactorModel::dot(&host.outgoing, y_refs.row(i))).powi(2))
            .sum();
        let zero_out: f64 = d_out.iter().map(|&t| t * t).sum();
        prop_assert!(resid_out <= zero_out + 1e-6);
    }

    /// Ridge regularization shrinks the solution norm monotonically.
    #[test]
    fn ridge_shrinks_norm(
        seed in 0u64..200,
        d_out in prop::collection::vec(0.0f64..50.0, 6)
    ) {
        let x_refs = reference(6, 3, seed);
        let y_refs = reference(6, 3, seed ^ 0x99);
        let norms: Vec<f64> = [0.0, 1.0, 100.0]
            .iter()
            .map(|&ridge| {
                let host = join_host(
                    &x_refs,
                    &y_refs,
                    &d_out,
                    &d_out,
                    JoinOptions { solver: JoinSolver::Qr, ridge },
                )
                .unwrap();
                host.outgoing.iter().map(|x| x * x).sum::<f64>().sqrt()
            })
            .collect();
        prop_assert!(norms[1] <= norms[0] + 1e-9, "{:?}", norms);
        prop_assert!(norms[2] <= norms[1] + 1e-9, "{:?}", norms);
    }
}
