//! Concurrency-determinism contract of the serving engine:
//!
//! 1. Replaying the same seeded workload (queries, joins, leaves, drift)
//!    must produce **bit-identical** query answers and final coordinate
//!    tables whether the query segments run on 1 thread or many — the
//!    engine's parallelism must never leak into results.
//! 2. Snapshot reads must be **bit-identical** to direct
//!    `join_batch_cached` answers: an admitted host's served coordinates
//!    (and hence every pair estimate, cached or not) carry exactly the
//!    arithmetic of the streaming server's batched cached join.
//!
//! Like `parallel_eval.rs`, this file is its own test binary so the
//! multi-threaded scenarios cannot interfere with other suites.

use ides::service::replay::{self, ReplayReport};
use ides::service::{NodeId, QueryEngine, ServiceConfig};
use ides::streaming::{StalenessPolicy, StreamingServer};
use ides::BatchHostVectors;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use ides_mf::FactorModel;
use ides_netsim::drift::DriftModel;
use ides_netsim::workload::{self, Workload, WorkloadConfig, WorkloadOp};

const LANDMARKS: usize = 14;
const POOL: usize = 24;
const DIM: usize = 6;
const SEED: u64 = 20040427;

struct Setup {
    engine_of: Box<dyn Fn() -> QueryEngine>,
    workload: Workload,
}

fn setup() -> Setup {
    let ds = ides_datasets::generators::p2psim_like(LANDMARKS + POOL + 5, SEED).expect("dataset");
    let landmarks: Vec<usize> = ds.row_hosts[..LANDMARKS].to_vec();
    let pool: Vec<usize> = ds.row_hosts[LANDMARKS..LANDMARKS + POOL].to_vec();
    let drift = DriftModel::new(0.2, 24.0, SEED);
    let lm = Matrix::from_fn(LANDMARKS, LANDMARKS, |a, b| {
        drift.rtt(&ds.topology, landmarks[a], landmarks[b], 0.0)
    });
    let workload = workload::generate(
        &ds.topology,
        &landmarks,
        &pool,
        &WorkloadConfig {
            seed: SEED,
            requests: 600,
            query_weight: 0.82,
            join_weight: 0.11,
            leave_weight: 0.07,
            drift_epochs: 8,
            drift_amplitude: 0.2,
            ..WorkloadConfig::default()
        },
    );
    let engine_of = move || {
        let server = StreamingServer::new(
            &DistanceMatrix::full("lm", lm.clone()).unwrap(),
            DIM,
            StalenessPolicy::default(),
        )
        .expect("server");
        QueryEngine::new(server, ServiceConfig::default()).expect("engine")
    };
    Setup {
        engine_of: Box::new(engine_of),
        workload,
    }
}

fn assert_reports_identical(a: &ReplayReport, b: &ReplayReport, context: &str) {
    assert_eq!(a.joins, b.joins, "{context}: joins");
    assert_eq!(a.leaves, b.leaves, "{context}: leaves");
    assert_eq!(a.epochs, b.epochs, "{context}: epochs");
    assert_eq!(a.final_version, b.final_version, "{context}: version");
    assert_eq!(a.answers.len(), b.answers.len(), "{context}: answer count");
    for (i, (x, y)) in a.answers.iter().zip(b.answers.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: answer {i} differs: {x} vs {y}"
        );
    }
}

fn assert_snapshots_identical(a: &QueryEngine, b: &QueryEngine, context: &str) {
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.slot_count(), sb.slot_count(), "{context}: slot count");
    assert_eq!(sa.host_count(), sb.host_count(), "{context}: host count");
    for s in 0..sa.slot_count() {
        assert_eq!(sa.is_live(s), sb.is_live(s), "{context}: liveness of {s}");
        for j in 0..sa.dim() {
            assert_eq!(
                sa.host_outgoing(s)[j].to_bits(),
                sb.host_outgoing(s)[j].to_bits(),
                "{context}: slot {s} outgoing[{j}]"
            );
            assert_eq!(
                sa.host_incoming(s)[j].to_bits(),
                sb.host_incoming(s)[j].to_bits(),
                "{context}: slot {s} incoming[{j}]"
            );
        }
    }
    for (x, y) in sa
        .model()
        .x()
        .as_slice()
        .iter()
        .zip(sb.model().x().as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: model diverged");
    }
}

#[test]
fn replay_is_bit_identical_at_any_thread_count() {
    let s = setup();
    let sequential_engine = (s.engine_of)();
    let sequential = replay::replay(&sequential_engine, &s.workload, 1).expect("replay@1");
    assert!(sequential.joins > 0, "workload must admit hosts");
    assert!(sequential.leaves > 0, "workload must retire hosts");
    assert_eq!(sequential.epochs, 8);
    for threads in [2, 4, 7] {
        let engine = (s.engine_of)();
        let parallel = replay::replay(&engine, &s.workload, threads).expect("replay@N");
        assert_reports_identical(&sequential, &parallel, &format!("{threads} threads"));
        assert_snapshots_identical(&sequential_engine, &engine, &format!("{threads} threads"));
    }
}

#[test]
fn replay_is_bit_identical_with_telemetry_enabled() {
    // Telemetry is observational only: flipping the global enable flag
    // (counters, gauges, timers, sampled spans all recording) must not
    // change a single served bit at any thread count. The baseline
    // replay runs with telemetry off; the 1/2/4-thread replays run with
    // it on and must match bitwise.
    let s = setup();
    let baseline_engine = (s.engine_of)();
    let baseline = replay::replay(&baseline_engine, &s.workload, 1).expect("replay baseline");
    assert!(baseline.joins > 0, "workload must admit hosts");
    ides::telemetry::set_enabled(true);
    for threads in [1, 2, 4] {
        let engine = (s.engine_of)();
        let instrumented = replay::replay(&engine, &s.workload, threads).expect("replay@N");
        assert_reports_identical(
            &baseline,
            &instrumented,
            &format!("telemetry on, {threads} threads"),
        );
        assert_snapshots_identical(
            &baseline_engine,
            &engine,
            &format!("telemetry on, {threads} threads"),
        );
    }
    ides::telemetry::set_enabled(false);
    // The instrumented replays must actually have recorded something —
    // otherwise this test silently stops guarding the claim. (Query
    // totals live in the engine's always-on ServiceStats, not the
    // registry; the registry counts the write-side stages.)
    let snap = ides::telemetry::global().snapshot();
    assert!(
        snap.counter(ides::telemetry::Counter::Epochs) > 0,
        "instrumented replays recorded no epochs"
    );
    // Drain span buffers so a later test in this binary starts clean.
    let spans = ides::telemetry::take_spans();
    assert!(!spans.is_empty(), "instrumented replays recorded no spans");
}

#[test]
fn snapshot_reads_are_bit_identical_to_direct_cached_joins() {
    // Admit a batch of hosts through the engine (coalesced and direct
    // paths mixed), then check every served coordinate — and therefore
    // every pair estimate — against join_batch_cached run directly on an
    // identically drifted StreamingServer.
    let s = setup();
    let engine = (s.engine_of)();
    let report = replay::replay(&engine, &s.workload, 4).expect("replay");

    // Rebuild the writer-side state independently: a fresh streaming
    // server fed the same drift epochs.
    let ds = ides_datasets::generators::p2psim_like(LANDMARKS + POOL + 5, SEED).expect("dataset");
    let landmarks: Vec<usize> = ds.row_hosts[..LANDMARKS].to_vec();
    let drift = DriftModel::new(0.2, 24.0, SEED);
    let lm = Matrix::from_fn(LANDMARKS, LANDMARKS, |a, b| {
        drift.rtt(&ds.topology, landmarks[a], landmarks[b], 0.0)
    });
    let mut shadow = StreamingServer::new(
        &DistanceMatrix::full("lm", lm).unwrap(),
        DIM,
        StalenessPolicy::default(),
    )
    .expect("shadow server");
    // Collect the last join of every pool host that is still live at the
    // end, applying drift epochs in event order so the shadow model walks
    // the same trajectory as the engine's writer.
    let mut last_join: Vec<Option<(Vec<f64>, Vec<f64>)>> = vec![None; s.workload.pool_size];
    for e in &s.workload.events {
        match &e.op {
            WorkloadOp::Join { host, d_out, d_in } => {
                last_join[*host] = Some((d_out.clone(), d_in.clone()));
            }
            WorkloadOp::Leave { host } => {
                last_join[*host] = None;
            }
            WorkloadOp::Drift(batch) => {
                shadow
                    .apply_epoch(&replay::epoch_update_from_batch(batch))
                    .expect("shadow epoch");
            }
            WorkloadOp::Query { .. } => {}
        }
    }
    let live: Vec<(Vec<f64>, Vec<f64>)> = last_join.into_iter().flatten().collect();
    assert!(!live.is_empty(), "some hosts must survive the churn");
    let snap = engine.snapshot();
    assert_eq!(snap.host_count(), live.len(), "live host census");

    // Direct cached join of the surviving hosts' measurements.
    let k = LANDMARKS;
    let d_out = Matrix::from_fn(live.len(), k, |h, l| live[h].0[l]);
    let d_in = Matrix::from_fn(live.len(), k, |h, l| live[h].1[l]);
    let mut direct = BatchHostVectors::new();
    shadow
        .join_batch_cached(&d_out, &d_in, &mut direct)
        .expect("direct join");

    // Each direct row must appear bit-identically among the snapshot's
    // live slots (slot order differs from batch order; match by content
    // of the measurement-determined coordinates).
    let live_slots: Vec<usize> = (0..snap.slot_count())
        .filter(|&s| snap.is_live(s))
        .collect();
    for h in 0..live.len() {
        let found = live_slots.iter().any(|&slot| {
            (0..DIM).all(|j| {
                snap.host_outgoing(slot)[j].to_bits() == direct.outgoing(h)[j].to_bits()
                    && snap.host_incoming(slot)[j].to_bits() == direct.incoming(h)[j].to_bits()
            })
        });
        assert!(found, "direct join of host {h} not served by any live slot");
    }

    // And the pair estimates the engine serves (cache on) equal the dot
    // products of those tables exactly.
    for (i, &slot) in live_slots.iter().enumerate().take(5) {
        for &other in live_slots.iter().skip(i + 1).take(5) {
            let served = engine
                .estimate(NodeId::Host(slot), NodeId::Host(other))
                .expect("estimate");
            let direct_est = FactorModel::dot(snap.host_outgoing(slot), snap.host_incoming(other));
            assert_eq!(served.to_bits(), direct_est.to_bits());
        }
    }
    assert!(report.answers.iter().all(|v| v.is_finite()));
}
