//! Partial-observed-set and cross-epoch-pipeline bit-identity.
//!
//! Extends the `dag_determinism` suite to the PR-9 planner features:
//!
//! * **Full-coverage subsets** route through the cached full join and are
//!   bitwise identical to the `Observed::All` plan.
//! * **Partial subsets** (the §6.2 grouped subset joins) are bitwise
//!   identical to serial execution of the same plan at every thread
//!   count — parallelism never leaks into the arithmetic.
//! * **Skip elision** under the `coords_current` attestation is a
//!   provable no-op: eliding an untouched host leaves the same bytes a
//!   recompute would have produced.
//! * **Cross-epoch pipelining** (`apply_epochs_pipelined`) is bitwise
//!   identical to back-to-back barriered epochs with the same tables,
//!   at 1/2/4/7 threads.
//! * **Engine batches** (`QueryEngine::apply_epochs`,
//!   `ShardedEngine::apply_epochs`) serve bitwise-identical snapshots to
//!   the one-epoch-at-a-time loop at 1/2/4 shards.
//!
//! The matrix CI lane (`determinism-stress`) runs this suite across
//! `IDES_LINALG_THREADS` x `IDES_LINALG_KERNEL` configurations.

use ides::service::{NodeId, QueryEngine, ServiceConfig, ShardedEngine};
use ides::streaming::dag::PlanStats;
use ides::streaming::{
    EpochOutcome, EpochUpdate, MeasurementDelta, RejoinTables, StalenessPolicy, StreamingServer,
};
use ides::BatchHostVectors;
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Deterministic positive measurement table (`hosts x k`).
fn meas_table(hosts: usize, k: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
    Matrix::from_fn(hosts, k, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        10.0 + ((state >> 33) as f64 / (1u64 << 31) as f64) * 90.0
    })
}

fn server(k: usize, dim: usize, seed: u64, threshold: f64) -> StreamingServer {
    let lm = DistanceMatrix::full("lm", meas_table(k, k, seed)).expect("landmark matrix");
    StreamingServer::new(
        &lm,
        dim,
        StalenessPolicy {
            deviation_threshold: threshold,
            ..StalenessPolicy::default()
        },
    )
    .expect("server")
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: component {i} differs: {x} vs {y}"
        );
    }
}

fn assert_models_eq(a: &StreamingServer, b: &StreamingServer, context: &str) {
    for l in 0..a.landmark_count() {
        assert_bits_eq(
            a.model().outgoing(l),
            b.model().outgoing(l),
            &format!("{context}: outgoing row {l}"),
        );
        assert_bits_eq(
            a.model().incoming(l),
            b.model().incoming(l),
            &format!("{context}: incoming row {l}"),
        );
    }
}

fn assert_coords_eq(a: &BatchHostVectors, b: &BatchHostVectors, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: host count");
    for h in 0..a.len() {
        assert_bits_eq(
            a.outgoing(h),
            b.outgoing(h),
            &format!("{context}: host {h} out"),
        );
        assert_bits_eq(
            a.incoming(h),
            b.incoming(h),
            &format!("{context}: host {h} in"),
        );
    }
}

/// Deterministic per-host observed subsets: host `h` observes
/// `min_len + h % spread` landmarks starting at `h * stride`, wrapping.
/// Sizes stay `>= min_len` so the normal-equation subset solve is
/// well-posed without ridge.
fn observed_subsets(hosts: &[usize], k: usize, min_len: usize, spread: usize) -> Vec<Vec<usize>> {
    hosts
        .iter()
        .map(|&h| {
            let len = (min_len + h % spread).min(k);
            (0..len).map(|i| (h * 3 + i) % k).collect()
        })
        .collect()
}

/// Drift `pairs` distinct landmark pairs confined to `lo..hi` by `factor`.
fn drift_in_range(
    srv: &StreamingServer,
    epoch: f64,
    pairs: usize,
    lo: usize,
    hi: usize,
    factor: f64,
) -> EpochUpdate {
    let span = hi - lo;
    let mut deltas = Vec::new();
    for p in 0..pairs {
        let i = lo + (p * 3) % span;
        let j = lo + (p * 5 + 1) % span;
        if i == j {
            continue;
        }
        deltas.push(MeasurementDelta {
            from: i,
            to: j,
            rtt: srv.landmark_matrix()[(i, j)] * factor,
        });
    }
    EpochUpdate { epoch, deltas }
}

/// Observed subset from a bitmask, padded deterministically to `min_len`
/// distinct landmarks so the subset solve stays well-posed without ridge.
fn mask_subset(mask: u32, k: usize, min_len: usize, salt: usize) -> Vec<usize> {
    let mut s: Vec<usize> = (0..k).filter(|i| mask >> i & 1 == 1).collect();
    let mut next = salt % k;
    while s.len() < min_len {
        if !s.contains(&next) {
            s.push(next);
        }
        next = (next + 1) % k;
    }
    s
}

type EpochLog = Vec<(EpochOutcome, PlanStats)>;

/// Barriered reference driver: one `apply_epoch_planned` per update, with
/// the same `coords_current` upgrade discipline the pipeline applies
/// (false on the priming first epoch, true afterwards).
#[allow(clippy::too_many_arguments)]
fn run_barriered(
    mut srv: StreamingServer,
    meas: &Matrix,
    affected: &[usize],
    observed: Option<&[Vec<usize>]>,
    epochs: &[EpochUpdate],
    threads: usize,
    coords_current_after_first: bool,
) -> (StreamingServer, BatchHostVectors, EpochLog) {
    let mut coords = BatchHostVectors::new();
    srv.join_batch_cached(meas, meas, &mut coords)
        .expect("initial join");
    let mut log = Vec::new();
    for (e, update) in epochs.iter().enumerate() {
        let tables = RejoinTables {
            hosts: affected,
            d_out: meas,
            d_in: meas,
            coords: &mut coords,
            observed,
            coords_current: coords_current_after_first && e > 0,
        };
        let res = srv
            .apply_epoch_planned(update, Some(tables), Some(threads))
            .expect("apply epoch");
        log.push(res);
    }
    (srv, coords, log)
}

/// Pipelined driver: one `apply_epochs_pipelined` call over the batch.
fn run_pipelined(
    mut srv: StreamingServer,
    meas: &Matrix,
    affected: &[usize],
    observed: Option<&[Vec<usize>]>,
    epochs: &[EpochUpdate],
    threads: usize,
) -> (StreamingServer, BatchHostVectors, EpochLog, usize) {
    let mut coords = BatchHostVectors::new();
    srv.join_batch_cached(meas, meas, &mut coords)
        .expect("initial join");
    let tables = RejoinTables {
        hosts: affected,
        d_out: meas,
        d_in: meas,
        coords: &mut coords,
        observed,
        coords_current: false,
    };
    let report = srv
        .apply_epochs_pipelined(epochs, Some(tables), Some(threads))
        .expect("pipelined epochs");
    let overlapped = report.overlapped;
    (srv, coords, report.outcomes, overlapped)
}

#[test]
fn full_coverage_subsets_match_observed_all_bitwise() {
    let k = 10;
    let hosts = 12;
    let srv = server(k, 4, 101, 0.5);
    let meas = meas_table(hosts, k, 102);
    let affected: Vec<usize> = (0..hosts).collect();
    // Every host observes all k landmarks — shuffled, with duplicates.
    let full_cover: Vec<Vec<usize>> = (0..hosts)
        .map(|h| {
            let mut s: Vec<usize> = (0..k).map(|i| (i * 7 + h) % k).collect();
            s.push(h % k); // duplicate: dedup must not change coverage
            s
        })
        .collect();
    let epochs: Vec<EpochUpdate> = (1..=2)
        .map(|e| drift_in_range(&srv, e as f64, 3, 0, k, 1.0 + 0.01 * e as f64))
        .collect();

    let (all_srv, all_coords, all_log) =
        run_barriered(srv.clone(), &meas, &affected, None, &epochs, 2, false);
    let (sub_srv, sub_coords, sub_log) = run_barriered(
        srv.clone(),
        &meas,
        &affected,
        Some(&full_cover),
        &epochs,
        2,
        false,
    );
    assert_eq!(all_log, sub_log, "plans diverged");
    assert_models_eq(&all_srv, &sub_srv, "full-coverage subsets");
    assert_coords_eq(&all_coords, &sub_coords, "full-coverage subsets");
}

#[test]
fn partial_subsets_bitwise_across_thread_counts() {
    let k = 12;
    let hosts = 16;
    let srv = server(k, 4, 111, 0.5);
    let meas = meas_table(hosts, k, 112);
    let affected: Vec<usize> = (0..hosts).collect();
    let observed = observed_subsets(&affected, k, 5, 4);
    let epochs: Vec<EpochUpdate> = (1..=3)
        .map(|e| drift_in_range(&srv, e as f64, 4, 0, k, 1.0 + 0.01 * e as f64))
        .collect();

    let (serial_srv, serial_coords, serial_log) = run_barriered(
        srv.clone(),
        &meas,
        &affected,
        Some(&observed),
        &epochs,
        1,
        false,
    );
    // The subset routing actually grouped partial hosts.
    assert!(serial_log.iter().any(|(_, s)| s.pruning() > 0.0));
    for &threads in &THREAD_COUNTS[1..] {
        let ctx = format!("partial subsets at {threads} threads");
        let (dag_srv, dag_coords, dag_log) = run_barriered(
            srv.clone(),
            &meas,
            &affected,
            Some(&observed),
            &epochs,
            threads,
            false,
        );
        assert_eq!(serial_log, dag_log, "{ctx}: outcomes/stats diverged");
        assert_models_eq(&serial_srv, &dag_srv, &ctx);
        assert_coords_eq(&serial_coords, &dag_coords, &ctx);
    }
}

#[test]
fn skip_elision_is_bitwise_noop() {
    let k = 12;
    let hosts = 10;
    let srv = server(k, 4, 121, 0.5);
    let meas = meas_table(hosts, k, 122);
    let affected: Vec<usize> = (0..hosts).collect();
    // Hosts 0..5 observe only landmarks 6..11 (untouched below); the rest
    // observe the drift range.
    let observed: Vec<Vec<usize>> = (0..hosts)
        .map(|h| {
            if h < 5 {
                (6..k).collect()
            } else {
                (0..6).collect()
            }
        })
        .collect();
    // Localized drift: only landmarks 0..4 move.
    let epochs = [
        drift_in_range(&srv, 1.0, 3, 0, 4, 1.01),
        drift_in_range(&srv, 2.0, 3, 0, 4, 1.02),
    ];

    let (elide_srv, elide_coords, elide_log) = run_barriered(
        srv.clone(),
        &meas,
        &affected,
        Some(&observed),
        &epochs,
        2,
        true, // attests currency after the priming epoch: elision allowed
    );
    let (full_srv, full_coords, full_log) = run_barriered(
        srv.clone(),
        &meas,
        &affected,
        Some(&observed),
        &epochs,
        2,
        false, // never attests: every subset host recomputes every epoch
    );
    // The attested run pruned the untouched hosts on the second epoch…
    assert_eq!(elide_log[0].1.pruned, 0, "priming epoch cannot elide");
    assert_eq!(elide_log[1].1.pruned, 5, "untouched hosts must be elided");
    assert_eq!(full_log[1].1.pruned, 0);
    // …and the bytes are identical anyway: the elision is a true no-op.
    assert_models_eq(&elide_srv, &full_srv, "elide vs recompute");
    assert_coords_eq(&elide_coords, &full_coords, "elide vs recompute");
    // Outcomes (measurement-level accounting) agree even though the plans
    // differ in shape.
    for (a, b) in elide_log.iter().zip(full_log.iter()) {
        assert_eq!(a.0, b.0, "outcomes diverged");
    }
}

#[test]
fn localized_drift_collapses_critical_path() {
    let k = 12;
    let hosts = 8;
    let srv = server(k, 4, 131, 0.5);
    let meas = meas_table(hosts, k, 132);
    let affected: Vec<usize> = (0..hosts).collect();
    // Every host observes only landmarks 6..11; drift hits 0..3.
    let observed: Vec<Vec<usize>> = (0..hosts).map(|_| (6..k).collect()).collect();
    let epochs = [drift_in_range(&srv, 1.0, 3, 0, 4, 1.01)];

    let (_, _, full_log) = run_barriered(srv.clone(), &meas, &affected, None, &epochs, 1, false);
    let (_, _, sub_log) = run_barriered(
        srv.clone(),
        &meas,
        &affected,
        Some(&observed),
        &epochs,
        1,
        false,
    );
    let full = &full_log[0].1;
    let partial = &sub_log[0].1;
    // Observed::All rejoins wait for every absorb; dependency-exact
    // subsets that miss the drift schedule at level 0.
    assert!(full.critical_path > 1, "full plan must serialize: {full:?}");
    assert_eq!(
        partial.critical_path, 1,
        "untouched subsets must plan at level 0: {partial:?}"
    );
    assert!(
        partial.critical_path < full.critical_path,
        "pruned plan critical path {} must beat full plan {}",
        partial.critical_path,
        full.critical_path
    );
    assert!(partial.pruning() > 0.0, "edges must be pruned: {partial:?}");
    assert_eq!(full.pruning(), 0.0);
}

#[test]
fn pipelined_epochs_match_barriered_bitwise() {
    let k = 12;
    let hosts = 14;
    let srv = server(k, 4, 141, 0.5);
    let meas = meas_table(hosts, k, 142);
    let affected: Vec<usize> = (0..hosts).collect();
    // Mix: partial subsets inside and outside the drift range plus one
    // full-coverage host.
    let mut observed = observed_subsets(&affected, k, 5, 4);
    observed[0] = (0..k).collect();
    let epochs: Vec<EpochUpdate> = (1..=3)
        .map(|e| drift_in_range(&srv, e as f64, 3, 0, 6, 1.0 + 0.01 * e as f64))
        .collect();

    for &threads in &THREAD_COUNTS {
        let ctx = format!("pipelined at {threads} threads");
        let (bar_srv, bar_coords, bar_log) = run_barriered(
            srv.clone(),
            &meas,
            &affected,
            Some(&observed),
            &epochs,
            threads,
            true,
        );
        let (pipe_srv, pipe_coords, pipe_log, overlapped) = run_pipelined(
            srv.clone(),
            &meas,
            &affected,
            Some(&observed),
            &epochs,
            threads,
        );
        assert_eq!(
            overlapped,
            epochs.len() - 1,
            "{ctx}: every interior epoch must overlap"
        );
        assert_eq!(bar_log, pipe_log, "{ctx}: outcomes/stats diverged");
        assert_models_eq(&bar_srv, &pipe_srv, &ctx);
        assert_coords_eq(&bar_coords, &pipe_coords, &ctx);
    }
}

#[test]
fn pipelined_without_tables_runs_serially() {
    let k = 10;
    let srv = server(k, 4, 151, 0.5);
    let epochs: Vec<EpochUpdate> = (1..=2)
        .map(|e| drift_in_range(&srv, e as f64, 3, 0, k, 1.0 + 0.01 * e as f64))
        .collect();
    let mut pipe = srv.clone();
    let report = pipe
        .apply_epochs_pipelined(&epochs, None, Some(2))
        .expect("pipelined no-tables");
    assert_eq!(report.overlapped, 0, "nothing to overlap without coords");
    assert_eq!(report.outcomes.len(), 2);
    let mut bar = srv.clone();
    for u in &epochs {
        bar.apply_epoch_planned(u, None, Some(2))
            .expect("barriered");
    }
    assert_models_eq(&bar, &pipe, "no-tables pipeline");
}

/// Under the automatic thread policy a batch smaller than
/// `StalenessPolicy::min_pipeline_hosts` (default 1024) must skip the
/// pipeline worker and still land bitwise on the serial result.
#[test]
fn auto_policy_clamps_small_batches_to_barriered() {
    let k = 10;
    let hosts = 14;
    let srv = server(k, 4, 191, 0.5);
    assert!(hosts < srv.policy().min_pipeline_hosts);
    let meas = meas_table(hosts, k, 192);
    let affected: Vec<usize> = (0..hosts).collect();
    let observed = observed_subsets(&affected, k, 5, 4);
    let epochs: Vec<EpochUpdate> = (1..=3)
        .map(|e| drift_in_range(&srv, e as f64, 4, 0, k, 1.0 + 0.01 * e as f64))
        .collect();

    let mut clamped = srv.clone();
    let mut clamped_coords = BatchHostVectors::new();
    clamped
        .join_batch_cached(&meas, &meas, &mut clamped_coords)
        .expect("initial join");
    let report = clamped
        .apply_epochs_pipelined(
            &epochs,
            Some(RejoinTables {
                hosts: &affected,
                d_out: &meas,
                d_in: &meas,
                coords: &mut clamped_coords,
                observed: Some(&observed),
                coords_current: false,
            }),
            None,
        )
        .expect("clamped batch");
    assert_eq!(
        report.overlapped, 0,
        "small batch must not spawn the worker"
    );

    let (bar_srv, bar_coords, bar_log) = run_barriered(
        srv.clone(),
        &meas,
        &affected,
        Some(&observed),
        &epochs,
        1,
        true,
    );
    assert_eq!(bar_log, report.outcomes, "clamped batch: outcomes/stats");
    assert_models_eq(&bar_srv, &clamped, "clamped batch");
    assert_coords_eq(&bar_coords, &clamped_coords, "clamped batch");
}

#[test]
fn one_catastrophic_landmark_absorbs_under_row_gate() {
    let k = 16;
    let mut srv = server(k, 5, 161, 0.05);
    // One pair drifts 3x: global deviation blows past the threshold, but
    // only 2 of 16 Gram rows are hot — under the per-row gate
    // (refresh_row_fraction 0.25, so > 4 hot rows required) this absorbs.
    let rtt = srv.landmark_matrix()[(2, 9)];
    let update = EpochUpdate {
        epoch: 1.0,
        deltas: vec![MeasurementDelta {
            from: 2,
            to: 9,
            rtt: rtt * 3.0,
        }],
    };
    let (outcome, stats) = srv
        .apply_epoch_planned(&update, None, Some(2))
        .expect("epoch");
    assert!(
        !outcome.refreshed,
        "a single hot landmark must absorb, not refresh: {outcome:?}"
    );
    assert_eq!(outcome.hot_rows, 2, "rows 2 and 9 are hot");
    assert_eq!(outcome.absorbed, 2);
    assert_eq!(stats.nodes, 2);
}

#[test]
fn global_drift_still_refreshes_under_row_gate() {
    let k = 12;
    let mut srv = server(k, 5, 171, 0.05);
    let deltas: Vec<MeasurementDelta> = (0..k)
        .flat_map(|i| {
            let j = (i + 5) % k;
            (i != j).then(|| MeasurementDelta {
                from: i,
                to: j,
                rtt: srv.landmark_matrix()[(i, j)] * 2.5,
            })
        })
        .collect();
    let update = EpochUpdate { epoch: 1.0, deltas };
    let (outcome, _) = srv
        .apply_epoch_planned(&update, None, Some(2))
        .expect("epoch");
    assert!(
        outcome.refreshed,
        "global drift must still trip the refresh barrier: {outcome:?}"
    );
    assert!(outcome.hot_rows > k / 4, "most rows hot: {outcome:?}");
}

/// Engine-level batch application: `apply_epochs` (pipelined under the
/// writer lock) serves bitwise-identical snapshots to the serial
/// `apply_epoch` loop, and shard replicas agree at 1/2/4 shards.
#[test]
fn engine_apply_epochs_bitwise_vs_serial_loop_and_shards() {
    let k = 12;
    let hosts = 18;
    // The engine batch path runs under the automatic thread policy; zero
    // the pipeline work clamp so this 18-host test still drives the
    // worker hand-off and its overlap accounting.
    let lm = DistanceMatrix::full("lm", meas_table(k, k, 181)).expect("landmark matrix");
    let srv = StreamingServer::new(
        &lm,
        5,
        StalenessPolicy {
            deviation_threshold: 0.5,
            min_pipeline_hosts: 0,
            ..StalenessPolicy::default()
        },
    )
    .expect("server");
    let meas = meas_table(hosts, k, 182);
    let updates: Vec<EpochUpdate> = (1..=3)
        .map(|e| drift_in_range(&srv, e as f64, 4, 0, k, 1.0 + 0.01 * e as f64))
        .collect();

    let collect = |engine: &QueryEngine, ids: &[NodeId]| -> Vec<Vec<f64>> {
        let snap = engine.snapshot();
        ids.iter()
            .map(|id| match id {
                NodeId::Host(s) => {
                    let mut row = snap.host_outgoing(*s).to_vec();
                    row.extend_from_slice(snap.host_incoming(*s));
                    row
                }
                NodeId::Landmark(_) => unreachable!("join returns hosts"),
            })
            .collect()
    };

    let serial_engine = QueryEngine::new(srv.clone(), ServiceConfig::default()).expect("engine");
    let serial_ids = serial_engine.join_many(&meas, &meas).expect("admit");
    let mut serial_outcomes = Vec::new();
    for u in &updates {
        serial_outcomes.push(serial_engine.apply_epoch(u).expect("epoch"));
    }
    let serial_rows = collect(&serial_engine, &serial_ids);

    let batch_engine = QueryEngine::new(srv.clone(), ServiceConfig::default()).expect("engine");
    let batch_ids = batch_engine.join_many(&meas, &meas).expect("admit");
    let batch_outcomes = batch_engine.apply_epochs(&updates).expect("epochs");
    assert_eq!(serial_outcomes, batch_outcomes, "outcomes diverged");
    let batch_rows = collect(&batch_engine, &batch_ids);
    for (h, (a, b)) in serial_rows.iter().zip(batch_rows.iter()).enumerate() {
        assert_bits_eq(a, b, &format!("batched engine, host {h}"));
    }
    // The batch path reports its overlap to the plan totals.
    let totals = batch_engine.epoch_plan_totals();
    assert_eq!(totals.pipelined, updates.len() as u64 - 1);
    assert!(totals.overlap_fraction() > 0.0);

    // Sharded: batch application replicates bitwise at every shard count.
    for shards in [1usize, 2, 4] {
        let engine =
            ShardedEngine::new(srv.clone(), shards, ServiceConfig::default()).expect("engine");
        let ids = engine.join_many(&meas, &meas).expect("admit");
        let outcomes = engine.apply_epochs(&updates).expect("epochs");
        assert_eq!(serial_outcomes, outcomes, "{shards} shards: outcomes");
        for (h, id) in ids.iter().enumerate() {
            let (mut out, inc) = engine.host_coords(*id).expect("coords");
            out.extend(inc);
            assert_bits_eq(&serial_rows[h], &out, &format!("{shards} shards, host {h}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random partial subsets and drift: the pipelined batch is bitwise
    /// identical to barriered epochs at 2/4/7 threads, and barriered
    /// subset plans are bitwise serial.
    #[test]
    fn pipelined_subset_epochs_match_barriered_serial_bitwise(
        seed in 0u64..1_000,
        epochs in 2usize..4,
        pair_drifts in prop::collection::vec((0usize..6, 0usize..6, 0.98f64..1.05), 1..6),
        subset_masks in prop::collection::vec(0u32..1024, 8),
    ) {
        let k = 10;
        let hosts = 8;
        let srv = server(k, 4, seed, 0.5);
        let meas = meas_table(hosts, k, seed ^ 0xBEEF);
        let affected: Vec<usize> = (0..hosts).collect();
        let observed: Vec<Vec<usize>> = subset_masks
            .iter()
            .enumerate()
            .map(|(h, &m)| mask_subset(m, k, 4, h * 3))
            .collect();
        let updates: Vec<EpochUpdate> = (1..=epochs)
            .map(|e| EpochUpdate {
                epoch: e as f64,
                deltas: pair_drifts
                    .iter()
                    .filter(|(i, j, _)| i != j)
                    .map(|&(i, j, f)| MeasurementDelta {
                        from: i,
                        to: j,
                        rtt: srv.landmark_matrix()[(i, j)] * f,
                    })
                    .collect(),
            })
            .collect();
        let (ref_srv, ref_coords, ref_log) = run_barriered(
            srv.clone(), &meas, &affected, Some(&observed), &updates, 1, true);
        for &threads in &THREAD_COUNTS[1..] {
            let ctx = format!("{threads} threads");
            let (bar_srv, bar_coords, bar_log) = run_barriered(
                srv.clone(), &meas, &affected, Some(&observed), &updates, threads, true);
            prop_assert_eq!(&ref_log, &bar_log, "barriered log at {}", &ctx);
            assert_models_eq(&ref_srv, &bar_srv, &ctx);
            assert_coords_eq(&ref_coords, &bar_coords, &ctx);
            let (pipe_srv, pipe_coords, pipe_log, overlapped) = run_pipelined(
                srv.clone(), &meas, &affected, Some(&observed), &updates, threads);
            prop_assert_eq!(overlapped, updates.len() - 1);
            prop_assert_eq!(&ref_log, &pipe_log, "pipelined log at {}", &ctx);
            assert_models_eq(&ref_srv, &pipe_srv, &ctx);
            assert_coords_eq(&ref_coords, &pipe_coords, &ctx);
        }
    }
}
