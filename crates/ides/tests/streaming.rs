//! Bit-identity contract of the streaming update subsystem:
//! `apply_epoch` (refresh tier) followed by a cached join must be
//! **bit-identical** to a manual fresh partial refit — `als::refine` from
//! the same prior factors with the same sweep budget — followed by a
//! one-shot batched normal-equation join. The streaming layer promises it
//! adds no arithmetic of its own on either the maintenance or the query
//! path.

use ides::streaming::{
    EpochUpdate, MeasurementDelta, RefreshStrategy, StalenessPolicy, StreamingServer,
};
use ides::{BatchHostVectors, JoinOptions, JoinSolver};
use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use ides_mf::{als, nmf};

/// Deterministic measurement matrix rows (hosts x k).
fn measurements(hosts: usize, k: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(hosts, k, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 * 60.0 + 5.0
    })
}

#[test]
fn apply_epoch_then_join_is_bit_identical_to_fresh_partial_refit() {
    let ds = ides_datasets::generators::p2psim_like(25, 6).expect("dataset");
    let sub: Vec<usize> = (0..18).collect();
    let lm = ds.matrix.submatrix(&sub, &sub);
    let policy = StalenessPolicy {
        deviation_threshold: 0.0, // every epoch refreshes
        refresh_row_fraction: 0.0,
        sweep_budget: 2,
        ridge: 0.0,
        ..StalenessPolicy::default()
    };
    let mut server = StreamingServer::new(&lm, 6, policy).expect("server");
    let prior_model = server.model().clone();

    // One epoch of drift over a handful of landmark pairs.
    let mut drifted = lm.values().clone();
    let mut deltas = Vec::new();
    for (step, &(i, j)) in [(0usize, 3usize), (2, 9), (5, 12), (7, 16)]
        .iter()
        .enumerate()
    {
        let rtt = drifted[(i, j)] * (1.0 + 0.04 * (step as f64 + 1.0));
        drifted[(i, j)] = rtt;
        deltas.push(MeasurementDelta {
            from: i,
            to: j,
            rtt,
        });
    }
    let outcome = server
        .apply_epoch(&EpochUpdate { epoch: 1.0, deltas })
        .expect("apply epoch");
    assert!(outcome.refreshed, "threshold 0 must refresh");
    assert_eq!(outcome.sweeps, 2);

    // Manual fresh partial refit: same drifted matrix, same prior factors,
    // same sweep budget, same config.
    let data = DistanceMatrix::full("manual", drifted).expect("matrix");
    let RefreshStrategy::Als(refine_cfg) = server.refresh_strategy() else {
        panic!("ALS-family server must report an ALS refresh strategy");
    };
    let manual = als::refine(&data, &prior_model, refine_cfg).expect("refine");

    // The refreshed factor models agree bitwise.
    for (a, b) in server
        .model()
        .x()
        .as_slice()
        .iter()
        .chain(server.model().y().as_slice())
        .zip(
            manual
                .model
                .x()
                .as_slice()
                .iter()
                .chain(manual.model.y().as_slice()),
        )
    {
        assert_eq!(a.to_bits(), b.to_bits(), "refit factors diverge");
    }

    // And a cached join on the streaming server is bit-identical to a
    // one-shot batched normal-equation join against the manual model.
    let hosts = 9;
    let d_out = measurements(hosts, 18, 42);
    let d_in = measurements(hosts, 18, 43);
    let mut cached = BatchHostVectors::new();
    server
        .join_batch_cached(&d_out, &d_in, &mut cached)
        .expect("cached join");
    let mut ws = ides::projection::JoinWorkspace::new();
    let oneshot = ides::projection::join_hosts_with(
        &mut ws,
        manual.model.x(),
        manual.model.y(),
        &d_out,
        &d_in,
        JoinOptions {
            solver: JoinSolver::NormalEquations,
            ridge: policy.ridge,
        },
    )
    .expect("one-shot join");
    for (h, one) in oneshot.iter().enumerate() {
        let hv = cached.host(h);
        for j in 0..6 {
            assert_eq!(
                hv.outgoing[j].to_bits(),
                one.outgoing[j].to_bits(),
                "outgoing host {h} col {j}"
            );
            assert_eq!(
                hv.incoming[j].to_bits(),
                one.incoming[j].to_bits(),
                "incoming host {h} col {j}"
            );
        }
    }
}

#[test]
fn rejoin_affected_is_identical_to_unsharded_join_rows() {
    // The sharded re-join path (scoped threads under `parallel`, inline
    // otherwise) must scatter exactly the rows an unsharded batch join
    // computes — at any shard count, which the parallel CI lane exercises.
    let ds = ides_datasets::generators::p2psim_like(30, 8).expect("dataset");
    let sub: Vec<usize> = (0..16).collect();
    let lm = ds.matrix.submatrix(&sub, &sub);
    let server = StreamingServer::new(&lm, 5, StalenessPolicy::default()).expect("server");
    let hosts = 23;
    let d_out = measurements(hosts, 16, 7);
    let d_in = measurements(hosts, 16, 8);
    let mut full = BatchHostVectors::new();
    server
        .join_batch_cached(&d_out, &d_in, &mut full)
        .expect("full join");
    // Start from zeroed coordinates and re-join every host through the
    // sharded path.
    let mut coords = BatchHostVectors::new();
    coords.reset_shape(hosts, 5);
    let all: Vec<usize> = (0..hosts).collect();
    for h in &all {
        coords.set_host(*h, &[0.0; 5], &[0.0; 5]);
    }
    server
        .rejoin_affected(&all, &d_out, &d_in, &mut coords)
        .expect("rejoin");
    for h in 0..hosts {
        assert_eq!(coords.host(h), full.host(h), "host {h}");
    }
}

#[test]
fn nmf_family_refresh_is_bit_identical_to_manual_nmf_refine() {
    // The PR-3 follow-on: an NMF-family server must route the refresh tier
    // through `nmf::refine` — bit-identically to a manual warm refine from
    // the same prior factors — and keep the refreshed factors nonnegative.
    let ds = ides_datasets::generators::p2psim_like(25, 13).expect("dataset");
    let sub: Vec<usize> = (0..15).collect();
    let lm = ds.matrix.submatrix(&sub, &sub);
    let policy = StalenessPolicy {
        deviation_threshold: 0.0, // every epoch refreshes
        refresh_row_fraction: 0.0,
        sweep_budget: 3,
        ridge: 0.0,
        ..StalenessPolicy::default()
    };
    let nmf_cfg = nmf::NmfConfig::new(5);
    let mut server = StreamingServer::with_nmf_config(&lm, nmf_cfg, policy).expect("server");
    assert!(matches!(
        server.refresh_strategy(),
        RefreshStrategy::Nmf(cfg) if cfg.iterations == 3 && cfg.tolerance == 0.0
    ));
    let prior_model = server.model().clone();
    assert!(
        prior_model.x().is_nonnegative(0.0),
        "cold NMF fit nonnegative"
    );

    let mut drifted = lm.values().clone();
    let mut deltas = Vec::new();
    for (step, &(i, j)) in [(1usize, 4usize), (3, 11), (6, 13)].iter().enumerate() {
        let rtt = drifted[(i, j)] * (1.0 + 0.05 * (step as f64 + 1.0));
        drifted[(i, j)] = rtt;
        deltas.push(MeasurementDelta {
            from: i,
            to: j,
            rtt,
        });
    }
    let outcome = server
        .apply_epoch(&EpochUpdate { epoch: 1.0, deltas })
        .expect("apply epoch");
    assert!(outcome.refreshed);
    assert_eq!(outcome.sweeps, 3);

    let data = DistanceMatrix::full("manual", drifted).expect("matrix");
    let RefreshStrategy::Nmf(refine_cfg) = server.refresh_strategy() else {
        panic!("NMF-family server must report an NMF refresh strategy");
    };
    let manual = nmf::refine(&data, &prior_model, refine_cfg).expect("refine");
    for (a, b) in server
        .model()
        .x()
        .as_slice()
        .iter()
        .chain(server.model().y().as_slice())
        .zip(
            manual
                .model
                .x()
                .as_slice()
                .iter()
                .chain(manual.model.y().as_slice()),
        )
    {
        assert_eq!(a.to_bits(), b.to_bits(), "refreshed NMF factors diverged");
    }
    // Multiplicative updates preserve nonnegativity through the refresh.
    assert!(server.model().x().is_nonnegative(0.0));
    assert!(server.model().y().is_nonnegative(0.0));

    // Cached joins keep working from the refreshed nonnegative model.
    let d_out = measurements(4, 15, 21);
    let d_in = measurements(4, 15, 22);
    let mut joined = BatchHostVectors::new();
    server
        .join_batch_cached(&d_out, &d_in, &mut joined)
        .expect("cached join");
    assert_eq!(joined.len(), 4);
}

#[test]
fn nmf_family_absorb_tier_keeps_factors_nonnegative() {
    // The PR-4 follow-on: the absorb tier of an NMF-family server re-solves
    // drifted landmark rows by NNLS, so factors stay nonnegative *between*
    // refreshes — not just after the next warm `nmf::refine`.
    let ds = ides_datasets::generators::p2psim_like(30, 41).expect("dataset");
    let sub: Vec<usize> = (0..16).collect();
    let lm = ds.matrix.submatrix(&sub, &sub);
    let policy = StalenessPolicy {
        deviation_threshold: 0.9, // never refresh: every epoch absorbs
        refresh_row_fraction: 1.0,
        sweep_budget: 2,
        ridge: 0.0,
        ..StalenessPolicy::default()
    };
    let mut server =
        StreamingServer::with_nmf_config(&lm, nmf::NmfConfig::new(5), policy).expect("server");
    // Drive a dozen absorb epochs with meaningful drift on varied pairs.
    for step in 0..12usize {
        let i = (step * 5 + 1) % 16;
        let j = (step * 7 + 3) % 16;
        if i == j {
            continue;
        }
        let rtt = server.landmark_matrix()[(i, j)] * (1.0 + 0.08 * ((step % 5) as f64 - 2.0));
        let outcome = server
            .apply_epoch(&EpochUpdate {
                epoch: step as f64,
                deltas: vec![MeasurementDelta {
                    from: i,
                    to: j,
                    rtt,
                }],
            })
            .expect("absorb epoch");
        assert!(!outcome.refreshed, "epoch {step} must stay on absorb tier");
        assert!(
            server.model().x().is_nonnegative(0.0),
            "outgoing factors went negative after absorb epoch {step}"
        );
        assert!(
            server.model().y().is_nonnegative(0.0),
            "incoming factors went negative after absorb epoch {step}"
        );
    }
    assert_eq!(server.refreshes(), 0);
    assert!(server.absorbed() > 0, "absorb tier must have run");
    // The surgically maintained Grams still track the (NNLS-resolved)
    // factors, so cached joins remain consistent with a fresh
    // factorization of the current model.
    let fresh_y =
        ides_linalg::solve::CachedGram::factor(server.model().y(), policy.ridge).expect("gram");
    let joined = {
        let d_out = measurements(3, 16, 77);
        let d_in = measurements(3, 16, 78);
        let mut out = BatchHostVectors::new();
        server
            .join_batch_cached(&d_out, &d_in, &mut out)
            .expect("cached join");
        let mut manual = d_out.matmul(server.model().y()).expect("rhs");
        fresh_y.solve_rows_in_place(&mut manual).expect("solve");
        (out, manual)
    };
    for h in 0..3 {
        for c in 0..5 {
            let cached = joined.0.outgoing(h)[c];
            let fresh = joined.1[(h, c)];
            assert!(
                (cached - fresh).abs() <= 1e-7 * fresh.abs().max(1.0),
                "cached join drifted from fresh factorization: {cached} vs {fresh}"
            );
        }
    }
}

#[test]
fn nmf_absorb_honors_the_ridge() {
    // With StalenessPolicy::ridge > 0 the NNLS absorb tier must solve the
    // ridge-regularized problem min ‖Yx − b‖² + λ‖x‖² s.t. x ≥ 0 — i.e.
    // Lawson–Hanson on the augmented system [Y; √λ·I] — not the
    // unregularized one the λ knob exists to prevent.
    let ds = ides_datasets::generators::p2psim_like(25, 51).expect("dataset");
    let sub: Vec<usize> = (0..14).collect();
    let lm = ds.matrix.submatrix(&sub, &sub);
    let ridge = 0.3;
    let policy = StalenessPolicy {
        deviation_threshold: 0.9, // absorb tier only
        refresh_row_fraction: 1.0,
        sweep_budget: 2,
        ridge,
        ..StalenessPolicy::default()
    };
    let mut server =
        StreamingServer::with_nmf_config(&lm, nmf::NmfConfig::new(4), policy).expect("server");
    let prior = server.model().clone();
    let (i, j) = (2usize, 9usize);
    let rtt = server.landmark_matrix()[(i, j)] * 1.06;
    let outcome = server
        .apply_epoch(&EpochUpdate {
            epoch: 1.0,
            deltas: vec![MeasurementDelta {
                from: i,
                to: j,
                rtt,
            }],
        })
        .expect("absorb epoch");
    assert!(!outcome.refreshed);

    // Manual augmented-system NNLS for the *first* absorbed landmark
    // (index i < j, absorbed in sorted order against the prior factors).
    let k = 14;
    let d = 4;
    let mut drifted = lm.values().clone();
    drifted[(i, j)] = rtt;
    let aug = Matrix::from_fn(k + d, d, |r, c| {
        if r < k {
            prior.y()[(r, c)]
        } else if r - k == c {
            ridge.sqrt()
        } else {
            0.0
        }
    });
    let mut rhs: Vec<f64> = (0..k).map(|c| drifted[(i, c)]).collect();
    rhs.resize(k + d, 0.0);
    let manual = ides_linalg::nnls::nnls(&aug, &rhs).expect("manual ridge NNLS");
    for (c, &want) in manual.iter().enumerate() {
        assert_eq!(
            server.model().outgoing(i)[c].to_bits(),
            want.to_bits(),
            "absorbed outgoing row must be the ridge-NNLS solution (col {c})"
        );
        assert!(want >= 0.0);
    }
    // And it must differ from the unregularized solution whenever the
    // ridge actually binds (it does at λ=0.3 on this system).
    let plain = ides_linalg::nnls::nnls(prior.y(), &rhs[..k]).expect("plain NNLS");
    assert!(
        manual
            .iter()
            .zip(plain.iter())
            .any(|(a, b)| (a - b).abs() > 1e-12),
        "ridge had no effect — test scenario too weak"
    );
}

#[test]
fn nmf_family_full_refit_uses_nmf() {
    let ds = ides_datasets::generators::gnp_like(14, 19).expect("dataset");
    let policy = StalenessPolicy::default();
    let cfg = nmf::NmfConfig::new(4);
    let mut server = StreamingServer::with_nmf_config(&ds.matrix, cfg, policy).expect("server");
    server.full_refit().expect("full refit");
    // A cold NMF refit from the same matrix must reproduce the factors.
    let manual = nmf::fit(&ds.matrix, cfg).expect("manual fit");
    for (a, b) in server
        .model()
        .x()
        .as_slice()
        .iter()
        .zip(manual.model.x().as_slice().iter())
    {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(server.refreshes(), 1);
}
