//! # ides — Internet Distance Estimation Service
//!
//! The system layer of the reproduction of Mao & Saul, *Modeling Distances
//! in Large-Scale Networks by Matrix Factorization* (IMC 2004), §5–§6.
//!
//! IDES classifies hosts into **landmarks** — well-positioned nodes whose
//! pairwise distance matrix an information server measures and factors by
//! SVD or NMF — and **ordinary hosts**, which join by measuring distances
//! to/from the landmarks (or, in the relaxed architecture, any `k ≥ d`
//! nodes with known vectors) and solving two small least-squares problems
//! (Eqs. 13–16) for their own outgoing/incoming vectors. Distance queries
//! then reduce to dot products with no further measurement.
//!
//! * [`system`] — landmark selection, [`system::InformationServer`], joins
//!   (single-host and batched).
//! * [`projection`] — the least-squares host join with QR / normal-equation
//!   / nonnegative solvers; the batched multi-RHS path
//!   ([`projection::join_hosts_with`]) joins every host sharing a landmark
//!   set through one factorization + one GEMM, bit-identical to per-host
//!   solves.
//! * [`eval`] — the §6 evaluation harness (IDES vs ICS vs GNP, landmark
//!   failure injection), batched per shard and — with the `parallel`
//!   feature — sharded over scoped threads with byte-identical results
//!   (`IDES_LINALG_THREADS` overrides the thread count).
//! * [`streaming`] — epoch-driven coordinate maintenance under drift:
//!   [`streaming::StreamingServer`] ingests epoch-stamped measurement
//!   deltas from an [`streaming::UpdateQueue`] and keeps coordinates fresh
//!   **without refitting from scratch** — rank-1 Cholesky surgery on the
//!   cached join factorizations for small drift, bounded warm-start ALS
//!   refits beyond the [`streaming::StalenessPolicy`] threshold, and
//!   sharded re-joins of only the affected hosts.
//! * [`service`] — the concurrent serving engine:
//!   [`service::QueryEngine`] answers `estimate(a, b)` for thousands of
//!   concurrent readers from **epoch-versioned, immutable snapshots**
//!   (readers grab an `Arc<Snapshot>`; the streaming writer publishes a
//!   new one after each drift epoch, so queries never block on
//!   maintenance and never see a torn epoch), admits new hosts through a
//!   **join coalescer** (concurrent join requests solve as one batched
//!   cached-Gram system — the batch-join amortization applied across
//!   requesters), memoizes pair estimates in an **epoch-tagged cache**,
//!   and retires departed hosts to a free list. Paired with
//!   `ides_netsim::workload` (deterministic query/join/leave/drift event
//!   streams), [`service::replay`] (bit-identical replay at any thread
//!   count) and [`service::load`] (wall-clock latency/throughput
//!   harness).
//! * [`telemetry`] — end-to-end observability: a lock-free,
//!   statically-registered metrics registry (striped atomic counters /
//!   gauges / histogram timers with exact merge), bounded per-thread
//!   tracing-span ring buffers covering every write-side stage and the
//!   read-side events, and Prometheus-text / Chrome-trace-JSON
//!   exporters. Off by default (one relaxed load per site);
//!   observational only — enabling it never changes a computed bit.
//! * [`protocol`] — the wire protocol simulated over `ides-netsim`
//!   (framed serde messages, ping-based RTT measurement, deterministic
//!   discrete-event timing).
//!
//! ```
//! use ides::system::{IdesConfig, InformationServer};
//! use ides_datasets::DistanceMatrix;
//! use ides_netsim::topology::figure1_distance_matrix;
//!
//! // §5.1 worked example: 4 landmarks, host H1 joins with distances
//! // [0.5, 1.5, 1.5, 2.5]; its distance to a mirrored host H2 is
//! // predicted as 3.25 (true distance 3).
//! let lm = DistanceMatrix::full("fig1", figure1_distance_matrix()).unwrap();
//! let server = InformationServer::build(&lm, IdesConfig::new(3)).unwrap();
//! let h1 = server.join(&[0.5, 1.5, 1.5, 2.5], &[0.5, 1.5, 1.5, 2.5]).unwrap();
//! let h2 = server.join(&[2.5, 1.5, 1.5, 0.5], &[2.5, 1.5, 1.5, 0.5]).unwrap();
//! assert!((h1.distance_to_host(&h2) - 3.25).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod eval;
pub mod projection;
pub mod protocol;
pub mod service;
pub mod streaming;
pub mod system;
pub mod telemetry;

pub use error::{IdesError, Result};
pub use projection::{BatchHostVectors, HostVectors, JoinOptions, JoinSolver};
pub use service::{NodeId, QueryEngine, ServiceConfig, Snapshot};
pub use streaming::{
    EpochOutcome, EpochUpdate, MeasurementDelta, StalenessPolicy, StreamingServer, UpdateQueue,
};
pub use system::{Algorithm, IdesConfig, InformationServer};
