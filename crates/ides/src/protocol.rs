//! The IDES wire protocol, simulated over the `ides-netsim` transport.
//!
//! Message flow for an ordinary host joining the system (§5.1):
//!
//! ```text
//! host  → server   JoinRequest
//! server→ host     LandmarkList { landmark addresses }
//! host  → landmark Ping { seq }            (k probes per landmark)
//! landmark → host  Pong { seq }
//! host  → server   VectorRequest { rtts }
//! server→ host     VectorReply { outgoing, incoming }
//! ```
//!
//! Messages are serde-serialized to JSON and wrapped in length-prefixed
//! frames ([`ides_netsim::transport::encode_frame`]). The host measures
//! each landmark RTT as the minimum over `probes` ping exchanges at
//! simulated network latency, so a full join has a realistic wall-clock
//! cost in simulated milliseconds.
//!
//! RTT is a round-trip metric, so the host-measured value serves as both
//! `Dᵒᵘᵗ` and `Dᶦⁿ`; for one-way metrics the landmarks would measure the
//! reverse direction and report it in the Pong (the message carries the
//! field either way).

use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

use ides_netsim::transport::{encode_frame, Address, Context, FrameCodec, Node, SimNetwork};
use ides_netsim::TransitStubTopology;

use crate::error::{IdesError, Result};
use crate::projection::HostVectors;
use crate::system::InformationServer;

/// Protocol messages exchanged between hosts, landmarks, and the server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Message {
    /// Host asks the server to start a join.
    JoinRequest,
    /// Server returns the landmark addresses to probe.
    LandmarkList {
        /// Network addresses of the landmarks.
        landmarks: Vec<Address>,
    },
    /// Probe sent by a joining host to a landmark.
    Ping {
        /// Probe sequence number.
        seq: u32,
        /// Sender timestamp (simulated ms) echoed back in the Pong.
        sent_at: f64,
    },
    /// Landmark's echo of a Ping.
    Pong {
        /// Echoed sequence number.
        seq: u32,
        /// Echoed sender timestamp.
        sent_at: f64,
        /// One-way distance measured by the landmark towards the host, if
        /// the landmark can measure it (used for one-way metrics).
        reverse_oneway: Option<f64>,
    },
    /// Host submits its measured landmark RTTs and asks for vectors.
    VectorRequest {
        /// Minimum RTT to each landmark (ms), in LandmarkList order.
        rtts: Vec<f64>,
    },
    /// Server returns the solved host vectors.
    VectorReply {
        /// Outgoing vector.
        outgoing: Vec<f64>,
        /// Incoming vector.
        incoming: Vec<f64>,
    },
    /// Server-side failure report.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

/// Encodes a message as a length-prefixed JSON frame.
pub fn encode_message(msg: &Message) -> Bytes {
    let json = serde_json::to_vec(msg).expect("message serialization is infallible");
    encode_frame(&json)
}

/// Decodes a single framed message (used by the agents, which receive one
/// complete frame per delivery).
pub fn decode_message(payload: &Bytes) -> Result<Message> {
    let mut codec = FrameCodec::new();
    codec.feed(payload);
    let frame = codec
        .decode()
        .map_err(|e| IdesError::Protocol(e.to_string()))?
        .ok_or_else(|| IdesError::Protocol("truncated frame".into()))?;
    serde_json::from_slice(&frame).map_err(|e| IdesError::Protocol(e.to_string()))
}

/// A landmark endpoint: answers pings.
pub struct LandmarkAgent;

impl Node for LandmarkAgent {
    fn on_message(&mut self, from: Address, payload: Bytes, ctx: &mut Context<'_>) {
        if let Ok(Message::Ping { seq, sent_at }) = decode_message(&payload) {
            let pong = Message::Pong {
                seq,
                sent_at,
                reverse_oneway: None,
            };
            ctx.send(from, encode_message(&pong));
        }
    }
}

/// The information-server endpoint.
pub struct ServerAgent {
    server: Arc<InformationServer>,
    landmark_addresses: Vec<Address>,
    /// Joined hosts, shared with the driver for inspection.
    pub joined: Arc<Mutex<HashMap<Address, HostVectors>>>,
}

impl ServerAgent {
    /// Creates the server endpoint.
    pub fn new(server: Arc<InformationServer>, landmark_addresses: Vec<Address>) -> Self {
        ServerAgent {
            server,
            landmark_addresses,
            joined: Arc::new(Mutex::new(HashMap::new())),
        }
    }
}

impl Node for ServerAgent {
    fn on_message(&mut self, from: Address, payload: Bytes, ctx: &mut Context<'_>) {
        match decode_message(&payload) {
            Ok(Message::JoinRequest) => {
                let list = Message::LandmarkList {
                    landmarks: self.landmark_addresses.clone(),
                };
                ctx.send(from, encode_message(&list));
            }
            Ok(Message::VectorRequest { rtts }) => {
                let reply = match self.server.join(&rtts, &rtts) {
                    Ok(v) => {
                        self.joined.lock().insert(from, v.clone());
                        Message::VectorReply {
                            outgoing: v.outgoing,
                            incoming: v.incoming,
                        }
                    }
                    Err(e) => Message::Error {
                        reason: e.to_string(),
                    },
                };
                ctx.send(from, encode_message(&reply));
            }
            _ => {}
        }
    }
}

/// State of a joining host.
#[derive(Debug, Clone, PartialEq, Eq)]
enum HostState {
    Idle,
    Probing,
    AwaitingVectors,
    Done,
    Failed,
}

/// An ordinary-host endpoint that runs the join state machine.
pub struct HostAgent {
    server_addr: Address,
    probes_per_landmark: u32,
    state: HostState,
    landmarks: Vec<Address>,
    /// Minimum observed RTT per landmark.
    best_rtt: Vec<f64>,
    outstanding: usize,
    /// Final vectors once joined.
    pub vectors: Option<HostVectors>,
    /// Simulated time when the join completed.
    pub completed_at: Option<f64>,
    /// Failure reason, if the join failed.
    pub failure: Option<String>,
}

impl HostAgent {
    /// Creates a host that will join through `server_addr`, probing each
    /// landmark `probes_per_landmark` times.
    pub fn new(server_addr: Address, probes_per_landmark: u32) -> Self {
        HostAgent {
            server_addr,
            probes_per_landmark: probes_per_landmark.max(1),
            state: HostState::Idle,
            landmarks: Vec::new(),
            best_rtt: Vec::new(),
            outstanding: 0,
            vectors: None,
            completed_at: None,
            failure: None,
        }
    }

    /// The initial message that kicks off the join (send via
    /// [`SimNetwork::send`] from the host's own address).
    pub fn kickoff(&mut self) -> Bytes {
        self.state = HostState::Probing; // transitions fully on LandmarkList
        encode_message(&Message::JoinRequest)
    }

    /// True when the state machine has finished (successfully or not).
    pub fn is_done(&self) -> bool {
        matches!(self.state, HostState::Done | HostState::Failed)
    }
}

impl Node for HostAgent {
    fn on_message(&mut self, from: Address, payload: Bytes, ctx: &mut Context<'_>) {
        let Ok(msg) = decode_message(&payload) else {
            return;
        };
        match msg {
            Message::LandmarkList { landmarks } => {
                self.landmarks = landmarks;
                self.best_rtt = vec![f64::INFINITY; self.landmarks.len()];
                self.outstanding = self.landmarks.len() * self.probes_per_landmark as usize;
                self.state = HostState::Probing;
                for (li, &addr) in self.landmarks.iter().enumerate() {
                    for p in 0..self.probes_per_landmark {
                        let seq = (li as u32) * self.probes_per_landmark + p;
                        let ping = Message::Ping {
                            seq,
                            sent_at: ctx.now(),
                        };
                        ctx.send(addr, encode_message(&ping));
                    }
                }
            }
            Message::Pong { seq, sent_at, .. } => {
                if self.state != HostState::Probing {
                    return;
                }
                let li = (seq / self.probes_per_landmark) as usize;
                if li < self.best_rtt.len() {
                    let rtt = ctx.now() - sent_at;
                    if rtt < self.best_rtt[li] {
                        self.best_rtt[li] = rtt;
                    }
                }
                self.outstanding = self.outstanding.saturating_sub(1);
                if self.outstanding == 0 {
                    self.state = HostState::AwaitingVectors;
                    let req = Message::VectorRequest {
                        rtts: self.best_rtt.clone(),
                    };
                    ctx.send(self.server_addr, encode_message(&req));
                }
            }
            Message::VectorReply { outgoing, incoming } => {
                self.vectors = Some(HostVectors { outgoing, incoming });
                self.completed_at = Some(ctx.now());
                self.state = HostState::Done;
            }
            Message::Error { reason } => {
                self.failure = Some(reason);
                self.state = HostState::Failed;
            }
            _ => {
                let _ = from;
            }
        }
    }
}

/// Outcome of a simulated protocol join.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The joined host's vectors.
    pub vectors: HostVectors,
    /// Simulated milliseconds from kickoff to completion.
    pub elapsed_ms: f64,
    /// Total protocol messages delivered.
    pub messages: usize,
}

/// Runs a complete simulated join of one ordinary host over the topology.
///
/// `landmark_hosts` and `joining_host` index `topo.hosts`. The server is
/// co-located with the first landmark (zero extra latency to it).
pub fn simulate_join(
    topo: &TransitStubTopology,
    server: Arc<InformationServer>,
    landmark_hosts: &[usize],
    joining_host: usize,
    probes_per_landmark: u32,
) -> Result<JoinOutcome> {
    if landmark_hosts.len() != server.landmark_count() {
        return Err(IdesError::InvalidInput(format!(
            "server was built for {} landmarks, got {}",
            server.landmark_count(),
            landmark_hosts.len()
        )));
    }
    // Address plan: 0..L = landmarks, L = server, L+1 = joining host.
    let l = landmark_hosts.len();
    let server_addr = l;
    let host_addr = l + 1;
    let landmark_addrs: Vec<Address> = (0..l).collect();

    // Map protocol addresses to topology host indices for latency lookup.
    let addr_to_host = {
        let mut v: Vec<usize> = landmark_hosts.to_vec();
        v.push(landmark_hosts[0]); // server co-located with landmark 0
        v.push(joining_host);
        v
    };
    let latency = move |from: Address, to: Address| -> f64 {
        let hf = addr_to_host[from];
        let ht = addr_to_host[to];
        if hf == ht {
            0.01 // local loopback
        } else {
            topo.host_delay(hf, ht)
        }
    };

    let mut net = SimNetwork::new(latency);
    let mut landmarks: Vec<LandmarkAgent> = (0..l).map(|_| LandmarkAgent).collect();
    let mut server_agent = ServerAgent::new(server, landmark_addrs);
    let mut host = HostAgent::new(server_addr, probes_per_landmark);

    net.send(host_addr, server_addr, host.kickoff());
    {
        let mut nodes: Vec<&mut dyn Node> = Vec::with_capacity(l + 2);
        for lm in &mut landmarks {
            nodes.push(lm);
        }
        nodes.push(&mut server_agent);
        nodes.push(&mut host);
        net.run(&mut nodes, 100_000);
    }

    if let Some(reason) = host.failure {
        return Err(IdesError::Protocol(reason));
    }
    let vectors = host
        .vectors
        .ok_or_else(|| IdesError::Protocol("join did not complete".into()))?;
    Ok(JoinOutcome {
        vectors,
        elapsed_ms: host.completed_at.unwrap_or(net.now()),
        messages: net.delivered(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{IdesConfig, InformationServer};
    use ides_datasets::generators::nlanr_like;
    use ides_datasets::DistanceMatrix;
    use ides_linalg::Matrix;

    #[test]
    fn message_roundtrip() {
        let msgs = vec![
            Message::JoinRequest,
            Message::LandmarkList {
                landmarks: vec![1, 2, 3],
            },
            Message::Ping {
                seq: 7,
                sent_at: 12.5,
            },
            Message::Pong {
                seq: 7,
                sent_at: 12.5,
                reverse_oneway: Some(3.0),
            },
            Message::VectorRequest {
                rtts: vec![1.0, 2.0],
            },
            Message::VectorReply {
                outgoing: vec![0.1],
                incoming: vec![0.2],
            },
            Message::Error {
                reason: "nope".into(),
            },
        ];
        for m in msgs {
            let encoded = encode_message(&m);
            let decoded = decode_message(&encoded).unwrap();
            // Compare via JSON (Message doesn't implement PartialEq).
            assert_eq!(
                serde_json::to_string(&m).unwrap(),
                serde_json::to_string(&decoded).unwrap()
            );
        }
    }

    #[test]
    fn full_join_over_simulated_network() {
        let ds = nlanr_like(30, 31).unwrap();
        let landmark_hosts: Vec<usize> = (0..10).collect();
        // Build the server from the *true* landmark matrix (clean).
        let values = Matrix::from_fn(10, 10, |i, j| ds.topology.host_rtt(i, j));
        let lm = DistanceMatrix::full("lm", values).unwrap();
        let server = Arc::new(InformationServer::build(&lm, IdesConfig::new(5)).unwrap());

        let joining = 15usize;
        let outcome =
            simulate_join(&ds.topology, server.clone(), &landmark_hosts, joining, 3).unwrap();
        // 1 join request + 1 list + 10*3 pings + 30 pongs + 1 vec req + 1 reply
        assert_eq!(outcome.messages, 2 + 60 + 2);
        assert!(outcome.elapsed_ms > 0.0);

        // The protocol-measured RTTs are exact (deterministic latency), so
        // the joined vectors must reproduce landmark distances about as well
        // as an offline join.
        let mut rels = Vec::new();
        for (i, &lh) in landmark_hosts.iter().enumerate() {
            let actual = ds.topology.host_rtt(joining, lh);
            let est = outcome
                .vectors
                .distance_to(&server.landmark_vectors(i).incoming);
            rels.push((est - actual).abs() / actual.max(1e-9));
        }
        rels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            rels[rels.len() / 2] < 0.3,
            "median landmark error {}",
            rels[rels.len() / 2]
        );
    }

    #[test]
    fn protocol_time_reflects_network_latency() {
        // The join cannot complete faster than the slowest landmark RTT
        // (pings are parallel) plus the server exchanges.
        let ds = nlanr_like(20, 32).unwrap();
        let landmark_hosts: Vec<usize> = (0..6).collect();
        let values = Matrix::from_fn(6, 6, |i, j| ds.topology.host_rtt(i, j));
        let lm = DistanceMatrix::full("lm", values).unwrap();
        let server = Arc::new(InformationServer::build(&lm, IdesConfig::new(3)).unwrap());
        let joining = 10usize;
        let outcome = simulate_join(&ds.topology, server, &landmark_hosts, joining, 2).unwrap();
        let max_rtt = landmark_hosts
            .iter()
            .map(|&l| ds.topology.host_rtt(joining, l))
            .fold(0.0_f64, f64::max);
        assert!(
            outcome.elapsed_ms >= max_rtt,
            "join at {} ms faster than slowest landmark RTT {}",
            outcome.elapsed_ms,
            max_rtt
        );
    }

    #[test]
    fn server_landmark_count_mismatch_rejected() {
        let ds = nlanr_like(20, 33).unwrap();
        let values = Matrix::from_fn(6, 6, |i, j| ds.topology.host_rtt(i, j));
        let lm = DistanceMatrix::full("lm", values).unwrap();
        let server = Arc::new(InformationServer::build(&lm, IdesConfig::new(3)).unwrap());
        let wrong: Vec<usize> = (0..5).collect();
        assert!(simulate_join(&ds.topology, server, &wrong, 10, 1).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        let bad = Bytes::from_static(b"\x00\x00\x00\x02{]");
        assert!(decode_message(&bad).is_err());
        let truncated = Bytes::from_static(b"\x00\x00");
        assert!(decode_message(&truncated).is_err());
    }
}
