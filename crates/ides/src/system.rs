//! The IDES system (§5.1): landmark set, information server, host joins.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use ides_datasets::DistanceMatrix;
use ides_linalg::Matrix;
use ides_mf::nmf::{self, NmfConfig};
use ides_mf::svd_model::{self, SvdConfig};
use ides_mf::{DistanceEstimator, FactorModel};

use crate::error::{IdesError, Result};
use crate::projection::{
    join_host, join_host_subset_with, join_host_with, join_hosts_into, join_hosts_with,
    BatchHostVectors, HostVectors, JoinOptions, JoinSolver, JoinWorkspace,
};

/// Which factorization algorithm the information server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Singular value decomposition (global optimum; complete data only).
    Svd,
    /// Nonnegative matrix factorization (local optimum; handles missing
    /// entries; guarantees nonnegative reconstructions).
    Nmf,
}

/// IDES configuration.
#[derive(Debug, Clone, Copy)]
pub struct IdesConfig {
    /// Model dimensionality `d` (paper: `d ≈ 10` is the sweet spot, `d = 8`
    /// in the prediction experiments).
    pub dim: usize,
    /// Factorization algorithm.
    pub algorithm: Algorithm,
    /// NMF iteration budget (ignored for SVD).
    pub nmf_iterations: usize,
    /// Options for ordinary-host joins.
    pub join: JoinOptions,
    /// Seed for NMF initialization.
    pub seed: u64,
}

impl IdesConfig {
    /// Defaults matching the paper's prediction experiments (d = 8, SVD).
    pub fn new(dim: usize) -> Self {
        IdesConfig {
            dim,
            algorithm: Algorithm::Svd,
            nmf_iterations: 200,
            join: JoinOptions::default(),
            seed: 20041025,
        }
    }

    /// Same but with NMF as the factorizer.
    pub fn nmf(dim: usize) -> Self {
        IdesConfig {
            algorithm: Algorithm::Nmf,
            ..IdesConfig::new(dim)
        }
    }
}

/// The information server: holds the factored landmark model and answers
/// vector queries / join requests.
#[derive(Debug, Clone)]
pub struct InformationServer {
    model: FactorModel,
    config: IdesConfig,
}

impl InformationServer {
    /// Builds the server from the measured landmark-to-landmark matrix.
    ///
    /// SVD requires a complete matrix; NMF accepts missing entries (the
    /// masked updates of Eqs. 8–9).
    pub fn build(landmark_matrix: &DistanceMatrix, config: IdesConfig) -> Result<Self> {
        validate_landmark_dims(landmark_matrix.rows(), landmark_matrix.cols(), config.dim)?;
        let model = match config.algorithm {
            Algorithm::Svd => svd_model::fit(landmark_matrix, SvdConfig::new(config.dim))?,
            Algorithm::Nmf => {
                let cfg = NmfConfig {
                    iterations: config.nmf_iterations,
                    seed: config.seed,
                    ..NmfConfig::new(config.dim)
                };
                nmf::fit(landmark_matrix, cfg)?.model
            }
        };
        Ok(InformationServer { model, config })
    }

    /// Wraps an already-fitted landmark factor model — the constructor the
    /// streaming layer uses to republish a server after an incremental
    /// (warm-start) refresh without re-running a from-scratch fit.
    pub fn from_model(model: FactorModel, config: IdesConfig) -> Result<Self> {
        validate_landmark_dims(model.n_from(), model.n_to(), model.dim())?;
        Ok(InformationServer { model, config })
    }

    /// Number of landmarks.
    pub fn landmark_count(&self) -> usize {
        self.model.n_from()
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The landmark factor model (outgoing/incoming vectors).
    pub fn model(&self) -> &FactorModel {
        &self.model
    }

    /// Landmark `i`'s vectors as a [`HostVectors`] (for the relaxed
    /// architecture where landmarks and joined hosts are interchangeable).
    pub fn landmark_vectors(&self, i: usize) -> HostVectors {
        HostVectors {
            outgoing: self.model.outgoing(i).to_vec(),
            incoming: self.model.incoming(i).to_vec(),
        }
    }

    /// Joins an ordinary host from its measured distances to (`d_out`) and
    /// from (`d_in`) **all** landmarks — the basic architecture (Eqs. 13–14).
    pub fn join(&self, d_out: &[f64], d_in: &[f64]) -> Result<HostVectors> {
        join_host(
            self.model.x(),
            self.model.y(),
            d_out,
            d_in,
            self.config.join,
        )
    }

    /// [`InformationServer::join`] with caller-provided workspace — the
    /// variant batch callers (evaluation sweeps, protocol servers) use so
    /// repeated joins share solver scratch and never clone the landmark
    /// factor matrices.
    pub fn join_with(
        &self,
        ws: &mut JoinWorkspace,
        d_out: &[f64],
        d_in: &[f64],
    ) -> Result<HostVectors> {
        join_host_with(
            ws,
            self.model.x(),
            self.model.y(),
            d_out,
            d_in,
            self.config.join,
        )
    }

    /// Joins a whole batch of ordinary hosts in one shot: row `h` of
    /// `d_out`/`d_in` holds host `h`'s measured distances to/from **all**
    /// landmarks. One factorization of the landmark system serves the
    /// entire batch (see [`crate::projection::join_hosts_with`]); results
    /// are bit-identical to per-host [`InformationServer::join`] calls.
    pub fn join_batch(&self, d_out: &Matrix, d_in: &Matrix) -> Result<Vec<HostVectors>> {
        let mut ws = JoinWorkspace::new();
        self.join_batch_with(&mut ws, d_out, d_in)
    }

    /// [`InformationServer::join_batch`] with caller-provided workspace.
    pub fn join_batch_with(
        &self,
        ws: &mut JoinWorkspace,
        d_out: &Matrix,
        d_in: &Matrix,
    ) -> Result<Vec<HostVectors>> {
        join_hosts_with(
            ws,
            self.model.x(),
            self.model.y(),
            d_out,
            d_in,
            self.config.join,
        )
    }

    /// [`InformationServer::join_batch`] writing into a caller-owned
    /// [`BatchHostVectors`] — the zero-allocation variant the sharded
    /// evaluation sweeps drive.
    pub fn join_batch_into(
        &self,
        ws: &mut JoinWorkspace,
        d_out: &Matrix,
        d_in: &Matrix,
        out: &mut BatchHostVectors,
    ) -> Result<()> {
        join_hosts_into(
            ws,
            self.model.x(),
            self.model.y(),
            d_out,
            d_in,
            self.config.join,
            out,
        )
    }

    /// Joins a host that only observed the landmark subset `observed`
    /// (indices into the landmark set); `d_out`/`d_in` are parallel to
    /// `observed`. Robustness path of §6.2.
    pub fn join_partial(
        &self,
        observed: &[usize],
        d_out: &[f64],
        d_in: &[f64],
    ) -> Result<HostVectors> {
        let mut ws = JoinWorkspace::new();
        self.join_partial_with(&mut ws, observed, d_out, d_in)
    }

    /// [`InformationServer::join_partial`] with caller-provided workspace:
    /// the observed landmark rows are gathered into reusable buffers
    /// instead of cloned into fresh submatrices on every join.
    pub fn join_partial_with(
        &self,
        ws: &mut JoinWorkspace,
        observed: &[usize],
        d_out: &[f64],
        d_in: &[f64],
    ) -> Result<HostVectors> {
        join_host_subset_with(
            ws,
            self.model.x(),
            self.model.y(),
            observed,
            d_out,
            d_in,
            self.config.join,
        )
    }

    /// Joins a host through arbitrary reference nodes (landmarks *or*
    /// previously joined hosts) — the relaxed architecture (Eqs. 15–16).
    pub fn join_via_references(
        &self,
        references: &[HostVectors],
        d_out: &[f64],
        d_in: &[f64],
    ) -> Result<HostVectors> {
        if references.is_empty() {
            return Err(IdesError::TooFewObservations {
                observed: 0,
                needed: self.dim(),
            });
        }
        let d = references[0].outgoing.len();
        for r in references {
            if r.outgoing.len() != d || r.incoming.len() != d {
                return Err(IdesError::InvalidInput(
                    "reference vectors must share one dimension".into(),
                ));
            }
        }
        // Pack the reference rows directly — no per-row clones.
        let mut x = Matrix::zeros(references.len(), d);
        let mut y = Matrix::zeros(references.len(), d);
        for (i, r) in references.iter().enumerate() {
            x.set_row(i, &r.outgoing);
            y.set_row(i, &r.incoming);
        }
        join_host(&x, &y, d_out, d_in, self.config.join)
    }

    /// The configured join options.
    pub fn join_options(&self) -> JoinOptions {
        self.config.join
    }
}

/// Shared validation of a landmark system's shape: the matrix (or factor
/// model) must be square over the landmark set and the model dimension
/// must fit it. Used by every server entry point
/// ([`InformationServer::build`], [`InformationServer::from_model`], the
/// streaming server's constructors) so the rule can't silently diverge.
pub(crate) fn validate_landmark_dims(rows: usize, cols: usize, dim: usize) -> Result<()> {
    if rows != cols {
        return Err(IdesError::InvalidInput(
            "landmark matrix must be square".into(),
        ));
    }
    if dim == 0 || dim > rows {
        return Err(IdesError::InvalidInput(format!(
            "dimension {dim} out of range for {rows} landmarks"
        )));
    }
    Ok(())
}

/// Selects `m` random landmark indices out of `n` hosts (the paper selects
/// landmarks randomly, citing \[21\] that random placement is effective once
/// 20+ landmarks are used).
pub fn select_random_landmarks(n: usize, m: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut rng);
    idx.truncate(m);
    idx.sort_unstable();
    idx
}

/// Spread-maximizing landmark selection (extension; ablation for DESIGN.md):
/// greedy k-center on the measured distances — first landmark is the host
/// with the largest total distance, each next maximizes the minimum
/// distance to the already chosen set.
pub fn select_spread_landmarks(data: &DistanceMatrix, m: usize) -> Vec<usize> {
    let n = data.rows();
    let m = m.min(n);
    if m == 0 {
        return Vec::new();
    }
    let dist = |a: usize, b: usize| -> f64 {
        match (data.get(a, b), data.get(b, a)) {
            (Some(x), Some(y)) => 0.5 * (x + y),
            (Some(x), None) | (None, Some(x)) => x,
            (None, None) => 0.0,
        }
    };
    // Start from the host with the largest row sum (most "peripheral").
    let first = (0..n)
        .max_by(|&a, &b| {
            let sa: f64 = (0..n).map(|j| dist(a, j)).sum();
            let sb: f64 = (0..n).map(|j| dist(b, j)).sum();
            sa.partial_cmp(&sb).expect("finite distances")
        })
        .expect("nonempty matrix");
    let mut chosen = vec![first];
    while chosen.len() < m {
        let next = (0..n)
            .filter(|i| !chosen.contains(i))
            .max_by(|&a, &b| {
                let da = chosen
                    .iter()
                    .map(|&c| dist(a, c))
                    .fold(f64::INFINITY, f64::min);
                let db = chosen
                    .iter()
                    .map(|&c| dist(b, c))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("hosts remain");
        chosen.push(next);
    }
    chosen.sort_unstable();
    chosen
}

/// Convenience used by evaluation code: splits the hosts of a square data
/// set into `(landmarks, ordinary)` by random selection.
pub fn split_landmarks(n: usize, m: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let landmarks = select_random_landmarks(n, m, seed);
    let ordinary: Vec<usize> = (0..n).filter(|i| !landmarks.contains(i)).collect();
    (landmarks, ordinary)
}

/// Ensure the chosen solver matches the algorithm (the paper pairs NNLS
/// joins with NMF landmark models so predictions stay nonnegative).
pub fn recommended_solver(algorithm: Algorithm) -> JoinSolver {
    match algorithm {
        Algorithm::Svd => JoinSolver::Qr,
        Algorithm::Nmf => JoinSolver::NonNegative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ides_datasets::generators::gnp_like;
    use ides_netsim::topology::figure1_distance_matrix;

    fn figure1_dataset() -> DistanceMatrix {
        DistanceMatrix::full("fig1", figure1_distance_matrix()).unwrap()
    }

    #[test]
    fn server_builds_with_svd_and_nmf() {
        let data = figure1_dataset();
        let svd = InformationServer::build(&data, IdesConfig::new(3)).unwrap();
        assert_eq!(svd.landmark_count(), 4);
        assert_eq!(svd.dim(), 3);
        let nmf = InformationServer::build(&data, IdesConfig::nmf(3)).unwrap();
        assert_eq!(nmf.dim(), 3);
        // NMF landmark reconstruction should also be accurate here.
        let recon = nmf.model().reconstruct();
        let err = (&recon - &figure1_distance_matrix()).frobenius_norm();
        assert!(err < 0.8, "NMF reconstruction error {err}");
    }

    #[test]
    fn nmf_server_accepts_missing_entries_svd_rejects() {
        let mut values = figure1_distance_matrix();
        values[(0, 3)] = 0.0;
        let mut mask = Matrix::filled(4, 4, 1.0);
        mask[(0, 3)] = 0.0;
        let data = DistanceMatrix::with_mask("fig1-missing", values, mask).unwrap();
        assert!(InformationServer::build(&data, IdesConfig::new(3)).is_err());
        let server = InformationServer::build(&data, IdesConfig::nmf(3)).unwrap();
        let recon = server.model().reconstruct();
        // Observed entries are reconstructed accurately...
        for i in 0..4 {
            for j in 0..4 {
                if (i, j) == (0, 3) || i == j {
                    continue;
                }
                let actual = figure1_distance_matrix()[(i, j)];
                assert!(
                    (recon[(i, j)] - actual).abs() < 0.4,
                    "observed D[{i}][{j}]: {} vs {actual}",
                    recon[(i, j)]
                );
            }
        }
        // ...and the missing D[0][3] (true value 2) gets a plausible
        // nonnegative imputation (a 4x4 with one mask hole does not pin the
        // value uniquely, so only sanity bounds apply).
        let est = recon[(0, 3)];
        assert!((0.0..=4.0).contains(&est), "imputed D[0][3] = {est}");
    }

    #[test]
    fn join_roundtrip_on_dataset() {
        let ds = gnp_like(19, 5).unwrap();
        let (landmarks, ordinary) = split_landmarks(19, 15, 99);
        let lm = ds.matrix.submatrix(&landmarks, &landmarks);
        let server = InformationServer::build(&lm, IdesConfig::new(8)).unwrap();
        // Join one ordinary host and check its landmark distances are
        // approximately reproduced.
        let h = ordinary[0];
        let d_out: Vec<f64> = landmarks
            .iter()
            .map(|&l| ds.matrix.get(h, l).unwrap())
            .collect();
        let d_in: Vec<f64> = landmarks
            .iter()
            .map(|&l| ds.matrix.get(l, h).unwrap())
            .collect();
        let host = server.join(&d_out, &d_in).unwrap();
        let mut total_rel = 0.0;
        for (i, &actual) in d_out.iter().enumerate() {
            let est = host.distance_to(&server.landmark_vectors(i).incoming);
            total_rel += (est - actual).abs() / actual;
        }
        let mean_rel = total_rel / d_out.len() as f64;
        assert!(mean_rel < 0.25, "mean relative landmark error {mean_rel}");
    }

    #[test]
    fn partial_join_with_enough_landmarks_still_works() {
        let ds = gnp_like(19, 6).unwrap();
        let (landmarks, ordinary) = split_landmarks(19, 15, 7);
        let lm = ds.matrix.submatrix(&landmarks, &landmarks);
        let server = InformationServer::build(&lm, IdesConfig::new(4)).unwrap();
        let h = ordinary[0];
        // Observe only 8 of 15 landmarks.
        let observed: Vec<usize> = (0..15).step_by(2).collect();
        let d_out: Vec<f64> = observed
            .iter()
            .map(|&i| ds.matrix.get(h, landmarks[i]).unwrap())
            .collect();
        let d_in: Vec<f64> = observed
            .iter()
            .map(|&i| ds.matrix.get(landmarks[i], h).unwrap())
            .collect();
        let host = server.join_partial(&observed, &d_out, &d_in).unwrap();
        // Distances to *unobserved* landmarks should still be predicted
        // within a reasonable factor.
        let unobserved: Vec<usize> = (0..15).filter(|i| !observed.contains(i)).collect();
        let mut rels = Vec::new();
        for &i in &unobserved {
            let actual = ds.matrix.get(h, landmarks[i]).unwrap();
            let est = host
                .distance_to(&server.landmark_vectors(i).incoming)
                .max(0.0);
            rels.push((est - actual).abs() / actual);
        }
        rels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rels[rels.len() / 2];
        assert!(
            median < 0.5,
            "median relative error to unobserved landmarks {median}"
        );
    }

    #[test]
    fn join_partial_validates_lengths() {
        let data = figure1_dataset();
        let server = InformationServer::build(&data, IdesConfig::new(3)).unwrap();
        assert!(server.join_partial(&[0, 1], &[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn random_landmark_selection_properties() {
        let sel = select_random_landmarks(100, 20, 1);
        assert_eq!(sel.len(), 20);
        let mut sorted = sel.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "landmarks must be distinct");
        assert!(sel.iter().all(|&i| i < 100));
        // Deterministic per seed.
        assert_eq!(sel, select_random_landmarks(100, 20, 1));
        assert_ne!(sel, select_random_landmarks(100, 20, 2));
    }

    #[test]
    fn spread_selection_covers_clusters() {
        // Two far-apart clusters: spread selection with m=2 must pick one
        // host from each.
        let n = 10;
        let values = Matrix::from_fn(n, n, |i, j| {
            let ci = i / 5;
            let cj = j / 5;
            if i == j {
                0.0
            } else if ci == cj {
                1.0
            } else {
                100.0
            }
        });
        let data = DistanceMatrix::full("clusters", values).unwrap();
        let sel = select_spread_landmarks(&data, 2);
        assert_eq!(sel.len(), 2);
        assert_ne!(sel[0] / 5, sel[1] / 5, "landmarks in same cluster: {sel:?}");
    }

    #[test]
    fn split_landmarks_partitions() {
        let (lm, ord) = split_landmarks(50, 10, 3);
        assert_eq!(lm.len(), 10);
        assert_eq!(ord.len(), 40);
        for l in &lm {
            assert!(!ord.contains(l));
        }
    }

    #[test]
    fn config_validation() {
        let data = figure1_dataset();
        assert!(InformationServer::build(&data, IdesConfig::new(0)).is_err());
        assert!(InformationServer::build(&data, IdesConfig::new(5)).is_err());
        let rect = DistanceMatrix::full("r", Matrix::zeros(2, 3)).unwrap();
        assert!(InformationServer::build(&rect, IdesConfig::new(1)).is_err());
    }

    #[test]
    fn recommended_solver_pairs() {
        assert_eq!(recommended_solver(Algorithm::Svd), JoinSolver::Qr);
        assert_eq!(recommended_solver(Algorithm::Nmf), JoinSolver::NonNegative);
    }
}
