//! Dependency-DAG planning for epoch application.
//!
//! One epoch's maintenance work — landmark-row absorbs, ordinary-host
//! re-joins, refresh events — is planned as a dependency DAG before any
//! arithmetic runs, so independent operations can execute concurrently
//! while the *committed* result stays bit-identical to serial
//! application. The dependency rules:
//!
//! * **Absorbs of distinct landmarks are independent.** An absorb
//!   re-solves one landmark's factor rows and replaces exactly one row of
//!   each cached Gram's design matrix ([`ides_linalg::solve::RowWriters`]
//!   tracks the last writer per row); absorbs touching disjoint rows
//!   read the same epoch-start state, so their solves commute. Two
//!   absorbs of the **same** landmark are ordered (a row chain).
//! * **A host rejoin depends on every absorb of a landmark in its
//!   observed set.** A full-measurement rejoin observes every landmark
//!   ([`Observed::All`]) and therefore runs after all absorbs of the
//!   epoch; a partial-measurement rejoin ([`Observed::Subset`]) only
//!   waits for the absorbs it can actually see.
//! * **Refresh events are barriers.** A warm refit rewrites the whole
//!   model and refactors both Grams, so a [`EpochOp::Refresh`] node
//!   depends on every earlier node and every later node depends on it.
//!
//! The DAG is leveled into **antichains** (Kahn longest-path layering):
//! level of a node = 1 + max level of its dependencies. Every node in a
//! level is mutually independent, so the executor may run a level's
//! solves on scoped threads in any order — commits always land serially
//! in ascending node order, which is what makes the merge deterministic
//! (see `ides::streaming`'s executor documentation).

use ides_linalg::solve::RowWriters;

/// One plannable maintenance operation of an epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochOp {
    /// Re-solve landmark `landmark`'s factor rows and absorb them into
    /// the cached Grams by rank-1 row replacement.
    Absorb {
        /// Landmark (design-matrix row) index.
        landmark: usize,
    },
    /// Re-join ordinary host `host` against the maintained model.
    Rejoin {
        /// Host index (row of the caller's measurement matrices).
        host: usize,
        /// Which landmarks this host's rejoin reads.
        observed: Observed,
    },
    /// A refresh-tier event (warm partial refit + Gram refactorization):
    /// a barrier ordered after everything before it and before everything
    /// after it.
    Refresh,
}

/// The landmark set a host rejoin reads — the dependency footprint of a
/// [`EpochOp::Rejoin`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observed {
    /// The host measured every landmark (the batched full-row join): the
    /// rejoin depends on every absorb of the epoch.
    All,
    /// The host only observes these landmarks (the §6.2 partial-join
    /// path): the rejoin depends only on their absorbs.
    Subset(Vec<usize>),
}

/// Shape statistics of one epoch's plan — exposed through service metrics
/// and `ides-cli serve --json` so write-side parallelism is observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Total DAG nodes (absorbs + rejoins + refresh barriers).
    pub nodes: usize,
    /// Dependency edges (one per distinct (node, dependency) pair).
    pub edges: usize,
    /// Edges the same operation stream would have if every rejoin were
    /// [`Observed::All`] — the conservative PR-8 worst case. The spread
    /// between `full_edges` and `edges` is what partial observed sets
    /// pruned; [`PlanStats::pruning`] reports it as a ratio.
    pub full_edges: usize,
    /// Rejoins elided entirely: hosts whose observed subset misses every
    /// landmark this epoch touched, planned while the caller attested the
    /// coordinate table was current (their recompute would be a bitwise
    /// no-op). Not counted in `nodes`/`edges`; their `Observed::All`
    /// worst-case edges still count in `full_edges`.
    pub pruned: usize,
    /// Antichain groups the executor runs (one barrier sync per group).
    pub groups: usize,
    /// Widest group — the peak concurrency the plan admits.
    pub max_width: usize,
    /// Longest dependency chain in nodes. Under longest-path layering
    /// this equals `groups`; it is reported separately because it is the
    /// quantity with meaning (the serial fraction of the plan) even if a
    /// future executor subdivides groups.
    pub critical_path: usize,
}

impl PlanStats {
    /// Fraction of the [`Observed::All`] worst-case dependency edges this
    /// plan avoided (`1 − edges/full_edges`; 0 when the worst case has no
    /// edges). A full-row epoch reports 0; a localized-drift epoch whose
    /// hosts mostly observe undrifted landmarks approaches 1.
    pub fn pruning(&self) -> f64 {
        if self.full_edges == 0 {
            0.0
        } else {
            1.0 - self.edges as f64 / self.full_edges as f64
        }
    }
}

/// A leveled dependency DAG over one epoch's operations.
///
/// Built by [`EpochDag::build`]; executed by
/// `StreamingServer::apply_epoch_planned`, which runs each level's
/// independent solves concurrently and commits them serially in node
/// order.
#[derive(Debug, Clone)]
pub struct EpochDag {
    ops: Vec<EpochOp>,
    /// Node indices per antichain level, ascending within each level.
    levels: Vec<Vec<usize>>,
    edges: usize,
    /// Edge count under the `Observed::All` worst case (see
    /// [`PlanStats::full_edges`]).
    full_edges: usize,
}

impl EpochDag {
    /// Plans `ops` (in program order) into antichain levels under the
    /// dependency rules in the [module docs](self). `landmarks` bounds the
    /// absorb row indices (rows of the cached Grams' design matrices).
    ///
    /// Runs in O(nodes + observed-set sizes): dependencies are resolved
    /// through last-writer row tracking, never by scanning earlier nodes.
    pub fn build(landmarks: usize, ops: Vec<EpochOp>) -> EpochDag {
        let mut levels: Vec<Vec<usize>> = Vec::new();
        let mut node_level: Vec<usize> = Vec::with_capacity(ops.len());
        let mut edges = 0usize;
        // Edges the same stream would have were every rejoin Observed::All
        // (tracked alongside `edges`; they only diverge on Subset rejoins).
        let mut full_edges = 0usize;
        // Last absorb per Gram row, reset at each barrier.
        let mut row_writers = RowWriters::new(landmarks);
        // Dedup stamp per landmark id: repeated entries in one observed
        // set must count one edge, not one per occurrence.
        let mut seen_stamp: Vec<usize> = vec![0; landmarks];
        let mut stamp = 0usize;
        // The last barrier (every node at or after it depends on it).
        let mut barrier: Option<usize> = None;
        // Absorbs since the last barrier: count (edge accounting for
        // `Observed::All` rejoins) and max level (their layering).
        let mut absorbs_since_barrier = 0usize;
        let mut max_absorb_level = None::<usize>;

        for (i, op) in ops.iter().enumerate() {
            let level = match op {
                EpochOp::Absorb { landmark } => {
                    let mut lvl = 0usize;
                    if let Some(b) = barrier {
                        edges += 1;
                        full_edges += 1;
                        lvl = lvl.max(node_level[b] + 1);
                    }
                    // Chain on the previous absorb of the same row.
                    if let Some(prev) = row_writers.note(*landmark, i) {
                        edges += 1;
                        full_edges += 1;
                        lvl = lvl.max(node_level[prev] + 1);
                    }
                    absorbs_since_barrier += 1;
                    max_absorb_level = Some(max_absorb_level.map_or(lvl, |m: usize| m.max(lvl)));
                    lvl
                }
                EpochOp::Rejoin { observed, .. } => {
                    let mut lvl = 0usize;
                    if let Some(b) = barrier {
                        edges += 1;
                        full_edges += 1;
                        lvl = lvl.max(node_level[b] + 1);
                    }
                    full_edges += absorbs_since_barrier;
                    match observed {
                        Observed::All => {
                            edges += absorbs_since_barrier;
                            if let Some(m) = max_absorb_level {
                                lvl = lvl.max(m + 1);
                            }
                        }
                        Observed::Subset(seen) => {
                            stamp += 1;
                            for &l in seen {
                                if seen_stamp[l] == stamp {
                                    continue; // duplicate id in this set
                                }
                                seen_stamp[l] = stamp;
                                if let Some(prev) = row_writers.last(l) {
                                    edges += 1;
                                    lvl = lvl.max(node_level[prev] + 1);
                                }
                            }
                        }
                    }
                    lvl
                }
                EpochOp::Refresh => {
                    // Barrier: after every earlier node (level = 1 + max
                    // level so far), and later nodes chain through it.
                    edges += i;
                    full_edges += i;
                    let lvl = levels.len(); // 1 + max level of any prior node
                    barrier = Some(i);
                    row_writers.reset();
                    absorbs_since_barrier = 0;
                    max_absorb_level = None;
                    lvl
                }
            };
            node_level.push(level);
            if level == levels.len() {
                levels.push(Vec::new());
            }
            levels[level].push(i);
        }
        EpochDag {
            ops,
            levels,
            edges,
            full_edges,
        }
    }

    /// The planned operations, in program order (node index = position).
    pub fn ops(&self) -> &[EpochOp] {
        &self.ops
    }

    /// Antichain levels in execution order; node indices ascend within
    /// each level (the deterministic commit order).
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }

    /// Plan shape statistics. `pruned` is 0 here: elided rejoins never
    /// reach the DAG, so the executor that elided them accounts for them
    /// (`StreamingServer::apply_epoch_planned` folds their worst-case
    /// edges into `full_edges` and their count into `pruned`).
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            nodes: self.ops.len(),
            edges: self.edges,
            full_edges: self.full_edges,
            pruned: 0,
            groups: self.levels.len(),
            max_width: self.levels.iter().map(Vec::len).max().unwrap_or(0),
            critical_path: self.levels.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn absorb(l: usize) -> EpochOp {
        EpochOp::Absorb { landmark: l }
    }

    fn rejoin_all(h: usize) -> EpochOp {
        EpochOp::Rejoin {
            host: h,
            observed: Observed::All,
        }
    }

    #[test]
    fn empty_epoch_plans_to_nothing() {
        let dag = EpochDag::build(8, Vec::new());
        assert!(dag.levels().is_empty());
        assert_eq!(
            dag.stats(),
            PlanStats {
                nodes: 0,
                edges: 0,
                full_edges: 0,
                pruned: 0,
                groups: 0,
                max_width: 0,
                critical_path: 0
            }
        );
        assert_eq!(dag.stats().pruning(), 0.0);
    }

    #[test]
    fn all_independent_epoch_is_one_antichain() {
        let dag = EpochDag::build(8, (0..8).map(absorb).collect());
        let s = dag.stats();
        assert_eq!(s.groups, 1, "disjoint-row absorbs are one group");
        assert_eq!(s.max_width, 8);
        assert_eq!(s.critical_path, 1);
        assert_eq!(s.edges, 0);
        assert_eq!(dag.levels()[0], (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn same_row_absorbs_chain_to_width_one() {
        // Repeated absorbs of one landmark: an all-dependent chain, which
        // the executor runs through its width-1 serial fallback.
        let dag = EpochDag::build(4, vec![absorb(2); 5]);
        let s = dag.stats();
        assert_eq!(s.groups, 5);
        assert_eq!(s.max_width, 1);
        assert_eq!(s.critical_path, 5);
        assert_eq!(s.edges, 4);
        for (lvl, nodes) in dag.levels().iter().enumerate() {
            assert_eq!(nodes, &[lvl]);
        }
    }

    #[test]
    fn refresh_barrier_splits_the_epoch() {
        // absorb 0, absorb 1 | REFRESH | absorb 0 | rejoin(all)
        let ops = vec![
            absorb(0),
            absorb(1),
            EpochOp::Refresh,
            absorb(0),
            rejoin_all(9),
        ];
        let dag = EpochDag::build(4, ops);
        assert_eq!(
            dag.levels(),
            &[vec![0, 1], vec![2], vec![3], vec![4]],
            "barrier alone in its level; post-barrier work re-levels from it"
        );
        let s = dag.stats();
        assert_eq!(s.groups, 4);
        assert_eq!(s.max_width, 2);
        assert_eq!(s.critical_path, 4);
        // Edges: absorb0' -> barrier, rejoin -> barrier, rejoin -> absorb0',
        // barrier -> both pre-barrier absorbs.
        assert_eq!(s.edges, 5);
    }

    #[test]
    fn rejoin_depends_only_on_observed_absorbs() {
        // A partial-measurement rejoin that observes only landmark 5 is
        // independent of an absorb of landmark 0 — same antichain — while
        // a full-row rejoin waits for it.
        let ops = vec![
            absorb(0),
            EpochOp::Rejoin {
                host: 3,
                observed: Observed::Subset(vec![5]),
            },
            rejoin_all(4),
        ];
        let dag = EpochDag::build(8, ops);
        assert_eq!(dag.levels(), &[vec![0, 1], vec![2]]);
        let s = dag.stats();
        assert_eq!(s.max_width, 2);
        assert_eq!(s.edges, 1, "only the Observed::All rejoin has a dep");
        assert_eq!(
            s.full_edges, 2,
            "worst case: both rejoins would depend on the absorb"
        );
        assert!((s.pruning() - 0.5).abs() < 1e-12);
        // Observing the absorbed landmark restores the edge.
        let ops = vec![
            absorb(0),
            EpochOp::Rejoin {
                host: 3,
                observed: Observed::Subset(vec![0, 5]),
            },
        ];
        let dag = EpochDag::build(8, ops);
        assert_eq!(dag.levels(), &[vec![0], vec![1]]);
        assert_eq!(dag.stats().edges, 1);
    }

    #[test]
    fn duplicate_subset_ids_count_one_edge() {
        // A degenerate observed set repeating one landmark five times must
        // plan exactly like the deduplicated set: one edge, same level.
        let dup = vec![
            absorb(0),
            EpochOp::Rejoin {
                host: 3,
                observed: Observed::Subset(vec![0, 0, 5, 0, 0, 5]),
            },
        ];
        let dag = EpochDag::build(8, dup);
        assert_eq!(dag.levels(), &[vec![0], vec![1]]);
        let s = dag.stats();
        assert_eq!(s.edges, 1, "duplicates must not inflate the edge count");
        assert_eq!(s.full_edges, 1);
        // Two rejoins sharing duplicated ids each get their own dedup
        // stamp — the second set's duplicates are deduped independently.
        let two = vec![
            absorb(0),
            absorb(1),
            EpochOp::Rejoin {
                host: 3,
                observed: Observed::Subset(vec![0, 0]),
            },
            EpochOp::Rejoin {
                host: 4,
                observed: Observed::Subset(vec![1, 1, 0]),
            },
        ];
        let s = EpochDag::build(8, two).stats();
        assert_eq!(s.edges, 3);
        assert_eq!(s.full_edges, 4, "All worst case: 2 rejoins x 2 absorbs");
    }

    #[test]
    fn full_edges_match_edges_without_subsets() {
        // On plans with no Subset rejoins the worst case IS the plan.
        let mut ops: Vec<EpochOp> = (0..3).map(absorb).collect();
        ops.push(EpochOp::Refresh);
        ops.extend((0..4).map(rejoin_all));
        let s = EpochDag::build(8, ops).stats();
        assert_eq!(s.full_edges, s.edges);
        assert_eq!(s.pruning(), 0.0);
    }

    #[test]
    fn mixed_epoch_levels_absorbs_then_rejoins() {
        // The shape StreamingServer::apply_epoch_planned builds on the
        // absorb tier: all (distinct) absorbs in one antichain, then every
        // full-row rejoin in a second.
        let mut ops: Vec<EpochOp> = (0..3).map(absorb).collect();
        ops.extend((0..5).map(rejoin_all));
        let dag = EpochDag::build(16, ops);
        let s = dag.stats();
        assert_eq!(s.groups, 2);
        assert_eq!(s.max_width, 5);
        assert_eq!(s.critical_path, 2);
        assert_eq!(s.edges, 15, "each rejoin depends on each absorb");
        assert_eq!(dag.levels()[0], vec![0, 1, 2]);
        assert_eq!(dag.levels()[1], vec![3, 4, 5, 6, 7]);
    }
}
