//! Level-by-level executor for planned epochs.
//!
//! [`StreamingServer::apply_epoch_planned`] turns one epoch's update
//! batch into [`dag::EpochOp`]s, plans them with [`dag::EpochDag::build`],
//! and executes the antichain levels in order. Within a level:
//!
//! 1. **Solve phase** (parallel): every absorb node's new factor rows are
//!    computed against the level-start model and Grams — pure `&self`
//!    reads into a detached scratch pool, one buffer per node, fanned out
//!    over scoped threads. Each solve's floating-point op sequence
//!    depends only on the level-start state and its own landmark, never
//!    on the grouping or the thread count.
//! 2. **Commit phase** (serial, the deterministic merge): solved rows are
//!    swapped into the model and absorbed into the cached Grams by rank-1
//!    surgery **in ascending node order** — the same order a width-1
//!    (serial) plan commits in.
//! 3. **Rejoin phase**: the level's host rejoins run through the cached
//!    join path, sharded with [`crate::eval::map_shards_with`]; per-host
//!    rows are computed independently and scattered in host order, so the
//!    result is bit-identical at any shard count (the PR 5 property).
//!
//! Because solves read frozen level-start state and commits land in a
//! fixed order, the executed result is **bit-identical to serial
//! application at any thread count** — parallelism changes *when* a solve
//! runs, never *what* it reads or the order its result is merged.

use ides_linalg::Matrix;

/// Minimum absorb nodes per spawned thread before a level's solve phase
/// fans out under the automatic (`threads = None`) policy. One absorb
/// solve is a couple of `O(d²)` back-substitutions — a few microseconds —
/// while a scoped-thread spawn costs tens; below this grain parallelism
/// is a pure loss and the level runs serial (bit-identical either way).
const MIN_ABSORBS_PER_THREAD: usize = 32;

/// Minimum rejoin nodes per spawned thread under the automatic policy;
/// same reasoning as [`MIN_ABSORBS_PER_THREAD`] with the per-node cost of
/// one cached-Gram host join.
const MIN_REJOINS_PER_THREAD: usize = 256;

/// Effective thread count for a level of `n` nodes: the ambient cap,
/// clamped so each thread gets at least `min_per_thread` nodes.
fn auto_fanout(n: usize, cap: usize, min_per_thread: usize) -> usize {
    cap.min(n / min_per_thread).max(1)
}

use super::dag::{EpochDag, EpochOp, Observed, PlanStats};
use super::{AbsorbSolution, EpochOutcome, EpochUpdate, RefreshStrategy, StreamingServer};
use crate::error::{IdesError, Result};
use crate::eval::{eval_threads, map_shards_with, shard_ranges};
use crate::projection::BatchHostVectors;

/// The ordinary-host side of a planned epoch: the full measurement tables
/// and the coordinate cache whose affected rows the plan's rejoin nodes
/// refresh in place.
#[derive(Debug)]
pub struct RejoinTables<'a> {
    /// Hosts whose own measurements drifted this epoch (rows of the
    /// measurement matrices); each becomes one rejoin node.
    pub hosts: &'a [usize],
    /// Full `hosts x k` outgoing measurement matrix.
    pub d_out: &'a Matrix,
    /// Full `hosts x k` incoming measurement matrix.
    pub d_in: &'a Matrix,
    /// Cached coordinate table; only rows in `hosts` are rewritten.
    pub coords: &'a mut BatchHostVectors,
}

impl StreamingServer {
    /// Ingests one epoch of measurement deltas and maintains the model
    /// through a planned dependency DAG: absorb/refresh nodes per the
    /// staleness policy, plus one rejoin node per host in `rejoin` (when
    /// given).
    ///
    /// `threads = None` is the production policy: the ambient
    /// `IDES_LINALG_THREADS`-resolved cap, with per-level fan-out
    /// clamped by work size (`MIN_ABSORBS_PER_THREAD` /
    /// `MIN_REJOINS_PER_THREAD`) so levels too small to amortize a
    /// thread spawn run serial. `Some(t)` executes with exactly `t`
    /// threads, no heuristic — the determinism suites use it to force
    /// real fan-out at small scale. Either way the committed state is
    /// **bit-identical to `threads = Some(1)`** — see the executor
    /// module docs for the phase structure that guarantees it.
    ///
    /// Returns the epoch outcome together with the executed plan's
    /// [`PlanStats`].
    pub fn apply_epoch_planned(
        &mut self,
        update: &EpochUpdate,
        rejoin: Option<RejoinTables<'_>>,
        threads: Option<usize>,
    ) -> Result<(EpochOutcome, PlanStats)> {
        let k = self.landmark_count();
        for d in &update.deltas {
            if d.from >= k || d.to >= k {
                return Err(IdesError::InvalidInput(format!(
                    "delta ({}, {}) out of range for {k} landmarks",
                    d.from, d.to
                )));
            }
            if !d.rtt.is_finite() || d.rtt < 0.0 {
                return Err(IdesError::InvalidInput(format!(
                    "invalid RTT {} for delta ({}, {})",
                    d.rtt, d.from, d.to
                )));
            }
        }
        if let Some(r) = &rejoin {
            if r.coords.len() != r.d_out.rows() || r.coords.dim() != self.dim() {
                return Err(IdesError::InvalidInput(format!(
                    "coordinate table is {}x{}, expected {}x{}",
                    r.coords.len(),
                    r.coords.dim(),
                    r.d_out.rows(),
                    self.dim()
                )));
            }
            if let Some(&bad) = r.hosts.iter().find(|&&h| h >= r.d_out.rows()) {
                return Err(IdesError::InvalidInput(format!(
                    "affected host {bad} out of range for {} hosts",
                    r.d_out.rows()
                )));
            }
        }
        let auto = threads.is_none();
        let threads = threads.unwrap_or_else(eval_threads).max(1);

        // Apply the deltas and collect the touched landmarks in sorted
        // order (deterministic absorb order).
        let mut changed: Vec<usize> = Vec::new();
        for d in &update.deltas {
            self.landmarks[(d.from, d.to)] = d.rtt;
            changed.push(d.from);
            changed.push(d.to);
        }
        changed.sort_unstable();
        changed.dedup();
        self.epoch = update.epoch;

        let deviation = self.deviation();
        let refreshed = deviation > self.policy.deviation_threshold;

        // Plan: one refresh barrier or one absorb per changed landmark,
        // then one full-measurement rejoin per affected host.
        let mut ops: Vec<EpochOp> = Vec::new();
        if refreshed {
            ops.push(EpochOp::Refresh);
        } else {
            ops.extend(changed.iter().map(|&l| EpochOp::Absorb { landmark: l }));
        }
        if let Some(r) = &rejoin {
            ops.extend(r.hosts.iter().map(|&h| EpochOp::Rejoin {
                host: h,
                observed: Observed::All,
            }));
        }
        let dag = EpochDag::build(k, ops);
        let stats = dag.stats();

        let mut rejoin = rejoin;
        for level in dag.levels() {
            self.execute_level(&dag, level, rejoin.as_mut(), threads, auto)?;
        }

        let absorbed = if refreshed { 0 } else { changed.len() };
        let sweeps = if refreshed {
            self.policy.sweep_budget
        } else {
            0
        };
        Ok((
            EpochOutcome {
                epoch: update.epoch,
                applied: update.deltas.len(),
                absorbed,
                deviation,
                refreshed,
                sweeps,
            },
            stats,
        ))
    }

    /// Executes one antichain: parallel absorb solves, serial in-order
    /// commits, then the level's rejoins. With `auto` set, each phase's
    /// fan-out is clamped by its node count so undersized levels skip the
    /// thread spawns entirely.
    fn execute_level(
        &mut self,
        dag: &EpochDag,
        level: &[usize],
        rejoin: Option<&mut RejoinTables<'_>>,
        threads: usize,
        auto: bool,
    ) -> Result<()> {
        let mut absorbs: Vec<usize> = Vec::new();
        let mut hosts: Vec<usize> = Vec::new();
        let mut refresh = false;
        for &node in level {
            match &dag.ops()[node] {
                EpochOp::Absorb { landmark } => absorbs.push(*landmark),
                EpochOp::Rejoin { host, .. } => hosts.push(*host),
                EpochOp::Refresh => refresh = true,
            }
        }
        if refresh {
            self.refresh()?;
        }
        if !absorbs.is_empty() {
            let t = if auto {
                auto_fanout(absorbs.len(), threads, MIN_ABSORBS_PER_THREAD)
            } else {
                threads
            };
            self.absorb_level(&absorbs, t)?;
        }
        if !hosts.is_empty() {
            let t = if auto {
                auto_fanout(hosts.len(), threads, MIN_REJOINS_PER_THREAD)
            } else {
                threads
            };
            let r = rejoin.expect("plan contains rejoin nodes only when tables were given");
            self.rejoin_hosts_with(&hosts, r.d_out, r.d_in, r.coords, t)?;
        }
        Ok(())
    }

    /// One level's absorbs: solve every landmark's new factor rows against
    /// the frozen level-start state (parallel over the detached scratch
    /// pool — each solve reads `&self` only), then commit them serially in
    /// node order. A width-1 level degenerates to exactly the serial
    /// solve-then-commit sequence, so the staged schedule *is* the serial
    /// semantics, not an approximation of it.
    fn absorb_level(&mut self, landmarks: &[usize], threads: usize) -> Result<()> {
        // Detach the solution pool so the solve phase can borrow `self`
        // shared while writing into per-node buffers.
        let mut pool = std::mem::take(&mut self.scratch.pool);
        if pool.len() < landmarks.len() {
            pool.resize_with(landmarks.len(), AbsorbSolution::default);
        }
        let solve_result: Result<()> = if threads <= 1 || landmarks.len() <= 1 {
            landmarks
                .iter()
                .zip(pool.iter_mut())
                .try_for_each(|(&l, sol)| self.solve_absorb(l, sol))
        } else {
            let ranges = shard_ranges(landmarks.len(), threads);
            let mut chunks: Vec<(&[usize], &mut [AbsorbSolution])> = Vec::new();
            let mut rest_l = landmarks;
            let mut rest_p = &mut pool[..landmarks.len()];
            for &(lo, hi) in &ranges {
                let (lhs_l, rhs_l) = rest_l.split_at(hi - lo);
                let (lhs_p, rhs_p) = std::mem::take(&mut rest_p).split_at_mut(hi - lo);
                chunks.push((lhs_l, lhs_p));
                rest_l = rhs_l;
                rest_p = rhs_p;
            }
            let mut slots: Vec<Option<Result<()>>> = Vec::new();
            slots.resize_with(chunks.len(), || None);
            std::thread::scope(|scope| {
                for (slot, (ls, sols)) in slots.iter_mut().zip(chunks) {
                    let server = &*self;
                    scope.spawn(move || {
                        *slot = Some(
                            ls.iter()
                                .zip(sols.iter_mut())
                                .try_for_each(|(&l, sol)| server.solve_absorb(l, sol)),
                        );
                    });
                }
            });
            slots
                .into_iter()
                .try_for_each(|s| s.expect("every solve thread ran"))
        };
        // Commit in node order even if a solve failed part-way: nothing
        // was committed yet, so an error leaves the level unapplied.
        let commit_result = solve_result.and_then(|()| {
            landmarks
                .iter()
                .zip(pool.iter())
                .try_for_each(|(&l, sol)| self.commit_absorb(l, sol))
        });
        // Restore the pool (with its grown high-water capacity) before
        // surfacing any error.
        self.scratch.pool = pool;
        commit_result
    }

    /// Solve phase of one absorb: recompute landmark `l`'s outgoing and
    /// incoming factor rows against the current (level-start) factors —
    /// via the cached Grams for ALS-family servers (`O(k d)` right-hand
    /// sides, `O(d²)` per solve), via ridge-augmented NNLS for NMF-family
    /// servers so factors stay nonnegative between refreshes. Reads
    /// `&self` only; the arithmetic is exactly the pre-DAG serial absorb's
    /// solve sequence.
    fn solve_absorb(&self, l: usize, sol: &mut AbsorbSolution) -> Result<()> {
        let d = self.dim();
        let k = self.landmark_count();
        sol.col.clear();
        sol.col.extend((0..k).map(|i| self.landmarks[(i, l)]));
        if matches!(self.refit, RefreshStrategy::Nmf(_)) {
            // NNLS absorb tier: min ‖Y x − D[l, :]‖ + λ‖x‖² s.t. x ≥ 0
            // (and the mirrored incoming problem). The ridge is applied
            // the standard way — augmenting the design with √λ·I rows —
            // so the policy's λ knob binds this tier exactly like the
            // cached-Gram solves of the ALS branch. Lawson–Hanson
            // allocates its active-set scratch, so NMF absorbs trade the
            // zero-allocation property for the nonnegativity guarantee.
            let ridge = self.policy.ridge;
            sol.new_x.clear();
            sol.new_x.extend(super::nnls_ridge(
                self.model.y(),
                self.landmarks.row(l),
                ridge,
            )?);
            sol.new_y.clear();
            sol.new_y
                .extend(super::nnls_ridge(self.model.x(), &sol.col, ridge)?);
        } else {
            // New outgoing row: solve (YᵀY + λI) x = Yᵀ D[l, :].
            sol.new_x.clear();
            sol.new_x.resize(d, 0.0);
            self.model
                .y()
                .tr_matvec_into(self.landmarks.row(l), &mut sol.new_x)?;
            self.gram_y.solve_in_place(&mut sol.new_x)?;
            // New incoming row: solve (XᵀX + λI) y = Xᵀ D[:, l].
            sol.new_y.clear();
            sol.new_y.resize(d, 0.0);
            self.model.x().tr_matvec_into(&sol.col, &mut sol.new_y)?;
            self.gram_x.solve_in_place(&mut sol.new_y)?;
        }
        Ok(())
    }

    /// Commit phase of one absorb: swap the solved rows into the model and
    /// let the Grams absorb the change surgically; a failed downdate (mass
    /// loss beyond what the factor holds) falls back to one
    /// refactorization. Commits run serially in ascending node order —
    /// the deterministic merge.
    fn commit_absorb(&mut self, l: usize, sol: &AbsorbSolution) -> Result<()> {
        let ws = &mut self.scratch;
        ws.old_x.clear();
        ws.old_x.extend_from_slice(self.model.outgoing(l));
        ws.old_y.clear();
        ws.old_y.extend_from_slice(self.model.incoming(l));
        self.model.set_outgoing(l, &sol.new_x);
        self.model.set_incoming(l, &sol.new_y);
        let surgically = self
            .gram_y
            .replace_row(&self.scratch.old_y, &sol.new_y)
            .and_then(|()| self.gram_x.replace_row(&self.scratch.old_x, &sol.new_x));
        if surgically.is_err() {
            self.refactor_grams()?;
            self.gram_refactors += 1;
        }
        self.absorbed_total += 1;
        Ok(())
    }

    /// Re-joins `hosts` through the cached join path with an explicit
    /// shard count: per-host rows are computed independently and scattered
    /// in host order, so the result is bit-identical at any `threads`.
    pub(crate) fn rejoin_hosts_with(
        &self,
        hosts: &[usize],
        d_out: &Matrix,
        d_in: &Matrix,
        coords: &mut BatchHostVectors,
        threads: usize,
    ) -> Result<()> {
        let shards = map_shards_with(hosts, threads, |shard, _offset| {
            let mut batch = BatchHostVectors::new();
            self.join_batch_cached(
                &d_out.select_rows(shard),
                &d_in.select_rows(shard),
                &mut batch,
            )?;
            Ok(batch)
        })?;
        let mut cursor = 0usize;
        for batch in &shards {
            for i in 0..batch.len() {
                coords.set_host(hosts[cursor], batch.outgoing(i), batch.incoming(i));
                cursor += 1;
            }
        }
        Ok(())
    }
}
