//! Level-by-level executor for planned epochs.
//!
//! [`StreamingServer::apply_epoch_planned`] turns one epoch's update
//! batch into [`dag::EpochOp`]s, plans them with [`dag::EpochDag::build`],
//! and executes the plan as two tiers:
//!
//! 1. **Absorb tier** (the model-mutating half): each antichain level's
//!    absorb nodes solve their new factor rows in parallel against the
//!    level-start model and Grams — pure `&self` reads into a detached
//!    scratch pool — then commit serially in ascending node order
//!    (row swap + rank-1 Gram surgery), exactly the order a width-1
//!    serial plan commits in. Refresh barriers run alone at their level.
//! 2. **Rejoin tier** (the coordinate-writing half,
//!    [`run_rejoin_tier`]): the epoch's host rejoins run after every
//!    absorb has committed. Full-measurement hosts go through the cached
//!    join path, sharded with [`crate::eval::map_shards_with`]; hosts
//!    with **partial observed sets** are grouped by identical subset and
//!    solved through [`crate::projection::join_hosts_subset_into`] — one
//!    gathered factorization per distinct subset, executed serially so
//!    the arithmetic never depends on the thread count.
//!
//! Running the whole rejoin tier after the whole absorb tier is bitwise
//! identical to level-interleaved execution: rejoins only *read* the
//! model and only *write* the coordinate table, absorbs never read
//! coordinates, and a subset rejoin planned below an absorb's level
//! observes none of the epoch's absorbed rows — its gathered reference
//! rows are the same bytes before and after the absorb commits. This
//! tier split is also what the cross-epoch pipeline
//! ([`StreamingServer::apply_epochs_pipelined`]) overlaps: epoch `N`'s
//! rejoin tier runs against a frozen end-of-epoch model clone while
//! epoch `N+1`'s absorb tier mutates the live server.
//!
//! **Pruning.** When the caller attests the coordinate table already
//! reflects the current model (`RejoinTables::coords_current`), a
//! partial-subset host whose subset contains no landmark this epoch
//! touched is *elided*: recomputing its row would read only unchanged
//! reference rows and unchanged measurements, reproducing the stored
//! bytes. Elided hosts are counted in [`PlanStats::pruned`].
//!
//! Because solves read frozen level-start state and commits land in a
//! fixed order, the executed result is **bit-identical to serial
//! application at any thread count** — parallelism changes *when* a solve
//! runs, never *what* it reads or the order its result is merged.
//!
//! [`StreamingServer::apply_epochs_pipelined`]: StreamingServer::apply_epochs_pipelined

use std::collections::BTreeMap;

use ides_linalg::Matrix;

/// Minimum absorb nodes per spawned thread before a level's solve phase
/// fans out under the automatic (`threads = None`) policy. One absorb
/// solve is a couple of `O(d²)` back-substitutions — a few microseconds —
/// while a scoped-thread spawn costs tens; below this grain parallelism
/// is a pure loss and the level runs serial (bit-identical either way).
const MIN_ABSORBS_PER_THREAD: usize = 32;

/// Minimum rejoin nodes per spawned thread under the automatic policy;
/// same reasoning as [`MIN_ABSORBS_PER_THREAD`] with the per-node cost of
/// one cached-Gram host join.
const MIN_REJOINS_PER_THREAD: usize = 256;

/// Effective thread count for a level of `n` nodes: the ambient cap,
/// clamped so each thread gets at least `min_per_thread` nodes.
fn auto_fanout(n: usize, cap: usize, min_per_thread: usize) -> usize {
    cap.min(n / min_per_thread).max(1)
}

use super::dag::{EpochDag, EpochOp, Observed, PlanStats};
use super::{
    cached_join_into, AbsorbSolution, EpochOutcome, EpochUpdate, RefreshStrategy, RejoinCtx,
    StreamingServer,
};
use crate::error::{IdesError, Result};
use crate::eval::{eval_threads, map_shards_with, shard_ranges};
use crate::projection::{
    join_hosts_subset_into, BatchHostVectors, JoinOptions, JoinSolver, JoinWorkspace,
};
use crate::telemetry as tm;

/// The ordinary-host side of a planned epoch: the full measurement tables
/// and the coordinate cache whose affected rows the plan's rejoin nodes
/// refresh in place.
#[derive(Debug)]
pub struct RejoinTables<'a> {
    /// Hosts whose own measurements drifted this epoch (rows of the
    /// measurement matrices); each becomes one rejoin node.
    pub hosts: &'a [usize],
    /// Full `hosts x k` outgoing measurement matrix.
    pub d_out: &'a Matrix,
    /// Full `hosts x k` incoming measurement matrix.
    pub d_in: &'a Matrix,
    /// Cached coordinate table; only rows in `hosts` are rewritten.
    pub coords: &'a mut BatchHostVectors,
    /// Per-host observed-landmark subsets, parallel to `hosts`: the §6.2
    /// partial-measurement metadata that makes the plan dependency-exact.
    /// `None` means every host measured every landmark ([`Observed::All`]
    /// rejoin nodes — the conservative PR-8 plan). A host whose deduped
    /// subset covers all `k` landmarks routes through the cached full
    /// join, bitwise identical to the `None` case.
    pub observed: Option<&'a [Vec<usize>]>,
    /// Caller's attestation that `coords` already holds each partial-
    /// subset host's subset-join output against the **current** model
    /// (true after any epoch that rejoined them, e.g. a priming epoch).
    /// When set, partial hosts observing no landmark this epoch touched
    /// are elided — their recompute would be a bitwise no-op. Full-join
    /// hosts are never elided (the cached path reads the whole model).
    pub coords_current: bool,
}

impl<'a> RejoinTables<'a> {
    /// Tables for hosts that measured every landmark: no observed-set
    /// metadata, no currency attestation — the conservative plan.
    pub fn full(
        hosts: &'a [usize],
        d_out: &'a Matrix,
        d_in: &'a Matrix,
        coords: &'a mut BatchHostVectors,
    ) -> Self {
        RejoinTables {
            hosts,
            d_out,
            d_in,
            coords,
            observed: None,
            coords_current: false,
        }
    }

    /// The planner's read-only view of these tables. It carries the
    /// coordinate table's *shape* but no reference to its bytes, so the
    /// pipeline can plan epoch `N+1` on the main thread while epoch `N`'s
    /// rejoin tier still holds the mutable coordinate borrow.
    pub(crate) fn plan_view(&self) -> RejoinPlanView<'a> {
        RejoinPlanView {
            hosts: self.hosts,
            observed: self.observed,
            coords_current: self.coords_current,
            coords_rows: self.coords.len(),
            coords_dim: self.coords.dim(),
            meas_rows: self.d_out.rows(),
        }
    }
}

/// Everything [`StreamingServer::plan_epoch`] needs from the rejoin
/// tables: the host list, the observed-set metadata, the currency
/// attestation, and the coordinate/measurement shapes for validation.
/// The references borrow the caller's slices (`'a`), **not** the
/// `RejoinTables` struct — planning never aliases the coordinate bytes a
/// concurrent rejoin tier is writing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RejoinPlanView<'a> {
    pub hosts: &'a [usize],
    pub observed: Option<&'a [Vec<usize>]>,
    pub coords_current: bool,
    pub coords_rows: usize,
    pub coords_dim: usize,
    pub meas_rows: usize,
}

/// How the rejoin tier reaches each planned host: full-measurement hosts
/// take the sharded cached-join path, partial-subset hosts are grouped by
/// identical (deduped, sorted) subset for one gathered factorization per
/// group, and pruned hosts were elided at plan time.
#[derive(Debug, Default)]
pub(crate) struct RejoinRoute {
    /// Hosts joining through every landmark (cached full join), in input
    /// order.
    pub full: Vec<usize>,
    /// `(subset, member hosts)` per distinct partial subset, in subset
    /// order (deterministic `BTreeMap` grouping); members in input order.
    pub groups: Vec<(Vec<usize>, Vec<usize>)>,
    /// Hosts elided because their subset misses every landmark this epoch
    /// touched while `coords_current` attested their rows were current.
    pub pruned: usize,
}

/// One planned epoch, ready to execute: the leveled DAG, its shape
/// statistics (pruning accounted), the rejoin routing, and the outcome
/// the caller reports. Produced by [`StreamingServer::plan_epoch`] with
/// the deltas already applied to the measurement matrix.
#[derive(Debug)]
pub(crate) struct PlannedEpoch {
    pub dag: EpochDag,
    pub stats: PlanStats,
    pub route: RejoinRoute,
    pub outcome: EpochOutcome,
}

impl StreamingServer {
    /// Ingests one epoch of measurement deltas and maintains the model
    /// through a planned dependency DAG: absorb/refresh nodes per the
    /// staleness policy, plus one rejoin node per host in `rejoin` (when
    /// given).
    ///
    /// `threads = None` is the production policy: the ambient
    /// `IDES_LINALG_THREADS`-resolved cap, with per-level fan-out
    /// clamped by work size (`MIN_ABSORBS_PER_THREAD` /
    /// `MIN_REJOINS_PER_THREAD`) so levels too small to amortize a
    /// thread spawn run serial. `Some(t)` executes with exactly `t`
    /// threads, no heuristic — the determinism suites use it to force
    /// real fan-out at small scale. Either way the committed state is
    /// **bit-identical to `threads = Some(1)`** — see the executor
    /// module docs for the phase structure that guarantees it.
    ///
    /// Returns the epoch outcome together with the executed plan's
    /// [`PlanStats`].
    pub fn apply_epoch_planned(
        &mut self,
        update: &EpochUpdate,
        rejoin: Option<RejoinTables<'_>>,
        threads: Option<usize>,
    ) -> Result<(EpochOutcome, PlanStats)> {
        let auto = threads.is_none();
        let threads = threads.unwrap_or_else(eval_threads).max(1);
        let mut rejoin = rejoin;
        let view = rejoin.as_ref().map(|r| r.plan_view());
        let planned = self.plan_epoch(update, view.as_ref())?;
        self.run_absorb_tier(&planned, threads, auto)?;
        if let Some(r) = rejoin.as_mut() {
            run_rejoin_tier(
                &self.rejoin_ctx(),
                &planned.route,
                r.d_out,
                r.d_in,
                r.coords,
                threads,
                auto,
            )?;
        }
        Ok((planned.outcome, planned.stats))
    }

    /// Validates one epoch's inputs, applies its deltas to the landmark
    /// matrix, picks the maintenance tier per Gram row, and plans the
    /// dependency DAG plus the rejoin routing. Mutates only the
    /// measurement matrix and the epoch stamp — the model-changing work
    /// is [`StreamingServer::run_absorb_tier`] and the coordinate-writing
    /// work [`run_rejoin_tier`], so the pipeline can stage them.
    pub(crate) fn plan_epoch(
        &mut self,
        update: &EpochUpdate,
        rejoin: Option<&RejoinPlanView<'_>>,
    ) -> Result<PlannedEpoch> {
        let _span = tm::span(tm::Stage::Plan);
        let k = self.landmark_count();
        for d in &update.deltas {
            if d.from >= k || d.to >= k {
                return Err(IdesError::InvalidInput(format!(
                    "delta ({}, {}) out of range for {k} landmarks",
                    d.from, d.to
                )));
            }
            if !d.rtt.is_finite() || d.rtt < 0.0 {
                return Err(IdesError::InvalidInput(format!(
                    "invalid RTT {} for delta ({}, {})",
                    d.rtt, d.from, d.to
                )));
            }
        }
        if let Some(r) = rejoin {
            if r.coords_rows != r.meas_rows || r.coords_dim != self.dim() {
                return Err(IdesError::InvalidInput(format!(
                    "coordinate table is {}x{}, expected {}x{}",
                    r.coords_rows,
                    r.coords_dim,
                    r.meas_rows,
                    self.dim()
                )));
            }
            if let Some(&bad) = r.hosts.iter().find(|&&h| h >= r.meas_rows) {
                return Err(IdesError::InvalidInput(format!(
                    "affected host {bad} out of range for {} hosts",
                    r.meas_rows
                )));
            }
            if let Some(obs) = r.observed {
                if obs.len() != r.hosts.len() {
                    return Err(IdesError::InvalidInput(format!(
                        "{} observed sets for {} rejoin hosts",
                        obs.len(),
                        r.hosts.len()
                    )));
                }
            }
        }

        // Apply the deltas and collect the touched landmarks in sorted
        // order (deterministic absorb order).
        let mut changed: Vec<usize> = Vec::new();
        for d in &update.deltas {
            self.landmarks[(d.from, d.to)] = d.rtt;
            changed.push(d.from);
            changed.push(d.to);
        }
        changed.sort_unstable();
        changed.dedup();
        self.epoch = update.epoch;

        // Per-row tier gate: refresh only when more hot Gram rows than
        // the policy's fraction allows — one badly drifted landmark is
        // absorbed, never a whole-model barrier.
        let deviation = self.deviation();
        let hot_rows = self.hot_landmarks();
        let refreshed = hot_rows as f64 > self.policy.refresh_row_fraction * k as f64;

        // Plan: one refresh barrier or one absorb per changed landmark,
        // then one rejoin per (non-elided) affected host.
        let mut ops: Vec<EpochOp> = Vec::new();
        if refreshed {
            ops.push(EpochOp::Refresh);
        } else {
            ops.extend(changed.iter().map(|&l| EpochOp::Absorb { landmark: l }));
        }
        let mut route = RejoinRoute::default();
        if let Some(r) = rejoin {
            match r.observed {
                None => {
                    ops.extend(r.hosts.iter().map(|&h| EpochOp::Rejoin {
                        host: h,
                        observed: Observed::All,
                    }));
                    route.full.extend_from_slice(r.hosts);
                }
                Some(subsets) => {
                    let mut groups: BTreeMap<Vec<usize>, Vec<usize>> = BTreeMap::new();
                    for (&h, raw) in r.hosts.iter().zip(subsets) {
                        let mut s = raw.clone();
                        s.sort_unstable();
                        s.dedup();
                        if let Some(&bad) = s.last().filter(|&&l| l >= k) {
                            return Err(IdesError::InvalidInput(format!(
                                "host {h} observes landmark {bad}, out of range for {k}"
                            )));
                        }
                        if s.is_empty() {
                            return Err(IdesError::InvalidInput(format!(
                                "host {h} has an empty observed set"
                            )));
                        }
                        if s.len() == k {
                            // Full coverage: the cached full join, bitwise
                            // identical to the Observed::All plan.
                            ops.push(EpochOp::Rejoin {
                                host: h,
                                observed: Observed::All,
                            });
                            route.full.push(h);
                        } else if r.coords_current
                            && !refreshed
                            && s.iter().all(|l| changed.binary_search(l).is_err())
                        {
                            // No observed landmark changed and the stored
                            // row is current: recompute is a bitwise no-op.
                            route.pruned += 1;
                        } else {
                            ops.push(EpochOp::Rejoin {
                                host: h,
                                observed: Observed::Subset(s.clone()),
                            });
                            groups.entry(s).or_default().push(h);
                        }
                    }
                    route.groups = groups.into_iter().collect();
                }
            }
        }
        let dag = EpochDag::build(k, ops);
        let mut stats = dag.stats();
        // Elided rejoins never reach the DAG; fold their worst-case
        // Observed::All edges (one per absorb) into the denominator and
        // their count into `pruned`.
        stats.pruned = route.pruned;
        stats.full_edges += route.pruned * changed.len();

        let absorbed = if refreshed { 0 } else { changed.len() };
        let sweeps = if refreshed {
            self.policy.sweep_budget
        } else {
            0
        };
        Ok(PlannedEpoch {
            dag,
            stats,
            route,
            outcome: EpochOutcome {
                epoch: update.epoch,
                applied: update.deltas.len(),
                absorbed,
                deviation,
                hot_rows,
                refreshed,
                sweeps,
            },
        })
    }

    /// The model-mutating half of a planned epoch: every antichain
    /// level's absorb nodes (parallel solves, serial in-order commits)
    /// and refresh barriers, in level order. Rejoin nodes are skipped —
    /// they form the tier [`run_rejoin_tier`] executes afterwards (or
    /// the pipeline overlaps with the next epoch).
    pub(crate) fn run_absorb_tier(
        &mut self,
        planned: &PlannedEpoch,
        threads: usize,
        auto: bool,
    ) -> Result<()> {
        for level in planned.dag.levels() {
            let mut absorbs: Vec<usize> = Vec::new();
            let mut refresh = false;
            for &node in level {
                match &planned.dag.ops()[node] {
                    EpochOp::Absorb { landmark } => absorbs.push(*landmark),
                    EpochOp::Rejoin { .. } => {}
                    EpochOp::Refresh => refresh = true,
                }
            }
            if refresh {
                let _span = tm::span(tm::Stage::Refresh);
                self.refresh()?;
            }
            if !absorbs.is_empty() {
                let t = if auto {
                    auto_fanout(absorbs.len(), threads, MIN_ABSORBS_PER_THREAD)
                } else {
                    threads
                };
                self.absorb_level(&absorbs, t)?;
            }
        }
        Ok(())
    }

    /// One level's absorbs: solve every landmark's new factor rows against
    /// the frozen level-start state (parallel over the detached scratch
    /// pool — each solve reads `&self` only), then commit them serially in
    /// node order. A width-1 level degenerates to exactly the serial
    /// solve-then-commit sequence, so the staged schedule *is* the serial
    /// semantics, not an approximation of it.
    fn absorb_level(&mut self, landmarks: &[usize], threads: usize) -> Result<()> {
        // Detach the solution pool so the solve phase can borrow `self`
        // shared while writing into per-node buffers.
        let mut pool = std::mem::take(&mut self.scratch.pool);
        if pool.len() < landmarks.len() {
            pool.resize_with(landmarks.len(), AbsorbSolution::default);
        }
        let solve_span = tm::span(tm::Stage::AbsorbSolve);
        let solve_result: Result<()> = if threads <= 1 || landmarks.len() <= 1 {
            landmarks
                .iter()
                .zip(pool.iter_mut())
                .try_for_each(|(&l, sol)| self.solve_absorb(l, sol))
        } else {
            let ranges = shard_ranges(landmarks.len(), threads);
            let mut chunks: Vec<(&[usize], &mut [AbsorbSolution])> = Vec::new();
            let mut rest_l = landmarks;
            let mut rest_p = &mut pool[..landmarks.len()];
            for &(lo, hi) in &ranges {
                let (lhs_l, rhs_l) = rest_l.split_at(hi - lo);
                let (lhs_p, rhs_p) = std::mem::take(&mut rest_p).split_at_mut(hi - lo);
                chunks.push((lhs_l, lhs_p));
                rest_l = rhs_l;
                rest_p = rhs_p;
            }
            let mut slots: Vec<Option<Result<()>>> = Vec::new();
            slots.resize_with(chunks.len(), || None);
            std::thread::scope(|scope| {
                for (slot, (ls, sols)) in slots.iter_mut().zip(chunks) {
                    let server = &*self;
                    scope.spawn(move || {
                        *slot = Some(
                            ls.iter()
                                .zip(sols.iter_mut())
                                .try_for_each(|(&l, sol)| server.solve_absorb(l, sol)),
                        );
                    });
                }
            });
            slots
                .into_iter()
                .try_for_each(|s| s.expect("every solve thread ran"))
        };
        drop(solve_span);
        // Commit in node order even if a solve failed part-way: nothing
        // was committed yet, so an error leaves the level unapplied.
        let commit_result = solve_result.and_then(|()| {
            let _span = tm::span(tm::Stage::AbsorbCommit);
            landmarks
                .iter()
                .zip(pool.iter())
                .try_for_each(|(&l, sol)| self.commit_absorb(l, sol))
        });
        // Restore the pool (with its grown high-water capacity) before
        // surfacing any error.
        self.scratch.pool = pool;
        commit_result
    }

    /// Solve phase of one absorb: recompute landmark `l`'s outgoing and
    /// incoming factor rows against the current (level-start) factors —
    /// via the cached Grams for ALS-family servers (`O(k d)` right-hand
    /// sides, `O(d²)` per solve), via ridge-augmented NNLS for NMF-family
    /// servers so factors stay nonnegative between refreshes. Reads
    /// `&self` only; the arithmetic is exactly the pre-DAG serial absorb's
    /// solve sequence.
    fn solve_absorb(&self, l: usize, sol: &mut AbsorbSolution) -> Result<()> {
        let d = self.dim();
        let k = self.landmark_count();
        sol.col.clear();
        sol.col.extend((0..k).map(|i| self.landmarks[(i, l)]));
        if matches!(self.refit, RefreshStrategy::Nmf(_)) {
            // NNLS absorb tier: min ‖Y x − D[l, :]‖ + λ‖x‖² s.t. x ≥ 0
            // (and the mirrored incoming problem). The ridge is applied
            // the standard way — augmenting the design with √λ·I rows —
            // so the policy's λ knob binds this tier exactly like the
            // cached-Gram solves of the ALS branch. Lawson–Hanson
            // allocates its active-set scratch, so NMF absorbs trade the
            // zero-allocation property for the nonnegativity guarantee.
            let ridge = self.policy.ridge;
            sol.new_x.clear();
            sol.new_x.extend(super::nnls_ridge(
                self.model.y(),
                self.landmarks.row(l),
                ridge,
            )?);
            sol.new_y.clear();
            sol.new_y
                .extend(super::nnls_ridge(self.model.x(), &sol.col, ridge)?);
        } else {
            // New outgoing row: solve (YᵀY + λI) x = Yᵀ D[l, :].
            sol.new_x.clear();
            sol.new_x.resize(d, 0.0);
            self.model
                .y()
                .tr_matvec_into(self.landmarks.row(l), &mut sol.new_x)?;
            self.gram_y.solve_in_place(&mut sol.new_x)?;
            // New incoming row: solve (XᵀX + λI) y = Xᵀ D[:, l].
            sol.new_y.clear();
            sol.new_y.resize(d, 0.0);
            self.model.x().tr_matvec_into(&sol.col, &mut sol.new_y)?;
            self.gram_x.solve_in_place(&mut sol.new_y)?;
        }
        Ok(())
    }

    /// Commit phase of one absorb: swap the solved rows into the model and
    /// let the Grams absorb the change surgically; a failed downdate (mass
    /// loss beyond what the factor holds) falls back to one
    /// refactorization. Commits run serially in ascending node order —
    /// the deterministic merge.
    fn commit_absorb(&mut self, l: usize, sol: &AbsorbSolution) -> Result<()> {
        let ws = &mut self.scratch;
        ws.old_x.clear();
        ws.old_x.extend_from_slice(self.model.outgoing(l));
        ws.old_y.clear();
        ws.old_y.extend_from_slice(self.model.incoming(l));
        self.model.set_outgoing(l, &sol.new_x);
        self.model.set_incoming(l, &sol.new_y);
        let surgically = self
            .gram_y
            .replace_row(&self.scratch.old_y, &sol.new_y)
            .and_then(|()| self.gram_x.replace_row(&self.scratch.old_x, &sol.new_x));
        if surgically.is_err() {
            self.refactor_grams()?;
            self.gram_refactors += 1;
        }
        self.absorbed_total += 1;
        Ok(())
    }

    /// Re-joins `hosts` through the cached join path with an explicit
    /// shard count: per-host rows are computed independently and scattered
    /// in host order, so the result is bit-identical at any `threads`.
    pub(crate) fn rejoin_hosts_with(
        &self,
        hosts: &[usize],
        d_out: &Matrix,
        d_in: &Matrix,
        coords: &mut BatchHostVectors,
        threads: usize,
    ) -> Result<()> {
        rejoin_full_hosts(&self.rejoin_ctx(), hosts, d_out, d_in, coords, threads)
    }
}

/// Executes one planned epoch's rejoin tier against an explicit
/// [`RejoinCtx`] — the live server's borrowed state on the barriered
/// path, a frozen end-of-epoch clone on the pipelined path (bitwise
/// identical either way: clones are exact byte copies and the arithmetic
/// reads nothing else).
pub(crate) fn run_rejoin_tier(
    ctx: &RejoinCtx<'_>,
    route: &RejoinRoute,
    d_out: &Matrix,
    d_in: &Matrix,
    coords: &mut BatchHostVectors,
    threads: usize,
    auto: bool,
) -> Result<()> {
    let _span =
        (!route.full.is_empty() || !route.groups.is_empty()).then(|| tm::span(tm::Stage::Rejoin));
    if !route.full.is_empty() {
        let t = if auto {
            auto_fanout(route.full.len(), threads, MIN_REJOINS_PER_THREAD)
        } else {
            threads
        };
        rejoin_full_hosts(ctx, &route.full, d_out, d_in, coords, t)?;
    }
    rejoin_subset_groups(ctx, &route.groups, d_out, d_in, coords)
}

/// The cached-full-join leg of the rejoin tier: shard `hosts` over scoped
/// threads, compute each shard's rows through [`cached_join_into`], and
/// scatter in host order — bit-identical at any shard count.
fn rejoin_full_hosts(
    ctx: &RejoinCtx<'_>,
    hosts: &[usize],
    d_out: &Matrix,
    d_in: &Matrix,
    coords: &mut BatchHostVectors,
    threads: usize,
) -> Result<()> {
    let shards = map_shards_with(hosts, threads, |shard, _offset| {
        let mut batch = BatchHostVectors::new();
        cached_join_into(
            ctx,
            &d_out.select_rows(shard),
            &d_in.select_rows(shard),
            &mut batch,
        )?;
        Ok(batch)
    })?;
    let mut cursor = 0usize;
    for batch in &shards {
        for i in 0..batch.len() {
            coords.set_host(hosts[cursor], batch.outgoing(i), batch.incoming(i));
            cursor += 1;
        }
    }
    Ok(())
}

/// The partial-subset leg of the rejoin tier: one gathered factorization
/// per distinct observed subset (the §6.2 grouped join), executed
/// serially in subset order so the floating-point sequence never depends
/// on the thread count. Measurement columns are gathered from the full
/// tables in subset order; per-host arithmetic is independent of the
/// group's row count, so results are bit-identical to per-host subset
/// joins.
fn rejoin_subset_groups(
    ctx: &RejoinCtx<'_>,
    groups: &[(Vec<usize>, Vec<usize>)],
    d_out: &Matrix,
    d_in: &Matrix,
    coords: &mut BatchHostVectors,
) -> Result<()> {
    if groups.is_empty() {
        return Ok(());
    }
    let mut ws = JoinWorkspace::new();
    let mut g_out = Matrix::zeros(0, 0);
    let mut g_in = Matrix::zeros(0, 0);
    let mut batch = BatchHostVectors::new();
    let opts = JoinOptions {
        solver: JoinSolver::NormalEquations,
        ridge: ctx.ridge,
    };
    for (subset, members) in groups {
        g_out.reset_shape(members.len(), subset.len());
        g_in.reset_shape(members.len(), subset.len());
        for (r, &h) in members.iter().enumerate() {
            for (c, &l) in subset.iter().enumerate() {
                g_out[(r, c)] = d_out[(h, l)];
                g_in[(r, c)] = d_in[(h, l)];
            }
        }
        join_hosts_subset_into(
            &mut ws,
            ctx.model.x(),
            ctx.model.y(),
            subset,
            &g_out,
            &g_in,
            opts,
            &mut batch,
        )?;
        for (r, &h) in members.iter().enumerate() {
            coords.set_host(h, batch.outgoing(r), batch.incoming(r));
        }
    }
    Ok(())
}
