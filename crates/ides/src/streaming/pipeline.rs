//! Cross-epoch pipelined execution.
//!
//! [`StreamingServer::apply_epochs_pipelined`] drives a queue of epoch
//! updates through a two-stage hand-off that overlaps epoch `N`'s rejoin
//! tier with epoch `N+1`'s plan and absorb phases:
//!
//! ```text
//!   epoch N   : plan ── absorb tier ──┐ freeze model
//!   epoch N+1 :                       ├─ plan ── absorb tier (live server)
//!   (overlap)                         └─ rejoin tier N (frozen clone) ──▶ coords
//! ```
//!
//! The hand-off is sound — and **bitwise identical to back-to-back
//! serial epochs** — because the two stages touch disjoint state:
//!
//! * The rejoin tier reads only the factor model, the cached Grams, and
//!   the ridge, all captured in a [`FrozenModel`] **clone** taken at the
//!   end of epoch `N`'s absorb tier — exact byte copies, so the
//!   arithmetic matches a barriered rejoin against the live server at
//!   the same point.
//! * The rejoin tier writes only the caller's coordinate table; the
//!   planner reads the host list, observed-set metadata, and coordinate
//!   *shape* (via [`executor::RejoinPlanView`]) but never the coordinate
//!   bytes; the absorb tier reads and writes only the server (model,
//!   Grams, measurement matrix). No byte is shared.
//! * Rejoin tiers still execute in epoch order (one in flight at a
//!   time), so each host row holds exactly the bytes the serial schedule
//!   would have left.
//!
//! After the first epoch the driver marks the caller's tables
//! `coords_current`: every partial-subset host was either rejoined
//! against the epoch-end model or already current, which is the
//! invariant the planner's skip elision (see the executor docs) relies
//! on — localized drift then prunes untouched hosts from every later
//! epoch's plan.
//!
//! One **long-lived worker thread** serves every rejoin tier of a batch,
//! fed frozen models through a channel, rather than a scoped spawn per
//! epoch: the spawn cost (stack mapping, allocator-arena warm-up for the
//! gathered subset matrices) is paid once per batch instead of once per
//! epoch, which is what keeps the pipeline at parity even on a
//! single-core runner. Below
//! [`StalenessPolicy::min_pipeline_hosts`](super::StalenessPolicy::min_pipeline_hosts)
//! rejoin hosts even that amortized cost outweighs the overlap, so the
//! automatic thread policy runs such batches barriered (same bits; an
//! explicit thread count bypasses the clamp).

use std::sync::mpsc;

use super::dag::PlanStats;
use super::executor::{run_rejoin_tier, RejoinRoute};
use super::{EpochOutcome, EpochUpdate, RejoinTables, StreamingServer};
use crate::error::Result;
use crate::eval::eval_threads;
use crate::telemetry as tm;
use ides_linalg::solve::CachedGram;
use ides_mf::FactorModel;

/// What one pipelined run did: per-epoch outcomes and plan statistics in
/// input order, plus how many rejoin tiers actually overlapped a
/// successor's absorb tier (feeds the service's overlap fraction).
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// One `(outcome, stats)` per applied update, in input order —
    /// exactly what back-to-back [`StreamingServer::apply_epoch_planned`]
    /// calls would have returned.
    pub outcomes: Vec<(EpochOutcome, PlanStats)>,
    /// Epochs whose rejoin tier ran concurrently with the next epoch's
    /// absorb tier (`n - 1` for an `n`-epoch batch with rejoin tables;
    /// 0 without tables or for a single epoch).
    pub overlapped: usize,
}

/// The frozen end-of-epoch state a pipelined rejoin tier solves against
/// while the live server has already moved on: the factor model, both
/// cached join Grams, and the ridge — byte-exact clones, so the tier's
/// arithmetic is bit-identical to a barriered rejoin at the same point.
#[derive(Debug)]
struct FrozenModel {
    model: FactorModel,
    gram_x: CachedGram,
    gram_y: CachedGram,
    ridge: f64,
}

impl FrozenModel {
    fn ctx(&self) -> super::RejoinCtx<'_> {
        super::RejoinCtx {
            model: &self.model,
            gram_x: &self.gram_x,
            gram_y: &self.gram_y,
            ridge: self.ridge,
        }
    }
}

impl StreamingServer {
    /// Clones the rejoin-visible state at the current point — the
    /// pipeline's stage boundary.
    fn freeze(&self) -> FrozenModel {
        FrozenModel {
            model: self.model.clone(),
            gram_x: self.gram_x.clone(),
            gram_y: self.gram_y.clone(),
            ridge: self.policy.ridge,
        }
    }

    /// Applies `updates` in order with epoch `N`'s rejoin tier overlapped
    /// against epoch `N+1`'s absorb tier — output **bit-identical to
    /// back-to-back [`StreamingServer::apply_epoch_planned`] calls** with
    /// the same tables and thread count (see the module docs for the
    /// disjointness argument). `threads` follows the same `None` = auto /
    /// `Some(t)` = exact convention as the barriered entry point, applied
    /// to both concurrent stages.
    ///
    /// Without rejoin tables there is nothing to overlap and the epochs
    /// run back-to-back. With tables, `coords_current` is upgraded after
    /// the first epoch (the priming epoch establishes the skip-elision
    /// invariant), so localized-drift batches prune untouched partial-
    /// subset hosts from the second epoch on.
    ///
    /// Under the automatic thread policy, batches with fewer than
    /// [`StalenessPolicy::min_pipeline_hosts`] rejoin hosts skip the
    /// worker entirely and run barriered — the hand-off cost would
    /// exceed the overlap win (same bits, `overlapped` reports 0). An
    /// explicit thread count bypasses the clamp, which is how the
    /// determinism suites pipeline at test scale.
    ///
    /// [`StalenessPolicy::min_pipeline_hosts`]: super::StalenessPolicy::min_pipeline_hosts
    pub fn apply_epochs_pipelined(
        &mut self,
        updates: &[EpochUpdate],
        rejoin: Option<RejoinTables<'_>>,
        threads: Option<usize>,
    ) -> Result<PipelineReport> {
        let auto = threads.is_none();
        let t = threads.unwrap_or_else(eval_threads).max(1);
        let mut outcomes = Vec::with_capacity(updates.len());
        let mut rejoin = rejoin;
        let Some(tables) = rejoin.as_mut() else {
            // No coordinate table: the absorb tiers are the whole epochs.
            for u in updates {
                let prev = tm::set_epoch(u.epoch);
                let planned = self.plan_epoch(u, None)?;
                self.run_absorb_tier(&planned, t, auto)?;
                tm::set_epoch(prev);
                outcomes.push((planned.outcome, planned.stats));
            }
            return Ok(PipelineReport {
                outcomes,
                overlapped: 0,
            });
        };
        if updates.is_empty() {
            return Ok(PipelineReport {
                outcomes,
                overlapped: 0,
            });
        }
        // Captured once: the view holds the caller's slices and the
        // coordinate *shape*, never the coordinate bytes, so planning can
        // run while the worker holds the mutable coordinate borrow.
        let mut view = tables.plan_view();
        let d_out = tables.d_out;
        let d_in = tables.d_in;
        let coords = &mut *tables.coords;
        if auto && tables.hosts.len() < self.policy.min_pipeline_hosts {
            // Work-aware clamp (see `StalenessPolicy::min_pipeline_hosts`):
            // rejoin tiers this small can't amortize the worker spawn and
            // per-epoch hand-off, so run the same plan/absorb/rejoin
            // sequence barriered — bit-identical, including the
            // coords-current upgrade the skip elision relies on.
            for u in updates {
                let prev = tm::set_epoch(u.epoch);
                let planned = self.plan_epoch(u, Some(&view))?;
                self.run_absorb_tier(&planned, t, auto)?;
                run_rejoin_tier(
                    &self.rejoin_ctx(),
                    &planned.route,
                    d_out,
                    d_in,
                    coords,
                    t,
                    auto,
                )?;
                tm::set_epoch(prev);
                view.coords_current = true;
                outcomes.push((planned.outcome, planned.stats));
            }
            return Ok(PipelineReport {
                outcomes,
                overlapped: 0,
            });
        }
        let mut overlapped = 0usize;
        std::thread::scope(|scope| -> Result<()> {
            // One worker owns the coordinate table for the whole batch and
            // executes rejoin tiers in epoch order as frozen models arrive.
            let (job_tx, job_rx) = mpsc::channel::<(FrozenModel, RejoinRoute, f64)>();
            let (done_tx, done_rx) = mpsc::channel::<Result<()>>();
            scope.spawn(move || {
                // Each job carries its epoch so the worker's rejoin spans
                // are labeled with the epoch they solve, not the one the
                // main thread has moved on to.
                for (frozen, route, epoch) in job_rx {
                    tm::set_epoch(epoch);
                    let r = run_rejoin_tier(&frozen.ctx(), &route, d_out, d_in, coords, t, auto);
                    if done_tx.send(r).is_err() {
                        break;
                    }
                }
            });
            let mut in_flight = false;
            let mut drive = |overlapped: &mut usize,
                             outcomes: &mut Vec<(EpochOutcome, PlanStats)>|
             -> Result<()> {
                for u in updates {
                    // Stage hand-off: while the worker solves the previous
                    // epoch's rejoin tier against its frozen clone, the
                    // main thread plans this epoch and runs its absorb
                    // tier on the live server. The stages touch disjoint
                    // bytes (module docs), so the completion barrier
                    // below restores exactly the serial schedule's state.
                    let prev = tm::set_epoch(u.epoch);
                    let planned = self.plan_epoch(u, Some(&view))?;
                    self.run_absorb_tier(&planned, t, auto)?;
                    if in_flight {
                        done_rx.recv().expect("rejoin worker alive")?;
                        *overlapped += 1;
                    }
                    {
                        let _handoff = tm::span(tm::Stage::PipelineHandoff);
                        job_tx
                            .send((self.freeze(), planned.route, u.epoch))
                            .expect("rejoin worker alive");
                    }
                    tm::set_epoch(prev);
                    in_flight = true;
                    // Every partial-subset host is now rejoined-or-current
                    // once the in-flight tier lands; later plans may elide
                    // untouched hosts (their in-flight row, if any, is
                    // computed against a model whose observed rows later
                    // epochs leave unchanged).
                    view.coords_current = true;
                    outcomes.push((planned.outcome, planned.stats));
                }
                Ok(())
            };
            let driven = drive(&mut overlapped, &mut outcomes);
            // Close the queue on every path so the worker always exits
            // (the scope would otherwise deadlock joining it), then drain
            // the last tier's completion: it has no successor to overlap.
            drop(job_tx);
            let drained = if in_flight {
                done_rx.recv().expect("rejoin worker alive")
            } else {
                Ok(())
            };
            driven.and(drained)
        })?;
        Ok(PipelineReport {
            outcomes,
            overlapped,
        })
    }
}
