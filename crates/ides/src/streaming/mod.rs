//! Streaming coordinate maintenance under drift (deployment subsystem).
//!
//! IDES coordinates are computed once and reused; on the real Internet,
//! routes and congestion drift, so a long-running information server must
//! keep its landmark model fresh **without refitting from scratch** every
//! time a measurement changes. This module is that service layer:
//!
//! * [`UpdateQueue`] orders epoch-stamped [`EpochUpdate`] batches of
//!   landmark measurement deltas (fed, in the simulator, by
//!   `ides_netsim::drift::DriftStream` over the discrete-event queue).
//! * [`StreamingServer::apply_epoch`] ingests one batch and picks the
//!   cheapest maintenance tier under its [`StalenessPolicy`]:
//!   - **absorb** (drift-deviation at or below the threshold): each
//!     touched landmark's outgoing/incoming vectors are re-solved against
//!     the current factors — one cached-Gram solve each, `O(k d + d²)` —
//!     and the cached join factorizations absorb the changed factor rows
//!     by rank-1 Cholesky up/downdates
//!     ([`ides_linalg::solve::CachedGram::replace_row`], `O(d²)` instead
//!     of the `O(k d² + d³)` refactorization);
//!   - **refresh** (deviation above the threshold): a warm-start partial
//!     refit runs a bounded number of sweeps from the current factors —
//!     [`ides_mf::als::refine`] for ALS-family servers,
//!     [`ides_mf::nmf::refine`] for NMF-family ones
//!     ([`StreamingServer::with_nmf_config`]), both reusing the
//!     allocation-free workspaces of the batch fit — and the Grams are
//!     refactored once. See [`RefreshStrategy`].
//! * Joins keep being served from the cached factorizations with **no
//!   factorization on the query path**: [`StreamingServer::join_batch_cached`]
//!   is one GEMM plus two triangular solves per host — bit-identical to
//!   the one-shot batched normal-equation join whenever the caches hold a
//!   from-scratch factorization (build/refresh), within ~1e-9 after
//!   rank-1 surgery — and
//!   [`StreamingServer::rejoin_affected`] re-joins only the hosts whose
//!   own measurements drifted, sharded over scoped threads under the
//!   `parallel` feature (bit-identical at any shard count).
//!
//! The economics (see the `streaming_update` bench group): at 500 hosts a
//! full refit — cold ALS fit plus re-joining every host — costs well over
//! an order of magnitude more per epoch than absorbing the deltas and
//! re-joining only the affected hosts, while the accuracy stays within a
//! few percent of a fresh fit at drift amplitude 0.2 (the `streaming_update`
//! experiment binary measures the accuracy side).
//!
//! **Dependency-DAG epoch application.** An epoch's maintenance work is
//! planned as a dependency DAG ([`dag::EpochDag`]) and executed level by
//! level ([`StreamingServer::apply_epoch_planned`]): each antichain's
//! landmark solves run concurrently on scoped threads against the
//! level-start state, then commit serially in ascending node order —
//! bit-identical to serial application at any thread count, because
//! every solve's floating-point op sequence is independent of the
//! grouping and the commit (merge) order is fixed. See the [`dag`]
//! module docs for the dependency rules and the executor docs on
//! [`StreamingServer::apply_epoch_planned`] for the bit-identity
//! argument.

pub mod dag;
mod executor;
mod pipeline;

pub use executor::RejoinTables;
pub use pipeline::PipelineReport;

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ides_datasets::DistanceMatrix;
use ides_linalg::nnls::nnls;
use ides_linalg::solve::CachedGram;
use ides_linalg::Matrix;
use ides_mf::als::{self, AlsConfig};
use ides_mf::nmf::{self, NmfConfig};
use ides_mf::FactorModel;

use crate::error::{IdesError, Result};
use crate::projection::{BatchHostVectors, JoinOptions, JoinSolver};
use crate::system::{IdesConfig, InformationServer};

/// Ridge-regularized NNLS: `min ‖A x − b‖² + λ‖x‖²` s.t. `x ≥ 0`, solved
/// by Lawson–Hanson on the augmented system `[A; √λ·I] x = [b; 0]` (the
/// textbook reduction — with `λ = 0` it is plain [`nnls`] on `A` itself,
/// no augmentation built).
fn nnls_ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if lambda == 0.0 {
        return Ok(nnls(a, b)?);
    }
    let (k, d) = a.shape();
    let sqrt_l = lambda.sqrt();
    let aug = Matrix::from_fn(k + d, d, |i, j| {
        if i < k {
            a[(i, j)]
        } else if i - k == j {
            sqrt_l
        } else {
            0.0
        }
    });
    let mut rhs = b.to_vec();
    rhs.resize(k + d, 0.0);
    Ok(nnls(&aug, &rhs)?)
}

/// One changed landmark-to-landmark measurement: the RTT from landmark
/// `from` to landmark `to` is now `rtt` (indices into the landmark set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementDelta {
    /// Source landmark index.
    pub from: usize,
    /// Destination landmark index.
    pub to: usize,
    /// The newly measured RTT (milliseconds).
    pub rtt: f64,
}

/// An epoch-stamped batch of measurement deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochUpdate {
    /// The epoch the measurements were taken at.
    pub epoch: f64,
    /// The measurements that changed since the previous epoch.
    pub deltas: Vec<MeasurementDelta>,
}

/// Epoch-ordered queue of pending [`EpochUpdate`]s: updates pop in epoch
/// order with ties broken by insertion sequence, so replaying a measurement
/// stream is deterministic even when producers enqueue out of order.
#[derive(Debug, Default)]
pub struct UpdateQueue {
    heap: BinaryHeap<Queued>,
    seq: u64,
}

#[derive(Debug)]
struct Queued {
    update: EpochUpdate,
    seq: u64,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.update.epoch == other.update.epoch && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .update
            .epoch
            .partial_cmp(&self.update.epoch)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl UpdateQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        UpdateQueue::default()
    }

    /// Number of pending updates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Epoch of the earliest pending update.
    pub fn next_epoch(&self) -> Option<f64> {
        self.heap.peek().map(|q| q.update.epoch)
    }

    /// Enqueues an update (any epoch; ordering happens on pop).
    pub fn push(&mut self, update: EpochUpdate) {
        let q = Queued {
            update,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(q);
    }

    /// Pops the earliest pending update.
    pub fn pop(&mut self) -> Option<EpochUpdate> {
        self.heap.pop().map(|q| q.update)
    }

    /// Pops the earliest pending update only if its epoch is at or before
    /// `now` — the polling pattern of a service loop driven by a clock.
    pub fn pop_ready(&mut self, now: f64) -> Option<EpochUpdate> {
        if self.next_epoch()? <= now {
            self.pop()
        } else {
            None
        }
    }
}

/// When to pay for freshness: the knobs of the maintenance tiers.
#[derive(Debug, Clone, Copy)]
pub struct StalenessPolicy {
    /// A landmark (Gram row) counts as **hot** when the mean relative
    /// deviation of its measured row and column from the last-refresh
    /// baseline exceeds this. The refresh decision is per-row: the epoch
    /// refreshes only when more than [`refresh_row_fraction`] of the
    /// landmarks are hot — one badly drifted landmark is absorbed (with
    /// the commit path's refactor fallback), never a whole-model barrier.
    ///
    /// [`refresh_row_fraction`]: StalenessPolicy::refresh_row_fraction
    pub deviation_threshold: f64,
    /// Refresh (warm partial refit) when the fraction of hot landmark
    /// rows exceeds this; at or below it, changed landmarks are absorbed
    /// by rank-1 surgery and everything else is served cached. 0 refreshes
    /// on any hot row (closest to the PR-8 global gate); 1 never
    /// refreshes.
    pub refresh_row_fraction: f64,
    /// Full ALS sweeps per warm refresh (the paper's half-updates come in
    /// X-then-Y pairs; 1–3 sweeps recover most of the drift error).
    pub sweep_budget: usize,
    /// Ridge term baked into the cached join Grams (0 = plain normal
    /// equations).
    pub ridge: f64,
    /// Below this many rejoin hosts,
    /// [`StreamingServer::apply_epochs_pipelined`] under the automatic
    /// thread policy runs its epochs barriered instead of spawning the
    /// pipeline worker: a sub-millisecond rejoin tier cannot amortize the
    /// batch's thread spawn and per-epoch channel hand-off (two context
    /// switches each on a time-sliced core). Same bits either way — the
    /// clamp only changes wall-clock. An explicit thread count bypasses
    /// it, mirroring the executor's per-level fan-out clamps; 0 always
    /// pipelines.
    pub min_pipeline_hosts: usize,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        StalenessPolicy {
            deviation_threshold: 0.05,
            refresh_row_fraction: 0.25,
            sweep_budget: 2,
            ridge: 0.0,
            min_pipeline_hosts: 1024,
        }
    }
}

/// Which factorization family the refresh tier refits with — the warm
/// counterpart of the cold fit the server was built from.
///
/// * ALS-family servers ([`StreamingServer::new`] /
///   [`StreamingServer::with_config`]) refresh through
///   [`ides_mf::als::refine`];
/// * NMF-family servers ([`StreamingServer::with_nmf_config`]) refresh
///   through the warm multiplicative updates of [`ides_mf::nmf::refine`],
///   which keep the factors nonnegative. The absorb tier follows the same
///   split: ALS-family servers re-solve drifted landmark rows by
///   unconstrained least squares through the cached Grams, NMF-family
///   servers by [`ides_linalg::nnls`] so the factors stay nonnegative
///   **between** refreshes too (the cached Grams absorb the constrained
///   rows by the same rank-1 surgery either way).
#[derive(Debug, Clone, Copy)]
pub enum RefreshStrategy {
    /// Warm ALS sweeps from the current factors.
    Als(AlsConfig),
    /// Warm Lee–Seung multiplicative updates from the current factors.
    Nmf(NmfConfig),
}

/// What one [`StreamingServer::apply_epoch`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochOutcome {
    /// The epoch that was applied.
    pub epoch: f64,
    /// Number of measurement deltas written into the landmark matrix.
    pub applied: usize,
    /// Landmark rows re-solved and absorbed by rank-1 Gram surgery.
    pub absorbed: usize,
    /// Mean relative deviation from the last-refresh baseline, after
    /// applying the deltas.
    pub deviation: f64,
    /// Landmarks whose per-row deviation exceeded the threshold after
    /// applying the deltas (the per-row tier gate's input).
    pub hot_rows: usize,
    /// True when the staleness policy triggered a warm partial refit
    /// (more than `refresh_row_fraction` of the landmark rows were hot).
    pub refreshed: bool,
    /// Warm sweeps (ALS) or multiplicative iterations (NMF) spent by this
    /// call (0 on the absorb tier).
    pub sweeps: usize,
}

/// A long-running information server that ingests epoch-stamped
/// measurement deltas and maintains landmark coordinates incrementally.
/// See the [module docs](self) for the maintenance tiers.
#[derive(Debug, Clone)]
pub struct StreamingServer {
    /// Current measured landmark matrix (k x k).
    landmarks: Matrix,
    /// The landmark matrix as of the last refresh (staleness baseline).
    baseline: Matrix,
    /// Current landmark factor model.
    model: FactorModel,
    /// Cached factorization of `YᵀY + λI` — serves outgoing-vector solves.
    gram_y: CachedGram,
    /// Cached factorization of `XᵀX + λI` — serves incoming-vector solves.
    gram_x: CachedGram,
    policy: StalenessPolicy,
    /// The cold-fit family and configuration (initial build, `full_refit`,
    /// and the warm counterpart the refresh tier budgets down).
    refit: RefreshStrategy,
    epoch: f64,
    refreshes: usize,
    absorbed_total: usize,
    gram_refactors: usize,
    /// Absorb-tier scratch, reused across epochs so the hot incremental
    /// path performs no steady-state allocation.
    scratch: AbsorbScratch,
}

/// Absorb-tier scratch: the displaced factor rows captured at commit time
/// plus a pool of per-landmark solve buffers (one [`AbsorbSolution`] per
/// absorb node of the current epoch's widest level). Sized once
/// (high-water mark `d` / `k` / absorbs-per-epoch), then allocation-free.
#[derive(Debug, Clone, Default)]
struct AbsorbScratch {
    old_x: Vec<f64>,
    old_y: Vec<f64>,
    pool: Vec<AbsorbSolution>,
}

/// One landmark's solve-phase output (and its gather scratch): the
/// re-solved outgoing/incoming factor rows, computed against the
/// level-start state and committed later in node order.
#[derive(Debug, Clone, Default)]
struct AbsorbSolution {
    new_x: Vec<f64>,
    new_y: Vec<f64>,
    col: Vec<f64>,
}

impl StreamingServer {
    /// Builds the server with a cold ALS fit of the landmark matrix at
    /// dimensionality `dim` (deterministic: `AlsConfig::new`'s fixed seed).
    pub fn new(landmarks: &DistanceMatrix, dim: usize, policy: StalenessPolicy) -> Result<Self> {
        StreamingServer::with_config(landmarks, AlsConfig::new(dim), policy)
    }

    /// Builds the server with an explicit cold-fit ALS configuration.
    pub fn with_config(
        landmarks: &DistanceMatrix,
        als: AlsConfig,
        policy: StalenessPolicy,
    ) -> Result<Self> {
        crate::system::validate_landmark_dims(landmarks.rows(), landmarks.cols(), als.dim)?;
        let fit = als::fit(landmarks, als)?;
        StreamingServer::from_fit(landmarks, fit.model, RefreshStrategy::Als(als), policy)
    }

    /// Builds an **NMF-family** server: cold [`ides_mf::nmf::fit`], with
    /// the refresh tier running warm [`ides_mf::nmf::refine`] iterations
    /// instead of ALS sweeps, so refreshed factors stay nonnegative.
    pub fn with_nmf_config(
        landmarks: &DistanceMatrix,
        config: NmfConfig,
        policy: StalenessPolicy,
    ) -> Result<Self> {
        crate::system::validate_landmark_dims(landmarks.rows(), landmarks.cols(), config.dim)?;
        let fit =
            nmf::fit(landmarks, config).map_err(|e| IdesError::InvalidInput(e.to_string()))?;
        StreamingServer::from_fit(landmarks, fit.model, RefreshStrategy::Nmf(config), policy)
    }

    /// Shared constructor tail: cache the join Grams of the fitted model.
    fn from_fit(
        landmarks: &DistanceMatrix,
        model: FactorModel,
        refit: RefreshStrategy,
        policy: StalenessPolicy,
    ) -> Result<Self> {
        let gram_y = CachedGram::factor(model.y(), policy.ridge)
            .map_err(|_| IdesError::InvalidInput("landmark factors are rank-deficient".into()))?;
        let gram_x = CachedGram::factor(model.x(), policy.ridge)
            .map_err(|_| IdesError::InvalidInput("landmark factors are rank-deficient".into()))?;
        Ok(StreamingServer {
            landmarks: landmarks.values().clone(),
            baseline: landmarks.values().clone(),
            model,
            gram_y,
            gram_x,
            policy,
            refit,
            epoch: 0.0,
            refreshes: 0,
            absorbed_total: 0,
            gram_refactors: 0,
            scratch: AbsorbScratch::default(),
        })
    }

    /// Number of landmarks.
    pub fn landmark_count(&self) -> usize {
        self.landmarks.rows()
    }

    /// Model dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The current landmark factor model.
    pub fn model(&self) -> &FactorModel {
        &self.model
    }

    /// The current measured landmark matrix.
    pub fn landmark_matrix(&self) -> &Matrix {
        &self.landmarks
    }

    /// The epoch of the last applied update.
    pub fn epoch(&self) -> f64 {
        self.epoch
    }

    /// The staleness policy in force.
    pub fn policy(&self) -> StalenessPolicy {
        self.policy
    }

    /// Warm refreshes performed so far.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Landmark rows absorbed by rank-1 surgery so far.
    pub fn absorbed(&self) -> usize {
        self.absorbed_total
    }

    /// Cached-Gram refactorizations forced by failed downdates (numerical
    /// safety valve; normally 0).
    pub fn gram_refactors(&self) -> usize {
        self.gram_refactors
    }

    /// The exact family and configuration
    /// [`StreamingServer::apply_epoch`]'s refresh tier hands to
    /// [`ides_mf::als::refine`] / [`ides_mf::nmf::refine`] (sweep budget
    /// applied, early stopping disabled) — exposed so callers (and the
    /// bit-identity tests) can reproduce a refresh externally.
    pub fn refresh_strategy(&self) -> RefreshStrategy {
        match self.refit {
            RefreshStrategy::Als(als) => RefreshStrategy::Als(AlsConfig {
                sweeps: self.policy.sweep_budget,
                tolerance: 0.0,
                ..als
            }),
            RefreshStrategy::Nmf(cfg) => RefreshStrategy::Nmf(NmfConfig {
                iterations: self.policy.sweep_budget,
                tolerance: 0.0,
                ..cfg
            }),
        }
    }

    /// Mean relative deviation of the current landmark matrix from the
    /// last-refresh baseline (the drift signal the staleness policy gates
    /// on).
    pub fn deviation(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (i, j, base) in self.baseline.iter_entries() {
            if base > 0.0 {
                total += (self.landmarks[(i, j)] - base).abs() / base;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Per-landmark drift signal: the mean relative deviation of landmark
    /// `l`'s measured row **and** column from the last-refresh baseline
    /// (both directions, because an absorb re-solves both of `l`'s factor
    /// rows). This is the per-Gram-row input of the tier gate.
    pub fn landmark_deviation(&self, l: usize) -> f64 {
        let k = self.landmarks.rows();
        let mut total = 0.0;
        let mut count = 0usize;
        for j in 0..k {
            if j == l {
                continue;
            }
            for (r, c) in [(l, j), (j, l)] {
                let base = self.baseline[(r, c)];
                if base > 0.0 {
                    total += (self.landmarks[(r, c)] - base).abs() / base;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Number of **hot** landmarks: rows whose [`landmark_deviation`]
    /// exceeds the policy's `deviation_threshold`. The epoch refreshes
    /// only when `hot / k` exceeds `refresh_row_fraction` — the per-row
    /// tier choice.
    ///
    /// [`landmark_deviation`]: StreamingServer::landmark_deviation
    pub fn hot_landmarks(&self) -> usize {
        (0..self.landmarks.rows())
            .filter(|&l| self.landmark_deviation(l) > self.policy.deviation_threshold)
            .count()
    }

    /// The cached join-Gram factorizations `(gram_x, gram_y)` of the
    /// current factors — the snapshot-publish hook: `ides::service`
    /// clones the factors out through [`CachedGram::l`] and reconstitutes
    /// read-side solvers with [`CachedGram::from_factor`], so a published
    /// snapshot answers joins with arithmetic bit-identical to
    /// [`StreamingServer::join_batch_cached`] without refactoring.
    pub(crate) fn grams(&self) -> (&CachedGram, &CachedGram) {
        (&self.gram_x, &self.gram_y)
    }

    /// Publishes the current model as a plain [`InformationServer`]
    /// configured for the same normal-equation join arithmetic the cached
    /// path runs.
    pub fn publish(&self) -> Result<InformationServer> {
        let mut config = IdesConfig::new(self.dim());
        config.join = JoinOptions {
            solver: JoinSolver::NormalEquations,
            ridge: self.policy.ridge,
        };
        InformationServer::from_model(self.model.clone(), config)
    }

    /// Ingests one epoch of measurement deltas and maintains the model —
    /// absorb or refresh, per the staleness policy. See the module docs
    /// for the tiers and their costs.
    ///
    /// This is [`StreamingServer::apply_epoch_planned`] with no rejoin
    /// set and the ambient thread count; the plan statistics are
    /// discarded.
    pub fn apply_epoch(&mut self, update: &EpochUpdate) -> Result<EpochOutcome> {
        self.apply_epoch_planned(update, None, None)
            .map(|(outcome, _)| outcome)
    }

    /// Warm partial refit: a bounded number of warm sweeps (ALS) or
    /// multiplicative iterations (NMF) from the current factors, then one
    /// Gram refactorization and a baseline reset.
    fn refresh(&mut self) -> Result<()> {
        let data = DistanceMatrix::full("streaming", self.landmarks.clone())
            .map_err(|e| IdesError::InvalidInput(e.to_string()))?;
        self.model = match self.refresh_strategy() {
            RefreshStrategy::Als(cfg) => als::refine(&data, &self.model, cfg)?.model,
            RefreshStrategy::Nmf(cfg) => {
                nmf::refine(&data, &self.model, cfg)
                    .map_err(|e| IdesError::InvalidInput(e.to_string()))?
                    .model
            }
        };
        self.refactor_grams()?;
        self.baseline = self.landmarks.clone();
        self.refreshes += 1;
        Ok(())
    }

    /// Cold full refit from the current landmark matrix — the expensive
    /// control the `streaming_update` bench compares the incremental tiers
    /// against (and the recovery path if the model ever degenerates).
    /// Refits with the server's own family (ALS or NMF).
    pub fn full_refit(&mut self) -> Result<()> {
        let data = DistanceMatrix::full("streaming", self.landmarks.clone())
            .map_err(|e| IdesError::InvalidInput(e.to_string()))?;
        self.model = match self.refit {
            RefreshStrategy::Als(cfg) => als::fit(&data, cfg)?.model,
            RefreshStrategy::Nmf(cfg) => {
                nmf::fit(&data, cfg)
                    .map_err(|e| IdesError::InvalidInput(e.to_string()))?
                    .model
            }
        };
        self.refactor_grams()?;
        self.baseline = self.landmarks.clone();
        self.refreshes += 1;
        Ok(())
    }

    fn refactor_grams(&mut self) -> Result<()> {
        self.gram_y
            .refactor(self.model.y())
            .map_err(|_| IdesError::InvalidInput("refreshed factors are rank-deficient".into()))?;
        self.gram_x
            .refactor(self.model.x())
            .map_err(|_| IdesError::InvalidInput("refreshed factors are rank-deficient".into()))?;
        Ok(())
    }

    /// Joins a batch of ordinary hosts through the **cached** normal-
    /// equation factorizations: one GEMM per direction to assemble the
    /// right-hand sides, then one `O(d²)` triangular solve per host — no
    /// factorization on the query path.
    ///
    /// While the caches hold a from-scratch factorization (after a build,
    /// refresh, or `full_refit`), results are **bit-identical** to
    /// [`crate::projection::join_hosts_into`] with the
    /// [`JoinSolver::NormalEquations`] solver (and this server's ridge),
    /// because [`CachedGram`] runs exactly the same arithmetic. After an
    /// absorb epoch the caches carry rank-1-updated factors instead,
    /// which agree with a fresh factorization of the current model only
    /// to ~1e-9 — numerically interchangeable, not bitwise.
    pub fn join_batch_cached(
        &self,
        d_out: &Matrix,
        d_in: &Matrix,
        out: &mut BatchHostVectors,
    ) -> Result<()> {
        let k = self.landmark_count();
        if d_out.shape() != d_in.shape() {
            return Err(IdesError::InvalidInput(format!(
                "measurement batch shapes disagree: out {:?}, in {:?}",
                d_out.shape(),
                d_in.shape()
            )));
        }
        if d_out.cols() != k {
            return Err(IdesError::InvalidInput(format!(
                "expected {k} measurements per host, got {}",
                d_out.cols()
            )));
        }
        cached_join_into(&self.rejoin_ctx(), d_out, d_in, out)
    }

    /// The borrowed rejoin inputs — model factors, cached Grams, ridge —
    /// shared by the in-place executor and the pipeline's frozen stage.
    pub(crate) fn rejoin_ctx(&self) -> RejoinCtx<'_> {
        RejoinCtx {
            model: &self.model,
            gram_x: &self.gram_x,
            gram_y: &self.gram_y,
            ridge: self.policy.ridge,
        }
    }

    /// Re-joins only the `affected` hosts (rows of the full `hosts x k`
    /// measurement matrices), scattering the fresh vectors into `coords`
    /// and leaving every other host's cached coordinates untouched — the
    /// staleness policy applied to ordinary hosts. Sharded over scoped
    /// threads under the `parallel` feature; because each shard runs the
    /// same per-row GEMM arithmetic and shards merge in order, the result
    /// is bit-identical at any shard count.
    pub fn rejoin_affected(
        &self,
        affected: &[usize],
        d_out: &Matrix,
        d_in: &Matrix,
        coords: &mut BatchHostVectors,
    ) -> Result<()> {
        if coords.len() != d_out.rows() || coords.dim() != self.dim() {
            return Err(IdesError::InvalidInput(format!(
                "coordinate table is {}x{}, expected {}x{}",
                coords.len(),
                coords.dim(),
                d_out.rows(),
                self.dim()
            )));
        }
        if let Some(&bad) = affected.iter().find(|&&h| h >= d_out.rows()) {
            return Err(IdesError::InvalidInput(format!(
                "affected host {bad} out of range for {} hosts",
                d_out.rows()
            )));
        }
        self.rejoin_hosts_with(affected, d_out, d_in, coords, crate::eval::eval_threads())
    }
}

/// Borrowed rejoin inputs: the factor model, the cached join Grams, and
/// the ridge. The executor borrows them from the live server; the
/// pipeline borrows them from a frozen epoch-end clone so rejoin solves
/// can overlap the next epoch's absorb tier without reading mutating
/// state.
#[derive(Debug)]
pub(crate) struct RejoinCtx<'m> {
    pub model: &'m FactorModel,
    pub gram_x: &'m CachedGram,
    pub gram_y: &'m CachedGram,
    pub ridge: f64,
}

/// The cached host join against an explicit [`RejoinCtx`]: one GEMM per
/// direction, then one `O(d²)` triangular solve per host. This is the
/// arithmetic of [`StreamingServer::join_batch_cached`], factored out so
/// the pipeline can run it against a frozen model snapshot bit-identically.
pub(crate) fn cached_join_into(
    ctx: &RejoinCtx<'_>,
    d_out: &Matrix,
    d_in: &Matrix,
    out: &mut BatchHostVectors,
) -> Result<()> {
    let hosts = d_out.rows();
    out.reset_shape(hosts, ctx.model.dim());
    let (out_m, in_m) = out.matrices_mut();
    d_out.matmul_into(ctx.model.y(), out_m)?;
    ctx.gram_y.solve_rows_in_place(out_m)?;
    d_in.matmul_into(ctx.model.x(), in_m)?;
    ctx.gram_x.solve_rows_in_place(in_m)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_queue_orders_by_epoch_then_insertion() {
        let mut q = UpdateQueue::new();
        assert!(q.is_empty());
        let u = |epoch: f64| EpochUpdate {
            epoch,
            deltas: Vec::new(),
        };
        q.push(u(5.0));
        q.push(u(1.0));
        q.push(u(1.0));
        q.push(u(3.0));
        assert_eq!(q.len(), 4);
        assert_eq!(q.next_epoch(), Some(1.0));
        assert_eq!(q.pop().unwrap().epoch, 1.0);
        assert_eq!(q.pop().unwrap().epoch, 1.0);
        assert!(q.pop_ready(2.0).is_none()); // next is 3.0 > 2.0
        assert_eq!(q.pop_ready(3.0).unwrap().epoch, 3.0);
        assert_eq!(q.pop().unwrap().epoch, 5.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn apply_epoch_validates_deltas() {
        let ds = ides_datasets::generators::gnp_like(10, 3).unwrap();
        let mut server = StreamingServer::new(&ds.matrix, 4, StalenessPolicy::default()).unwrap();
        let bad_idx = EpochUpdate {
            epoch: 1.0,
            deltas: vec![MeasurementDelta {
                from: 99,
                to: 0,
                rtt: 1.0,
            }],
        };
        assert!(server.apply_epoch(&bad_idx).is_err());
        let bad_rtt = EpochUpdate {
            epoch: 1.0,
            deltas: vec![MeasurementDelta {
                from: 0,
                to: 1,
                rtt: -3.0,
            }],
        };
        assert!(server.apply_epoch(&bad_rtt).is_err());
    }

    #[test]
    fn small_drift_absorbs_large_drift_refreshes() {
        let ds = ides_datasets::generators::gnp_like(15, 7).unwrap();
        let policy = StalenessPolicy {
            deviation_threshold: 0.05,
            refresh_row_fraction: 0.25,
            sweep_budget: 2,
            ridge: 0.0,
            ..StalenessPolicy::default()
        };
        let mut server = StreamingServer::new(&ds.matrix, 5, policy).unwrap();
        // Tiny drift on one pair: absorb tier.
        let base = server.landmark_matrix()[(2, 5)];
        let small = EpochUpdate {
            epoch: 1.0,
            deltas: vec![
                MeasurementDelta {
                    from: 2,
                    to: 5,
                    rtt: base * 1.01,
                },
                MeasurementDelta {
                    from: 5,
                    to: 2,
                    rtt: base * 1.01,
                },
            ],
        };
        let outcome = server.apply_epoch(&small).unwrap();
        assert!(!outcome.refreshed);
        assert_eq!(outcome.absorbed, 2);
        assert_eq!(outcome.applied, 2);
        assert_eq!(server.refreshes(), 0);
        // Blow every entry up 30 %: refresh tier.
        let k = server.landmark_count();
        let mut deltas = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    deltas.push(MeasurementDelta {
                        from: i,
                        to: j,
                        rtt: server.landmark_matrix()[(i, j)] * 1.3,
                    });
                }
            }
        }
        let outcome = server
            .apply_epoch(&EpochUpdate { epoch: 2.0, deltas })
            .unwrap();
        assert!(outcome.refreshed);
        assert!(outcome.deviation > 0.05, "deviation {}", outcome.deviation);
        assert_eq!(outcome.sweeps, 2);
        assert_eq!(server.refreshes(), 1);
        assert_eq!(server.epoch(), 2.0);
        // After a refresh the baseline resets, so deviation reads 0.
        assert!(server.deviation() < 1e-12);
    }

    #[test]
    fn absorb_tracks_refactored_grams() {
        // After several absorb epochs, the surgically maintained Grams must
        // match a from-scratch factorization of the current factors.
        let ds = ides_datasets::generators::p2psim_like(20, 11).unwrap();
        let policy = StalenessPolicy {
            deviation_threshold: 0.5, // never refresh in this test
            ..StalenessPolicy::default()
        };
        let mut server = StreamingServer::new(&ds.matrix, 6, policy).unwrap();
        for step in 0..5 {
            let i = (step * 3) % 20;
            let j = (step * 7 + 1) % 20;
            if i == j {
                continue;
            }
            let rtt = server.landmark_matrix()[(i, j)] * (1.0 + 0.02 * (step as f64 + 1.0));
            server
                .apply_epoch(&EpochUpdate {
                    epoch: step as f64,
                    deltas: vec![MeasurementDelta {
                        from: i,
                        to: j,
                        rtt,
                    }],
                })
                .unwrap();
        }
        assert!(server.absorbed() > 0);
        let fresh_y = CachedGram::factor(server.model().y(), policy.ridge).unwrap();
        let fresh_x = CachedGram::factor(server.model().x(), policy.ridge).unwrap();
        assert!(
            server.gram_y.l().approx_eq(fresh_y.l(), 1e-9),
            "gram_y drifted {}",
            server.gram_y.l().max_abs_diff(fresh_y.l())
        );
        assert!(
            server.gram_x.l().approx_eq(fresh_x.l(), 1e-9),
            "gram_x drifted {}",
            server.gram_x.l().max_abs_diff(fresh_x.l())
        );
    }

    #[test]
    fn cached_join_matches_batched_normal_equations_bitwise() {
        let ds = ides_datasets::generators::p2psim_like(30, 4).unwrap();
        let sub: Vec<usize> = (0..12).collect();
        let lm = ds.matrix.submatrix(&sub, &sub);
        let server = StreamingServer::new(&lm, 5, StalenessPolicy::default()).unwrap();
        let hosts = 7;
        let d_out = Matrix::from_fn(hosts, 12, |h, l| {
            ds.matrix.get(13 + h, sub[l]).unwrap_or(1.0)
        });
        let d_in = Matrix::from_fn(hosts, 12, |h, l| {
            ds.matrix.get(sub[l], 13 + h).unwrap_or(1.0)
        });
        let mut cached = BatchHostVectors::new();
        server
            .join_batch_cached(&d_out, &d_in, &mut cached)
            .unwrap();
        // One-shot batched join with the same solver arithmetic.
        let info = server.publish().unwrap();
        let oneshot = info.join_batch(&d_out, &d_in).unwrap();
        for (h, one) in oneshot.iter().enumerate() {
            let hv = cached.host(h);
            for j in 0..5 {
                assert_eq!(hv.outgoing[j].to_bits(), one.outgoing[j].to_bits());
                assert_eq!(hv.incoming[j].to_bits(), one.incoming[j].to_bits());
            }
        }
    }

    #[test]
    fn rejoin_affected_scatters_and_preserves() {
        let ds = ides_datasets::generators::p2psim_like(40, 9).unwrap();
        let sub: Vec<usize> = (0..15).collect();
        let lm = ds.matrix.submatrix(&sub, &sub);
        let mut server = StreamingServer::new(&lm, 6, StalenessPolicy::default()).unwrap();
        let hosts = 10;
        let d_out = Matrix::from_fn(hosts, 15, |h, l| {
            ds.matrix.get(20 + h, sub[l]).unwrap_or(1.0)
        });
        let d_in = Matrix::from_fn(hosts, 15, |h, l| {
            ds.matrix.get(sub[l], 20 + h).unwrap_or(1.0)
        });
        let mut coords = BatchHostVectors::new();
        server
            .join_batch_cached(&d_out, &d_in, &mut coords)
            .unwrap();
        let stale = coords.clone();
        // Drift one landmark pair (absorb) and re-join hosts 2, 5, 9 only.
        let rtt = server.landmark_matrix()[(1, 4)] * 1.02;
        server
            .apply_epoch(&EpochUpdate {
                epoch: 1.0,
                deltas: vec![MeasurementDelta {
                    from: 1,
                    to: 4,
                    rtt,
                }],
            })
            .unwrap();
        let affected = [2usize, 5, 9];
        server
            .rejoin_affected(&affected, &d_out, &d_in, &mut coords)
            .unwrap();
        // Affected rows match a full cached join on the new model...
        let mut full = BatchHostVectors::new();
        server.join_batch_cached(&d_out, &d_in, &mut full).unwrap();
        for &h in &affected {
            assert_eq!(coords.host(h), full.host(h), "host {h}");
        }
        // ...and every other row kept its cached (stale) coordinates.
        for h in (0..hosts).filter(|h| !affected.contains(h)) {
            assert_eq!(coords.host(h), stale.host(h), "host {h}");
        }
        // Out-of-range host rejected; shape mismatch rejected.
        assert!(server
            .rejoin_affected(&[99], &d_out, &d_in, &mut coords)
            .is_err());
        let mut tiny = BatchHostVectors::new();
        assert!(server
            .rejoin_affected(&[0], &d_out, &d_in, &mut tiny)
            .is_err());
    }

    #[test]
    fn publish_round_trips_the_model() {
        let ds = ides_datasets::generators::gnp_like(12, 2).unwrap();
        let server = StreamingServer::new(&ds.matrix, 4, StalenessPolicy::default()).unwrap();
        let info = server.publish().unwrap();
        assert_eq!(info.dim(), 4);
        assert_eq!(info.landmark_count(), 12);
        assert_eq!(info.join_options().solver, JoinSolver::NormalEquations);
    }
}
