//! Host-join least squares (§5.1, Eqs. 11–14; §5.2, Eqs. 15–16).
//!
//! An ordinary host measures distances to and from a set of reference
//! nodes with known vectors (all landmarks in the basic architecture, any
//! `k ≥ d` nodes in the relaxed one) and solves two small least-squares
//! problems for its own outgoing and incoming vectors:
//!
//! ```text
//! X_new = argmin Σᵢ (Dᵒᵘᵗᵢ − U · Y_i)²   =>  (Dᵒᵘᵗ Y)(YᵀY)⁻¹
//! Y_new = argmin Σᵢ (Dᶦⁿᵢ  − X_i · U)²   =>  (Dᶦⁿ X)(XᵀX)⁻¹
//! ```

use ides_linalg::{nnls, qr, solve, Matrix};
use ides_mf::FactorModel;
use serde::{Deserialize, Serialize};

use crate::error::{IdesError, Result};

/// Which least-squares solver computes the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinSolver {
    /// Householder-QR least squares (numerically preferred).
    Qr,
    /// The paper's literal normal equations `(AᵀA)⁻¹Aᵀb` (Eqs. 13–14).
    NormalEquations,
    /// Nonnegative least squares — guarantees nonnegative predictions when
    /// the landmark model came from NMF (§5.1).
    NonNegative,
}

/// Options for a host join.
#[derive(Debug, Clone, Copy)]
pub struct JoinOptions {
    /// Solver choice.
    pub solver: JoinSolver,
    /// Ridge term added when the system is ill-conditioned (0 disables).
    pub ridge: f64,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            solver: JoinSolver::Qr,
            ridge: 0.0,
        }
    }
}

/// A joined host's coordinates: its outgoing and incoming vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostVectors {
    /// Outgoing vector `X_new` (length `d`).
    pub outgoing: Vec<f64>,
    /// Incoming vector `Y_new` (length `d`).
    pub incoming: Vec<f64>,
}

impl HostVectors {
    /// Estimated distance from this host to one with incoming vector `y`.
    pub fn distance_to(&self, incoming_of_other: &[f64]) -> f64 {
        FactorModel::dot(&self.outgoing, incoming_of_other)
    }

    /// Estimated distance from a host with outgoing vector `x` to this one.
    pub fn distance_from(&self, outgoing_of_other: &[f64]) -> f64 {
        FactorModel::dot(outgoing_of_other, &self.incoming)
    }

    /// Estimated distance from this host to another joined host.
    pub fn distance_to_host(&self, other: &HostVectors) -> f64 {
        self.distance_to(&other.incoming)
    }
}

/// Reusable buffers for repeated host joins (evaluation sweeps, simulated
/// protocol servers). Holds the gathered reference submatrices for partial
/// joins and the normal-equation solver scratch, so the join hot path
/// never clones the factor matrices and — on the normal-equation and ridge
/// paths — performs no factor-sized allocation per join.
#[derive(Debug, Default)]
pub struct JoinWorkspace {
    /// Gathered outgoing reference vectors (partial joins).
    x_sub: Matrix,
    /// Gathered incoming reference vectors (partial joins).
    y_sub: Matrix,
    /// Normal-equation / ridge solver scratch.
    ne: solve::NormalEqWorkspace,
}

impl JoinWorkspace {
    /// Creates an empty workspace; buffers grow to their high-water mark on
    /// first use.
    pub fn new() -> Self {
        JoinWorkspace::default()
    }
}

/// Solves the join for one ordinary host.
///
/// * `x_refs` / `y_refs`: outgoing / incoming vectors of the `k` reference
///   nodes as rows (`k x d`).
/// * `d_out[i]`: measured distance *to* reference `i`.
/// * `d_in[i]`: measured distance *from* reference `i`.
///
/// Requires `k >= d` (the paper's solvability condition); returns
/// [`IdesError::TooFewObservations`] otherwise (unless a positive ridge
/// term makes the smaller system well-posed).
///
/// Convenience wrapper over [`join_host_with`] that builds a fresh
/// [`JoinWorkspace`] per call; batch callers should hold one workspace.
pub fn join_host(
    x_refs: &Matrix,
    y_refs: &Matrix,
    d_out: &[f64],
    d_in: &[f64],
    opts: JoinOptions,
) -> Result<HostVectors> {
    let mut ws = JoinWorkspace::new();
    join_host_with(&mut ws, x_refs, y_refs, d_out, d_in, opts)
}

/// [`join_host`] with caller-provided workspace: the variant evaluation
/// sweeps use to join thousands of hosts without per-join clones of the
/// reference matrices.
pub fn join_host_with(
    ws: &mut JoinWorkspace,
    x_refs: &Matrix,
    y_refs: &Matrix,
    d_out: &[f64],
    d_in: &[f64],
    opts: JoinOptions,
) -> Result<HostVectors> {
    let k = x_refs.rows();
    let d = x_refs.cols();
    if y_refs.shape() != (k, d) {
        return Err(IdesError::InvalidInput(format!(
            "reference vector shapes disagree: X {:?}, Y {:?}",
            x_refs.shape(),
            y_refs.shape()
        )));
    }
    if d_out.len() != k || d_in.len() != k {
        return Err(IdesError::InvalidInput(format!(
            "expected {k} out/in measurements, got {}/{}",
            d_out.len(),
            d_in.len()
        )));
    }
    if k < d && opts.ridge <= 0.0 {
        return Err(IdesError::TooFewObservations {
            observed: k,
            needed: d,
        });
    }

    // X_new solves min ‖Y_refs · X_newᵀ − d_out‖ (each reference's incoming
    // vector dotted with X_new approximates the outgoing distance).
    let outgoing = solve_one(&mut ws.ne, y_refs, d_out, opts)?;
    let incoming = solve_one(&mut ws.ne, x_refs, d_in, opts)?;
    Ok(HostVectors { outgoing, incoming })
}

/// Partial join through the reference subset `observed` (row indices into
/// `x_refs`/`y_refs`): gathers the subset into the workspace instead of
/// cloning fresh submatrices per call.
pub fn join_host_subset_with(
    ws: &mut JoinWorkspace,
    x_refs: &Matrix,
    y_refs: &Matrix,
    observed: &[usize],
    d_out: &[f64],
    d_in: &[f64],
    opts: JoinOptions,
) -> Result<HostVectors> {
    if observed.len() != d_out.len() || observed.len() != d_in.len() {
        return Err(IdesError::InvalidInput(
            "observed indices and measurements must have equal length".into(),
        ));
    }
    let k = x_refs.rows();
    let d = x_refs.cols();
    if let Some(&bad) = observed.iter().find(|&&i| i >= k) {
        return Err(IdesError::InvalidInput(format!(
            "observed reference index {bad} out of range for {k} references"
        )));
    }
    if observed.len() < d && opts.ridge <= 0.0 {
        return Err(IdesError::TooFewObservations {
            observed: observed.len(),
            needed: d,
        });
    }
    x_refs.select_rows_into(observed, &mut ws.x_sub);
    y_refs.select_rows_into(observed, &mut ws.y_sub);
    let outgoing = solve_one(&mut ws.ne, &ws.y_sub, d_out, opts)?;
    let incoming = solve_one(&mut ws.ne, &ws.x_sub, d_in, opts)?;
    Ok(HostVectors { outgoing, incoming })
}

fn solve_one(
    ne: &mut solve::NormalEqWorkspace,
    a: &Matrix,
    b: &[f64],
    opts: JoinOptions,
) -> Result<Vec<f64>> {
    let mut out = vec![0.0; a.cols()];
    if opts.ridge > 0.0 {
        solve::lstsq_ridge_with(a, b, opts.ridge, ne, &mut out)?;
        return Ok(out);
    }
    match opts.solver {
        JoinSolver::Qr => {
            out = qr::lstsq(a, b).or_else(|_| solve::lstsq_normal(a, b))?;
        }
        JoinSolver::NormalEquations => {
            // λ = 0 ridge is exactly the normal equations, solved through
            // the workspace (falls back to the pseudo-inverse path on
            // rank deficiency, like `lstsq_normal`).
            solve::lstsq_ridge_with(a, b, 0.0, ne, &mut out)?;
        }
        JoinSolver::NonNegative => {
            out = nnls::nnls(a, b)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ides_mf::svd_model::{fit_matrix, SvdConfig};
    use ides_netsim::topology::figure1_distance_matrix;

    /// The §5.1 worked example: landmark vectors from the Figure-1 matrix,
    /// host H1 with distances [0.5, 1.5, 1.5, 2.5] to all four landmarks.
    #[test]
    fn paper_section5_basic_example() {
        let d = figure1_distance_matrix();
        let model = fit_matrix(
            &d,
            SvdConfig {
                dim: 3,
                force_exact: true,
            },
        )
        .unwrap();
        let douts = [0.5, 1.5, 1.5, 2.5];
        let h1 = join_host(model.x(), model.y(), &douts, &douts, JoinOptions::default()).unwrap();
        // Distances to landmarks are exactly preserved.
        for (i, &expected) in douts.iter().enumerate() {
            let est = h1.distance_to(model.incoming(i));
            assert!(
                (est - expected).abs() < 1e-9,
                "to L{i}: {est} vs {expected}"
            );
            let est = h1.distance_from(model.outgoing(i));
            assert!(
                (est - expected).abs() < 1e-9,
                "from L{i}: {est} vs {expected}"
            );
        }
        // H2 mirrors H1; the predicted H1–H2 distance is 3.25 (true 3).
        let d2 = [2.5, 1.5, 1.5, 0.5];
        let h2 = join_host(model.x(), model.y(), &d2, &d2, JoinOptions::default()).unwrap();
        let est = h1.distance_to_host(&h2);
        assert!((est - 3.25).abs() < 1e-9, "H1->H2 {est}");
        let est_rev = h2.distance_to_host(&h1);
        assert!((est_rev - 3.25).abs() < 1e-9, "H2->H1 {est_rev}");
    }

    /// The §5.2 relaxed example: H2 joins through L2, L4 and the
    /// already-joined H1 instead of all landmarks.
    #[test]
    fn paper_section5_relaxed_example() {
        let d = figure1_distance_matrix();
        let model = fit_matrix(
            &d,
            SvdConfig {
                dim: 3,
                force_exact: true,
            },
        )
        .unwrap();
        // H1 joins through L1, L2, L3 (measured distances 0.5, 1.5, 1.5).
        let x_sub = model.x().select_rows(&[0, 1, 2]);
        let y_sub = model.y().select_rows(&[0, 1, 2]);
        let m1 = [0.5, 1.5, 1.5];
        let h1 = join_host(&x_sub, &y_sub, &m1, &m1, JoinOptions::default()).unwrap();
        // The unmeasured distance H1–L4 is predicted exactly (2.5).
        let est = h1.distance_to(model.incoming(3));
        assert!((est - 2.5).abs() < 1e-9, "H1->L4 {est}");

        // H2 joins through L2, L4, H1 with distances [1.5, 0.5, 3].
        let x_refs = Matrix::from_rows(&[
            model.outgoing(1).to_vec(),
            model.outgoing(3).to_vec(),
            h1.outgoing.clone(),
        ])
        .unwrap();
        let y_refs = Matrix::from_rows(&[
            model.incoming(1).to_vec(),
            model.incoming(3).to_vec(),
            h1.incoming.clone(),
        ])
        .unwrap();
        let m2 = [1.5, 0.5, 3.0];
        let h2 = join_host(&x_refs, &y_refs, &m2, &m2, JoinOptions::default()).unwrap();
        // Paper: H2–L1 ≈ 2.3 (true 2.5) and H2–L3 ≈ 1.3 (true 1.5); the
        // worst relative error in the example is 15 %.
        let to_l1 = h2.distance_to(model.incoming(0));
        assert!((to_l1 - 2.5).abs() <= 0.25, "H2->L1 {to_l1}");
        let to_l3 = h2.distance_to(model.incoming(2));
        assert!((to_l3 - 1.5).abs() <= 0.25, "H2->L3 {to_l3}");
    }

    #[test]
    fn too_few_references_rejected() {
        let x = Matrix::zeros(2, 3);
        let y = Matrix::zeros(2, 3);
        let err = join_host(&x, &y, &[1.0, 2.0], &[1.0, 2.0], JoinOptions::default());
        assert!(matches!(
            err,
            Err(IdesError::TooFewObservations {
                observed: 2,
                needed: 3
            })
        ));
        // But a ridge term makes it solvable.
        let ok = join_host(
            &x,
            &y,
            &[1.0, 2.0],
            &[1.0, 2.0],
            JoinOptions {
                ridge: 0.1,
                ..Default::default()
            },
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn solver_variants_agree_on_well_posed_interior_problem() {
        let d = figure1_distance_matrix();
        let model = fit_matrix(
            &d,
            SvdConfig {
                dim: 3,
                force_exact: true,
            },
        )
        .unwrap();
        let m = [0.5, 1.5, 1.5, 2.5];
        let qr = join_host(model.x(), model.y(), &m, &m, JoinOptions::default()).unwrap();
        let ne = join_host(
            model.x(),
            model.y(),
            &m,
            &m,
            JoinOptions {
                solver: JoinSolver::NormalEquations,
                ..Default::default()
            },
        )
        .unwrap();
        for (a, b) in qr.outgoing.iter().zip(ne.outgoing.iter()) {
            assert!(
                (a - b).abs() < 1e-8,
                "QR {:?} vs NE {:?}",
                qr.outgoing,
                ne.outgoing
            );
        }
    }

    #[test]
    fn nonnegative_solver_gives_nonnegative_predictions() {
        // With NMF landmark vectors (nonnegative) and NNLS join, all
        // predicted distances are nonnegative by construction.
        let ds = ides_datasets::generators::gnp_like(12, 3).unwrap();
        let sub: Vec<usize> = (0..8).collect();
        let landmarks = ds.matrix.submatrix(&sub, &sub);
        let nmf = ides_mf::nmf::fit(&landmarks, ides_mf::nmf::NmfConfig::new(4)).unwrap();
        let model = nmf.model;
        // Host 9 joins via its measured rows.
        let d_out: Vec<f64> = sub.iter().map(|&l| ds.matrix.get(9, l).unwrap()).collect();
        let d_in: Vec<f64> = sub.iter().map(|&l| ds.matrix.get(l, 9).unwrap()).collect();
        let host = join_host(
            model.x(),
            model.y(),
            &d_out,
            &d_in,
            JoinOptions {
                solver: JoinSolver::NonNegative,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(host.outgoing.iter().all(|&v| v >= 0.0));
        assert!(host.incoming.iter().all(|&v| v >= 0.0));
        for l in 0..8 {
            assert!(host.distance_to(model.incoming(l)) >= 0.0);
        }
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let x = Matrix::zeros(4, 2);
        let y = Matrix::zeros(3, 2);
        assert!(join_host(&x, &y, &[0.0; 4], &[0.0; 4], JoinOptions::default()).is_err());
        let y = Matrix::zeros(4, 2);
        assert!(join_host(&x, &y, &[0.0; 3], &[0.0; 4], JoinOptions::default()).is_err());
    }
}
