//! Host-join least squares (§5.1, Eqs. 11–14; §5.2, Eqs. 15–16).
//!
//! An ordinary host measures distances to and from a set of reference
//! nodes with known vectors (all landmarks in the basic architecture, any
//! `k ≥ d` nodes in the relaxed one) and solves two small least-squares
//! problems for its own outgoing and incoming vectors:
//!
//! ```text
//! X_new = argmin Σᵢ (Dᵒᵘᵗᵢ − U · Y_i)²   =>  (Dᵒᵘᵗ Y)(YᵀY)⁻¹
//! Y_new = argmin Σᵢ (Dᶦⁿᵢ  − X_i · U)²   =>  (Dᶦⁿ X)(XᵀX)⁻¹
//! ```
//!
//! # Batched joins
//!
//! The design matrix of every join against one landmark set is the *same*
//! `k x d` factor matrix; only the measurement vector differs per host. The
//! batch API ([`join_hosts_with`] / [`join_hosts_into`]) exploits this: the
//! factorization (QR of the references, or Cholesky of the shared Gram
//! matrix `AᵀA + λI`) is computed **once per batch**, the right-hand sides
//! for all hosts are assembled as a single `hosts x d` GEMM on the blocked
//! kernel layer, and each host's solution reduces to one triangular solve.
//! Joining a batch of `H` hosts therefore costs one factorization plus
//! `O(H)` small solves instead of `H` factorizations — the refactor that
//! makes an information server absorb many ordinary hosts cheaply (§5).
//!
//! The per-host [`join_host_with`] is a thin wrapper over a batch of one,
//! so batched and sequential joins run the exact same arithmetic: every
//! output cell of the blocked GEMM accumulates over the shared `k`
//! dimension in an order independent of the batch's row count, making
//! batched results **bit-identical** to one-at-a-time joins (property-
//! tested in `tests/proptests.rs`). The nonnegative (NNLS) solver is the
//! one exception with no batched factorization: the batch API falls back
//! to an active-set solve per host while still amortizing the gathered
//! buffers.

use ides_linalg::factor::{qr_with, FactorWorkspace};
use ides_linalg::qr::Qr;
use ides_linalg::{nnls, qr, solve, Matrix};
use ides_mf::FactorModel;
use serde::{Deserialize, Serialize};

use crate::error::{IdesError, Result};

/// Which least-squares solver computes the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinSolver {
    /// Householder-QR least squares (numerically preferred).
    Qr,
    /// The paper's literal normal equations `(AᵀA)⁻¹Aᵀb` (Eqs. 13–14).
    NormalEquations,
    /// Nonnegative least squares — guarantees nonnegative predictions when
    /// the landmark model came from NMF (§5.1).
    NonNegative,
}

/// Options for a host join.
#[derive(Debug, Clone, Copy)]
pub struct JoinOptions {
    /// Solver choice.
    pub solver: JoinSolver,
    /// Ridge term added when the system is ill-conditioned (0 disables).
    pub ridge: f64,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            solver: JoinSolver::Qr,
            ridge: 0.0,
        }
    }
}

/// A joined host's coordinates: its outgoing and incoming vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostVectors {
    /// Outgoing vector `X_new` (length `d`).
    pub outgoing: Vec<f64>,
    /// Incoming vector `Y_new` (length `d`).
    pub incoming: Vec<f64>,
}

impl HostVectors {
    /// Estimated distance from this host to one with incoming vector `y`.
    pub fn distance_to(&self, incoming_of_other: &[f64]) -> f64 {
        FactorModel::dot(&self.outgoing, incoming_of_other)
    }

    /// Estimated distance from a host with outgoing vector `x` to this one.
    pub fn distance_from(&self, outgoing_of_other: &[f64]) -> f64 {
        FactorModel::dot(outgoing_of_other, &self.incoming)
    }

    /// Estimated distance from this host to another joined host.
    pub fn distance_to_host(&self, other: &HostVectors) -> f64 {
        self.distance_to(&other.incoming)
    }
}

/// Outgoing/incoming vectors for a whole batch of joined hosts, stored as
/// matrix rows (`hosts x d` each) so evaluation sweeps can score pairs
/// without materializing one [`HostVectors`] allocation per host.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchHostVectors {
    outgoing: Matrix,
    incoming: Matrix,
}

impl BatchHostVectors {
    /// Creates an empty batch; reused across [`join_hosts_into`] calls, the
    /// matrices grow to their high-water shape and then stop allocating.
    pub fn new() -> Self {
        BatchHostVectors::default()
    }

    /// Number of hosts in the batch.
    pub fn len(&self) -> usize {
        self.outgoing.rows()
    }

    /// True when the batch holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.outgoing.rows() == 0
    }

    /// Vector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.outgoing.cols()
    }

    /// Outgoing vector of batch host `i`.
    pub fn outgoing(&self, i: usize) -> &[f64] {
        self.outgoing.row(i)
    }

    /// Incoming vector of batch host `i`.
    pub fn incoming(&self, i: usize) -> &[f64] {
        self.incoming.row(i)
    }

    /// The `hosts x d` outgoing-vector matrix.
    pub fn outgoing_matrix(&self) -> &Matrix {
        &self.outgoing
    }

    /// The `hosts x d` incoming-vector matrix.
    pub fn incoming_matrix(&self) -> &Matrix {
        &self.incoming
    }

    /// Estimated distance from batch host `i` to batch host `j`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        FactorModel::dot(self.outgoing.row(i), self.incoming.row(j))
    }

    /// Copies batch host `i` out into an owned [`HostVectors`].
    pub fn host(&self, i: usize) -> HostVectors {
        HostVectors {
            outgoing: self.outgoing.row(i).to_vec(),
            incoming: self.incoming.row(i).to_vec(),
        }
    }

    /// Copies the whole batch into per-host [`HostVectors`].
    pub fn to_hosts(&self) -> Vec<HostVectors> {
        (0..self.len()).map(|i| self.host(i)).collect()
    }

    /// Overwrites batch host `i`'s vectors in place — how the streaming
    /// layer's re-join of affected hosts scatters fresh coordinates into a
    /// long-lived coordinate table without reallocating it.
    pub fn set_host(&mut self, i: usize, outgoing: &[f64], incoming: &[f64]) {
        self.outgoing.row_mut(i).copy_from_slice(outgoing);
        self.incoming.row_mut(i).copy_from_slice(incoming);
    }

    /// Resizes the batch to `hosts x d` (contents unspecified) — staging
    /// for callers that fill rows via [`BatchHostVectors::set_host`].
    pub fn reset_shape(&mut self, hosts: usize, d: usize) {
        self.outgoing.reset_shape(hosts, d);
        self.incoming.reset_shape(hosts, d);
    }

    /// Mutable access to the raw `hosts x d` outgoing/incoming matrices,
    /// for same-crate batch solvers that write whole coordinate blocks.
    pub(crate) fn matrices_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.outgoing, &mut self.incoming)
    }

    /// Appends one host's vectors to the batch. The first push fixes the
    /// batch dimensionality; later pushes must match it.
    ///
    /// Growth is amortized through the matrices' retained capacity, so a
    /// long-lived host table that churns (push / [`swap_remove_host`]) at a
    /// bounded high-water mark stops allocating once warm.
    ///
    /// [`swap_remove_host`]: BatchHostVectors::swap_remove_host
    pub fn push_host(&mut self, outgoing: &[f64], incoming: &[f64]) -> Result<()> {
        if outgoing.len() != incoming.len() {
            return Err(IdesError::InvalidInput(format!(
                "outgoing/incoming dimensions disagree: {} vs {}",
                outgoing.len(),
                incoming.len()
            )));
        }
        if !self.is_empty() && outgoing.len() != self.dim() {
            return Err(IdesError::InvalidInput(format!(
                "cannot push a {}-dimensional host into a batch of dimension {}",
                outgoing.len(),
                self.dim()
            )));
        }
        self.outgoing.push_row(outgoing);
        self.incoming.push_row(incoming);
        Ok(())
    }

    /// Retires host `i` by moving the **last** host's vectors into its row
    /// and shrinking the batch by one — `O(d)`, no reallocation, the
    /// classic swap-remove. Returns the index of the host that now lives
    /// at `i` (`None` when `i` was the last row), so callers keeping an
    /// external id → row map can patch the single moved entry.
    ///
    /// # Panics
    /// Panics when `i` is out of range (a stale id must not silently
    /// retire a different host).
    pub fn swap_remove_host(&mut self, i: usize) -> Option<usize> {
        assert!(
            i < self.len(),
            "swap_remove_host: index {i} out of range for {} hosts",
            self.len()
        );
        let last = self.len() - 1;
        let moved = if i < last {
            let (out_m, in_m) = (&mut self.outgoing, &mut self.incoming);
            out_m.swap_rows(i, last);
            in_m.swap_rows(i, last);
            Some(last)
        } else {
            None
        };
        self.outgoing.truncate_rows(last);
        self.incoming.truncate_rows(last);
        moved
    }

    /// Appends another batch's hosts (same dimensionality) — how sharded
    /// evaluation merges per-shard join results in deterministic order.
    pub fn extend_from(&mut self, other: &BatchHostVectors) -> Result<()> {
        if self.is_empty() {
            self.outgoing = other.outgoing.clone();
            self.incoming = other.incoming.clone();
            return Ok(());
        }
        if other.is_empty() {
            return Ok(());
        }
        if other.dim() != self.dim() {
            return Err(IdesError::InvalidInput(format!(
                "cannot merge batches of dimension {} and {}",
                self.dim(),
                other.dim()
            )));
        }
        self.outgoing = self.outgoing.vcat(&other.outgoing)?;
        self.incoming = self.incoming.vcat(&other.incoming)?;
        Ok(())
    }
}

/// Reusable buffers for repeated host joins (evaluation sweeps, simulated
/// protocol servers). Holds the gathered reference submatrices for partial
/// joins, the single-host measurement staging rows, and the normal-equation
/// solver scratch, so the join hot path never clones the factor matrices
/// and — on the batched normal-equation, ridge, and QR paths — performs no
/// allocation per additional host once warm.
#[derive(Debug, Default)]
pub struct JoinWorkspace {
    /// Gathered outgoing reference vectors (partial joins).
    x_sub: Matrix,
    /// Gathered incoming reference vectors (partial joins).
    y_sub: Matrix,
    /// Single-host staging for the thin per-host wrappers (1 x k).
    d_out_row: Matrix,
    /// Single-host staging for the thin per-host wrappers (1 x k).
    d_in_row: Matrix,
    /// Batch-of-one output staging for the per-host wrappers.
    single: BatchHostVectors,
    /// Factorization scratch shared by every solver in the join.
    solvers: SolverScratch,
}

/// The factorization state of a batched join: normal-equation scratch plus
/// the blocked-QR workspace and its factor output, so the QR path factors
/// the reference system **once per batch** through
/// [`ides_linalg::factor::qr_with`] and allocates nothing when warm.
#[derive(Debug, Default)]
struct SolverScratch {
    /// Normal-equation / ridge solver scratch.
    ne: solve::NormalEqWorkspace,
    /// Blocked-factorization workspace (QR panels, block-apply buffers).
    factor: FactorWorkspace,
    /// Reused QR factor of the batch's reference system.
    qr: Qr,
}

impl JoinWorkspace {
    /// Creates an empty workspace; buffers grow to their high-water mark on
    /// first use.
    pub fn new() -> Self {
        JoinWorkspace::default()
    }
}

/// Solves the join for one ordinary host.
///
/// * `x_refs` / `y_refs`: outgoing / incoming vectors of the `k` reference
///   nodes as rows (`k x d`).
/// * `d_out[i]`: measured distance *to* reference `i`.
/// * `d_in[i]`: measured distance *from* reference `i`.
///
/// Requires `k >= d` (the paper's solvability condition); returns
/// [`IdesError::TooFewObservations`] otherwise (unless a positive ridge
/// term makes the smaller system well-posed).
///
/// Convenience wrapper over [`join_host_with`] that builds a fresh
/// [`JoinWorkspace`] per call; batch callers should hold one workspace.
pub fn join_host(
    x_refs: &Matrix,
    y_refs: &Matrix,
    d_out: &[f64],
    d_in: &[f64],
    opts: JoinOptions,
) -> Result<HostVectors> {
    let mut ws = JoinWorkspace::new();
    join_host_with(&mut ws, x_refs, y_refs, d_out, d_in, opts)
}

/// [`join_host`] with caller-provided workspace: the variant repeated-join
/// callers (protocol servers, per-host sweeps) use to avoid per-join clones
/// of the reference matrices. A thin wrapper over a batch of one —
/// [`join_hosts_with`] is the same computation for many hosts at once.
pub fn join_host_with(
    ws: &mut JoinWorkspace,
    x_refs: &Matrix,
    y_refs: &Matrix,
    d_out: &[f64],
    d_in: &[f64],
    opts: JoinOptions,
) -> Result<HostVectors> {
    let k = x_refs.rows();
    if d_out.len() != k || d_in.len() != k {
        return Err(IdesError::InvalidInput(format!(
            "expected {k} out/in measurements, got {}/{}",
            d_out.len(),
            d_in.len()
        )));
    }
    ws.d_out_row.reset_shape(1, k);
    ws.d_out_row.row_mut(0).copy_from_slice(d_out);
    ws.d_in_row.reset_shape(1, k);
    ws.d_in_row.row_mut(0).copy_from_slice(d_in);
    join_refs_batch(
        &mut ws.solvers,
        x_refs,
        y_refs,
        &ws.d_out_row,
        &ws.d_in_row,
        opts,
        &mut ws.single,
    )?;
    Ok(ws.single.host(0))
}

/// Joins a whole batch of ordinary hosts against one reference set in one
/// shot, returning owned per-host vectors.
///
/// * `x_refs` / `y_refs`: outgoing / incoming vectors of the `k` shared
///   reference nodes as rows (`k x d`).
/// * `d_out` / `d_in`: `hosts x k` measurement matrices — row `h` holds
///   host `h`'s measured distances to (`d_out`) and from (`d_in`) each
///   reference.
///
/// One factorization of the shared system serves every host; see the
/// module docs for the cost model and the bit-identity guarantee relative
/// to per-host [`join_host_with`] calls. Convenience wrapper over
/// [`join_hosts_into`], which reuses the output batch across calls.
pub fn join_hosts_with(
    ws: &mut JoinWorkspace,
    x_refs: &Matrix,
    y_refs: &Matrix,
    d_out: &Matrix,
    d_in: &Matrix,
    opts: JoinOptions,
) -> Result<Vec<HostVectors>> {
    let mut batch = BatchHostVectors::new();
    join_hosts_into(ws, x_refs, y_refs, d_out, d_in, opts, &mut batch)?;
    Ok(batch.to_hosts())
}

/// [`join_hosts_with`] writing the batch into a caller-owned
/// [`BatchHostVectors`]: the zero-allocation core of the batched join
/// path. Once `ws` and `out` are warm (have held a batch at least this
/// large), joining additional hosts allocates nothing on the QR,
/// normal-equation, and ridge paths.
pub fn join_hosts_into(
    ws: &mut JoinWorkspace,
    x_refs: &Matrix,
    y_refs: &Matrix,
    d_out: &Matrix,
    d_in: &Matrix,
    opts: JoinOptions,
    out: &mut BatchHostVectors,
) -> Result<()> {
    if d_out.shape() != d_in.shape() {
        return Err(IdesError::InvalidInput(format!(
            "measurement batch shapes disagree: out {:?}, in {:?}",
            d_out.shape(),
            d_in.shape()
        )));
    }
    if d_out.cols() != x_refs.rows() {
        return Err(IdesError::InvalidInput(format!(
            "expected {} measurements per host, got {}",
            x_refs.rows(),
            d_out.cols()
        )));
    }
    join_refs_batch(&mut ws.solvers, x_refs, y_refs, d_out, d_in, opts, out)
}

/// Shared batched-join core: validates the reference system, then solves
/// the outgoing batch against `y_refs` and the incoming batch against
/// `x_refs`.
fn join_refs_batch(
    solvers: &mut SolverScratch,
    x_refs: &Matrix,
    y_refs: &Matrix,
    d_out: &Matrix,
    d_in: &Matrix,
    opts: JoinOptions,
    out: &mut BatchHostVectors,
) -> Result<()> {
    let k = x_refs.rows();
    let d = x_refs.cols();
    if y_refs.shape() != (k, d) {
        return Err(IdesError::InvalidInput(format!(
            "reference vector shapes disagree: X {:?}, Y {:?}",
            x_refs.shape(),
            y_refs.shape()
        )));
    }
    if k < d && opts.ridge <= 0.0 {
        return Err(IdesError::TooFewObservations {
            observed: k,
            needed: d,
        });
    }
    // X_new solves min ‖Y_refs · X_newᵀ − d_out‖ (each reference's incoming
    // vector dotted with X_new approximates the outgoing distance).
    solve_batch(solvers, y_refs, d_out, opts, &mut out.outgoing)?;
    solve_batch(solvers, x_refs, d_in, opts, &mut out.incoming)?;
    Ok(())
}

/// Shared validate-and-gather step of the subset joins: checks the subset
/// indices against the reference system and the solvability condition,
/// then gathers the observed reference rows into `ws.x_sub` / `ws.y_sub`.
/// Both the per-host and the grouped-batch subset joins run through this
/// one helper so their guard conditions cannot drift apart (the grouped
/// sweep's bit-identity contract depends on that).
fn gather_subset(
    ws: &mut JoinWorkspace,
    x_refs: &Matrix,
    y_refs: &Matrix,
    observed: &[usize],
    opts: JoinOptions,
) -> Result<()> {
    let k = x_refs.rows();
    let d = x_refs.cols();
    if let Some(&bad) = observed.iter().find(|&&i| i >= k) {
        return Err(IdesError::InvalidInput(format!(
            "observed reference index {bad} out of range for {k} references"
        )));
    }
    if observed.len() < d && opts.ridge <= 0.0 {
        return Err(IdesError::TooFewObservations {
            observed: observed.len(),
            needed: d,
        });
    }
    x_refs.select_rows_into(observed, &mut ws.x_sub);
    y_refs.select_rows_into(observed, &mut ws.y_sub);
    Ok(())
}

/// Partial join through the reference subset `observed` (row indices into
/// `x_refs`/`y_refs`): gathers the subset into the workspace instead of
/// cloning fresh submatrices per call.
pub fn join_host_subset_with(
    ws: &mut JoinWorkspace,
    x_refs: &Matrix,
    y_refs: &Matrix,
    observed: &[usize],
    d_out: &[f64],
    d_in: &[f64],
    opts: JoinOptions,
) -> Result<HostVectors> {
    if observed.len() != d_out.len() || observed.len() != d_in.len() {
        return Err(IdesError::InvalidInput(
            "observed indices and measurements must have equal length".into(),
        ));
    }
    gather_subset(ws, x_refs, y_refs, observed, opts)?;
    ws.d_out_row.reset_shape(1, observed.len());
    ws.d_out_row.row_mut(0).copy_from_slice(d_out);
    ws.d_in_row.reset_shape(1, observed.len());
    ws.d_in_row.row_mut(0).copy_from_slice(d_in);
    join_refs_batch(
        &mut ws.solvers,
        &ws.x_sub,
        &ws.y_sub,
        &ws.d_out_row,
        &ws.d_in_row,
        opts,
        &mut ws.single,
    )?;
    Ok(ws.single.host(0))
}

/// Joins a whole **batch of hosts sharing one observed reference subset**
/// (row indices into `x_refs`/`y_refs`) through a single factorization of
/// the gathered subsystem — the grouped form of [`join_host_subset_with`]
/// the §6.2 failure sweep uses: hosts are grouped by identical observed
/// subset and each distinct subset is gathered and factored **once**.
///
/// `d_out` / `d_in` are `hosts x observed.len()` measurement matrices in
/// subset order. Because the batched solvers' arithmetic per host is
/// independent of the batch's row count, the results are **bit-identical**
/// to per-host [`join_host_subset_with`] calls with the same subset.
#[allow(clippy::too_many_arguments)]
pub fn join_hosts_subset_into(
    ws: &mut JoinWorkspace,
    x_refs: &Matrix,
    y_refs: &Matrix,
    observed: &[usize],
    d_out: &Matrix,
    d_in: &Matrix,
    opts: JoinOptions,
    out: &mut BatchHostVectors,
) -> Result<()> {
    if d_out.shape() != d_in.shape() {
        return Err(IdesError::InvalidInput(format!(
            "measurement batch shapes disagree: out {:?}, in {:?}",
            d_out.shape(),
            d_in.shape()
        )));
    }
    if d_out.cols() != observed.len() {
        return Err(IdesError::InvalidInput(format!(
            "expected {} measurements per host, got {}",
            observed.len(),
            d_out.cols()
        )));
    }
    gather_subset(ws, x_refs, y_refs, observed, opts)?;
    join_refs_batch(
        &mut ws.solvers,
        &ws.x_sub,
        &ws.y_sub,
        d_out,
        d_in,
        opts,
        out,
    )
}

/// Solves `min ‖A xₕᵀ − bₕ‖` for every measurement row `bₕ` of `b` with one
/// shared factorization, writing host `h`'s solution into row `h` of `out`.
fn solve_batch(
    solvers: &mut SolverScratch,
    a: &Matrix,
    b: &Matrix,
    opts: JoinOptions,
    out: &mut Matrix,
) -> Result<()> {
    let hosts = b.rows();
    let d = a.cols();
    if opts.ridge > 0.0 {
        solve::lstsq_ridge_multi_with(a, b, opts.ridge, &mut solvers.ne, out)?;
        return Ok(());
    }
    match opts.solver {
        JoinSolver::Qr => {
            out.reset_shape(hosts, d);
            // Factor the shared reference system once per batch through the
            // blocked factorization layer; the workspace and the `Qr` output
            // are reused across batches, so a warm join allocates nothing.
            match qr_with(a, &mut solvers.factor, &mut solvers.qr) {
                Ok(()) => {
                    let Qr { q, r } = &solvers.qr;
                    // QᵀB for the whole batch in one GEMM (row h = Qᵀ bₕ),
                    // then one in-place back-substitution per host.
                    b.matmul_into(q, out)?;
                    for h in 0..hosts {
                        if qr::solve_upper_triangular_in_place(r, out.row_mut(h)).is_err() {
                            // Rank-deficient column: same fallback the
                            // scalar `qr::lstsq` path used per host.
                            let x = solve::lstsq_normal(a, b.row(h))?;
                            out.row_mut(h).copy_from_slice(&x);
                        }
                    }
                }
                // k < d (ridge-regularized callers only) or a degenerate
                // reference system: minimum-norm solution per host.
                Err(_) => {
                    for h in 0..hosts {
                        let x = solve::lstsq_normal(a, b.row(h))?;
                        out.row_mut(h).copy_from_slice(&x);
                    }
                }
            }
        }
        JoinSolver::NormalEquations => {
            // λ = 0 ridge is exactly the normal equations, solved through
            // the workspace (falls back to the pseudo-inverse path on
            // rank deficiency, like `lstsq_normal`).
            solve::lstsq_ridge_multi_with(a, b, 0.0, &mut solvers.ne, out)?;
        }
        JoinSolver::NonNegative => {
            // NNLS is an active-set iteration with no shared factorization;
            // solve per host (the one non-amortized solver).
            out.reset_shape(hosts, d);
            for h in 0..hosts {
                let x = nnls::nnls(a, b.row(h))?;
                out.row_mut(h).copy_from_slice(&x);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ides_mf::svd_model::{fit_matrix, SvdConfig};
    use ides_netsim::topology::figure1_distance_matrix;

    /// The §5.1 worked example: landmark vectors from the Figure-1 matrix,
    /// host H1 with distances [0.5, 1.5, 1.5, 2.5] to all four landmarks.
    #[test]
    fn paper_section5_basic_example() {
        let d = figure1_distance_matrix();
        let model = fit_matrix(
            &d,
            SvdConfig {
                dim: 3,
                force_exact: true,
            },
        )
        .unwrap();
        let douts = [0.5, 1.5, 1.5, 2.5];
        let h1 = join_host(model.x(), model.y(), &douts, &douts, JoinOptions::default()).unwrap();
        // Distances to landmarks are exactly preserved.
        for (i, &expected) in douts.iter().enumerate() {
            let est = h1.distance_to(model.incoming(i));
            assert!(
                (est - expected).abs() < 1e-9,
                "to L{i}: {est} vs {expected}"
            );
            let est = h1.distance_from(model.outgoing(i));
            assert!(
                (est - expected).abs() < 1e-9,
                "from L{i}: {est} vs {expected}"
            );
        }
        // H2 mirrors H1; the predicted H1–H2 distance is 3.25 (true 3).
        let d2 = [2.5, 1.5, 1.5, 0.5];
        let h2 = join_host(model.x(), model.y(), &d2, &d2, JoinOptions::default()).unwrap();
        let est = h1.distance_to_host(&h2);
        assert!((est - 3.25).abs() < 1e-9, "H1->H2 {est}");
        let est_rev = h2.distance_to_host(&h1);
        assert!((est_rev - 3.25).abs() < 1e-9, "H2->H1 {est_rev}");
    }

    /// The §5.2 relaxed example: H2 joins through L2, L4 and the
    /// already-joined H1 instead of all landmarks.
    #[test]
    fn paper_section5_relaxed_example() {
        let d = figure1_distance_matrix();
        let model = fit_matrix(
            &d,
            SvdConfig {
                dim: 3,
                force_exact: true,
            },
        )
        .unwrap();
        // H1 joins through L1, L2, L3 (measured distances 0.5, 1.5, 1.5).
        let x_sub = model.x().select_rows(&[0, 1, 2]);
        let y_sub = model.y().select_rows(&[0, 1, 2]);
        let m1 = [0.5, 1.5, 1.5];
        let h1 = join_host(&x_sub, &y_sub, &m1, &m1, JoinOptions::default()).unwrap();
        // The unmeasured distance H1–L4 is predicted exactly (2.5).
        let est = h1.distance_to(model.incoming(3));
        assert!((est - 2.5).abs() < 1e-9, "H1->L4 {est}");

        // H2 joins through L2, L4, H1 with distances [1.5, 0.5, 3].
        let x_refs = Matrix::from_rows(&[
            model.outgoing(1).to_vec(),
            model.outgoing(3).to_vec(),
            h1.outgoing.clone(),
        ])
        .unwrap();
        let y_refs = Matrix::from_rows(&[
            model.incoming(1).to_vec(),
            model.incoming(3).to_vec(),
            h1.incoming.clone(),
        ])
        .unwrap();
        let m2 = [1.5, 0.5, 3.0];
        let h2 = join_host(&x_refs, &y_refs, &m2, &m2, JoinOptions::default()).unwrap();
        // Paper: H2–L1 ≈ 2.3 (true 2.5) and H2–L3 ≈ 1.3 (true 1.5); the
        // worst relative error in the example is 15 %.
        let to_l1 = h2.distance_to(model.incoming(0));
        assert!((to_l1 - 2.5).abs() <= 0.25, "H2->L1 {to_l1}");
        let to_l3 = h2.distance_to(model.incoming(2));
        assert!((to_l3 - 1.5).abs() <= 0.25, "H2->L3 {to_l3}");
    }

    #[test]
    fn too_few_references_rejected() {
        let x = Matrix::zeros(2, 3);
        let y = Matrix::zeros(2, 3);
        let err = join_host(&x, &y, &[1.0, 2.0], &[1.0, 2.0], JoinOptions::default());
        assert!(matches!(
            err,
            Err(IdesError::TooFewObservations {
                observed: 2,
                needed: 3
            })
        ));
        // But a ridge term makes it solvable.
        let ok = join_host(
            &x,
            &y,
            &[1.0, 2.0],
            &[1.0, 2.0],
            JoinOptions {
                ridge: 0.1,
                ..Default::default()
            },
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn solver_variants_agree_on_well_posed_interior_problem() {
        let d = figure1_distance_matrix();
        let model = fit_matrix(
            &d,
            SvdConfig {
                dim: 3,
                force_exact: true,
            },
        )
        .unwrap();
        let m = [0.5, 1.5, 1.5, 2.5];
        let qr = join_host(model.x(), model.y(), &m, &m, JoinOptions::default()).unwrap();
        let ne = join_host(
            model.x(),
            model.y(),
            &m,
            &m,
            JoinOptions {
                solver: JoinSolver::NormalEquations,
                ..Default::default()
            },
        )
        .unwrap();
        for (a, b) in qr.outgoing.iter().zip(ne.outgoing.iter()) {
            assert!(
                (a - b).abs() < 1e-8,
                "QR {:?} vs NE {:?}",
                qr.outgoing,
                ne.outgoing
            );
        }
    }

    #[test]
    fn nonnegative_solver_gives_nonnegative_predictions() {
        // With NMF landmark vectors (nonnegative) and NNLS join, all
        // predicted distances are nonnegative by construction.
        let ds = ides_datasets::generators::gnp_like(12, 3).unwrap();
        let sub: Vec<usize> = (0..8).collect();
        let landmarks = ds.matrix.submatrix(&sub, &sub);
        let nmf = ides_mf::nmf::fit(&landmarks, ides_mf::nmf::NmfConfig::new(4)).unwrap();
        let model = nmf.model;
        // Host 9 joins via its measured rows.
        let d_out: Vec<f64> = sub.iter().map(|&l| ds.matrix.get(9, l).unwrap()).collect();
        let d_in: Vec<f64> = sub.iter().map(|&l| ds.matrix.get(l, 9).unwrap()).collect();
        let host = join_host(
            model.x(),
            model.y(),
            &d_out,
            &d_in,
            JoinOptions {
                solver: JoinSolver::NonNegative,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(host.outgoing.iter().all(|&v| v >= 0.0));
        assert!(host.incoming.iter().all(|&v| v >= 0.0));
        for l in 0..8 {
            assert!(host.distance_to(model.incoming(l)) >= 0.0);
        }
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let x = Matrix::zeros(4, 2);
        let y = Matrix::zeros(3, 2);
        assert!(join_host(&x, &y, &[0.0; 4], &[0.0; 4], JoinOptions::default()).is_err());
        let y = Matrix::zeros(4, 2);
        assert!(join_host(&x, &y, &[0.0; 3], &[0.0; 4], JoinOptions::default()).is_err());
    }

    #[test]
    fn push_and_swap_remove_hosts() {
        let mut b = BatchHostVectors::new();
        b.push_host(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
        b.push_host(&[5.0, 6.0], &[7.0, 8.0]).unwrap();
        b.push_host(&[9.0, 10.0], &[11.0, 12.0]).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 2);
        // Dimension mismatches rejected.
        assert!(b.push_host(&[1.0], &[2.0]).is_err());
        assert!(b.push_host(&[1.0, 2.0], &[3.0]).is_err());
        // Retire the first host: the last moves into its row.
        assert_eq!(b.swap_remove_host(0), Some(2));
        assert_eq!(b.len(), 2);
        assert_eq!(b.outgoing(0), &[9.0, 10.0]);
        assert_eq!(b.incoming(0), &[11.0, 12.0]);
        assert_eq!(b.outgoing(1), &[5.0, 6.0]);
        // Removing the last row moves nothing.
        assert_eq!(b.swap_remove_host(1), None);
        assert_eq!(b.len(), 1);
        assert_eq!(b.outgoing(0), &[9.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn swap_remove_out_of_range_panics() {
        let mut b = BatchHostVectors::new();
        b.push_host(&[1.0], &[2.0]).unwrap();
        b.swap_remove_host(5);
    }
}
