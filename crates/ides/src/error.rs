//! Error type for the IDES system layer.
//!
//! Implemented by hand (no `thiserror`): the build environment is offline,
//! so derive-based error crates are unavailable; see `vendor/README.md`.

use std::fmt;

/// Result alias using [`IdesError`].
pub type Result<T> = std::result::Result<T, IdesError>;

/// Errors from the IDES system.
#[derive(Debug)]
pub enum IdesError {
    /// Model fitting failed.
    Model(ides_mf::MfError),
    /// Linear algebra failure during a host join.
    Linalg(ides_linalg::LinalgError),
    /// Dataset problem.
    Dataset(ides_datasets::DatasetError),
    /// Invalid configuration or input.
    InvalidInput(String),
    /// Not enough observed reference nodes to solve the join (need >= d).
    TooFewObservations {
        /// Reference nodes with usable measurements.
        observed: usize,
        /// Minimum required (the model dimension).
        needed: usize,
    },
    /// Protocol-level failure in the simulated wire exchange.
    Protocol(String),
}

impl fmt::Display for IdesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdesError::Model(e) => write!(f, "model error: {e}"),
            IdesError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            IdesError::Dataset(e) => write!(f, "dataset error: {e}"),
            IdesError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            IdesError::TooFewObservations { observed, needed } => write!(
                f,
                "only {observed} reference nodes observed, need at least {needed}"
            ),
            IdesError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for IdesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IdesError::Model(e) => Some(e),
            IdesError::Linalg(e) => Some(e),
            IdesError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ides_mf::MfError> for IdesError {
    fn from(e: ides_mf::MfError) -> Self {
        IdesError::Model(e)
    }
}

impl From<ides_linalg::LinalgError> for IdesError {
    fn from(e: ides_linalg::LinalgError) -> Self {
        IdesError::Linalg(e)
    }
}

impl From<ides_datasets::DatasetError> for IdesError {
    fn from(e: ides_datasets::DatasetError) -> Self {
        IdesError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IdesError::TooFewObservations {
            observed: 2,
            needed: 5,
        };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('5'));
        let e: IdesError = ides_linalg::LinalgError::NotPositiveDefinite.into();
        assert!(e.to_string().contains("linear algebra error"));
        let e = IdesError::Protocol("truncated".into());
        assert!(e.to_string().contains("truncated"));
    }
}
