//! Error type for the IDES system layer.

use thiserror::Error;

/// Result alias using [`IdesError`].
pub type Result<T> = std::result::Result<T, IdesError>;

/// Errors from the IDES system.
#[derive(Debug, Error)]
pub enum IdesError {
    /// Model fitting failed.
    #[error("model error: {0}")]
    Model(#[from] ides_mf::MfError),
    /// Linear algebra failure during a host join.
    #[error("linear algebra error: {0}")]
    Linalg(#[from] ides_linalg::LinalgError),
    /// Dataset problem.
    #[error("dataset error: {0}")]
    Dataset(#[from] ides_datasets::DatasetError),
    /// Invalid configuration or input.
    #[error("invalid input: {0}")]
    InvalidInput(String),
    /// Not enough observed reference nodes to solve the join (need >= d).
    #[error("only {observed} reference nodes observed, need at least {needed}")]
    TooFewObservations {
        /// Reference nodes with usable measurements.
        observed: usize,
        /// Minimum required (the model dimension).
        needed: usize,
    },
    /// Protocol-level failure in the simulated wire exchange.
    #[error("protocol error: {0}")]
    Protocol(String),
}
