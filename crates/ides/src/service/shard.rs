//! Horizontal sharding: serve millions of hosts from `N` single-writer
//! engines that replicate the small global landmark model.
//!
//! The paper's information-server state has exactly the shape that
//! shards: the landmark factor model is tiny (`k × d`, global, slowly
//! drifting) while the admitted-host coordinate table dominates and is
//! embarrassingly partitionable — a host's coordinates depend only on its
//! own measurement rows and the landmark model (Eq. 11/12), never on
//! other hosts. [`ShardedEngine`] therefore:
//!
//! * **Replicates** the landmark model: every shard wraps its own
//!   [`QueryEngine`] over a clone of the same [`StreamingServer`], and a
//!   drift epoch is applied to every replica. Replicas run identical
//!   arithmetic on identical inputs, so they stay **bit-identical** —
//!   a landmark row can be read from any shard.
//! * **Partitions** the hosts round-robin: global host id `g` lives on
//!   shard `g % N` at local slot `g / N`. Joins route round-robin, so
//!   shard populations stay balanced within one host.
//! * **Writes concurrently**: each shard owns its coalescer, writer lock,
//!   pair cache, and snapshot cell, so joins/leaves on different shards
//!   never contend. Drift epochs fan out across shards on scoped threads.
//! * **Reads lock-free**: a cross-shard estimate loads each endpoint's
//!   shard snapshot (two `ArcSwap` loads) and dots one coordinate row
//!   from each — the same arithmetic as the single engine, hence
//!   bit-identical answers (property-tested in
//!   `tests/sharding_determinism.rs`).
//!
//! Estimates memoize in a `ShardedEngine`-level pair cache tagged with
//! **both** endpoint snapshots' versions, so a publish on either shard
//! invalidates exactly the entries it must.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ides_linalg::Matrix;
use ides_mf::FactorModel;

use crate::error::{IdesError, Result};
use crate::streaming::{EpochOutcome, EpochUpdate, StreamingServer};
use crate::telemetry as tm;

use super::metrics::{EpochPlanTotals, LatencyHistogram, ServiceStats};
use super::{DistanceService, NodeId, PairCache, QueryEngine, ServiceConfig, Snapshot};

/// A horizontally sharded serving engine (see the [module docs](self)).
/// Host ids returned by its join paths are **global** (`local · N +
/// shard`) and only meaningful to this engine.
pub struct ShardedEngine {
    shards: Vec<QueryEngine>,
    /// Round-robin admission router.
    next: AtomicUsize,
    /// Engine-level pair cache, tagged with both endpoint versions.
    cache: PairCache,
    queries: AtomicU64,
    cache_hits: AtomicU64,
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Partitions a fitted [`StreamingServer`] across `shards` replicas
    /// (each shard gets a bit-identical clone of the landmark model and
    /// its own [`QueryEngine`] with `config`).
    pub fn new(server: StreamingServer, shards: usize, config: ServiceConfig) -> Result<Self> {
        if shards == 0 {
            return Err(IdesError::InvalidInput("need at least one shard".into()));
        }
        let mut engines = Vec::with_capacity(shards);
        for _ in 0..shards - 1 {
            engines.push(QueryEngine::new(server.clone(), config)?);
        }
        engines.push(QueryEngine::new(server, config)?);
        Ok(ShardedEngine {
            shards: engines,
            next: AtomicUsize::new(0),
            cache: PairCache::new(config.cache_shards, config.cache_capacity),
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`'s engine (for per-shard observability).
    pub fn shard(&self, i: usize) -> &QueryEngine {
        &self.shards[i]
    }

    /// Number of landmarks.
    pub fn landmark_count(&self) -> usize {
        self.shards[0].landmark_count()
    }

    /// Which shard owns `node`'s coordinate row. Landmarks are replicated
    /// everywhere and report shard 0.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.owner(node).unwrap_or(0)
    }

    /// `Some(shard)` for hosts, `None` for (replicated) landmarks.
    fn owner(&self, node: NodeId) -> Option<usize> {
        match node {
            NodeId::Host(g) => Some(g % self.shards.len()),
            NodeId::Landmark(_) => None,
        }
    }

    /// Maps a global id to the owning shard's local id.
    fn to_local(&self, node: NodeId) -> NodeId {
        match node {
            NodeId::Host(g) => NodeId::Host(g / self.shards.len()),
            lm => lm,
        }
    }

    /// Maps a shard-local id back to the global namespace.
    fn to_global(&self, shard: usize, node: NodeId) -> NodeId {
        match node {
            NodeId::Host(s) => NodeId::Host(s * self.shards.len() + shard),
            lm => lm,
        }
    }

    /// Pins every shard's current snapshot (one `ArcSwap` load each);
    /// answer a batch against the returned vector via
    /// [`ShardedEngine::estimate_on`] for one consistent cross-shard view.
    pub fn snapshots(&self) -> Vec<Arc<Snapshot>> {
        self.shards.iter().map(|s| s.snapshot()).collect()
    }

    /// Estimated distance from `a` to `b`: `a`'s outgoing row from its
    /// shard's snapshot dotted with `b`'s incoming row from its — the
    /// same Eq. 10 arithmetic as [`Snapshot::estimate`], so answers are
    /// bit-identical to a single engine holding all hosts. A
    /// host–landmark pair reads both rows from the host's shard (one
    /// snapshot, exactly like the single engine); only host–host pairs on
    /// different shards touch two snapshots.
    pub fn estimate(&self, a: NodeId, b: NodeId) -> Result<f64> {
        self.estimate_with(a, b, |shard| self.shards[shard].snapshot())
    }

    /// [`ShardedEngine::estimate`] against caller-pinned snapshots (from
    /// [`ShardedEngine::snapshots`]); the cache still tags by the pinned
    /// versions.
    pub fn estimate_on(&self, snaps: &[Arc<Snapshot>], a: NodeId, b: NodeId) -> Result<f64> {
        assert_eq!(snaps.len(), self.shards.len(), "pinned snapshot set size");
        self.estimate_with(a, b, |shard| snaps[shard].clone())
    }

    fn estimate_with(
        &self,
        a: NodeId,
        b: NodeId,
        snap_of: impl Fn(usize) -> Arc<Snapshot>,
    ) -> Result<f64> {
        // Like `QueryEngine::estimate_on`: the always-on stats counter's
        // pre-increment value doubles as the span-sampling tick, so an
        // enabled query costs one relaxed flag load beyond disabled.
        let q = self.queries.fetch_add(1, Ordering::Relaxed);
        let t0 = (tm::enabled() && q.is_multiple_of(super::QUERY_SPAN_SAMPLING)).then(tm::now_ns);
        // Host endpoints anchor the shard choice; a host–landmark pair
        // resolves both rows on the host's shard, landmark–landmark on
        // shard 0.
        let sa = self.owner(a).or_else(|| self.owner(b)).unwrap_or(0);
        let sb = self.owner(b).unwrap_or(sa);
        let snap_a = snap_of(sa);
        let snap_b = if sb == sa {
            snap_a.clone()
        } else {
            snap_of(sb)
        };
        let (ka, kb) = (a.encode(), b.encode());
        let (va, vb) = (snap_a.version(), snap_b.version());
        if let Some(est) = self.cache.get(va, vb, ka, kb) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(t0) = t0 {
                tm::record_at(tm::Stage::CacheHit, t0);
            }
            return Ok(est);
        }
        let est = FactorModel::dot(
            snap_a.outgoing_of(self.to_local(a))?,
            snap_b.incoming_of(self.to_local(b))?,
        );
        self.cache.insert(va, vb, ka, kb, est);
        if let Some(t0) = t0 {
            tm::record_at(tm::Stage::Query, t0);
        }
        Ok(est)
    }

    /// Answers a batch of pair queries against one pinned cross-shard
    /// view, appending to `out`.
    pub fn estimate_batch(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<f64>) -> Result<()> {
        let snaps = self.snapshots();
        out.reserve(pairs.len());
        for &(a, b) in pairs {
            out.push(self.estimate_on(&snaps, a, b)?);
        }
        Ok(())
    }

    /// Admits a host through the next shard's coalescer (round-robin).
    pub fn join(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        let shard = self.route();
        let local = self.shards[shard].join(d_out, d_in)?;
        Ok(self.to_global(shard, local))
    }

    /// Admits a host through the next shard's per-request control path.
    pub fn join_per_request(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        let shard = self.route();
        let local = self.shards[shard].join_per_request(d_out, d_in)?;
        Ok(self.to_global(shard, local))
    }

    /// Admits a host through the next shard's direct (uncoalesced) path.
    pub fn join_direct(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        let shard = self.route();
        let local = self.shards[shard].join_direct(d_out, d_in)?;
        Ok(self.to_global(shard, local))
    }

    fn route(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Bulk admission: rows are dealt round-robin (row `r` to shard
    /// `r % N`), each shard solves its sub-batch with one batched solve
    /// and one publish, and the sub-batches run **concurrently** on
    /// scoped threads. Returns global ids in row order.
    pub fn join_many(&self, d_out: &Matrix, d_in: &Matrix) -> Result<Vec<NodeId>> {
        let n = self.shards.len();
        if n == 1 {
            return self.shards[0].join_many(d_out, d_in);
        }
        if d_out.shape() != d_in.shape() {
            return Err(IdesError::InvalidInput(format!(
                "measurement batch shapes differ: out {:?}, in {:?}",
                d_out.shape(),
                d_in.shape()
            )));
        }
        let rows = d_out.rows();
        let k = d_out.cols();
        // Deal rows into per-shard sub-batches.
        let mut sub_out: Vec<Matrix> = (0..n).map(|_| Matrix::zeros(0, k)).collect();
        let mut sub_in: Vec<Matrix> = (0..n).map(|_| Matrix::zeros(0, k)).collect();
        for r in 0..rows {
            sub_out[r % n].push_row(&d_out.as_slice()[r * k..(r + 1) * k]);
            sub_in[r % n].push_row(&d_in.as_slice()[r * k..(r + 1) * k]);
        }
        let per_shard: Vec<Result<Vec<NodeId>>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (shard, (so, si)) in sub_out.iter().zip(sub_in.iter()).enumerate() {
                let engine = &self.shards[shard];
                handles.push(scope.spawn(move || {
                    let prev = tm::set_shard(shard as u32);
                    let r = engine.join_many(so, si);
                    tm::set_shard(prev);
                    r
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("shard join panicked"))
                .collect()
        });
        let mut locals: Vec<std::vec::IntoIter<NodeId>> = Vec::with_capacity(n);
        for r in per_shard {
            locals.push(r?.into_iter());
        }
        let mut ids = Vec::with_capacity(rows);
        for r in 0..rows {
            let shard = r % n;
            let local = locals[shard].next().expect("shard returned too few ids");
            ids.push(self.to_global(shard, local));
        }
        Ok(ids)
    }

    /// Retires a host on its owning shard.
    pub fn leave(&self, host: NodeId) -> Result<()> {
        let Some(shard) = self.owner(host) else {
            return Err(IdesError::InvalidInput(
                "landmarks cannot leave the service".into(),
            ));
        };
        self.shards[shard].leave(self.to_local(host))
    }

    /// Retires a batch of hosts, grouped so each involved shard publishes
    /// once.
    pub fn leave_many(&self, hosts: &[NodeId]) -> Result<()> {
        let n = self.shards.len();
        let mut by_shard: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &h in hosts {
            let Some(shard) = self.owner(h) else {
                return Err(IdesError::InvalidInput(
                    "landmarks cannot leave the service".into(),
                ));
            };
            by_shard[shard].push(self.to_local(h));
        }
        for (shard, batch) in by_shard.iter().enumerate() {
            self.shards[shard].leave_many(batch)?;
        }
        Ok(())
    }

    /// Applies one drift epoch to **every** shard replica, concurrently
    /// on scoped threads. Replicas run identical arithmetic, so their
    /// models stay bit-identical; the returned outcome is shard 0's
    /// (all shards' outcomes are equal).
    pub fn apply_epoch(&self, update: &EpochUpdate) -> Result<EpochOutcome> {
        if self.shards.len() == 1 {
            return self.shards[0].apply_epoch(update);
        }
        let outcomes: Vec<Result<EpochOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(shard, engine)| {
                    scope.spawn(move || {
                        let prev = tm::set_shard(shard as u32);
                        let r = engine.apply_epoch(update);
                        tm::set_shard(prev);
                        r
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard epoch panicked"))
                .collect()
        });
        let mut first = None;
        for o in outcomes {
            let o = o?;
            first.get_or_insert(o);
        }
        Ok(first.expect("at least one shard"))
    }

    /// Applies a batch of drift epochs to every shard replica,
    /// concurrently on scoped threads, with each replica running the
    /// cross-epoch pipeline ([`QueryEngine::apply_epochs`]): within a
    /// shard, epoch `N`'s host rejoins overlap epoch `N+1`'s landmark
    /// absorbs. Replicas run identical arithmetic, so their final models
    /// stay bit-identical; the returned outcomes are shard 0's.
    pub fn apply_epochs(&self, updates: &[EpochUpdate]) -> Result<Vec<EpochOutcome>> {
        if self.shards.len() == 1 {
            return self.shards[0].apply_epochs(updates);
        }
        let results: Vec<Result<Vec<EpochOutcome>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(shard, engine)| {
                    scope.spawn(move || {
                        let prev = tm::set_shard(shard as u32);
                        let r = engine.apply_epochs(updates);
                        tm::set_shard(prev);
                        r
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard epoch batch panicked"))
                .collect()
        });
        let mut first = None;
        for r in results {
            let r = r?;
            first.get_or_insert(r);
        }
        Ok(first.expect("at least one shard"))
    }

    /// A live host's `(outgoing, incoming)` coordinate rows, read from
    /// its shard's current snapshot (the bit-identity tests compare these
    /// against a single engine's table).
    pub fn host_coords(&self, host: NodeId) -> Result<(Vec<f64>, Vec<f64>)> {
        let shard = self.owner(host).ok_or_else(|| {
            IdesError::InvalidInput("landmark coordinates live in the model".into())
        })?;
        let snap = self.shards[shard].snapshot();
        let local = self.to_local(host);
        Ok((
            snap.outgoing_of(local)?.to_vec(),
            snap.incoming_of(local)?.to_vec(),
        ))
    }

    /// Aggregate counters: queries and cache hits are engine-level (the
    /// sharded estimate path does not pass through the per-shard
    /// engines); joins, flushes, and leaves sum across shards; `epochs`
    /// is shard 0's count (every shard applies every epoch); `version`
    /// sums shard publish counts (total publishes).
    pub fn stats(&self) -> ServiceStats {
        let mut joins = 0;
        let mut flushes = 0;
        let mut leaves = 0;
        let mut version = 0;
        let mut coalescer_depth = 0;
        let mut cache_occupied = 0;
        let mut cache_slots = 0;
        let mut chunk_shared = 0;
        let mut chunk_total = 0;
        for s in &self.shards {
            let st = s.stats();
            joins += st.joins;
            flushes += st.flushes;
            leaves += st.leaves;
            version += st.version;
            coalescer_depth += st.coalescer_depth;
            cache_occupied += st.cache_occupied;
            cache_slots += st.cache_slots;
            chunk_shared += st.chunk_shared;
            chunk_total += st.chunk_total;
        }
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            joins,
            flushes,
            leaves,
            epochs: self.shards[0].stats().epochs,
            version,
            coalescer_depth,
            cache_occupied,
            cache_slots,
            chunk_shared,
            chunk_total,
        }
    }

    /// Per-shard counter snapshots (shard imbalance observability).
    pub fn shard_stats(&self) -> Vec<ServiceStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Publish-latency histograms merged across every shard.
    pub fn publish_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for s in &self.shards {
            merged.merge(&s.publish_latency());
        }
        merged
    }

    /// Epoch-plan totals merged across every shard replica (sums, with
    /// `max_width` the cross-shard high-water mark). Every shard executes
    /// its own plan of each epoch, so `epochs` counts shard-plans, not
    /// distinct drift epochs.
    pub fn epoch_plan_totals(&self) -> EpochPlanTotals {
        let mut merged = EpochPlanTotals::default();
        for s in &self.shards {
            merged.merge(&s.epoch_plan_totals());
        }
        merged
    }
}

impl DistanceService for ShardedEngine {
    fn landmark_count(&self) -> usize {
        ShardedEngine::landmark_count(self)
    }
    fn estimate(&self, a: NodeId, b: NodeId) -> Result<f64> {
        ShardedEngine::estimate(self, a, b)
    }
    fn join(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        ShardedEngine::join(self, d_out, d_in)
    }
    fn join_per_request(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        ShardedEngine::join_per_request(self, d_out, d_in)
    }
    fn join_many(&self, d_out: &Matrix, d_in: &Matrix) -> Result<Vec<NodeId>> {
        ShardedEngine::join_many(self, d_out, d_in)
    }
    fn leave(&self, host: NodeId) -> Result<()> {
        ShardedEngine::leave(self, host)
    }
    fn apply_epoch(&self, update: &EpochUpdate) -> Result<EpochOutcome> {
        ShardedEngine::apply_epoch(self, update)
    }
    fn apply_epochs(&self, updates: &[EpochUpdate]) -> Result<Vec<EpochOutcome>> {
        ShardedEngine::apply_epochs(self, updates)
    }
    fn stats(&self) -> ServiceStats {
        ShardedEngine::stats(self)
    }
    fn epoch_plan_totals(&self) -> EpochPlanTotals {
        ShardedEngine::epoch_plan_totals(self)
    }
    fn current_epoch(&self) -> f64 {
        self.shards[0].snapshot().epoch()
    }
    fn publish_latency(&self) -> LatencyHistogram {
        ShardedEngine::publish_latency(self)
    }
    fn shard_count(&self) -> usize {
        ShardedEngine::shard_count(self)
    }
    fn shard_of(&self, node: NodeId) -> usize {
        ShardedEngine::shard_of(self, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::{MeasurementDelta, StalenessPolicy};

    fn server(k: usize, dim: usize) -> StreamingServer {
        let ds = ides_datasets::generators::p2psim_like(k + 20, 7).expect("dataset");
        let sub: Vec<usize> = (0..k).collect();
        let lm = ds.matrix.submatrix(&sub, &sub);
        StreamingServer::new(&lm, dim, StalenessPolicy::default()).expect("server")
    }

    fn meas(k: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..k)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 * 50.0 + 5.0
            })
            .collect()
    }

    #[test]
    fn ids_round_trip_across_shards() {
        let e = ShardedEngine::new(server(10, 4), 3, ServiceConfig::default()).expect("engine");
        assert_eq!(e.shard_count(), 3);
        let ids: Vec<NodeId> = (0..7)
            .map(|i| e.join_direct(&meas(10, i), &meas(10, 100 + i)).unwrap())
            .collect();
        // Round-robin routing: consecutive joins land on consecutive
        // shards, and ids decode back to their shard.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(e.shard_of(id), i % 3, "join {i} routed unexpectedly");
            let (o, inn) = e.host_coords(id).expect("coords");
            assert_eq!(o.len(), 4);
            assert_eq!(inn.len(), 4);
            assert!(e.estimate(id, NodeId::Landmark(0)).unwrap().is_finite());
        }
        // Population is balanced within one host.
        let per_shard: Vec<usize> = e.shard_stats().iter().map(|s| s.joins as usize).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 7);
        assert!(per_shard.iter().all(|&c| (2..=3).contains(&c)));
        // Leave frees the right shard-local slot.
        e.leave(ids[4]).unwrap();
        assert!(e.estimate(ids[4], NodeId::Landmark(0)).is_err());
        assert!(e.estimate(ids[5], NodeId::Landmark(0)).is_ok());
    }

    #[test]
    fn landmark_estimates_match_any_shard_replica() {
        let e = ShardedEngine::new(server(12, 4), 4, ServiceConfig::default()).expect("engine");
        // Replicated model: landmark-landmark estimates equal every
        // shard's own answer bit for bit.
        let want = e
            .estimate(NodeId::Landmark(2), NodeId::Landmark(9))
            .unwrap();
        for i in 0..4 {
            let shard_ans = e
                .shard(i)
                .estimate(NodeId::Landmark(2), NodeId::Landmark(9))
                .unwrap();
            assert_eq!(want.to_bits(), shard_ans.to_bits(), "shard {i} diverged");
        }
        // ... and drift keeps replicas in lockstep.
        e.apply_epoch(&EpochUpdate {
            epoch: 1.0,
            deltas: vec![
                MeasurementDelta {
                    from: 0,
                    to: 5,
                    rtt: 30.0,
                },
                MeasurementDelta {
                    from: 5,
                    to: 0,
                    rtt: 30.0,
                },
            ],
        })
        .unwrap();
        let after = e
            .estimate(NodeId::Landmark(0), NodeId::Landmark(5))
            .unwrap();
        for i in 0..4 {
            let shard_ans = e
                .shard(i)
                .estimate(NodeId::Landmark(0), NodeId::Landmark(5))
                .unwrap();
            assert_eq!(after.to_bits(), shard_ans.to_bits(), "shard {i} diverged");
        }
        assert_eq!(e.stats().epochs, 1);
    }

    #[test]
    fn join_many_matches_individual_joins() {
        let k = 10;
        let rows = 11;
        let bulk = ShardedEngine::new(server(k, 4), 3, ServiceConfig::default()).expect("engine");
        let single = ShardedEngine::new(server(k, 4), 3, ServiceConfig::default()).expect("engine");
        let out_rows: Vec<Vec<f64>> = (0..rows).map(|i| meas(k, 1000 + i as u64)).collect();
        let in_rows: Vec<Vec<f64>> = (0..rows).map(|i| meas(k, 2000 + i as u64)).collect();
        let d_out = Matrix::from_rows(&out_rows).unwrap();
        let d_in = Matrix::from_rows(&in_rows).unwrap();
        let ids = bulk.join_many(&d_out, &d_in).unwrap();
        assert_eq!(ids.len(), rows);
        let one_by_one: Vec<NodeId> = (0..rows)
            .map(|i| single.join_direct(&out_rows[i], &in_rows[i]).unwrap())
            .collect();
        // Same routing (round-robin from a fresh engine) and bit-identical
        // coordinates row for row.
        for (a, b) in ids.iter().zip(one_by_one.iter()) {
            assert_eq!(a, b);
            let (ao, ai) = bulk.host_coords(*a).unwrap();
            let (bo, bi) = single.host_coords(*b).unwrap();
            for j in 0..4 {
                assert_eq!(ao[j].to_bits(), bo[j].to_bits());
                assert_eq!(ai[j].to_bits(), bi[j].to_bits());
            }
        }
        // Bulk admission cost: one flush per involved shard.
        assert_eq!(bulk.stats().flushes, 3);
    }

    #[test]
    fn cross_shard_cache_invalidates_on_either_publish() {
        let e = ShardedEngine::new(server(10, 4), 2, ServiceConfig::default()).expect("engine");
        let a = e.join_direct(&meas(10, 1), &meas(10, 2)).unwrap();
        let b = e.join_direct(&meas(10, 3), &meas(10, 4)).unwrap();
        assert_ne!(e.shard_of(a), e.shard_of(b), "pair must straddle shards");
        let first = e.estimate(a, b).unwrap();
        let again = e.estimate(a, b).unwrap();
        assert_eq!(first.to_bits(), again.to_bits());
        assert!(e.stats().cache_hits >= 1, "second read must hit the cache");
        // A publish on b's shard (a leave of an unrelated host there)
        // changes that shard's version; the stale entry stops matching
        // but the answer bits (same coords) are unchanged.
        let c = e.join_direct(&meas(10, 5), &meas(10, 6)).unwrap();
        let hits_before = e.stats().cache_hits;
        let d = e.join_direct(&meas(10, 7), &meas(10, 8)).unwrap();
        let _ = (c, d);
        let after = e.estimate(a, b).unwrap();
        assert_eq!(first.to_bits(), after.to_bits());
        assert_eq!(
            e.stats().cache_hits,
            hits_before,
            "stale version tag must miss"
        );
    }
}
