//! The serving engine (§5.1's *information service*, made concurrent).
//!
//! The paper's deployment story is an information server that answers
//! distance queries for arbitrary host pairs from low-rank coordinates.
//! Everything below `ides::service` computes those coordinates; this
//! module serves them under concurrency:
//!
//! * **Epoch-versioned snapshots.** A [`QueryEngine`] publishes immutable
//!   [`Snapshot`]s — landmark factors, the cached join-Gram factors
//!   (handed off through [`CachedGram::from_factor`], so the snapshot
//!   solves joins bit-identically to the writer without refactoring), and
//!   the admitted-host coordinate table. Readers grab an `Arc<Snapshot>`
//!   from an [`arc_swap::ArcSwap`] cell — the read side is an atomic load
//!   plus an `Arc` clone, with no lock a writer could hold — so queries
//!   never block on drift maintenance and never observe a torn epoch: a
//!   query runs start to finish against one consistent version.
//! * **Chunk-tree publish.** The snapshot's coordinate table and live-set
//!   are [`ChunkedRows`] — persistent chunk trees whose clone cost tracks
//!   the spine length, not the row count. Publishing after a join flush
//!   therefore costs `O(changed chunks)`: at a million admitted hosts a
//!   single-host churn publish clones ~tens of `Arc` pointers where the
//!   flat table used to copy hundreds of megabytes. Published snapshots
//!   stay immutable under the writer's copy-on-write mutations.
//! * **Horizontal sharding.** [`ShardedEngine`] partitions hosts across
//!   `N` single-writer engines that replicate the small global landmark
//!   model; writes on different shards proceed concurrently, and a
//!   cross-shard estimate reads one coordinate row from each endpoint's
//!   shard snapshot, lock-free. The [`DistanceService`] trait abstracts
//!   the sharded and single engines for the load/replay harnesses.
//! * **Request coalescing.** Concurrent [`QueryEngine::join`] calls
//!   accumulate into a pending admission batch; the first joiner becomes
//!   the *leader*, lingers up to [`ServiceConfig::linger`] (or until
//!   [`ServiceConfig::max_batch`] rows are pending), and solves the whole
//!   batch with **one** cached-Gram multi-RHS solve — the same
//!   amortization as the batched QR join (PR 2's 37x at 500 hosts), now
//!   applied across concurrent requesters instead of across one caller's
//!   batch. Because every output row of the batched join depends only on
//!   its own measurement row, coalesced admissions are **bit-identical**
//!   to one-at-a-time [`QueryEngine::join_direct`] calls regardless of
//!   how requests happened to batch.
//! * **Epoch-tagged pair cache.** Pair estimates memoize into a sharded,
//!   direct-mapped cache tagged with the snapshot version(s) they were
//!   computed against; publishing a new snapshot (join, leave, drift
//!   epoch) invalidates by tag mismatch, and eviction is lazy — a stale
//!   or colliding entry is simply overwritten in place, so no reader ever
//!   pays a drain and the cache never allocates after construction.
//! * **Churn.** [`QueryEngine::leave`] retires a host's row to a free
//!   list (the table never reallocates on leave; the slot is recycled by
//!   the next admission), and [`QueryEngine::apply_epoch`] feeds drift
//!   into the underlying [`StreamingServer`] and re-joins the admitted
//!   hosts in one batched solve before publishing.
//!
//! The [`replay`] submodule replays a deterministic
//! [`ides_netsim::workload`] event stream against an engine —
//! bit-identical answers and final coordinates at any thread count — and
//! [`load`] drives wall-clock open/closed-loop load with latency
//! histograms ([`metrics::LatencyHistogram`]) for the `serve` bench group
//! and the `cli serve` command.

pub mod load;
pub mod metrics;
pub mod replay;
pub mod shard;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use arc_swap::ArcSwap;
use ides_linalg::chunked::ChunkedRows;
use ides_linalg::solve::CachedGram;
use ides_linalg::Matrix;
use ides_mf::{DistanceEstimator, FactorModel};
use parking_lot::Mutex;

use crate::error::{IdesError, Result};
use crate::projection::{join_host_with, BatchHostVectors, JoinOptions, JoinSolver, JoinWorkspace};
use crate::streaming::{EpochOutcome, EpochUpdate, RejoinTables, StreamingServer};
use crate::telemetry as tm;

pub use metrics::{EpochPlanTotals, LatencyHistogram, ServiceStats};
pub use shard::ShardedEngine;

/// An endpoint of a distance query: one of the `k` landmarks the engine
/// was built from, or an admitted ordinary host (the id returned by
/// [`QueryEngine::join`]). Host ids are table slots: a departed host's id
/// is recycled by a later admission, and querying it in between returns
/// an error rather than a stale estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// Landmark index (`0 .. k`).
    Landmark(usize),
    /// Admitted-host slot, as returned by [`QueryEngine::join`].
    Host(usize),
}

impl NodeId {
    /// Injective encoding used as the pair-cache key.
    fn encode(self) -> u64 {
        match self {
            NodeId::Landmark(i) => (i as u64) << 1,
            NodeId::Host(s) => ((s as u64) << 1) | 1,
        }
    }
}

/// Tuning knobs of the serving engine.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Flush a pending admission batch as soon as it holds this many
    /// joiners (the coalescer's size bound).
    pub max_batch: usize,
    /// How long the admission leader waits for more joiners before
    /// flushing a partial batch (the coalescer's latency bound). Zero
    /// flushes immediately — coalescing then only batches requests that
    /// were already pending.
    pub linger: Duration,
    /// Number of independently locked pair-cache shards.
    pub cache_shards: usize,
    /// Direct-mapped slots per cache shard (allocated once; a colliding
    /// or stale entry is overwritten in place — lazy eviction). Zero
    /// disables the cache.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch: 64,
            linger: Duration::from_micros(200),
            cache_shards: 16,
            cache_capacity: 4096,
        }
    }
}

/// One immutable, epoch-versioned view of the whole serving state:
/// landmark factors, join solvers, and admitted-host coordinates. Readers
/// hold it as an `Arc` for as long as they like; the writer never mutates
/// a published snapshot.
///
/// The coordinate table is a persistent chunk tree ([`ChunkedRows`]):
/// each slot's row stores `[outgoing d | incoming d]` interleaved, and
/// the live-set is a one-column `bool` table. Publishing clones both
/// trees — `O(spine)` `Arc` bumps plus the chunks the writer has touched
/// since the last publish, independent of how many hosts are admitted.
#[derive(Debug)]
pub struct Snapshot {
    version: u64,
    epoch: f64,
    model: FactorModel,
    gram_x: CachedGram,
    gram_y: CachedGram,
    /// Slot-major rows of `2 * dim` columns: `[outgoing | incoming]`.
    coords: ChunkedRows<f64>,
    /// One-column liveness flags, slot-indexed.
    live: ChunkedRows<bool>,
    /// Live-row count, maintained by the writer (so [`Snapshot::host_count`]
    /// is O(1), not a scan).
    live_count: usize,
}

impl Snapshot {
    /// Monotonically increasing publish version (each join flush, leave,
    /// and drift epoch bumps it). The pair cache tags entries with this.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The drift epoch of the underlying streaming server at publish time.
    pub fn epoch(&self) -> f64 {
        self.epoch
    }

    /// Number of landmarks.
    pub fn landmark_count(&self) -> usize {
        self.model.n_from()
    }

    /// Model dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// Number of live admitted hosts.
    pub fn host_count(&self) -> usize {
        self.live_count
    }

    /// Number of host-table slots (live + retired).
    pub fn slot_count(&self) -> usize {
        self.coords.len()
    }

    /// The landmark factor model backing this snapshot.
    pub fn model(&self) -> &FactorModel {
        &self.model
    }

    /// The admitted-host coordinate chunk tree (slot-major rows of
    /// `[outgoing dim | incoming dim]`; consult [`Snapshot::is_live`]
    /// before trusting a row). Exposed so tests can assert chunk sharing
    /// between consecutive publishes.
    pub fn coords(&self) -> &ChunkedRows<f64> {
        &self.coords
    }

    /// Host slot `s`'s outgoing coordinate vector (valid for any
    /// allocated slot; consult [`Snapshot::is_live`]).
    pub fn host_outgoing(&self, slot: usize) -> &[f64] {
        &self.coords.row(slot)[..self.dim()]
    }

    /// Host slot `s`'s incoming coordinate vector.
    pub fn host_incoming(&self, slot: usize) -> &[f64] {
        &self.coords.row(slot)[self.dim()..]
    }

    /// True when host slot `s` holds a live (admitted, not departed) host.
    pub fn is_live(&self, slot: usize) -> bool {
        slot < self.live.len() && self.live.row(slot)[0]
    }

    pub(crate) fn outgoing_of(&self, n: NodeId) -> Result<&[f64]> {
        match n {
            NodeId::Landmark(i) if i < self.landmark_count() => Ok(self.model.outgoing(i)),
            NodeId::Host(s) if self.is_live(s) => Ok(self.host_outgoing(s)),
            _ => Err(unknown_node(n)),
        }
    }

    pub(crate) fn incoming_of(&self, n: NodeId) -> Result<&[f64]> {
        match n {
            NodeId::Landmark(i) if i < self.landmark_count() => Ok(self.model.incoming(i)),
            NodeId::Host(s) if self.is_live(s) => Ok(self.host_incoming(s)),
            _ => Err(unknown_node(n)),
        }
    }

    /// Estimated distance from `a` to `b` (dot product of `a`'s outgoing
    /// and `b`'s incoming vector — Eq. 10). Pure: two queries against the
    /// same snapshot always return the same bits.
    pub fn estimate(&self, a: NodeId, b: NodeId) -> Result<f64> {
        Ok(FactorModel::dot(self.outgoing_of(a)?, self.incoming_of(b)?))
    }

    /// Joins measurement rows against **this snapshot's** solvers — the
    /// exact arithmetic of [`StreamingServer::join_batch_cached`] run on
    /// the handed-off Gram factors, hence bit-identical to the writer's
    /// own joins at the publish point. Used by the bit-identity tests and
    /// by read-side consumers that want tentative coordinates without
    /// admitting a host.
    pub fn join_rows(
        &self,
        d_out: &Matrix,
        d_in: &Matrix,
        out: &mut BatchHostVectors,
    ) -> Result<()> {
        let k = self.landmark_count();
        if d_out.shape() != d_in.shape() || d_out.cols() != k {
            return Err(IdesError::InvalidInput(format!(
                "measurement batch must be hosts x {k}: out {:?}, in {:?}",
                d_out.shape(),
                d_in.shape()
            )));
        }
        out.reset_shape(d_out.rows(), self.dim());
        let (out_m, in_m) = out.matrices_mut();
        d_out.matmul_into(self.model.y(), out_m)?;
        self.gram_y.solve_rows_in_place(out_m)?;
        d_in.matmul_into(self.model.x(), in_m)?;
        self.gram_x.solve_rows_in_place(in_m)?;
        Ok(())
    }
}

fn unknown_node(n: NodeId) -> IdesError {
    IdesError::InvalidInput(match n {
        NodeId::Landmark(i) => format!("unknown landmark {i}"),
        NodeId::Host(s) => format!("host slot {s} is not live"),
    })
}

/// Atomic snapshot cell: an [`ArcSwap`] pointer swap. The read side is
/// one atomic load plus an `Arc` clone with no lock a writer could hold,
/// so there is no writer-blocks-readers window during publish — a reader
/// that races a publish gets either the old or the new snapshot, never a
/// wait.
#[derive(Debug)]
struct SnapshotCell {
    cell: ArcSwap<Snapshot>,
}

impl SnapshotCell {
    fn new(s: Arc<Snapshot>) -> Self {
        SnapshotCell {
            cell: ArcSwap::new(s),
        }
    }

    fn load(&self) -> Arc<Snapshot> {
        self.cell.load()
    }

    fn store(&self, s: Arc<Snapshot>) {
        self.cell.store(s);
    }
}

/// One direct-mapped pair-cache entry. `key_a == EMPTY_KEY` marks an
/// empty slot ([`NodeId::encode`] cannot produce it).
#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    key_a: u64,
    key_b: u64,
    /// Snapshot version(s) the estimate was computed against: `a`'s
    /// endpoint snapshot and `b`'s. A single engine tags both with the
    /// same version; [`ShardedEngine`] tags each endpoint with its own
    /// shard's snapshot, so a publish on *either* shard invalidates.
    ver_a: u64,
    ver_b: u64,
    est: f64,
}

const EMPTY_KEY: u64 = u64::MAX;

/// Version-tagged, sharded, direct-mapped pair-estimate cache. Each shard
/// is a fixed array of [`CacheEntry`] slots indexed by a hash of the pair
/// key; inserts overwrite the slot unconditionally (lazy eviction), so
/// the cache never allocates or drains after construction — a publish
/// invalidates by version-tag mismatch and the stale entries are simply
/// overwritten as misses recompute them. No reader or writer ever pays
/// more than one slot's worth of work inside the shard mutex.
#[derive(Debug)]
struct PairCache {
    shards: Vec<Mutex<Box<[CacheEntry]>>>,
    capacity: usize,
    /// Slots currently holding an entry (live or stale) — monotone per
    /// slot: a slot counts once when it leaves `EMPTY_KEY` and never
    /// uncounts (lazy eviction overwrites in place). Feeds the
    /// occupancy gauge in [`ServiceStats`] and the telemetry registry.
    occupied: AtomicU64,
}

impl PairCache {
    fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let empty = CacheEntry {
            key_a: EMPTY_KEY,
            key_b: EMPTY_KEY,
            ver_a: 0,
            ver_b: 0,
            est: 0.0,
        };
        PairCache {
            shards: (0..shards)
                .map(|_| Mutex::new(vec![empty; capacity].into_boxed_slice()))
                .collect(),
            capacity,
            occupied: AtomicU64::new(0),
        }
    }

    /// Slots currently holding an entry.
    fn occupied(&self) -> u64 {
        self.occupied.load(Ordering::Relaxed)
    }

    /// Total slots across all shards.
    fn slots(&self) -> u64 {
        (self.shards.len() * self.capacity) as u64
    }

    fn mix(a: u64, b: u64) -> u64 {
        a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
    }

    /// Shard index from the mix's high bits, slot from its low bits, so
    /// the two choices stay independent.
    fn place(&self, mix: u64) -> (usize, usize) {
        (
            (mix >> 32) as usize % self.shards.len(),
            (mix as u32) as usize % self.capacity,
        )
    }

    fn get(&self, ver_a: u64, ver_b: u64, a: u64, b: u64) -> Option<f64> {
        if self.capacity == 0 {
            return None;
        }
        let (shard, slot) = self.place(Self::mix(a, b));
        let e = self.shards[shard].lock()[slot];
        (e.key_a == a && e.key_b == b && e.ver_a == ver_a && e.ver_b == ver_b).then_some(e.est)
    }

    fn insert(&self, ver_a: u64, ver_b: u64, a: u64, b: u64, est: f64) {
        if self.capacity == 0 {
            return;
        }
        let (shard, slot) = self.place(Self::mix(a, b));
        let mut entries = self.shards[shard].lock();
        let was_empty = entries[slot].key_a == EMPTY_KEY;
        entries[slot] = CacheEntry {
            key_a: a,
            key_b: b,
            ver_a,
            ver_b,
            est,
        };
        drop(entries);
        if was_empty {
            self.occupied.fetch_add(1, Ordering::Relaxed);
            tm::gauge_add(tm::Gauge::PairCacheOccupied, 1);
        }
    }
}

/// Mutable serving state, guarded by the writer lock. Queries never touch
/// this; joins, leaves, and drift epochs serialize through it.
#[derive(Debug)]
struct WriterState {
    server: StreamingServer,
    /// Model dimensionality `d` (immutable; cached off the server).
    dim: usize,
    /// Per-slot measured distances to (`meas_out`) / from (`meas_in`) the
    /// landmarks — kept so a drift epoch can re-join every admitted host.
    meas_out: Matrix,
    meas_in: Matrix,
    /// Slot-indexed coordinate chunk tree (`[outgoing d | incoming d]`
    /// rows) — the same persistent structure the snapshots publish, so a
    /// publish is a clone that shares every untouched chunk.
    coords: ChunkedRows<f64>,
    /// Slot-indexed liveness flags (one-column chunk tree).
    live: ChunkedRows<bool>,
    live_count: usize,
    /// Retired slots awaiting reuse (LIFO).
    free: Vec<usize>,
    version: u64,
    /// Staging matrices for admission flushes (reused, high-water sized).
    stage_out: Matrix,
    stage_in: Matrix,
    stage_coords: BatchHostVectors,
    /// Scratch for the epoch-rejoin batch solve (scattered back into
    /// `coords` afterwards).
    epoch_coords: BatchHostVectors,
    /// Slot-id list `0..slots` handed to the epoch plan as its rejoin
    /// nodes (reused, high-water sized).
    rejoin_ids: Vec<usize>,
    /// Per-request QR scratch for the uncoalesced baseline path.
    join_ws: JoinWorkspace,
}

/// A flush's outcome as shared with its followers: the assigned slots in
/// batch order, or the batch-wide error rendered to a string (the error
/// type is not `Clone`; every participant re-wraps it).
type FlushOutcome = Arc<std::result::Result<Vec<usize>, String>>;

/// Result slot of one coalesced batch generation: followers wait on
/// **their generation's own** condvar, so a flush wakes exactly its
/// participants (no cross-generation thundering herd — at 500 concurrent
/// joiners that herd costs more than the batched solve saves).
///
/// `published` is a lock-free mirror of `done.is_some()`: followers spin
/// on it briefly ([`FOLLOWER_SPIN`]) before parking on the condvar, so a
/// flush that completes within the spin window hands its outcome over
/// without a park/wake round trip. The leader stores it with `Release`
/// *after* filling `done`, so a follower that observes `true` (`Acquire`)
/// and then takes the mutex is guaranteed to find the outcome.
#[derive(Default)]
struct GenSlot {
    done: StdMutex<Option<FlushOutcome>>,
    ready: Condvar,
    published: AtomicBool,
}

/// Bounded follower spin before parking on the generation condvar. Small
/// batches flush in single-digit microseconds, which a few hundred
/// `spin_loop` hints cover; anything slower falls through to the park,
/// so an idle or heavily oversubscribed host never burns more than the
/// spin budget per join.
const FOLLOWER_SPIN: usize = 256;

/// One in this many queries records a read-side telemetry span
/// (`query` / `cache_hit`) when telemetry is enabled; every query still
/// counts exactly via the engine's always-on [`ServiceStats`] counter,
/// whose pre-increment value doubles as the sampling tick (no
/// thread-local or extra RMW on the hot path). Keeps the two clock
/// reads a span costs off the ~sub-µs cached-query hot path (the
/// `telemetry_overhead` bench gates the residual at ≥ 0.9× disabled
/// throughput).
const QUERY_SPAN_SAMPLING: u64 = 64;

/// Pending coalesced-admission state (see the module docs).
struct CoalesceState {
    /// Flattened pending measurement rows (`count` rows of `k` each).
    d_out: Vec<f64>,
    d_in: Vec<f64>,
    count: usize,
    /// True while some joiner is collecting the current generation.
    leader_active: bool,
    /// The current generation's result slot; swapped out when a leader
    /// takes the batch (followers hold their own `Arc`).
    slot: Arc<GenSlot>,
    /// Spare buffers recycled between generations.
    spare_out: Vec<f64>,
    spare_in: Vec<f64>,
}

struct Coalescer {
    state: StdMutex<CoalesceState>,
    /// Wakes the lingering leader early when the batch fills.
    batch_ready: Condvar,
}

impl Coalescer {
    fn new() -> Self {
        Coalescer {
            state: StdMutex::new(CoalesceState {
                d_out: Vec::new(),
                d_in: Vec::new(),
                count: 0,
                leader_active: false,
                slot: Arc::new(GenSlot::default()),
                spare_out: Vec::new(),
                spare_in: Vec::new(),
            }),
            batch_ready: Condvar::new(),
        }
    }
}

/// Counter block of the engine (all relaxed atomics; see
/// [`QueryEngine::stats`]).
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    joins: AtomicU64,
    flushes: AtomicU64,
    leaves: AtomicU64,
    epochs: AtomicU64,
}

/// The concurrent distance-query serving engine. See the [module
/// docs](self) for the snapshot / coalescer / cache design.
pub struct QueryEngine {
    snapshot: SnapshotCell,
    writer: Mutex<WriterState>,
    coalescer: Coalescer,
    cache: PairCache,
    config: ServiceConfig,
    counters: Counters,
    /// Publish-latency histogram (recorded inside [`QueryEngine::publish`]
    /// while the writer lock is held, so the mutex is uncontended except
    /// against [`QueryEngine::publish_latency`] readers).
    publish_hist: Mutex<LatencyHistogram>,
    /// Accumulated epoch-plan shape (recorded by [`QueryEngine::apply_epoch`]
    /// while the writer lock is held).
    plan_totals: Mutex<EpochPlanTotals>,
    /// Chunk-share of the latest publish: how many coordinate-table
    /// chunks the new snapshot reused from its predecessor, over the
    /// table's total chunks (recorded inside [`QueryEngine::publish`]).
    chunk_shared: AtomicU64,
    chunk_total: AtomicU64,
    /// Landmark count, immutable for the engine's lifetime.
    k: usize,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("landmarks", &self.k)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl QueryEngine {
    /// Wraps a fitted [`StreamingServer`] and publishes the initial
    /// (host-less) snapshot.
    pub fn new(server: StreamingServer, config: ServiceConfig) -> Result<Self> {
        if config.max_batch == 0 {
            return Err(IdesError::InvalidInput(
                "max_batch must be at least 1".into(),
            ));
        }
        let k = server.landmark_count();
        let d = server.dim();
        if d == 0 {
            return Err(IdesError::InvalidInput(
                "server dimensionality must be at least 1".into(),
            ));
        }
        let writer = WriterState {
            server,
            dim: d,
            meas_out: Matrix::zeros(0, k),
            meas_in: Matrix::zeros(0, k),
            coords: ChunkedRows::new(2 * d),
            live: ChunkedRows::new(1),
            live_count: 0,
            free: Vec::new(),
            version: 0,
            stage_out: Matrix::zeros(0, 0),
            stage_in: Matrix::zeros(0, 0),
            stage_coords: BatchHostVectors::new(),
            epoch_coords: BatchHostVectors::new(),
            rejoin_ids: Vec::new(),
            join_ws: JoinWorkspace::new(),
        };
        let initial = Arc::new(Self::build_snapshot(&writer)?);
        let cache = PairCache::new(config.cache_shards, config.cache_capacity);
        tm::gauge_add(tm::Gauge::PairCacheSlots, cache.slots());
        Ok(QueryEngine {
            snapshot: SnapshotCell::new(initial),
            writer: Mutex::new(writer),
            coalescer: Coalescer::new(),
            cache,
            config,
            counters: Counters::default(),
            publish_hist: Mutex::new(LatencyHistogram::new()),
            plan_totals: Mutex::new(EpochPlanTotals::default()),
            chunk_shared: AtomicU64::new(0),
            chunk_total: AtomicU64::new(0),
            k,
        })
    }

    /// Number of landmarks.
    pub fn landmark_count(&self) -> usize {
        self.k
    }

    /// The engine's configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The current published snapshot. Cheap (one `Arc` clone under a
    /// read lock); hold it to answer a batch of queries against one
    /// consistent version.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshot.load()
    }

    /// Estimated distance from `a` to `b` against the current snapshot,
    /// memoized in the epoch-tagged pair cache.
    pub fn estimate(&self, a: NodeId, b: NodeId) -> Result<f64> {
        let snap = self.snapshot();
        self.estimate_on(&snap, a, b)
    }

    /// [`QueryEngine::estimate`] against a caller-held snapshot (skips the
    /// snapshot load; the cache still tags by that snapshot's version).
    pub fn estimate_on(&self, snap: &Snapshot, a: NodeId, b: NodeId) -> Result<f64> {
        // The always-on stats counter's pre-increment value is a free
        // per-engine sequence number: span sampling keys off it, so an
        // enabled query pays exactly one relaxed flag load beyond the
        // disabled path (queries/cache-hits reach the exposition from
        // these exact ServiceStats counters, folded in at export time).
        let q = self.counters.queries.fetch_add(1, Ordering::Relaxed);
        // Read-side spans are 1-in-N sampled: two clock reads on a
        // sub-microsecond cached query would be measurable overhead, a
        // sampled timeline is not (counters still count every query).
        let t0 = (tm::enabled() && q.is_multiple_of(QUERY_SPAN_SAMPLING)).then(tm::now_ns);
        let (ka, kb) = (a.encode(), b.encode());
        let v = snap.version();
        if let Some(est) = self.cache.get(v, v, ka, kb) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(t0) = t0 {
                tm::record_at(tm::Stage::CacheHit, t0);
            }
            return Ok(est);
        }
        let est = snap.estimate(a, b)?;
        self.cache.insert(v, v, ka, kb, est);
        if let Some(t0) = t0 {
            tm::record_at(tm::Stage::Query, t0);
        }
        Ok(est)
    }

    /// Answers a batch of pair queries against one snapshot, appending to
    /// `out` (one estimate per pair, in order).
    pub fn estimate_batch(&self, pairs: &[(NodeId, NodeId)], out: &mut Vec<f64>) -> Result<()> {
        let snap = self.snapshot();
        out.reserve(pairs.len());
        for &(a, b) in pairs {
            out.push(self.estimate_on(&snap, a, b)?);
        }
        Ok(())
    }

    /// Admits a host through the **join coalescer**: the measurements are
    /// appended to the pending batch, and either this thread becomes the
    /// flush leader (lingering up to [`ServiceConfig::linger`] for
    /// company) or it waits for the current leader's flush to return its
    /// assigned slot. One cached-Gram multi-RHS solve and one snapshot
    /// publish serve the whole batch. Returns the host's [`NodeId`].
    pub fn join(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        self.validate_measurements(d_out, d_in)?;
        self.counters.joins.fetch_add(1, Ordering::Relaxed);
        tm::count(tm::Counter::Joins);

        let mut st = self.coalescer.state.lock().expect("coalescer lock");
        let index = st.count;
        let slot = st.slot.clone();
        st.d_out.extend_from_slice(d_out);
        st.d_in.extend_from_slice(d_in);
        st.count += 1;
        tm::gauge_add(tm::Gauge::CoalescerQueueDepth, 1);

        if !st.leader_active {
            st.leader_active = true;
            // Leader: linger for more joiners, then take and flush.
            let deadline = Instant::now() + self.config.linger;
            while st.count < self.config.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = self
                    .coalescer
                    .batch_ready
                    .wait_timeout(st, deadline - now)
                    .expect("coalescer lock");
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let rows = st.count;
            let spare_out = std::mem::take(&mut st.spare_out);
            let spare_in = std::mem::take(&mut st.spare_in);
            let batch_out = std::mem::replace(&mut st.d_out, spare_out);
            let batch_in = std::mem::replace(&mut st.d_in, spare_in);
            st.count = 0;
            st.slot = Arc::new(GenSlot::default());
            st.leader_active = false;
            drop(st);
            tm::gauge_sub(tm::Gauge::CoalescerQueueDepth, rows as u64);

            let ids = Arc::new(
                self.flush_rows(rows, &batch_out, &batch_in)
                    .map_err(|e| e.to_string()),
            );
            // Hand the result to this generation's followers (only them:
            // the slot is generation-private).
            *slot.done.lock().expect("generation slot") = Some(ids.clone());
            slot.published.store(true, Ordering::Release);
            slot.ready.notify_all();

            // Recycle the flushed buffers for a later generation.
            let mut st = self.coalescer.state.lock().expect("coalescer lock");
            let mut spare_out = batch_out;
            let mut spare_in = batch_in;
            spare_out.clear();
            spare_in.clear();
            if st.spare_out.capacity() < spare_out.capacity() {
                st.spare_out = spare_out;
            }
            if st.spare_in.capacity() < spare_in.capacity() {
                st.spare_in = spare_in;
            }
            drop(st);
            Self::flush_result(&ids, index)
        } else {
            let full = st.count >= self.config.max_batch;
            drop(st);
            if full {
                // Batch is full: wake the lingering leader immediately.
                self.coalescer.batch_ready.notify_all();
            }
            // Follower: spin briefly for an in-flight flush, then park on
            // this generation's private slot.
            tm::count(tm::Counter::CoalescerWaits);
            let _wait = tm::span(tm::Stage::CoalescerWait);
            for _ in 0..FOLLOWER_SPIN {
                if slot.published.load(Ordering::Acquire) {
                    break;
                }
                std::hint::spin_loop();
            }
            let mut done = slot.done.lock().expect("generation slot");
            loop {
                if let Some(ids) = done.as_ref() {
                    let ids = ids.clone();
                    drop(done);
                    return Self::flush_result(&ids, index);
                }
                done = slot.ready.wait(done).expect("generation slot");
            }
        }
    }

    /// Admits a host **without** coalescing: one writer-lock acquisition,
    /// one batch-of-1 cached solve, one snapshot publish per request —
    /// the per-request baseline the `serve` bench compares the coalescer
    /// against (and a low-latency path when admission traffic is sparse,
    /// since it never lingers). Bit-identical to the coalesced path.
    pub fn join_direct(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        self.validate_measurements(d_out, d_in)?;
        self.counters.joins.fetch_add(1, Ordering::Relaxed);
        tm::count(tm::Counter::Joins);
        let ids = self.flush_rows(1, d_out, d_in)?;
        Ok(NodeId::Host(ids[0]))
    }

    /// Bulk admission: joins every row of `d_out`/`d_in` (hosts × k) with
    /// **one** batched cached solve and **one** snapshot publish — the
    /// mass-arrival path that makes admitting 10⁶ hosts a handful of
    /// publishes instead of 10⁶. Bit-identical per row to
    /// [`QueryEngine::join_direct`]. Returns the assigned ids in row
    /// order.
    pub fn join_many(&self, d_out: &Matrix, d_in: &Matrix) -> Result<Vec<NodeId>> {
        let k = self.k;
        if d_out.shape() != d_in.shape() || d_out.cols() != k {
            return Err(IdesError::InvalidInput(format!(
                "measurement batch must be hosts x {k}: out {:?}, in {:?}",
                d_out.shape(),
                d_in.shape()
            )));
        }
        if d_out
            .as_slice()
            .iter()
            .chain(d_in.as_slice().iter())
            .any(|v| !v.is_finite() || *v < 0.0)
        {
            return Err(IdesError::InvalidInput(
                "measurements must be finite and nonnegative".into(),
            ));
        }
        let rows = d_out.rows();
        if rows == 0 {
            return Ok(Vec::new());
        }
        self.counters
            .joins
            .fetch_add(rows as u64, Ordering::Relaxed);
        tm::count_n(tm::Counter::Joins, rows as u64);
        let slots = self.flush_rows(rows, d_out.as_slice(), d_in.as_slice())?;
        Ok(slots.into_iter().map(NodeId::Host).collect())
    }

    /// Admits a host the way a serving layer **without** this subsystem
    /// would: one writer acquisition, one per-request QR factorization of
    /// the landmark system ([`crate::projection::join_host_with`] with
    /// [`JoinSolver::Qr`]), one snapshot publish — per request. This is
    /// the control the `serve` bench group's coalesced-vs-per-request
    /// headline measures against (the admission analogue of the
    /// `join_batch` bench's `per_host_qr` control). Coordinates are
    /// numerically equivalent to the cached-Gram paths but not bitwise
    /// (QR vs normal equations).
    pub fn join_per_request(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        self.validate_measurements(d_out, d_in)?;
        self.counters.joins.fetch_add(1, Ordering::Relaxed);
        tm::count(tm::Counter::Joins);
        let mut w = self.writer.lock();
        let hv = {
            let WriterState {
                server, join_ws, ..
            } = &mut *w;
            join_host_with(
                join_ws,
                server.model().x(),
                server.model().y(),
                d_out,
                d_in,
                JoinOptions {
                    solver: JoinSolver::Qr,
                    ridge: server.policy().ridge,
                },
            )?
        };
        let slot = Self::assign_slot(&mut w, d_out, d_in, &hv.outgoing, &hv.incoming)?;
        self.counters.flushes.fetch_add(1, Ordering::Relaxed);
        tm::count(tm::Counter::Flushes);
        self.publish(&mut w)?;
        Ok(NodeId::Host(slot))
    }

    /// Retires an admitted host: its slot joins the free list (no
    /// reallocation — the next admission reuses it) and a new snapshot
    /// without the host is published.
    pub fn leave(&self, host: NodeId) -> Result<()> {
        let NodeId::Host(slot) = host else {
            return Err(IdesError::InvalidInput(
                "landmarks cannot leave the service".into(),
            ));
        };
        let mut w = self.writer.lock();
        if !Self::slot_live(&w, slot) {
            return Err(unknown_node(host));
        }
        w.live.row_mut(slot)[0] = false;
        w.live_count -= 1;
        w.free.push(slot);
        self.counters.leaves.fetch_add(1, Ordering::Relaxed);
        tm::count(tm::Counter::Leaves);
        self.publish(&mut w)
    }

    /// Retires a batch of hosts with **one** snapshot publish (the churn
    /// analogue of the join coalescer: a departure wave costs one pointer
    /// swap, not one per host). Validates the whole batch first — on any
    /// invalid id nothing is retired.
    pub fn leave_many(&self, hosts: &[NodeId]) -> Result<()> {
        if hosts.is_empty() {
            return Ok(());
        }
        let mut w = self.writer.lock();
        let mut slots = Vec::with_capacity(hosts.len());
        for &h in hosts {
            let NodeId::Host(slot) = h else {
                return Err(IdesError::InvalidInput(
                    "landmarks cannot leave the service".into(),
                ));
            };
            if !Self::slot_live(&w, slot) || slots.contains(&slot) {
                return Err(unknown_node(h));
            }
            slots.push(slot);
        }
        for &slot in &slots {
            w.live.row_mut(slot)[0] = false;
            w.live_count -= 1;
            w.free.push(slot);
        }
        self.counters
            .leaves
            .fetch_add(slots.len() as u64, Ordering::Relaxed);
        tm::count_n(tm::Counter::Leaves, slots.len() as u64);
        self.publish(&mut w)
    }

    /// Feeds one epoch of landmark measurement drift to the underlying
    /// [`StreamingServer`] through its dependency-DAG executor
    /// ([`StreamingServer::apply_epoch_planned`]): absorb or refresh per
    /// the staleness policy, with every admitted host a rejoin node of
    /// the same plan, then publishes the new snapshot. Queries keep being
    /// served from the previous snapshot until the publish lands. The
    /// executed plan's shape accumulates into
    /// [`QueryEngine::epoch_plan_totals`].
    pub fn apply_epoch(&self, update: &EpochUpdate) -> Result<EpochOutcome> {
        let mut w = self.writer.lock();
        let prev_epoch = tm::set_epoch(update.epoch);
        let t0 = tm::enabled().then(Instant::now);
        let stats;
        let outcome;
        if w.coords.is_empty() {
            let (o, s) = w.server.apply_epoch_planned(update, None, None)?;
            outcome = o;
            stats = s;
        } else {
            let WriterState {
                server,
                dim,
                meas_out,
                meas_in,
                coords,
                epoch_coords,
                rejoin_ids,
                ..
            } = &mut *w;
            // Re-join the whole slot table (retired slots ride along
            // harmlessly — their rows are recomputed but stay dead), then
            // scatter the plan's rejoin output back into the chunk tree.
            // Every chunk is rewritten, so the copy-on-write layer adds
            // one chunk copy per chunk — the same O(hosts·d) bytes a
            // drift epoch inherently moves.
            let slots = coords.len();
            let d = *dim;
            if rejoin_ids.len() != slots {
                rejoin_ids.clear();
                rejoin_ids.extend(0..slots);
            }
            epoch_coords.reset_shape(slots, d);
            let (o, s) = server.apply_epoch_planned(
                update,
                Some(RejoinTables::full(
                    rejoin_ids,
                    meas_out,
                    meas_in,
                    epoch_coords,
                )),
                None,
            )?;
            outcome = o;
            stats = s;
            for s in 0..slots {
                let row = coords.row_mut(s);
                row[..d].copy_from_slice(epoch_coords.outgoing(s));
                row[d..].copy_from_slice(epoch_coords.incoming(s));
            }
        }
        self.plan_totals.lock().absorb(&stats);
        self.counters.epochs.fetch_add(1, Ordering::Relaxed);
        tm::count(tm::Counter::Epochs);
        self.publish(&mut w)?;
        if let Some(t0) = t0 {
            tm::time(tm::Timer::EpochApply, t0.elapsed());
        }
        tm::set_epoch(prev_epoch);
        Ok(outcome)
    }

    /// Applies a batch of drift epochs through the **cross-epoch
    /// pipeline** ([`StreamingServer::apply_epochs_pipelined`]): epoch
    /// `N`'s host-rejoin tier runs against a frozen end-of-epoch model
    /// clone while epoch `N+1`'s landmark absorbs mutate the live
    /// server. The final published state is **bit-identical** to calling
    /// [`QueryEngine::apply_epoch`] once per update; the difference is
    /// wall-clock (overlap) and that intermediate snapshots are not
    /// published — one publish lands at the end of the batch. The
    /// overlap count accumulates into
    /// [`QueryEngine::epoch_plan_totals`]'s `pipelined` field.
    pub fn apply_epochs(&self, updates: &[EpochUpdate]) -> Result<Vec<EpochOutcome>> {
        if updates.is_empty() {
            return Ok(Vec::new());
        }
        let mut w = self.writer.lock();
        let report;
        if w.coords.is_empty() {
            report = w.server.apply_epochs_pipelined(updates, None, None)?;
        } else {
            let WriterState {
                server,
                dim,
                meas_out,
                meas_in,
                coords,
                epoch_coords,
                rejoin_ids,
                ..
            } = &mut *w;
            let slots = coords.len();
            let d = *dim;
            if rejoin_ids.len() != slots {
                rejoin_ids.clear();
                rejoin_ids.extend(0..slots);
            }
            epoch_coords.reset_shape(slots, d);
            report = server.apply_epochs_pipelined(
                updates,
                Some(RejoinTables::full(
                    rejoin_ids,
                    meas_out,
                    meas_in,
                    epoch_coords,
                )),
                None,
            )?;
            // Each epoch's rejoin tier rewrote every slot; the table now
            // holds the last epoch's rows — exactly what a back-to-back
            // apply_epoch loop leaves behind.
            for s in 0..slots {
                let row = coords.row_mut(s);
                row[..d].copy_from_slice(epoch_coords.outgoing(s));
                row[d..].copy_from_slice(epoch_coords.incoming(s));
            }
        }
        {
            let mut totals = self.plan_totals.lock();
            for (_, stats) in &report.outcomes {
                totals.absorb(stats);
            }
            totals.pipelined += report.overlapped as u64;
        }
        self.counters
            .epochs
            .fetch_add(report.outcomes.len() as u64, Ordering::Relaxed);
        tm::count_n(tm::Counter::Epochs, report.outcomes.len() as u64);
        self.publish(&mut w)?;
        Ok(report.outcomes.into_iter().map(|(o, _)| o).collect())
    }

    /// Accumulated shape of the epoch plans this engine's drift writer
    /// has executed (group counts, antichain widths, critical paths).
    pub fn epoch_plan_totals(&self) -> EpochPlanTotals {
        *self.plan_totals.lock()
    }

    /// Counter snapshot (queries served, cache hits, joins, flushes,
    /// leaves, epochs, published version) plus the instantaneous gauges
    /// (coalescer queue depth, pair-cache occupancy, chunk-share of the
    /// latest publish).
    pub fn stats(&self) -> ServiceStats {
        let coalescer_depth = self.coalescer.state.lock().expect("coalescer lock").count as u64;
        ServiceStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            joins: self.counters.joins.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            leaves: self.counters.leaves.load(Ordering::Relaxed),
            epochs: self.counters.epochs.load(Ordering::Relaxed),
            version: self.snapshot().version(),
            coalescer_depth,
            cache_occupied: self.cache.occupied(),
            cache_slots: self.cache.slots(),
            chunk_shared: self.chunk_shared.load(Ordering::Relaxed),
            chunk_total: self.chunk_total.load(Ordering::Relaxed),
        }
    }

    fn validate_measurements(&self, d_out: &[f64], d_in: &[f64]) -> Result<()> {
        if d_out.len() != self.k || d_in.len() != self.k {
            return Err(IdesError::InvalidInput(format!(
                "expected {} out/in measurements, got {}/{}",
                self.k,
                d_out.len(),
                d_in.len()
            )));
        }
        if d_out
            .iter()
            .chain(d_in.iter())
            .any(|v| !v.is_finite() || *v < 0.0)
        {
            return Err(IdesError::InvalidInput(
                "measurements must be finite and nonnegative".into(),
            ));
        }
        Ok(())
    }

    fn flush_result(ids: &std::result::Result<Vec<usize>, String>, index: usize) -> Result<NodeId> {
        match ids {
            Ok(slots) => Ok(NodeId::Host(slots[index])),
            Err(msg) => Err(IdesError::InvalidInput(format!("batch join failed: {msg}"))),
        }
    }

    /// Joins `rows` pending measurement rows (flattened, row-major) in one
    /// batched cached solve, assigns slots (free list first), updates the
    /// writer tables, and publishes. Returns the assigned slots in batch
    /// order.
    fn flush_rows(&self, rows: usize, flat_out: &[f64], flat_in: &[f64]) -> Result<Vec<usize>> {
        let _span = tm::span(tm::Stage::Flush);
        let t0 = tm::enabled().then(Instant::now);
        let k = self.k;
        let mut w = self.writer.lock();
        w.stage_out.reset_shape(rows, k);
        w.stage_out
            .as_mut_slice()
            .copy_from_slice(&flat_out[..rows * k]);
        w.stage_in.reset_shape(rows, k);
        w.stage_in
            .as_mut_slice()
            .copy_from_slice(&flat_in[..rows * k]);
        {
            let WriterState {
                server,
                stage_out,
                stage_in,
                stage_coords,
                ..
            } = &mut *w;
            server.join_batch_cached(stage_out, stage_in, stage_coords)?;
        }
        let mut slots = Vec::with_capacity(rows);
        // Detach the solved batch so slot assignment can borrow the writer
        // mutably; reattached below to keep the staging capacity warm.
        let stage = std::mem::take(&mut w.stage_coords);
        for r in 0..rows {
            let slot = Self::assign_slot(
                &mut w,
                &flat_out[r * k..(r + 1) * k],
                &flat_in[r * k..(r + 1) * k],
                stage.outgoing(r),
                stage.incoming(r),
            )?;
            slots.push(slot);
        }
        w.stage_coords = stage;
        self.counters.flushes.fetch_add(1, Ordering::Relaxed);
        tm::count(tm::Counter::Flushes);
        self.publish(&mut w)?;
        if let Some(t0) = t0 {
            tm::time(tm::Timer::Flush, t0.elapsed());
        }
        Ok(slots)
    }

    /// True when host slot `slot` is allocated and live.
    fn slot_live(w: &WriterState, slot: usize) -> bool {
        slot < w.live.len() && w.live.row(slot)[0]
    }

    /// Assigns a slot for one admitted host (free list first, growth
    /// otherwise) and writes its measurements and coordinates into the
    /// writer tables. Returns the slot.
    fn assign_slot(
        w: &mut WriterState,
        d_out: &[f64],
        d_in: &[f64],
        outgoing: &[f64],
        incoming: &[f64],
    ) -> Result<usize> {
        let d = w.dim;
        let slot = match w.free.pop() {
            Some(s) => s,
            None => {
                // Fresh slot: grow the tables (amortized, capacity
                // retained across churn).
                let s = w.coords.len();
                w.coords.push_default_rows(1);
                w.meas_out.push_row(d_out);
                w.meas_in.push_row(d_in);
                w.live.push_row(&[false]);
                s
            }
        };
        w.meas_out.set_row(slot, d_out);
        w.meas_in.set_row(slot, d_in);
        let row = w.coords.row_mut(slot);
        row[..d].copy_from_slice(outgoing);
        row[d..].copy_from_slice(incoming);
        if !w.live.row(slot)[0] {
            w.live.row_mut(slot)[0] = true;
            w.live_count += 1;
        }
        Ok(slot)
    }

    /// Publishes the writer's current state as a fresh snapshot: bump the
    /// version, clone the model and the coordinate chunk trees (sharing
    /// every chunk the writer hasn't touched since the last publish —
    /// `O(changed chunks)`, not `O(hosts)`), hand the Gram factors off via
    /// [`CachedGram::from_factor`], and swap the pointer. Readers never
    /// wait: the swap is an atomic store.
    fn publish(&self, w: &mut WriterState) -> Result<()> {
        let _span = tm::span(tm::Stage::Publish);
        let t0 = Instant::now();
        w.version += 1;
        let snap = Arc::new(Self::build_snapshot(w)?);
        // Chunk-share gauge: how much of the coordinate chunk tree this
        // publish reused from the snapshot it replaces (pointer-equality
        // walk, O(chunks)) — the direct measure of the copy-on-write
        // publish-cost claim.
        let prev = self.snapshot.load();
        self.chunk_shared.store(
            snap.coords.shared_chunks_with(&prev.coords) as u64,
            Ordering::Relaxed,
        );
        self.chunk_total
            .store(snap.coords.chunk_count() as u64, Ordering::Relaxed);
        self.snapshot.store(snap);
        let elapsed = t0.elapsed();
        self.publish_hist.lock().record(elapsed);
        tm::time(tm::Timer::Publish, elapsed);
        tm::count(tm::Counter::Publishes);
        Ok(())
    }

    /// Publish-latency histogram (one sample per snapshot publish: join
    /// flushes, leaves, drift epochs).
    pub fn publish_latency(&self) -> LatencyHistogram {
        self.publish_hist.lock().clone()
    }

    fn build_snapshot(w: &WriterState) -> Result<Snapshot> {
        let (gram_x, gram_y) = w.server.grams();
        Ok(Snapshot {
            version: w.version,
            epoch: w.server.epoch(),
            model: w.server.model().clone(),
            gram_x: CachedGram::from_factor(gram_x.l().clone(), gram_x.lambda())?,
            gram_y: CachedGram::from_factor(gram_y.l().clone(), gram_y.lambda())?,
            coords: w.coords.clone(),
            live: w.live.clone(),
            live_count: w.live_count,
        })
    }
}

/// The serving surface shared by [`QueryEngine`] (one shard) and
/// [`ShardedEngine`] (N shards): everything the load harness
/// ([`load::run`]), the scenario builders, and the CLI need to drive an
/// engine without knowing its shard layout. Host [`NodeId`]s are only
/// meaningful to the engine that issued them.
pub trait DistanceService: Sync {
    /// Number of landmarks.
    fn landmark_count(&self) -> usize;
    /// Estimated distance from `a` to `b` against current snapshot(s).
    fn estimate(&self, a: NodeId, b: NodeId) -> Result<f64>;
    /// Admits a host through the coalesced path.
    fn join(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId>;
    /// Admits a host through the per-request control path (one QR solve
    /// and one publish per call).
    fn join_per_request(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId>;
    /// Bulk admission with one publish per engine shard.
    fn join_many(&self, d_out: &Matrix, d_in: &Matrix) -> Result<Vec<NodeId>>;
    /// Retires a host.
    fn leave(&self, host: NodeId) -> Result<()>;
    /// Applies one drift epoch (to every shard).
    fn apply_epoch(&self, update: &EpochUpdate) -> Result<EpochOutcome>;
    /// Applies a batch of drift epochs in input order. Implementations
    /// may pipeline (overlap one epoch's host rejoins with the next
    /// epoch's landmark absorbs) as long as the final published state is
    /// bit-identical to back-to-back [`DistanceService::apply_epoch`]
    /// calls; the default does exactly that, serially.
    fn apply_epochs(&self, updates: &[EpochUpdate]) -> Result<Vec<EpochOutcome>> {
        updates.iter().map(|u| self.apply_epoch(u)).collect()
    }
    /// Aggregate counter snapshot.
    fn stats(&self) -> ServiceStats;
    /// Accumulated epoch-plan shape across shards (DAG group counts,
    /// antichain widths, critical paths).
    fn epoch_plan_totals(&self) -> EpochPlanTotals;
    /// Drift epoch of the current snapshot(s).
    fn current_epoch(&self) -> f64;
    /// Merged publish-latency histogram across shards.
    fn publish_latency(&self) -> LatencyHistogram;
    /// Number of shards (1 for the single engine).
    fn shard_count(&self) -> usize {
        1
    }
    /// Which shard owns `node`'s coordinate row (landmarks are replicated
    /// on every shard and report shard 0).
    fn shard_of(&self, node: NodeId) -> usize {
        let _ = node;
        0
    }
}

impl DistanceService for QueryEngine {
    fn landmark_count(&self) -> usize {
        QueryEngine::landmark_count(self)
    }
    fn estimate(&self, a: NodeId, b: NodeId) -> Result<f64> {
        QueryEngine::estimate(self, a, b)
    }
    fn join(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        QueryEngine::join(self, d_out, d_in)
    }
    fn join_per_request(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        QueryEngine::join_per_request(self, d_out, d_in)
    }
    fn join_many(&self, d_out: &Matrix, d_in: &Matrix) -> Result<Vec<NodeId>> {
        QueryEngine::join_many(self, d_out, d_in)
    }
    fn leave(&self, host: NodeId) -> Result<()> {
        QueryEngine::leave(self, host)
    }
    fn apply_epoch(&self, update: &EpochUpdate) -> Result<EpochOutcome> {
        QueryEngine::apply_epoch(self, update)
    }
    fn apply_epochs(&self, updates: &[EpochUpdate]) -> Result<Vec<EpochOutcome>> {
        QueryEngine::apply_epochs(self, updates)
    }
    fn stats(&self) -> ServiceStats {
        QueryEngine::stats(self)
    }
    fn epoch_plan_totals(&self) -> EpochPlanTotals {
        QueryEngine::epoch_plan_totals(self)
    }
    fn current_epoch(&self) -> f64 {
        self.snapshot().epoch()
    }
    fn publish_latency(&self) -> LatencyHistogram {
        QueryEngine::publish_latency(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StalenessPolicy;

    fn engine(k: usize, dim: usize, config: ServiceConfig) -> QueryEngine {
        let ds = ides_datasets::generators::p2psim_like(k + 20, 7).expect("dataset");
        let sub: Vec<usize> = (0..k).collect();
        let lm = ds.matrix.submatrix(&sub, &sub);
        let server = StreamingServer::new(&lm, dim, StalenessPolicy::default()).expect("server");
        QueryEngine::new(server, config).expect("engine")
    }

    fn meas(k: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..k)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 * 50.0 + 5.0
            })
            .collect()
    }

    #[test]
    fn landmark_queries_match_model_dot_products() {
        let e = engine(12, 4, ServiceConfig::default());
        let snap = e.snapshot();
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.landmark_count(), 12);
        assert_eq!(snap.host_count(), 0);
        let est = e
            .estimate(NodeId::Landmark(2), NodeId::Landmark(7))
            .unwrap();
        let want = FactorModel::dot(snap.model().outgoing(2), snap.model().incoming(7));
        assert_eq!(est.to_bits(), want.to_bits());
        // Cache hit returns the same bits.
        let again = e
            .estimate(NodeId::Landmark(2), NodeId::Landmark(7))
            .unwrap();
        assert_eq!(again.to_bits(), est.to_bits());
        assert!(e.stats().cache_hits >= 1);
        // Unknown endpoints are rejected.
        assert!(e
            .estimate(NodeId::Landmark(99), NodeId::Landmark(0))
            .is_err());
        assert!(e.estimate(NodeId::Host(0), NodeId::Landmark(0)).is_err());
    }

    #[test]
    fn join_direct_then_query_round_trip() {
        let e = engine(14, 5, ServiceConfig::default());
        let (out_m, in_m) = (meas(14, 3), meas(14, 4));
        let id = e.join_direct(&out_m, &in_m).unwrap();
        assert_eq!(id, NodeId::Host(0));
        let snap = e.snapshot();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.host_count(), 1);
        // The admitted coordinates equal a snapshot-side join of the same
        // measurements (bit-identical arithmetic).
        let d_out = Matrix::from_rows(std::slice::from_ref(&out_m)).unwrap();
        let d_in = Matrix::from_rows(std::slice::from_ref(&in_m)).unwrap();
        let mut direct = BatchHostVectors::new();
        snap.join_rows(&d_out, &d_in, &mut direct).unwrap();
        for j in 0..5 {
            assert_eq!(
                snap.host_outgoing(0)[j].to_bits(),
                direct.outgoing(0)[j].to_bits()
            );
            assert_eq!(
                snap.host_incoming(0)[j].to_bits(),
                direct.incoming(0)[j].to_bits()
            );
        }
        // Host-to-landmark and host-to-host queries work.
        let hl = e.estimate(id, NodeId::Landmark(3)).unwrap();
        assert!(hl.is_finite());
        let hh = e.estimate(id, id).unwrap();
        assert!(hh.is_finite());
    }

    #[test]
    fn coalesced_join_is_bit_identical_to_direct() {
        // Two engines over the same server state: one admits through the
        // coalescer from many threads, the other one-at-a-time. Matching
        // measurement rows must produce bit-identical coordinates no
        // matter how the coalescer happened to batch them.
        let hosts = 40;
        let config = ServiceConfig {
            max_batch: 8,
            linger: Duration::from_millis(2),
            ..ServiceConfig::default()
        };
        let coalesced = engine(10, 4, config);
        let direct = engine(10, 4, ServiceConfig::default());
        let rows: Vec<(Vec<f64>, Vec<f64>)> = (0..hosts)
            .map(|h| (meas(10, 100 + h as u64), meas(10, 500 + h as u64)))
            .collect();
        // Coalesced, from 8 threads.
        let slot_of: Vec<usize> = {
            let mut slots = vec![0usize; hosts];
            std::thread::scope(|scope| {
                for (chunk_idx, chunk) in slots.chunks_mut(hosts / 8).enumerate() {
                    let rows = &rows;
                    let e = &coalesced;
                    let base = chunk_idx * (hosts / 8);
                    scope.spawn(move || {
                        for (i, slot) in chunk.iter_mut().enumerate() {
                            let (o, inn) = &rows[base + i];
                            let NodeId::Host(s) = e.join(o, inn).unwrap() else {
                                panic!("join returned a landmark")
                            };
                            *slot = s;
                        }
                    });
                }
            });
            slots
        };
        // Direct, sequentially.
        let direct_slots: Vec<usize> = rows
            .iter()
            .map(|(o, i)| {
                let NodeId::Host(s) = direct.join_direct(o, i).unwrap() else {
                    panic!("join returned a landmark")
                };
                s
            })
            .collect();
        let snap_c = coalesced.snapshot();
        let snap_d = direct.snapshot();
        assert_eq!(snap_c.host_count(), hosts);
        for h in 0..hosts {
            let (sc, sd) = (slot_of[h], direct_slots[h]);
            for j in 0..4 {
                assert_eq!(
                    snap_c.host_outgoing(sc)[j].to_bits(),
                    snap_d.host_outgoing(sd)[j].to_bits(),
                    "host {h} outgoing[{j}]"
                );
                assert_eq!(
                    snap_c.host_incoming(sc)[j].to_bits(),
                    snap_d.host_incoming(sd)[j].to_bits(),
                    "host {h} incoming[{j}]"
                );
            }
        }
        // Coalescing actually happened: fewer flushes than joins.
        let stats = coalesced.stats();
        assert_eq!(stats.joins, hosts as u64);
        assert!(
            stats.flushes < stats.joins,
            "no coalescing: {} flushes for {} joins",
            stats.flushes,
            stats.joins
        );
    }

    #[test]
    fn leave_retires_and_recycles_slots() {
        let e = engine(12, 4, ServiceConfig::default());
        let a = e.join_direct(&meas(12, 1), &meas(12, 2)).unwrap();
        let b = e.join_direct(&meas(12, 3), &meas(12, 4)).unwrap();
        assert_eq!(e.snapshot().host_count(), 2);
        e.leave(a).unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.host_count(), 1);
        assert_eq!(snap.slot_count(), 2, "leave must not shrink the table");
        // The departed id now errors; the survivor still answers.
        assert!(e.estimate(a, b).is_err());
        assert!(e.estimate(b, NodeId::Landmark(0)).is_ok());
        // Double-leave and landmark-leave are rejected.
        assert!(e.leave(a).is_err());
        assert!(e.leave(NodeId::Landmark(1)).is_err());
        // The freed slot is recycled by the next admission.
        let c = e.join_direct(&meas(12, 5), &meas(12, 6)).unwrap();
        assert_eq!(c, a, "free-listed slot must be reused");
        assert_eq!(e.snapshot().slot_count(), 2);
        assert_eq!(e.snapshot().host_count(), 2);
        let stats = e.stats();
        assert_eq!(stats.leaves, 1);
        assert_eq!(stats.joins, 3);
    }

    #[test]
    fn leave_many_retires_batch_with_one_publish() {
        let e = engine(12, 4, ServiceConfig::default());
        let ids: Vec<NodeId> = (0..6)
            .map(|i| e.join_direct(&meas(12, 50 + i), &meas(12, 80 + i)).unwrap())
            .collect();
        let v_before = e.snapshot().version();
        e.leave_many(&ids[..4]).unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.version(), v_before + 1, "one publish for the wave");
        assert_eq!(snap.host_count(), 2);
        assert_eq!(e.stats().leaves, 4);
        // Invalid batches retire nothing: a dead id, a duplicate, a landmark.
        assert!(e.leave_many(&[ids[0]]).is_err());
        assert!(e.leave_many(&[ids[4], ids[4]]).is_err());
        assert!(e.leave_many(&[NodeId::Landmark(0)]).is_err());
        assert_eq!(e.snapshot().host_count(), 2);
        // Empty batch is a no-op (no publish).
        e.leave_many(&[]).unwrap();
        assert_eq!(e.snapshot().version(), v_before + 1);
    }

    #[test]
    fn epoch_publish_invalidates_cache_and_rejoins_hosts() {
        let e = engine(12, 4, ServiceConfig::default());
        let id = e.join_direct(&meas(12, 9), &meas(12, 10)).unwrap();
        let before = e.estimate(id, NodeId::Landmark(5)).unwrap();
        let v_before = e.snapshot().version();
        // Drift one landmark pair hard enough to move the model.
        let base = 15.0;
        let outcome = e
            .apply_epoch(&EpochUpdate {
                epoch: 1.0,
                deltas: vec![
                    crate::streaming::MeasurementDelta {
                        from: 1,
                        to: 6,
                        rtt: base,
                    },
                    crate::streaming::MeasurementDelta {
                        from: 6,
                        to: 1,
                        rtt: base,
                    },
                ],
            })
            .unwrap();
        assert_eq!(outcome.applied, 2);
        let snap = e.snapshot();
        assert!(snap.version() > v_before);
        assert_eq!(snap.epoch(), 1.0);
        // The host was re-joined against the maintained model: its
        // coordinates match a snapshot-side join of its measurements.
        let d_out = Matrix::from_rows(&[meas(12, 9)]).unwrap();
        let d_in = Matrix::from_rows(&[meas(12, 10)]).unwrap();
        let mut fresh = BatchHostVectors::new();
        snap.join_rows(&d_out, &d_in, &mut fresh).unwrap();
        let NodeId::Host(slot) = id else {
            unreachable!()
        };
        for j in 0..4 {
            assert_eq!(
                snap.host_outgoing(slot)[j].to_bits(),
                fresh.outgoing(0)[j].to_bits()
            );
        }
        // The cached pre-drift estimate is not served against the new
        // snapshot: the fresh answer comes from the fresh model.
        let after = e.estimate(id, NodeId::Landmark(5)).unwrap();
        let want = snap.estimate(id, NodeId::Landmark(5)).unwrap();
        assert_eq!(after.to_bits(), want.to_bits());
        let _ = before; // (values may or may not differ; the contract is tag invalidation)
        assert_eq!(e.stats().epochs, 1);
    }

    #[test]
    fn join_validates_measurements() {
        let e = engine(10, 3, ServiceConfig::default());
        assert!(e.join_direct(&meas(9, 1), &meas(10, 1)).is_err());
        let mut bad = meas(10, 1);
        bad[3] = f64::NAN;
        assert!(e.join_direct(&bad, &meas(10, 1)).is_err());
        bad[3] = -1.0;
        assert!(e.join_direct(&bad, &meas(10, 1)).is_err());
        assert!(QueryEngine::new(
            {
                let ds = ides_datasets::generators::gnp_like(10, 3).unwrap();
                StreamingServer::new(&ds.matrix, 3, StalenessPolicy::default()).unwrap()
            },
            ServiceConfig {
                max_batch: 0,
                ..ServiceConfig::default()
            }
        )
        .is_err());
    }
}
