//! Serving-side measurement: latency histograms and counter snapshots.
//!
//! The load harness records each operation's latency into a
//! [`LatencyHistogram`] — log-spaced buckets (4 per octave, ~19 % wide)
//! covering nanoseconds to minutes in a fixed 256-slot array, so
//! recording is allocation-free and O(1) and per-thread histograms merge
//! exactly. Quantiles interpolate by rank within the bucket that crosses
//! the requested rank, which is plenty for p50/p99 reporting (the bucket
//! width bounds the relative error). The bucket layout is shared with
//! the telemetry registry's striped atomic timers
//! ([`crate::telemetry::registry`]) and walked by the Prometheus
//! exporter via [`LatencyHistogram::bucket_counts`] /
//! [`LatencyHistogram::bucket_bounds`].

use std::time::Duration;

/// Buckets per octave (power of two) of latency.
pub(crate) const SUB: usize = 4;
/// Total bucket count: 64 octaves x `SUB`.
pub(crate) const BUCKETS: usize = 64 * SUB;

/// Fixed-size log-bucketed latency histogram.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

/// Bucket index of a nanosecond value: octave = floor(log2 ns), plus the
/// top two mantissa bits as the sub-bucket.
pub(crate) fn bucket_of(ns: u64) -> usize {
    if ns < SUB as u64 {
        return ns as usize; // the first few buckets are exact
    }
    let octave = 63 - ns.leading_zeros() as usize;
    let sub = ((ns >> (octave - 2)) & 0b11) as usize;
    (octave * SUB + sub).min(BUCKETS - 1)
}

/// Lower bound (ns) of bucket `b` — inverse of [`bucket_of`].
pub(crate) fn bucket_floor(b: usize) -> u64 {
    if b < SUB {
        return b as u64;
    }
    let octave = b / SUB;
    let sub = b % SUB;
    if octave < 2 {
        // bucket_of never produces octave-1 indices (values below `SUB`
        // map exactly to the first buckets; values >= SUB have
        // octave >= 2), so these permanently-empty buckets just need a
        // floor that keeps the bounds monotone.
        return SUB as u64;
    }
    (1u64 << octave) + ((sub as u64) << (octave - 2))
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Exact sum of all recorded samples in nanoseconds — the
    /// Prometheus `_sum` value (integer, so it reconciles exactly with
    /// the per-sample totals a load report prints).
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Per-bucket sample counts, low to high — one entry per bucket of
    /// the fixed log-spaced layout, in lockstep with
    /// [`LatencyHistogram::bucket_bounds`].
    pub fn bucket_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.iter().copied()
    }

    /// Per-bucket `(lower, upper)` bounds in nanoseconds, low to high. A
    /// bucket with count `c` holds `c` samples in `lower..upper` (the
    /// last bucket is open-ended: its upper bound is `u64::MAX`). The
    /// upper bound is the Prometheus `le` label of the cumulative
    /// `_bucket` series.
    pub fn bucket_bounds() -> impl Iterator<Item = (u64, u64)> {
        (0..BUCKETS).map(|b| {
            let lo = bucket_floor(b);
            let hi = if b + 1 < BUCKETS {
                bucket_floor(b + 1)
            } else {
                u64::MAX
            };
            (lo, hi)
        })
    }

    /// The `q`-quantile (`0 < q <= 1`), e.g. `0.5` for p50, `0.99` for
    /// p99. Interpolates linearly **by rank** within the bucket that
    /// crosses the requested rank: if the bucket `[lo, hi)` holds samples
    /// of ranks `(prior, prior + c]`, the returned value is
    /// `lo + (hi − lo)·(rank − prior)/c`, clamped to the recorded
    /// maximum. A bucket holding a single quantile's whole mass thus
    /// reports a value that moves monotonically with `q` instead of a
    /// constant midpoint. Zero when empty; depends only on the bucket
    /// counts, so exactly-merged histograms report identical quantiles.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            let prior = seen;
            seen += c;
            if seen >= rank {
                let lo = bucket_floor(b) as f64;
                let hi = bucket_floor((b + 1).min(BUCKETS - 1)).max(bucket_floor(b) + 1) as f64;
                let frac = (rank - prior) as f64 / c as f64;
                let v = (lo + (hi - lo) * frac).min(self.max_ns as f64);
                return Duration::from_nanos(v as u64);
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Folds `count` samples pre-assigned to `bucket` into the histogram
    /// (exact bucket-wise sum; the telemetry registry's striped atomic
    /// timers merge through this).
    pub(crate) fn absorb_bucket(&mut self, bucket: usize, count: u64) {
        self.counts[bucket] += count;
        self.total += count;
    }

    /// Folds a stripe's aggregate sum/max in (companion of
    /// [`LatencyHistogram::absorb_bucket`]).
    pub(crate) fn absorb_aggregate(&mut self, sum_ns: u128, max_ns: u64) {
        self.sum_ns += sum_ns;
        self.max_ns = self.max_ns.max(max_ns);
    }

    /// Adds every sample of `other` into `self` (exact: bucket-wise sum).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Counter snapshot of a [`crate::service::QueryEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Pair estimates served (cache hits included).
    pub queries: u64,
    /// Pair estimates answered from the epoch-tagged cache.
    pub cache_hits: u64,
    /// Hosts admitted (coalesced and direct).
    pub joins: u64,
    /// Admission batch flushes (one batched solve + publish each);
    /// `joins / flushes` is the realized coalescing factor.
    pub flushes: u64,
    /// Hosts retired.
    pub leaves: u64,
    /// Drift epochs applied.
    pub epochs: u64,
    /// Version of the currently published snapshot.
    pub version: u64,
    /// Hosts currently queued in the admission coalescer (enqueued but
    /// not yet flushed) — the queue-depth gauge; summed across shards.
    pub coalescer_depth: u64,
    /// Pair-cache entries currently holding a value (live or stale) —
    /// occupancy of the direct-mapped cache; summed across shards.
    pub cache_occupied: u64,
    /// Total pair-cache slots (`cache_occupied / cache_slots` is the
    /// occupancy ratio); summed across shards.
    pub cache_slots: u64,
    /// Coordinate-table chunks the latest published snapshot shares with
    /// its predecessor (copy-on-write reuse at the last publish).
    pub chunk_shared: u64,
    /// Total coordinate-table chunks in the latest published snapshot —
    /// the denominator of [`ServiceStats::chunk_share_ratio`].
    pub chunk_total: u64,
}

impl ServiceStats {
    /// Fraction of the latest snapshot's coordinate-table chunks reused
    /// from its predecessor (1.0 = publish copied nothing; 0 before the
    /// first incremental publish or when the table is empty).
    pub fn chunk_share_ratio(&self) -> f64 {
        if self.chunk_total == 0 {
            0.0
        } else {
            self.chunk_shared as f64 / self.chunk_total as f64
        }
    }
}

/// Accumulated shape of the epoch plans a drift writer has executed
/// ([`crate::streaming::dag::PlanStats`] summed over epochs) — the
/// write-side parallelism signal exposed through
/// `DistanceService::epoch_plan_totals` and `ides-cli serve --json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochPlanTotals {
    /// Epochs whose plans were executed.
    pub epochs: u64,
    /// Total DAG nodes across all plans.
    pub nodes: u64,
    /// Total dependency edges across all plans.
    pub edges: u64,
    /// Total `Observed::All` worst-case edges across all plans — the
    /// denominator of [`EpochPlanTotals::pruning_ratio`].
    pub full_edges: u64,
    /// Rejoins elided outright (subset untouched by the epoch while the
    /// coordinate table was attested current).
    pub pruned: u64,
    /// Epochs whose rejoin tier overlapped a successor's absorb tier
    /// (pipelined execution); see [`EpochPlanTotals::overlap_fraction`].
    pub pipelined: u64,
    /// Total antichain groups executed (one solve/commit barrier each).
    pub groups: u64,
    /// Widest antichain seen in any plan — peak admitted concurrency.
    pub max_width: u64,
    /// Summed critical-path lengths (the serial fraction of the plans).
    pub critical_path: u64,
}

impl EpochPlanTotals {
    /// Folds one executed plan's statistics in.
    pub fn absorb(&mut self, stats: &crate::streaming::dag::PlanStats) {
        self.epochs += 1;
        self.nodes += stats.nodes as u64;
        self.edges += stats.edges as u64;
        self.full_edges += stats.full_edges as u64;
        self.pruned += stats.pruned as u64;
        self.groups += stats.groups as u64;
        self.max_width = self.max_width.max(stats.max_width as u64);
        self.critical_path += stats.critical_path as u64;
    }

    /// Merges another accumulator (e.g. a sibling shard's) into `self`.
    pub fn merge(&mut self, other: &EpochPlanTotals) {
        self.epochs += other.epochs;
        self.nodes += other.nodes;
        self.edges += other.edges;
        self.full_edges += other.full_edges;
        self.pruned += other.pruned;
        self.pipelined += other.pipelined;
        self.groups += other.groups;
        self.max_width = self.max_width.max(other.max_width);
        self.critical_path += other.critical_path;
    }

    /// Mean antichain width (nodes per group) across all executed plans —
    /// the average concurrency the DAGs admitted (0 when no plans ran).
    pub fn mean_width(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.nodes as f64 / self.groups as f64
        }
    }

    /// Fraction of the `Observed::All` worst-case dependency edges the
    /// executed plans avoided, accumulated over every epoch
    /// (`1 − edges/full_edges`; 0 when no worst-case edges exist). 0 for
    /// full-measurement serving; approaches 1 under localized drift with
    /// partial observed sets.
    pub fn pruning_ratio(&self) -> f64 {
        if self.full_edges == 0 {
            0.0
        } else {
            1.0 - self.edges as f64 / self.full_edges as f64
        }
    }

    /// Fraction of epochs whose rejoin tier overlapped the next epoch's
    /// absorb tier (0 = fully barriered, → 1 for long pipelined batches).
    pub fn overlap_fraction(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.pipelined as f64 / self.epochs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut prev = 0;
        for ns in [0u64, 1, 2, 3, 4, 7, 8, 100, 1_000, 1_000_000, u64::MAX / 2] {
            let b = bucket_of(ns);
            assert!(b >= prev || ns < 8, "bucket order broke at {ns}");
            prev = b;
            assert!(
                bucket_floor(b) <= ns.max(1),
                "floor {} above value {ns}",
                bucket_floor(b)
            );
        }
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 99 samples at ~1µs, 1 sample at ~1ms.
        for _ in 0..99 {
            h.record(Duration::from_micros(1));
        }
        h.record(Duration::from_millis(1));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).as_nanos() as f64;
        assert!((800.0..1300.0).contains(&p50), "p50 {p50}ns");
        let p99 = h.quantile(0.99).as_nanos() as f64;
        assert!(p99 < 2000.0, "p99 {p99}ns should still be in the 1µs mass");
        let p100 = h.quantile(1.0);
        assert!(p100.as_micros() >= 800, "max-quantile {p100:?}");
        assert!(h.max() >= Duration::from_micros(999));
        assert!(h.mean() > Duration::from_micros(1));
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..50u64 {
            let d = Duration::from_nanos(100 + i * 13);
            a.record(d);
            whole.record(d);
        }
        for i in 0..70u64 {
            let d = Duration::from_micros(3 + i);
            b.record(d);
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.mean(), whole.mean());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn quantile_interpolates_by_rank_within_bucket() {
        // 100 identical samples all land in one bucket: the quantile must
        // move monotonically with q across that bucket's span instead of
        // returning one constant midpoint.
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Duration::from_nanos(1000));
        }
        let (lo, hi) = LatencyHistogram::bucket_bounds()
            .nth(bucket_of(1000))
            .unwrap();
        let p10 = h.quantile(0.10).as_nanos() as u64;
        let p90 = h.quantile(0.90).as_nanos() as u64;
        assert!(p10 >= lo && p90 <= hi, "{p10}..{p90} outside {lo}..{hi}");
        assert!(p90 > p10, "interpolation must be monotone in q");
        // The top rank clamps to the recorded maximum, never the bucket
        // ceiling.
        assert_eq!(h.quantile(1.0), Duration::from_nanos(1000));
    }

    #[test]
    fn bucket_iteration_matches_recorded_samples() {
        let mut h = LatencyHistogram::new();
        for ns in [1u64, 900, 1000, 1100, 5_000_000] {
            h.record(Duration::from_nanos(ns));
        }
        let counts: Vec<u64> = h.bucket_counts().collect();
        let bounds: Vec<(u64, u64)> = LatencyHistogram::bucket_bounds().collect();
        assert_eq!(counts.len(), BUCKETS);
        assert_eq!(bounds.len(), BUCKETS);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
        // Bounds tile the axis: each bucket's upper bound is the next
        // bucket's lower bound, and every recorded sample sits inside the
        // bounds of its bucket.
        for w in bounds.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        for ns in [1u64, 900, 1000, 1100, 5_000_000] {
            let b = bucket_of(ns);
            assert!(counts[b] > 0, "{ns}ns bucket {b} empty");
            assert!(bounds[b].0 <= ns && ns < bounds[b].1.max(ns + 1));
        }
    }

    #[test]
    fn stats_chunk_share_ratio() {
        let mut s = ServiceStats {
            queries: 0,
            cache_hits: 0,
            joins: 0,
            flushes: 0,
            leaves: 0,
            epochs: 0,
            version: 0,
            coalescer_depth: 0,
            cache_occupied: 0,
            cache_slots: 0,
            chunk_shared: 0,
            chunk_total: 0,
        };
        assert_eq!(s.chunk_share_ratio(), 0.0, "empty table: no ratio");
        s.chunk_shared = 3;
        s.chunk_total = 4;
        assert!((s.chunk_share_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn plan_totals_absorb_and_merge() {
        use crate::streaming::dag::PlanStats;
        let mut a = EpochPlanTotals::default();
        assert_eq!(a.mean_width(), 0.0);
        assert_eq!(a.pruning_ratio(), 0.0);
        assert_eq!(a.overlap_fraction(), 0.0);
        a.absorb(&PlanStats {
            nodes: 6,
            edges: 8,
            full_edges: 12,
            pruned: 3,
            groups: 2,
            max_width: 5,
            critical_path: 2,
        });
        a.absorb(&PlanStats {
            nodes: 1,
            edges: 0,
            full_edges: 4,
            pruned: 0,
            groups: 1,
            max_width: 1,
            critical_path: 1,
        });
        assert_eq!(a.epochs, 2);
        assert_eq!(a.nodes, 7);
        assert_eq!(a.groups, 3);
        assert_eq!(a.max_width, 5, "max_width is a high-water mark");
        assert_eq!(a.critical_path, 3);
        assert_eq!(a.full_edges, 16);
        assert_eq!(a.pruned, 3);
        assert!((a.pruning_ratio() - 0.5).abs() < 1e-12, "1 - 8/16");
        a.pipelined += 1;
        assert!((a.overlap_fraction() - 0.5).abs() < 1e-12, "1 of 2 epochs");
        let mut b = EpochPlanTotals::default();
        b.absorb(&PlanStats {
            nodes: 9,
            edges: 1,
            full_edges: 1,
            pruned: 0,
            groups: 3,
            max_width: 7,
            critical_path: 3,
        });
        b.merge(&a);
        assert_eq!(b.epochs, 3);
        assert_eq!(b.nodes, 16);
        assert_eq!(b.max_width, 7);
        assert_eq!(b.full_edges, 17);
        assert_eq!(b.pruned, 3);
        assert_eq!(b.pipelined, 1);
        assert!((b.mean_width() - 16.0 / 6.0).abs() < 1e-12);
    }
}
