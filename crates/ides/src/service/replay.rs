//! Deterministic workload replay: drives an [`ides_netsim::workload`]
//! event stream against a [`QueryEngine`] — or any other
//! [`ReplayTarget`], such as a [`super::ShardedEngine`] — with
//! **bit-reproducible** results at any thread count.
//!
//! Mutations (joins, leaves, drift epochs) are applied by the replay
//! driver in event order — so slot assignment, free-list reuse, and model
//! maintenance are one deterministic sequence — while runs of consecutive
//! query events execute as a parallel segment, sharded contiguously over
//! `threads` scoped threads. Queries are pure reads against published
//! snapshots (and every answer slot is written by exactly one thread), so
//! the answer vector and the final coordinate table are bit-identical
//! whether a segment ran on 1 thread or 16 — the property
//! `tests/service_determinism.rs` pins.

use std::sync::Arc;

use ides_netsim::workload::{Workload, WorkloadOp};

use crate::error::{IdesError, Result};
use crate::streaming::{EpochOutcome, EpochUpdate, MeasurementDelta};

use super::{NodeId, QueryEngine, ShardedEngine, Snapshot};

/// What the replay driver needs from an engine: event-ordered mutations
/// plus a **pinned read view** that a parallel query segment can answer
/// against without observing concurrent publishes.
pub trait ReplayTarget: Sync {
    /// An immutable view of the published state (e.g. one pinned
    /// snapshot, or one pinned snapshot per shard).
    type View: Sync;
    /// Number of landmarks the engine was fitted on.
    fn landmark_count(&self) -> usize;
    /// Pins the current published view.
    fn pin(&self) -> Self::View;
    /// Answers one pair query against a pinned view.
    fn estimate_pinned(&self, view: &Self::View, a: NodeId, b: NodeId) -> Result<f64>;
    /// Admits a host on the direct (uncoalesced) path.
    fn join_direct(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId>;
    /// Retires a host.
    fn leave(&self, host: NodeId) -> Result<()>;
    /// Applies one drift epoch.
    fn apply_epoch(&self, update: &EpochUpdate) -> Result<EpochOutcome>;
    /// Version counter of the final published state (sum over shards for
    /// sharded targets — only comparable between equal shard counts).
    fn final_version(&self) -> u64;
}

impl ReplayTarget for QueryEngine {
    type View = Arc<Snapshot>;
    fn landmark_count(&self) -> usize {
        QueryEngine::landmark_count(self)
    }
    fn pin(&self) -> Arc<Snapshot> {
        self.snapshot()
    }
    fn estimate_pinned(&self, view: &Arc<Snapshot>, a: NodeId, b: NodeId) -> Result<f64> {
        self.estimate_on(view, a, b)
    }
    fn join_direct(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        QueryEngine::join_direct(self, d_out, d_in)
    }
    fn leave(&self, host: NodeId) -> Result<()> {
        QueryEngine::leave(self, host)
    }
    fn apply_epoch(&self, update: &EpochUpdate) -> Result<EpochOutcome> {
        QueryEngine::apply_epoch(self, update)
    }
    fn final_version(&self) -> u64 {
        self.snapshot().version()
    }
}

impl ReplayTarget for ShardedEngine {
    type View = Vec<Arc<Snapshot>>;
    fn landmark_count(&self) -> usize {
        ShardedEngine::landmark_count(self)
    }
    fn pin(&self) -> Vec<Arc<Snapshot>> {
        self.snapshots()
    }
    fn estimate_pinned(&self, view: &Vec<Arc<Snapshot>>, a: NodeId, b: NodeId) -> Result<f64> {
        self.estimate_on(view, a, b)
    }
    fn join_direct(&self, d_out: &[f64], d_in: &[f64]) -> Result<NodeId> {
        ShardedEngine::join_direct(self, d_out, d_in)
    }
    fn leave(&self, host: NodeId) -> Result<()> {
        ShardedEngine::leave(self, host)
    }
    fn apply_epoch(&self, update: &EpochUpdate) -> Result<EpochOutcome> {
        ShardedEngine::apply_epoch(self, update)
    }
    fn final_version(&self) -> u64 {
        self.stats().version
    }
}

/// Outcome of a deterministic replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// One answer per query event, in event order.
    pub answers: Vec<f64>,
    /// Hosts admitted.
    pub joins: usize,
    /// Hosts retired.
    pub leaves: usize,
    /// Drift epochs applied.
    pub epochs: usize,
    /// Version of the final published snapshot.
    pub final_version: u64,
}

/// Converts a landmark-pair drift batch into the symmetric measurement
/// deltas [`crate::streaming::StreamingServer::apply_epoch`] expects
/// (each undirected sample lands in both matrix directions).
pub fn epoch_update_from_batch(batch: &ides_netsim::drift::EpochBatch) -> EpochUpdate {
    let mut deltas = Vec::with_capacity(batch.samples.len() * 2);
    for s in &batch.samples {
        deltas.push(MeasurementDelta {
            from: s.i,
            to: s.j,
            rtt: s.rtt,
        });
        deltas.push(MeasurementDelta {
            from: s.j,
            to: s.i,
            rtt: s.rtt,
        });
    }
    EpochUpdate {
        epoch: batch.epoch,
        deltas,
    }
}

/// Replays `workload` against `engine` (see the [module docs](self)).
///
/// The workload must have been generated for this engine's landmark
/// count; join/leave events reference pool hosts, which the replay maps
/// to engine slots as admissions execute.
pub fn replay<T: ReplayTarget>(
    engine: &T,
    workload: &Workload,
    threads: usize,
) -> Result<ReplayReport> {
    if workload.landmark_count != engine.landmark_count() {
        return Err(IdesError::InvalidInput(format!(
            "workload was generated for {} landmarks, engine has {}",
            workload.landmark_count,
            engine.landmark_count()
        )));
    }
    let threads = threads.max(1);
    let k = workload.landmark_count;
    let mut slot_of: Vec<Option<NodeId>> = vec![None; workload.pool_size];
    let mut answers: Vec<f64> = Vec::new();
    let mut joins = 0usize;
    let mut leaves = 0usize;
    let mut epochs = 0usize;
    // Pending query segment: (a, b) pairs awaiting a parallel flush.
    let mut segment: Vec<(NodeId, NodeId)> = Vec::new();

    let node_of = |n: usize, slots: &[Option<NodeId>]| -> Result<NodeId> {
        if n < k {
            Ok(NodeId::Landmark(n))
        } else {
            slots[n - k].ok_or_else(|| {
                IdesError::InvalidInput(format!("query references unjoined pool host {}", n - k))
            })
        }
    };

    for event in &workload.events {
        match &event.op {
            WorkloadOp::Query { a, b } => {
                segment.push((node_of(*a, &slot_of)?, node_of(*b, &slot_of)?));
            }
            mutation => {
                flush_segment(engine, &mut segment, &mut answers, threads)?;
                match mutation {
                    WorkloadOp::Join { host, d_out, d_in } => {
                        let id = engine.join_direct(d_out, d_in)?;
                        slot_of[*host] = Some(id);
                        joins += 1;
                    }
                    WorkloadOp::Leave { host } => {
                        let id = slot_of[*host].take().ok_or_else(|| {
                            IdesError::InvalidInput(format!("leave of unjoined pool host {host}"))
                        })?;
                        engine.leave(id)?;
                        leaves += 1;
                    }
                    WorkloadOp::Drift(batch) => {
                        engine.apply_epoch(&epoch_update_from_batch(batch))?;
                        epochs += 1;
                    }
                    WorkloadOp::Query { .. } => unreachable!("handled above"),
                }
            }
        }
    }
    flush_segment(engine, &mut segment, &mut answers, threads)?;
    Ok(ReplayReport {
        answers,
        joins,
        leaves,
        epochs,
        final_version: engine.final_version(),
    })
}

/// Answers the buffered query segment, sharded contiguously over
/// `threads` scoped threads, appending to `answers` in segment order.
fn flush_segment<T: ReplayTarget>(
    engine: &T,
    segment: &mut Vec<(NodeId, NodeId)>,
    answers: &mut Vec<f64>,
    threads: usize,
) -> Result<()> {
    if segment.is_empty() {
        return Ok(());
    }
    let view = engine.pin();
    let base = answers.len();
    answers.resize(base + segment.len(), 0.0);
    let out = &mut answers[base..];
    if threads <= 1 || segment.len() <= 1 {
        for (slot, &(a, b)) in out.iter_mut().zip(segment.iter()) {
            *slot = engine.estimate_pinned(&view, a, b)?;
        }
        segment.clear();
        return Ok(());
    }
    let chunk = segment.len().div_ceil(threads);
    let results: Vec<Result<()>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (out_chunk, pair_chunk) in out.chunks_mut(chunk).zip(segment.chunks(chunk)) {
            let view = &view;
            handles.push(scope.spawn(move || -> Result<()> {
                for (slot, &(a, b)) in out_chunk.iter_mut().zip(pair_chunk.iter()) {
                    *slot = engine.estimate_pinned(view, a, b)?;
                }
                Ok(())
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("query shard thread panicked"))
            .collect()
    });
    segment.clear();
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::streaming::{StalenessPolicy, StreamingServer};
    use ides_datasets::DistanceMatrix;
    use ides_linalg::Matrix;
    use ides_netsim::workload::{self, WorkloadConfig};

    fn setup() -> (QueryEngine, Workload) {
        let ds = ides_datasets::generators::p2psim_like(40, 23).expect("dataset");
        let landmarks: Vec<usize> = ds.row_hosts[..12].to_vec();
        let pool: Vec<usize> = ds.row_hosts[12..32].to_vec();
        let drift = ides_netsim::drift::DriftModel::new(0.2, 24.0, 23);
        let lm = Matrix::from_fn(12, 12, |a, b| {
            drift.rtt(&ds.topology, landmarks[a], landmarks[b], 0.0)
        });
        let server = StreamingServer::new(
            &DistanceMatrix::full("lm", lm).unwrap(),
            5,
            StalenessPolicy::default(),
        )
        .expect("server");
        let engine = QueryEngine::new(server, ServiceConfig::default()).expect("engine");
        let w = workload::generate(
            &ds.topology,
            &landmarks,
            &pool,
            &WorkloadConfig {
                seed: 23,
                requests: 400,
                join_weight: 0.10,
                leave_weight: 0.05,
                query_weight: 0.85,
                drift_amplitude: 0.2,
                drift_epochs: 6,
                ..WorkloadConfig::default()
            },
        );
        (engine, w)
    }

    #[test]
    fn replay_accounts_for_every_event() {
        let (engine, w) = setup();
        let queries = w
            .events
            .iter()
            .filter(|e| matches!(e.op, WorkloadOp::Query { .. }))
            .count();
        let report = replay(&engine, &w, 2).expect("replay");
        assert_eq!(report.answers.len(), queries);
        assert!(report.joins > 0, "workload should admit hosts");
        assert_eq!(report.epochs, 6);
        assert!(report.answers.iter().all(|v| v.is_finite()));
        let stats = engine.stats();
        assert_eq!(stats.queries, queries as u64);
        assert_eq!(stats.joins, report.joins as u64);
        assert_eq!(stats.epochs, 6);
    }

    #[test]
    fn replay_rejects_mismatched_workload() {
        let (engine, mut w) = setup();
        w.landmark_count = 5;
        assert!(replay(&engine, &w, 1).is_err());
    }
}
