//! Wall-clock load harness: drives real threads against any
//! [`DistanceService`] — a single [`QueryEngine`] or a
//! [`ShardedEngine`] — and reports latency quantiles and throughput.
//!
//! Unlike [`super::replay`] (deterministic, event-ordered, used for the
//! bit-identity contracts), this harness measures the engine under
//! genuine concurrency: `threads` query workers sample pairs as fast as
//! they can (closed loop) or paced to a target rate (open loop), an
//! optional drift writer applies epoch updates at a fixed interval, and
//! an optional churn worker joins/leaves hosts continuously. Per-thread
//! [`LatencyHistogram`]s merge into the report, so p50/p99 come from
//! every recorded operation, not a sample; on a sharded engine each
//! query also lands in the histogram of the shard that served its first
//! endpoint ([`LoadReport::per_shard_latency`]), so shard imbalance is
//! visible.
//!
//! This is the measurement side of the `serve` / `serve_sharded` bench
//! groups and the `ides-cli serve` command: quiescent vs under-drift
//! query p99, admission throughput with and without coalescing, and
//! sharded-vs-single throughput. [`scale_scenario`] builds the
//! million-host deployment (topology-direct, bulk-admitted via
//! [`ShardedEngine::join_many`]) that backs the scale acceptance runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Result;
use crate::streaming::EpochUpdate;

use super::metrics::{EpochPlanTotals, LatencyHistogram, ServiceStats};
use super::{DistanceService, NodeId, QueryEngine, ShardedEngine};

/// Query-load shape.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Query worker threads.
    pub threads: usize,
    /// Wall-clock run time.
    pub duration: Duration,
    /// Seed for the per-thread pair sampling streams.
    pub seed: u64,
    /// `None` = closed loop (each worker issues its next query as soon as
    /// the previous one returns); `Some(rate)` = open loop, each worker
    /// paced to `rate` queries per second with exponential gaps.
    pub pace_per_thread: Option<f64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            threads: 4,
            duration: Duration::from_secs(2),
            seed: 20041025,
            pace_per_thread: None,
        }
    }
}

/// Continuous drift applied while the query load runs: the updates are
/// cycled in order, one writer call per `interval` — a single
/// [`QueryEngine::apply_epoch`] when `batch <= 1`, a pipelined
/// [`QueryEngine::apply_epochs`] batch otherwise (epoch `N`'s host
/// rejoins overlap epoch `N+1`'s landmark absorbs; one publish per
/// batch).
#[derive(Debug, Clone)]
pub struct DriftLoad {
    /// Epoch updates to cycle through (epochs are re-stamped
    /// monotonically so the streaming server always moves forward).
    pub updates: Vec<EpochUpdate>,
    /// Wall-clock gap between writer calls.
    pub interval: Duration,
    /// Epochs per writer call (0/1 = classic barriered single epochs;
    /// >= 2 engages the cross-epoch pipeline).
    pub batch: usize,
}

/// Continuous admission churn applied while the query load runs: each
/// (out, in) measurement row is joined and immediately left, cycling.
#[derive(Debug, Clone)]
pub struct ChurnLoad {
    /// Measurement rows to cycle through.
    pub rows: Vec<(Vec<f64>, Vec<f64>)>,
    /// Wall-clock gap between join/leave pairs (zero = as fast as
    /// possible).
    pub interval: Duration,
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Actual wall-clock time spent.
    pub elapsed: Duration,
    /// Queries answered across all workers.
    pub queries: u64,
    /// Merged query-latency histogram.
    pub query_latency: LatencyHistogram,
    /// Queries per second (all workers combined).
    pub queries_per_sec: f64,
    /// Drift epochs applied during the run.
    pub epochs: u64,
    /// Join/leave pairs completed by the churn worker.
    pub churned: u64,
    /// Fraction of queries answered from the pair cache.
    pub cache_hit_rate: f64,
    /// Query latency split by the shard that served each query's first
    /// endpoint (one entry per shard; a single engine reports one).
    pub per_shard_latency: Vec<LatencyHistogram>,
}

/// Runs the query load (plus optional drift writer and churn worker)
/// against `engine`, sampling query pairs uniformly from `nodes`. The
/// node list must stay valid for the whole run — pass landmarks and
/// hosts that the churn worker does not touch.
pub fn run<S: DistanceService + ?Sized>(
    engine: &S,
    nodes: &[NodeId],
    config: &LoadConfig,
    drift: Option<&DriftLoad>,
    churn: Option<&ChurnLoad>,
) -> Result<LoadReport> {
    assert!(nodes.len() >= 2, "need at least two nodes to query");
    assert!(config.threads >= 1, "need at least one query worker");
    let n_shards = engine.shard_count().max(1);
    let stats_before = engine.stats();
    let stop = AtomicBool::new(false);
    let start = Instant::now();

    let mut worker_hists: Vec<Vec<LatencyHistogram>> = Vec::new();
    let mut churned = 0u64;
    std::thread::scope(|scope| {
        // Query workers.
        let mut handles = Vec::new();
        for tid in 0..config.threads {
            let stop = &stop;
            handles.push(scope.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(config.seed ^ (tid as u64).wrapping_mul(0x9E37));
                let mut hists: Vec<LatencyHistogram> =
                    (0..n_shards).map(|_| LatencyHistogram::new()).collect();
                let mut next_at = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    if let Some(rate) = config.pace_per_thread {
                        // Open loop: exponential inter-arrival pacing.
                        let gap = -(1.0 - rng.gen_range(0.0f64..1.0)).ln() / rate;
                        next_at += Duration::from_secs_f64(gap);
                        let now = Instant::now();
                        if next_at > now {
                            std::thread::sleep(next_at - now);
                        }
                    }
                    let a = nodes[rng.gen_range(0..nodes.len())];
                    let b = nodes[rng.gen_range(0..nodes.len())];
                    let t0 = Instant::now();
                    let est = engine.estimate(a, b);
                    hists[engine.shard_of(a)].record(t0.elapsed());
                    debug_assert!(est.is_ok(), "query failed: {est:?}");
                    let _ = est;
                }
                hists
            }));
        }
        // Drift writer.
        let drift_handle = drift.map(|d| {
            let stop = &stop;
            scope.spawn(move || {
                let mut epoch = f64::max(engine.current_epoch(), 0.0);
                let mut i = 0usize;
                let batch = d.batch.max(1);
                let mut updates: Vec<EpochUpdate> = Vec::with_capacity(batch);
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(d.interval);
                    if stop.load(Ordering::Relaxed) || d.updates.is_empty() {
                        break;
                    }
                    updates.clear();
                    for _ in 0..batch {
                        epoch += 1.0;
                        let mut update = d.updates[i % d.updates.len()].clone();
                        update.epoch = epoch;
                        updates.push(update);
                        i += 1;
                    }
                    if batch == 1 {
                        engine.apply_epoch(&updates[0]).expect("drift epoch");
                    } else {
                        engine.apply_epochs(&updates).expect("drift epoch batch");
                    }
                }
            })
        });
        // Churn worker.
        let churn_handle = churn.map(|c| {
            let stop = &stop;
            scope.spawn(move || {
                let mut done = 0u64;
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    if !c.interval.is_zero() {
                        std::thread::sleep(c.interval);
                    }
                    if stop.load(Ordering::Relaxed) || c.rows.is_empty() {
                        break;
                    }
                    let (d_out, d_in) = &c.rows[i % c.rows.len()];
                    let id = engine.join(d_out, d_in).expect("churn join");
                    engine.leave(id).expect("churn leave");
                    done += 1;
                    i += 1;
                }
                done
            })
        });

        std::thread::sleep(config.duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            worker_hists.push(h.join().expect("query worker panicked"));
        }
        if let Some(h) = drift_handle {
            h.join().expect("drift writer panicked");
        }
        if let Some(h) = churn_handle {
            churned = h.join().expect("churn worker panicked");
        }
    });

    let elapsed = start.elapsed();
    let mut per_shard_latency: Vec<LatencyHistogram> =
        (0..n_shards).map(|_| LatencyHistogram::new()).collect();
    for worker in &worker_hists {
        for (merged, h) in per_shard_latency.iter_mut().zip(worker) {
            merged.merge(h);
        }
    }
    let mut query_latency = LatencyHistogram::new();
    for h in &per_shard_latency {
        query_latency.merge(h);
    }
    let stats_after = engine.stats();
    let queries = query_latency.count();
    let delta_q = stats_after.queries.saturating_sub(stats_before.queries);
    let delta_hits = stats_after
        .cache_hits
        .saturating_sub(stats_before.cache_hits);
    Ok(LoadReport {
        elapsed,
        queries,
        queries_per_sec: queries as f64 / elapsed.as_secs_f64(),
        epochs: stats_after.epochs.saturating_sub(stats_before.epochs),
        churned,
        cache_hit_rate: if delta_q == 0 {
            0.0
        } else {
            delta_hits as f64 / delta_q as f64
        },
        query_latency,
        per_shard_latency,
    })
}

/// A ready-to-serve synthetic deployment: an engine over a drifting
/// transit-stub substrate with `hosts` ordinary hosts admitted, plus the
/// raw material the load drivers need (query node list, the hosts'
/// measurement rows for churn, and a cycle of landmark drift epochs).
/// Shared by `ides-cli serve`, the `serve` / `serve_sharded` bench
/// groups, and the `serve_load` experiment so they all measure the same
/// deployment. Generic over the engine: [`QueryEngine`] for the classic
/// single-writer scenarios, [`ShardedEngine`] for the sharded and scale
/// ones.
#[derive(Debug)]
pub struct ServeScenario<S = QueryEngine> {
    /// The serving engine (landmark model fitted, hosts admitted).
    pub engine: S,
    /// Landmarks plus every admitted host — the query population.
    pub nodes: Vec<NodeId>,
    /// Admitted hosts' measurement rows (out, in), usable as churn fodder
    /// or to re-derive coordinates externally. [`scale_scenario`] retains
    /// only a sample (keeping a million rows would dwarf the engine).
    pub host_rows: Vec<(Vec<f64>, Vec<f64>)>,
    /// Landmark drift epochs (non-empty batches, in epoch order) to cycle
    /// through a [`DriftLoad`].
    pub drift_updates: Vec<EpochUpdate>,
}

/// The fitted substrate every scenario builder starts from: a drifting
/// transit-stub topology, the landmark ids, a [`StreamingServer`] fitted
/// on the epoch-zero landmark matrix, and a cycle of drift epochs.
struct ScenarioSubstrate {
    topology: ides_netsim::TransitStubTopology,
    drift: ides_netsim::drift::DriftModel,
    lm_ids: Vec<usize>,
    host_ids: Vec<usize>,
    server: crate::streaming::StreamingServer,
    drift_updates: Vec<EpochUpdate>,
}

use crate::streaming::StreamingServer;

impl ScenarioSubstrate {
    /// Fits the landmark model at drift epoch zero over the given
    /// topology and host-id split. Deterministic per topology/seed.
    fn fit(
        topology: ides_netsim::TransitStubTopology,
        lm_ids: Vec<usize>,
        host_ids: Vec<usize>,
        dim: usize,
        seed: u64,
        policy: crate::streaming::StalenessPolicy,
    ) -> Result<ScenarioSubstrate> {
        use ides_netsim::drift::{DriftModel, DriftStream};

        let landmarks = lm_ids.len();
        let drift = DriftModel::new(0.2, 24.0, seed);
        let lm = ides_linalg::Matrix::from_fn(landmarks, landmarks, |a, b| {
            drift.rtt(&topology, lm_ids[a], lm_ids[b], 0.0)
        });
        let server = StreamingServer::new(
            &ides_datasets::DistanceMatrix::full("serve-lm", lm)
                .map_err(|e| crate::error::IdesError::InvalidInput(e.to_string()))?,
            dim,
            policy,
        )?;
        let mut stream = DriftStream::new(&topology, drift.clone(), lm_ids.clone(), 1.0, 0.01);
        let drift_updates: Vec<EpochUpdate> = (&mut stream)
            .take(16)
            .filter(|b| !b.samples.is_empty())
            .map(|b| super::replay::epoch_update_from_batch(&b))
            .collect();
        Ok(ScenarioSubstrate {
            topology,
            drift,
            lm_ids,
            host_ids,
            server,
            drift_updates,
        })
    }

    /// Measurement row of ordinary host `h` at drift epoch zero (the same
    /// row for both directions — the harness measures serving cost, not
    /// asymmetry recovery).
    fn row(&self, h: usize) -> Vec<f64> {
        ides_netsim::workload::measurement_row(&self.topology, &self.drift, h, &self.lm_ids, 0.0)
    }
}

/// Builds the P2PSim-like substrate used by [`synthetic_scenario`] and
/// [`synthetic_scenario_sharded`] (post-filter host sampling, King-style
/// measurement of the landmark matrix's substrate).
fn p2psim_substrate(
    landmarks: usize,
    hosts: usize,
    dim: usize,
    seed: u64,
    policy: crate::streaming::StalenessPolicy,
) -> Result<ScenarioSubstrate> {
    // `p2psim_like(n)` treats `n` as a *post-filter* target: how many
    // hosts survive its measurement-loss filter is stochastic, and at
    // larger populations the survivor count can land short of the
    // request. Grow the target until enough hosts survive — each
    // attempt is deterministic per (target, seed).
    let want = landmarks + hosts;
    let mut target = want;
    let ds = loop {
        let ds = ides_datasets::generators::p2psim_like(target, seed)
            .map_err(|e| crate::error::IdesError::InvalidInput(e.to_string()))?;
        if ds.row_hosts.len() >= want {
            break ds;
        }
        target += target / 4 + 16;
    };
    let lm_ids: Vec<usize> = ds.row_hosts[..landmarks].to_vec();
    let host_ids: Vec<usize> = ds.row_hosts[landmarks..landmarks + hosts].to_vec();
    ScenarioSubstrate::fit(ds.topology, lm_ids, host_ids, dim, seed, policy)
}

/// Builds a [`ServeScenario`]: a P2PSim-like transit-stub topology, a
/// ±20 % diurnal drift layer, `landmarks` landmarks fitted at drift epoch
/// zero, and `hosts` ordinary hosts admitted from their epoch-zero
/// measurements. Deterministic per seed.
pub fn synthetic_scenario(
    landmarks: usize,
    hosts: usize,
    dim: usize,
    seed: u64,
    config: super::ServiceConfig,
) -> Result<ServeScenario> {
    synthetic_scenario_with_policy(
        landmarks,
        hosts,
        dim,
        seed,
        config,
        crate::streaming::StalenessPolicy::default(),
    )
}

/// [`synthetic_scenario`] with an explicit [`StalenessPolicy`] for the
/// fitted streaming server — e.g. a lowered
/// [`min_pipeline_hosts`](crate::streaming::StalenessPolicy::min_pipeline_hosts)
/// so small CI deployments still engage the cross-epoch pipeline (and
/// emit overlapping `pipeline_handoff`/`rejoin` trace spans).
///
/// [`StalenessPolicy`]: crate::streaming::StalenessPolicy
pub fn synthetic_scenario_with_policy(
    landmarks: usize,
    hosts: usize,
    dim: usize,
    seed: u64,
    config: super::ServiceConfig,
    policy: crate::streaming::StalenessPolicy,
) -> Result<ServeScenario> {
    let sub = p2psim_substrate(landmarks, hosts, dim, seed, policy)?;
    let engine = QueryEngine::new(sub.server.clone(), config)?;
    let host_rows: Vec<(Vec<f64>, Vec<f64>)> = sub
        .host_ids
        .iter()
        .map(|&h| {
            let row = sub.row(h);
            (row.clone(), row)
        })
        .collect();
    let mut nodes: Vec<NodeId> = (0..landmarks).map(NodeId::Landmark).collect();
    for (d_out, d_in) in &host_rows {
        nodes.push(engine.join_direct(d_out, d_in)?);
    }
    Ok(ServeScenario {
        engine,
        nodes,
        host_rows,
        drift_updates: sub.drift_updates,
    })
}

/// [`synthetic_scenario`] partitioned across `shards` engines: the same
/// substrate and the same epoch-zero measurement rows, admitted
/// round-robin into a [`ShardedEngine`]. Deterministic per seed.
pub fn synthetic_scenario_sharded(
    landmarks: usize,
    hosts: usize,
    dim: usize,
    seed: u64,
    shards: usize,
    config: super::ServiceConfig,
) -> Result<ServeScenario<ShardedEngine>> {
    synthetic_scenario_sharded_with_policy(
        landmarks,
        hosts,
        dim,
        seed,
        shards,
        config,
        crate::streaming::StalenessPolicy::default(),
    )
}

/// [`synthetic_scenario_sharded`] with an explicit [`StalenessPolicy`]
/// (see [`synthetic_scenario_with_policy`]).
///
/// [`StalenessPolicy`]: crate::streaming::StalenessPolicy
pub fn synthetic_scenario_sharded_with_policy(
    landmarks: usize,
    hosts: usize,
    dim: usize,
    seed: u64,
    shards: usize,
    config: super::ServiceConfig,
    policy: crate::streaming::StalenessPolicy,
) -> Result<ServeScenario<ShardedEngine>> {
    let sub = p2psim_substrate(landmarks, hosts, dim, seed, policy)?;
    let engine = ShardedEngine::new(sub.server.clone(), shards, config)?;
    let host_rows: Vec<(Vec<f64>, Vec<f64>)> = sub
        .host_ids
        .iter()
        .map(|&h| {
            let row = sub.row(h);
            (row.clone(), row)
        })
        .collect();
    let mut nodes: Vec<NodeId> = (0..landmarks).map(NodeId::Landmark).collect();
    for (d_out, d_in) in &host_rows {
        nodes.push(engine.join_direct(d_out, d_in)?);
    }
    Ok(ServeScenario {
        engine,
        nodes,
        host_rows,
        drift_updates: sub.drift_updates,
    })
}

/// Rows per [`ShardedEngine::join_many`] call in [`scale_scenario`]: the
/// whole population is admitted in `hosts / SCALE_ADMIT_CHUNK` bulk
/// batches (one solve + one publish per involved shard per batch), so a
/// million hosts take tens of publishes instead of a million.
pub const SCALE_ADMIT_CHUNK: usize = 65_536;

/// How many admitted hosts' measurement rows [`scale_scenario`] retains
/// as churn fodder.
pub const SCALE_CHURN_SAMPLE: usize = 1_024;

/// Builds the **scale** deployment: a transit-stub topology generated
/// directly at `landmarks + hosts` end hosts (no O(n²) measured matrix —
/// unlike [`synthetic_scenario`], whose P2PSim-style measurement pass
/// caps out around 10⁴ hosts), landmarks fitted at drift epoch zero, and
/// all `hosts` admitted through [`ShardedEngine::join_many`] in
/// [`SCALE_ADMIT_CHUNK`]-row batches. This is the ≥10⁶-host scenario
/// behind the `serve_sharded` bench group. Deterministic per seed.
pub fn scale_scenario(
    landmarks: usize,
    hosts: usize,
    dim: usize,
    seed: u64,
    shards: usize,
    config: super::ServiceConfig,
) -> Result<ServeScenario<ShardedEngine>> {
    use ides_netsim::{TransitStubParams, TransitStubTopology};
    use rand::rngs::StdRng as NetRng;
    use rand::SeedableRng as _;

    let n = landmarks + hosts;
    let params = TransitStubParams::internet_scale(n);
    let mut rng = NetRng::seed_from_u64(seed);
    let topology = TransitStubTopology::generate(&params, &mut rng);
    let lm_ids: Vec<usize> = (0..landmarks).collect();
    let host_ids: Vec<usize> = (landmarks..n).collect();
    let sub = ScenarioSubstrate::fit(
        topology,
        lm_ids,
        host_ids,
        dim,
        seed,
        crate::streaming::StalenessPolicy::default(),
    )?;

    let engine = ShardedEngine::new(sub.server.clone(), shards, config)?;
    let mut nodes: Vec<NodeId> = (0..landmarks).map(NodeId::Landmark).collect();
    nodes.reserve(hosts);
    let mut host_rows: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(SCALE_CHURN_SAMPLE);
    for chunk in sub.host_ids.chunks(SCALE_ADMIT_CHUNK) {
        let mut batch = ides_linalg::Matrix::zeros(0, landmarks);
        for &h in chunk {
            let row = sub.row(h);
            if host_rows.len() < SCALE_CHURN_SAMPLE {
                host_rows.push((row.clone(), row.clone()));
            }
            batch.push_row(&row);
        }
        nodes.extend(engine.join_many(&batch, &batch)?);
    }
    Ok(ServeScenario {
        engine,
        nodes,
        host_rows,
        drift_updates: sub.drift_updates,
    })
}

/// Admission-throughput comparison: `rows` join requests issued by
/// `joiner_threads` concurrent threads, once through the coalescer
/// ([`QueryEngine::join`]) and once through the conventional per-request
/// path ([`QueryEngine::join_per_request`]: one QR factorization and one
/// publish per request), each against a fresh engine from `make_engine`.
/// Threads rendezvous at a barrier before the clock starts, so spawn
/// overhead is excluded and both sides measure pure admission work. The
/// ratio is the serving headline: how much admission cost the coalescer
/// amortizes away under concurrency.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionReport {
    /// Join requests issued per side.
    pub joiners: usize,
    /// Coalesced admissions per second.
    pub coalesced_per_sec: f64,
    /// Per-request admissions per second.
    pub per_request_per_sec: f64,
    /// `coalesced_per_sec / per_request_per_sec`.
    pub speedup: f64,
    /// Batched flushes the coalesced side needed (`joiners / flushes` is
    /// the realized batch size).
    pub coalesced_flushes: u64,
}

/// Runs the comparison (see [`AdmissionReport`]). Generic over the
/// engine, so the sharded admission path can be compared the same way.
pub fn admission_comparison<F, S>(
    make_engine: F,
    rows: &[(Vec<f64>, Vec<f64>)],
    joiner_threads: usize,
) -> Result<AdmissionReport>
where
    S: DistanceService,
    F: Fn() -> Result<S>,
{
    assert!(!rows.is_empty(), "need join rows");
    let joiner_threads = joiner_threads.clamp(1, rows.len());
    let time_side = |coalesced: bool| -> Result<(Duration, u64)> {
        let engine = make_engine()?;
        let chunk = rows.len().div_ceil(joiner_threads);
        let parts: Vec<&[(Vec<f64>, Vec<f64>)]> = rows.chunks(chunk).collect();
        // +1: the timing thread releases the barrier and stamps the start.
        let barrier = std::sync::Barrier::new(parts.len() + 1);
        let mut elapsed = Duration::ZERO;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in &parts {
                let engine = &engine;
                let barrier = &barrier;
                let part: &[(Vec<f64>, Vec<f64>)] = part;
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    for (d_out, d_in) in part {
                        let joined = if coalesced {
                            engine.join(d_out, d_in)
                        } else {
                            engine.join_per_request(d_out, d_in)
                        };
                        joined.expect("admission join");
                    }
                }));
            }
            barrier.wait();
            let start = Instant::now();
            for h in handles {
                h.join().expect("joiner thread panicked");
            }
            elapsed = start.elapsed();
        });
        Ok((elapsed, engine.stats().flushes))
    };
    let (coalesced_t, flushes) = time_side(true)?;
    let (direct_t, _) = time_side(false)?;
    let n = rows.len() as f64;
    let coalesced_per_sec = n / coalesced_t.as_secs_f64();
    let per_request_per_sec = n / direct_t.as_secs_f64();
    Ok(AdmissionReport {
        joiners: rows.len(),
        coalesced_per_sec,
        per_request_per_sec,
        speedup: coalesced_per_sec / per_request_per_sec,
        coalesced_flushes: flushes,
    })
}

/// Parameters of the standard serving measurement (admission comparison
/// plus quiescent and under-drift query phases) shared by `ides-cli
/// serve` and the `serve_load` experiment.
#[derive(Debug, Clone, Copy)]
pub struct ServeMeasurementConfig {
    /// Landmarks in the synthetic deployment.
    pub landmarks: usize,
    /// Ordinary hosts admitted (and concurrent joiners in the admission
    /// comparison).
    pub hosts: usize,
    /// Model dimensionality.
    pub dim: usize,
    /// Query worker threads.
    pub threads: usize,
    /// Wall-clock budget of EACH query phase.
    pub phase: Duration,
    /// Scenario / sampling seed.
    pub seed: u64,
    /// Open-loop per-thread pacing; `None` = closed loop.
    pub pace_per_thread: Option<f64>,
    /// Engine knobs.
    pub service: super::ServiceConfig,
    /// Gap between drift epochs in the under-drift phase.
    pub drift_interval: Duration,
    /// Drift epochs per writer call (>= 2 engages the cross-epoch
    /// pipeline; 1 = classic barriered epochs).
    pub drift_batch: usize,
    /// Horizontal shards (1 = classic single-engine serving).
    pub shards: usize,
    /// Override for the streaming server's
    /// [`min_pipeline_hosts`](crate::streaming::StalenessPolicy::min_pipeline_hosts)
    /// pipeline clamp (`None` keeps the production default). Small CI
    /// deployments set `Some(0)` so `drift_batch >= 2` actually engages
    /// the cross-epoch pipeline and emits overlapping trace spans.
    pub min_pipeline_hosts: Option<usize>,
}

impl Default for ServeMeasurementConfig {
    fn default() -> Self {
        ServeMeasurementConfig {
            landmarks: 64,
            hosts: 500,
            dim: 16,
            threads: 4,
            phase: Duration::from_secs(2),
            seed: 20041025,
            pace_per_thread: None,
            service: super::ServiceConfig::default(),
            drift_interval: Duration::from_millis(2),
            drift_batch: 1,
            shards: 1,
            min_pipeline_hosts: None,
        }
    }
}

/// The standard serving measurement's results, with one shared JSON
/// emitter so the CLI smoke and the `serve_load` experiment cannot drift
/// apart on the `serving` schema that `scripts/run_benches.sh` merges
/// into `BENCH_NNNN.json`.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// The parameters measured under.
    pub config: ServeMeasurementConfig,
    /// Coalesced vs per-request admission.
    pub admission: AdmissionReport,
    /// Query phase with no writer activity.
    pub quiescent: LoadReport,
    /// Query phase under continuous drift epochs.
    pub drifting: LoadReport,
    /// Publish latency across both phases (merged over shards).
    pub publish: LatencyHistogram,
    /// Epoch-plan shape accumulated by the drift phase's writer (merged
    /// over shards): DAG group counts, antichain widths, critical paths.
    pub epoch_plan: EpochPlanTotals,
    /// End-of-run engine counters and gauges (summed over shards):
    /// coalescer queue depth, pair-cache occupancy, snapshot chunk
    /// sharing.
    pub stats: ServiceStats,
}

impl ServeSummary {
    /// Runs the standard measurement: builds the scenario (sharded when
    /// `config.shards > 1`), re-admits every host onto fresh engines for
    /// the admission comparison, then runs the two query phases against
    /// the admitted deployment.
    pub fn measure(config: ServeMeasurementConfig) -> Result<ServeSummary> {
        let mut policy = crate::streaming::StalenessPolicy::default();
        if let Some(n) = config.min_pipeline_hosts {
            policy.min_pipeline_hosts = n;
        }
        let scenario = synthetic_scenario_sharded_with_policy(
            config.landmarks,
            config.hosts,
            config.dim,
            config.seed,
            config.shards.max(1),
            config.service,
            policy,
        )?;
        let admission = admission_comparison(
            || {
                synthetic_scenario_sharded_with_policy(
                    config.landmarks,
                    0,
                    config.dim,
                    config.seed,
                    config.shards.max(1),
                    config.service,
                    policy,
                )
                .map(|s| s.engine)
            },
            &scenario.host_rows,
            config.hosts,
        )?;
        let load_cfg = LoadConfig {
            threads: config.threads,
            duration: config.phase,
            seed: config.seed,
            pace_per_thread: config.pace_per_thread,
        };
        let quiescent = run(&scenario.engine, &scenario.nodes, &load_cfg, None, None)?;
        let drift = DriftLoad {
            updates: scenario.drift_updates.clone(),
            interval: config.drift_interval,
            batch: config.drift_batch.max(1),
        };
        let drifting = run(
            &scenario.engine,
            &scenario.nodes,
            &load_cfg,
            Some(&drift),
            None,
        )?;
        let publish = scenario.engine.publish_latency();
        let epoch_plan = scenario.engine.epoch_plan_totals();
        let stats = scenario.engine.stats();
        Ok(ServeSummary {
            config,
            admission,
            quiescent,
            drifting,
            publish,
            epoch_plan,
            stats,
        })
    }

    /// Query-latency histogram merged across both query phases — the
    /// exact histogram the CLI's Prometheus exposition renders, so its
    /// `_count`/`_sum` reconcile bit-for-bit with the
    /// `telemetry_query_count`/`telemetry_query_sum_ns` JSON keys.
    pub fn query_latency_merged(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        merged.merge(&self.quiescent.query_latency);
        merged.merge(&self.drifting.query_latency);
        merged
    }

    /// Quiescent query quantile in microseconds.
    pub fn quiescent_us(&self, q: f64) -> f64 {
        self.quiescent.query_latency.quantile(q).as_secs_f64() * 1e6
    }

    /// Under-drift query quantile in microseconds.
    pub fn drift_us(&self, q: f64) -> f64 {
        self.drifting.query_latency.quantile(q).as_secs_f64() * 1e6
    }

    /// p99 under drift over quiescent p99 — the snapshot design's
    /// reader-isolation headline (acceptance: within 2x).
    pub fn p99_ratio(&self) -> f64 {
        let q = self.quiescent_us(0.99);
        if q > 0.0 {
            self.drift_us(0.99) / q
        } else {
            0.0
        }
    }

    /// The flat `serving` JSON object merged into `BENCH_NNNN.json`
    /// (hand-rendered: the vendored serde_json has no `json!` macro).
    pub fn to_json(&self) -> String {
        let us = |h: &LatencyHistogram, q: f64| h.quantile(q).as_secs_f64() * 1e6;
        // Per-shard quiescent latency: [{"shard": i, "p50_us": …, "p99_us": …}, …].
        let per_shard: Vec<String> = self
            .quiescent
            .per_shard_latency
            .iter()
            .enumerate()
            .map(|(i, h)| {
                format!(
                    "{{\"shard\": {i}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"queries\": {}}}",
                    us(h, 0.5),
                    us(h, 0.99),
                    h.count(),
                )
            })
            .collect();
        format!(
            "{{\"landmarks\": {}, \"hosts\": {}, \"dim\": {}, \"threads\": {}, \
             \"shards\": {}, \"mode\": \"{}\", \
             \"admission_joiners\": {}, \"admission_coalesced_per_sec\": {:.1}, \
             \"admission_per_request_per_sec\": {:.1}, \"admission_speedup\": {:.3}, \
             \"admission_flushes\": {}, \
             \"quiescent_p50_us\": {:.3}, \"quiescent_p99_us\": {:.3}, \
             \"quiescent_qps\": {:.1}, \"cache_hit_rate\": {:.4}, \
             \"drift_p50_us\": {:.3}, \"drift_p99_us\": {:.3}, \
             \"drift_qps\": {:.1}, \"drift_epochs\": {}, \
             \"p99_drift_over_quiescent\": {:.4}, \
             \"publish_p50_us\": {:.3}, \"publish_p99_us\": {:.3}, \
             \"publishes\": {}, \
             \"epoch_plan_epochs\": {}, \"epoch_plan_nodes\": {}, \
             \"epoch_plan_groups\": {}, \"epoch_plan_max_width\": {}, \
             \"epoch_plan_critical_path\": {}, \"epoch_plan_mean_width\": {:.3}, \
             \"epoch_plan_full_edges\": {}, \"epoch_plan_pruning\": {:.4}, \
             \"epoch_plan_pruned\": {}, \"epoch_pipeline_overlap\": {:.4}, \
             \"drift_batch\": {}, \
             \"telemetry_query_count\": {}, \"telemetry_query_sum_ns\": {}, \
             \"coalescer_depth\": {}, \"cache_occupied\": {}, \
             \"cache_slots\": {}, \"chunk_share_ratio\": {:.4}, \
             \"per_shard\": [{}]}}",
            self.config.landmarks,
            self.config.hosts,
            self.config.dim,
            self.config.threads,
            self.config.shards.max(1),
            if self.config.pace_per_thread.is_some() {
                "open"
            } else {
                "closed"
            },
            self.admission.joiners,
            self.admission.coalesced_per_sec,
            self.admission.per_request_per_sec,
            self.admission.speedup,
            self.admission.coalesced_flushes,
            self.quiescent_us(0.5),
            self.quiescent_us(0.99),
            self.quiescent.queries_per_sec,
            self.quiescent.cache_hit_rate,
            self.drift_us(0.5),
            self.drift_us(0.99),
            self.drifting.queries_per_sec,
            self.drifting.epochs,
            self.p99_ratio(),
            us(&self.publish, 0.5),
            us(&self.publish, 0.99),
            self.publish.count(),
            self.epoch_plan.epochs,
            self.epoch_plan.nodes,
            self.epoch_plan.groups,
            self.epoch_plan.max_width,
            self.epoch_plan.critical_path,
            self.epoch_plan.mean_width(),
            self.epoch_plan.full_edges,
            self.epoch_plan.pruning_ratio(),
            self.epoch_plan.pruned,
            self.epoch_plan.overlap_fraction(),
            self.config.drift_batch.max(1),
            self.query_latency_merged().count(),
            self.query_latency_merged().sum_ns(),
            self.stats.coalescer_depth,
            self.stats.cache_occupied,
            self.stats.cache_slots,
            self.stats.chunk_share_ratio(),
            per_shard.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::streaming::{MeasurementDelta, StalenessPolicy, StreamingServer};

    fn engine() -> QueryEngine {
        let ds = ides_datasets::generators::p2psim_like(20, 31).expect("dataset");
        let sub: Vec<usize> = (0..12).collect();
        let lm = ds.matrix.submatrix(&sub, &sub);
        let server = StreamingServer::new(&lm, 4, StalenessPolicy::default()).expect("server");
        QueryEngine::new(server, ServiceConfig::default()).expect("engine")
    }

    #[test]
    fn short_load_run_reports_sane_numbers() {
        let e = engine();
        let nodes: Vec<NodeId> = (0..12).map(NodeId::Landmark).collect();
        let drift = DriftLoad {
            updates: vec![EpochUpdate {
                epoch: 0.0,
                deltas: vec![
                    MeasurementDelta {
                        from: 0,
                        to: 5,
                        rtt: 20.0,
                    },
                    MeasurementDelta {
                        from: 5,
                        to: 0,
                        rtt: 20.0,
                    },
                ],
            }],
            interval: Duration::from_millis(5),
            batch: 2, // exercise the pipelined writer path
        };
        let report = run(
            &e,
            &nodes,
            &LoadConfig {
                threads: 2,
                duration: Duration::from_millis(120),
                ..LoadConfig::default()
            },
            Some(&drift),
            None,
        )
        .expect("load run");
        assert!(report.queries > 0, "workers must make progress");
        assert!(report.queries_per_sec > 0.0);
        assert!(report.epochs >= 1, "drift writer must have applied epochs");
        assert!(report.query_latency.quantile(0.99) >= report.query_latency.quantile(0.5));
        assert!(report.elapsed >= Duration::from_millis(120));
        assert!((0.0..=1.0).contains(&report.cache_hit_rate));
    }

    #[test]
    fn synthetic_scenario_and_admission_comparison() {
        let s = synthetic_scenario(10, 12, 4, 99, ServiceConfig::default()).expect("scenario");
        assert_eq!(s.nodes.len(), 22);
        assert_eq!(s.engine.snapshot().host_count(), 12);
        assert!(!s.drift_updates.is_empty(), "drift must emit epochs");
        // Every admitted host answers queries.
        for &n in &s.nodes {
            assert!(s.engine.estimate(n, s.nodes[0]).is_ok());
        }
        let report = admission_comparison(
            || synthetic_scenario(10, 0, 4, 99, ServiceConfig::default()).map(|sc| sc.engine),
            &s.host_rows,
            4,
        )
        .expect("admission comparison");
        assert_eq!(report.joiners, 12);
        assert!(report.coalesced_per_sec > 0.0);
        assert!(report.per_request_per_sec > 0.0);
        assert!(report.coalesced_flushes >= 1);
    }

    #[test]
    fn p2psim_substrate_survives_post_filter_shortfall() {
        // p2psim_like's measurement-loss filter keeps a stochastic
        // fraction of the requested population; around 2k hosts the
        // survivor count lands short of the request and the substrate
        // must regrow the target instead of slicing out of range
        // (regression: `serve --hosts 2000` panicked).
        let sub =
            p2psim_substrate(32, 2000, 4, 20040427, StalenessPolicy::default()).expect("substrate");
        assert_eq!(sub.lm_ids.len(), 32);
        assert_eq!(sub.host_ids.len(), 2000);
    }

    #[test]
    fn scale_scenario_bulk_admits_across_shards() {
        let s = scale_scenario(8, 300, 4, 7, 3, ServiceConfig::default()).expect("scale scenario");
        assert_eq!(s.nodes.len(), 308);
        assert_eq!(s.engine.stats().joins, 300);
        assert!(s.host_rows.len() <= SCALE_CHURN_SAMPLE);
        // Round-robin dealing balances the one 300-row bulk batch.
        assert!(s.engine.shard_stats().iter().all(|st| st.joins == 100));
        // Bulk admission: one flush per shard for the whole batch.
        assert_eq!(s.engine.stats().flushes, 3);
        assert!(!s.drift_updates.is_empty());
        let est = s
            .engine
            .estimate(s.nodes[8], s.nodes[307])
            .expect("estimate");
        assert!(est.is_finite());
        // The generic load harness attributes latency per shard.
        let report = run(
            &s.engine,
            &s.nodes,
            &LoadConfig {
                threads: 2,
                duration: Duration::from_millis(80),
                ..LoadConfig::default()
            },
            None,
            None,
        )
        .expect("sharded load run");
        assert_eq!(report.per_shard_latency.len(), 3);
        assert!(report.queries > 0);
        let split: u64 = report.per_shard_latency.iter().map(|h| h.count()).sum();
        assert_eq!(split, report.queries);
    }

    #[test]
    fn open_loop_paces_below_closed_loop() {
        let e = engine();
        let nodes: Vec<NodeId> = (0..12).map(NodeId::Landmark).collect();
        let paced = run(
            &e,
            &nodes,
            &LoadConfig {
                threads: 1,
                duration: Duration::from_millis(100),
                pace_per_thread: Some(200.0), // ~20 queries in 100ms
                ..LoadConfig::default()
            },
            None,
            None,
        )
        .expect("paced run");
        // Closed loop on the same engine runs orders of magnitude faster;
        // the paced run must stay within a loose multiple of its target.
        assert!(
            paced.queries < 400,
            "open loop did not pace: {} queries",
            paced.queries
        );
    }
}
