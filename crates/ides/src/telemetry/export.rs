//! Exporters: Prometheus text exposition and Chrome-trace-event JSON.
//!
//! Both are plain string renderers over telemetry snapshots — no I/O,
//! no dependencies — so the CLI (or a test) decides where the bytes go.
//!
//! **Prometheus** ([`render_prometheus`]): counters and gauges as
//! single samples, histograms as the classic cumulative
//! `_bucket{le=...}` / `_sum` / `_count` triple. All latency series use
//! **integer nanoseconds** (`_ns`-suffixed metric names) rather than
//! the conventional float seconds: the exposition's `_count`/`_sum`
//! must reconcile *exactly* with the load report's own totals, and
//! integers make that a byte-for-byte equality instead of a float
//! round-trip. Buckets above the highest occupied one are elided
//! (they'd all repeat the total), with `+Inf` always closing the
//! series.
//!
//! **Chrome trace** ([`render_chrome_trace`]): one complete-event
//! (`"ph":"X"`) object per span with microsecond `ts`/`dur`, `pid` 1,
//! and the recorder's thread sequence as `tid` — load the file straight
//! into Perfetto / `chrome://tracing` and overlapping pipeline stages
//! (epoch N's `rejoin` against epoch N+1's `plan`/`absorb_*`) show as
//! concurrent tracks.

use std::fmt::Write as _;

use super::registry::{Counter, Gauge, RegistrySnapshot, Timer};
use super::spans::{SpanEvent, NO_SHARD};
use crate::service::LatencyHistogram;

/// Namespace prefix of every exported metric.
const PREFIX: &str = "ides_";

fn render_histogram(out: &mut String, name: &str, h: &LatencyHistogram) {
    let _ = writeln!(out, "# TYPE {PREFIX}{name} histogram");
    // Highest occupied bucket bounds the rendered series; everything
    // above would repeat the cumulative total that `+Inf` already
    // carries.
    let counts: Vec<u64> = h.bucket_counts().collect();
    let last = counts.iter().rposition(|&c| c > 0);
    let mut cum = 0u64;
    if let Some(last) = last {
        for (b, (_, hi)) in LatencyHistogram::bucket_bounds().enumerate().take(last + 1) {
            cum += counts[b];
            let _ = writeln!(out, "{PREFIX}{name}_bucket{{le=\"{hi}\"}} {cum}");
        }
    }
    let _ = writeln!(out, "{PREFIX}{name}_bucket{{le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{PREFIX}{name}_sum {}", h.sum_ns());
    let _ = writeln!(out, "{PREFIX}{name}_count {}", h.count());
}

/// Renders a registry snapshot — plus caller-supplied extra histograms
/// and gauges (e.g. the load harness's per-run query-latency histogram
/// and `ServiceStats`-derived ratios) — as Prometheus text exposition
/// format. Extra histogram names should carry a `_ns` suffix to match
/// the registry timers' nanosecond unit.
pub fn render_prometheus(
    snap: &RegistrySnapshot,
    extra_hists: &[(&str, &LatencyHistogram)],
    extra_gauges: &[(&str, f64)],
) -> String {
    let mut out = String::new();
    for c in Counter::ALL {
        let _ = writeln!(out, "# TYPE {PREFIX}{} counter", c.name());
        let _ = writeln!(out, "{PREFIX}{} {}", c.name(), snap.counter(c));
    }
    for g in Gauge::ALL {
        let _ = writeln!(out, "# TYPE {PREFIX}{} gauge", g.name());
        let _ = writeln!(out, "{PREFIX}{} {}", g.name(), snap.gauge(g));
    }
    for (name, v) in extra_gauges {
        let _ = writeln!(out, "# TYPE {PREFIX}{name} gauge");
        let _ = writeln!(out, "{PREFIX}{name} {v}");
    }
    for t in Timer::ALL {
        render_histogram(&mut out, t.name(), snap.timer(t));
    }
    for (name, h) in extra_hists {
        render_histogram(&mut out, name, h);
    }
    out
}

/// Renders spans as a Chrome-trace-event JSON document (a
/// `traceEvents` array of complete events). Microsecond timestamps
/// keep nanosecond resolution through the fractional part. `args`
/// carries the shard and epoch labels when present.
pub fn render_chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur_ns = e.t_end_ns.saturating_sub(e.t_start_ns);
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"cat\":\"ides\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}",
            e.stage.name(),
            e.t_start_ns / 1_000,
            e.t_start_ns % 1_000,
            dur_ns / 1_000,
            dur_ns % 1_000,
            e.thread,
        );
        out.push_str(",\"args\":{");
        let mut first = true;
        if e.shard != NO_SHARD {
            let _ = write!(out, "\"shard\":{}", e.shard);
            first = false;
        }
        if e.epoch.is_finite() {
            let _ = write!(out, "{}\"epoch\":{}", if first { "" } else { "," }, e.epoch);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::super::registry::Registry;
    use super::super::spans::Stage;
    use super::*;

    #[test]
    fn prometheus_histogram_reconciles_and_is_cumulative() {
        let reg = Registry::new();
        reg.incr(Counter::Queries);
        reg.add(Counter::Joins, 41);
        reg.gauge_add(Gauge::CoalescerQueueDepth, 7);
        for ns in [800u64, 900, 1000, 2_000_000] {
            reg.time(Timer::Publish, Duration::from_nanos(ns));
        }
        let mut query_hist = LatencyHistogram::new();
        query_hist.record(Duration::from_nanos(500));
        query_hist.record(Duration::from_nanos(700));
        let snap = reg.snapshot();
        let text = render_prometheus(
            &snap,
            &[("serve_query_latency_ns", &query_hist)],
            &[("snapshot_chunk_share_ratio", 0.75)],
        );
        assert!(text.contains("ides_queries_total 1\n"));
        assert!(text.contains("ides_joins_total 41\n"));
        assert!(text.contains("ides_coalescer_queue_depth 7\n"));
        assert!(text.contains("ides_snapshot_chunk_share_ratio 0.75\n"));
        // _count/_sum reconcile exactly with the recorded samples.
        assert!(text.contains("ides_publish_latency_ns_count 4\n"));
        assert!(text.contains(&format!(
            "ides_publish_latency_ns_sum {}\n",
            800 + 900 + 1000 + 2_000_000
        )));
        assert!(text.contains("ides_serve_query_latency_ns_count 2\n"));
        assert!(text.contains("ides_serve_query_latency_ns_sum 1200\n"));
        assert!(text.contains("ides_serve_query_latency_ns_bucket{le=\"+Inf\"} 2\n"));
        // Cumulative buckets: the series of `le` counts never decreases
        // and ends at the total.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("ides_publish_latency_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "{cums:?}");
        assert_eq!(*cums.last().unwrap(), 4);
    }

    #[test]
    fn chrome_trace_renders_complete_events_with_labels() {
        let events = [
            SpanEvent {
                stage: Stage::Plan,
                shard: NO_SHARD,
                epoch: f64::NAN,
                t_start_ns: 1_500,
                t_end_ns: 4_000,
                thread: 1,
            },
            SpanEvent {
                stage: Stage::Rejoin,
                shard: 3,
                epoch: 12.0,
                t_start_ns: 2_000,
                t_end_ns: 9_750,
                thread: 2,
            },
        ];
        let json = render_chrome_trace(&events);
        assert!(json.contains("\"name\":\"plan\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2.500"));
        assert!(json.contains("\"shard\":3"));
        assert!(json.contains("\"epoch\":12"));
        // The NaN epoch and NO_SHARD label are omitted, keeping the
        // document valid JSON.
        assert!(!json.contains("NaN"));
        let plan_obj = json.lines().find(|l| l.contains("\"plan\"")).unwrap();
        assert!(plan_obj.contains("\"args\":{}"));
    }

    #[test]
    fn empty_inputs_render_valid_documents() {
        let snap = Registry::new().snapshot();
        let text = render_prometheus(&snap, &[], &[]);
        assert!(text.contains("ides_publish_latency_ns_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("ides_publish_latency_ns_count 0\n"));
        let json = render_chrome_trace(&[]);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }
}
