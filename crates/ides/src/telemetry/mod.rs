//! End-to-end telemetry: lock-free metrics, per-stage tracing spans,
//! and Prometheus / Chrome-trace export.
//!
//! Three layers, all behind **one global enable flag** (off by default;
//! a disabled recording site costs one relaxed atomic load):
//!
//! * [`registry`] — statically registered [`Counter`]s, [`Gauge`]s, and
//!   [`LatencyHistogram`](crate::service::LatencyHistogram)-backed
//!   [`Timer`]s with per-thread striped atomic cells: recording is
//!   wait-free (a relaxed `fetch_add` on the thread's stripe) and the
//!   merged totals are **exact**, not sampled.
//! * [`spans`] — a bounded per-thread ring-buffer recorder capturing
//!   `(stage, shard, epoch, t_start, t_end)` for the write-side stages
//!   (`plan`, `absorb_solve`, `absorb_commit`, `rejoin`, `refresh`,
//!   `publish`, `flush`, `pipeline_handoff`) and read-side events
//!   (`query`, `cache_hit`, `coalescer_wait`). Buffers drop-on-full
//!   with an explicit [`Counter::SpansDropped`] counter, so a drain
//!   with a zero dropped-count is provably lossless.
//! * [`export`] — [`render_prometheus`] (cumulative
//!   `_bucket`/`_sum`/`_count` text exposition over the same
//!   log-bucketed histograms the load harness uses, in exact integer
//!   nanoseconds) and [`render_chrome_trace`] (complete-event JSON that
//!   opens directly in Perfetto / `chrome://tracing`).
//!
//! Instrumented call sites live in [`crate::service`] (query, cache
//! hit, coalescer enqueue/wait/flush, publish, pair-cache occupancy),
//! [`crate::service::shard`] (per-shard labels via [`set_shard`]),
//! [`crate::streaming`] (per-level absorb/rejoin/refresh spans,
//! pipeline hand-off), and the `ides-cli serve
//! --metrics-out/--trace-out` surface that drains them.
//!
//! Telemetry is observational only: enabling it never changes any
//! computed value (pinned bit-identical by the `service_determinism`
//! suite's telemetry test), and its enabled overhead on the serve hot
//! path is gated ≥ 0.9× disabled qps by the `telemetry_overhead` bench
//! group in CI.

pub mod export;
pub mod registry;
pub mod spans;

pub use export::{render_chrome_trace, render_prometheus};
pub use registry::{
    count, count_n, enabled, gauge_add, gauge_sub, global, set_enabled, time, Counter, Gauge,
    Registry, RegistrySnapshot, Timer, STRIPES,
};
pub use spans::{
    instant, now_ns, record_at, sample_1_in, set_epoch, set_shard, span, take_spans, Span,
    SpanEvent, Stage, DEFAULT_CAPACITY, NO_SHARD,
};

/// Serializes tests that flip the global enable flag or assert on the
/// global registry/span state, so parallel test threads can't race the
/// process-wide telemetry state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
