//! Bounded per-thread ring-buffer span recorder.
//!
//! Every instrumented stage records a [`SpanEvent`] — `(stage, shard,
//! epoch, t_start, t_end, thread)` — into a buffer owned by the
//! recording thread. Buffers are bounded (default
//! [`DEFAULT_CAPACITY`] events, `IDES_TELEMETRY_SPAN_CAP` overrides):
//! when one fills, new events are **dropped, never overwritten**, and
//! the drop is counted in [`Counter::SpansDropped`] — so a drain that
//! observes a zero dropped-counter is provably lossless, which is
//! exactly what the CI smoke validates.
//!
//! Each buffer sits behind its own mutex that only contends at drain
//! time: the recording thread is the sole writer, so the hot-path lock
//! is always uncontended (a single CAS). A global list of weak-free
//! `Arc`s keeps buffers of exited threads alive until drained.
//!
//! Timestamps are nanoseconds since a process-wide epoch (first
//! telemetry touch), so spans from different threads share one
//! timeline — the property the Chrome-trace exporter needs to show the
//! pipeline's rejoin tier genuinely overlapping the next epoch's absorb
//! tier.
//!
//! Shard and epoch labels travel in thread-local context cells
//! ([`set_shard`] / [`set_epoch`]): the sharded engine sets the shard id
//! at the top of each per-shard closure and the epoch appliers set the
//! epoch, so deep callees (executor tiers, publish) label their spans
//! without threading arguments through every signature.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use super::registry::{self, Counter};

/// Shard label meaning "not shard-scoped" (single-engine spans).
pub const NO_SHARD: u32 = u32::MAX;

/// Default per-thread span-buffer capacity (events).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// The instrumented pipeline stages and read-side events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Epoch planning: validation, delta application, tier gate, DAG.
    Plan,
    /// One absorb-tier level's parallel solve phase.
    AbsorbSolve,
    /// One absorb-tier level's serial commit phase.
    AbsorbCommit,
    /// Rejoin tier (full cached joins + subset groups).
    Rejoin,
    /// Landmark Gram refresh triggered by the staleness policy.
    Refresh,
    /// Snapshot publish (pointer swap).
    Publish,
    /// Coalesced admission flush (batched solve + publish).
    Flush,
    /// Pipeline stage hand-off: freezing the model and queueing the
    /// rejoin tier to the worker.
    PipelineHandoff,
    /// One read-side pair estimate (sampled).
    Query,
    /// A pair estimate answered from the version-tagged cache (sampled).
    CacheHit,
    /// A coalescer follower waiting for the leader's flush.
    CoalescerWait,
}

impl Stage {
    /// Stable name used by the Chrome-trace exporter.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::AbsorbSolve => "absorb_solve",
            Stage::AbsorbCommit => "absorb_commit",
            Stage::Rejoin => "rejoin",
            Stage::Refresh => "refresh",
            Stage::Publish => "publish",
            Stage::Flush => "flush",
            Stage::PipelineHandoff => "pipeline_handoff",
            Stage::Query => "query",
            Stage::CacheHit => "cache_hit",
            Stage::CoalescerWait => "coalescer_wait",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// Which stage this span covers.
    pub stage: Stage,
    /// Shard label ([`NO_SHARD`] when not shard-scoped).
    pub shard: u32,
    /// Epoch label (`NaN` when not epoch-scoped).
    pub epoch: f64,
    /// Start, nanoseconds since the process telemetry epoch.
    pub t_start_ns: u64,
    /// End, nanoseconds since the process telemetry epoch.
    pub t_end_ns: u64,
    /// Recording thread's telemetry-assigned sequence number.
    pub thread: u64,
}

struct SpanBuf {
    events: Vec<SpanEvent>,
    cap: usize,
}

/// Registry of every thread's buffer; holds `Arc`s so buffers of exited
/// threads survive until drained.
static SINKS: Mutex<Vec<Arc<Mutex<SpanBuf>>>> = Mutex::new(Vec::new());

/// Process-wide time origin: all spans share this epoch so cross-thread
/// overlap renders correctly.
static EPOCH_INSTANT: OnceLock<Instant> = OnceLock::new();

/// Per-thread telemetry sequence number (the Chrome-trace `tid`).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

fn capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("IDES_TELEMETRY_SPAN_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

thread_local! {
    static LOCAL: (Arc<Mutex<SpanBuf>>, u64) = {
        let buf = Arc::new(Mutex::new(SpanBuf {
            events: Vec::new(),
            cap: capacity(),
        }));
        SINKS.lock().expect("span sink registry").push(Arc::clone(&buf));
        (buf, NEXT_THREAD.fetch_add(1, Ordering::Relaxed))
    };
    static SHARD: Cell<u32> = const { Cell::new(NO_SHARD) };
    static EPOCH: Cell<f64> = const { Cell::new(f64::NAN) };
    static SAMPLE_TICK: Cell<u32> = const { Cell::new(0) };
}

/// Nanoseconds since the process telemetry epoch.
pub fn now_ns() -> u64 {
    EPOCH_INSTANT
        .get_or_init(Instant::now)
        .elapsed()
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// Sets the calling thread's shard label for subsequent spans and
/// returns the previous label (restore it when leaving the scope).
pub fn set_shard(shard: u32) -> u32 {
    SHARD.with(|s| s.replace(shard))
}

/// Sets the calling thread's epoch label for subsequent spans and
/// returns the previous label.
pub fn set_epoch(epoch: f64) -> f64 {
    EPOCH.with(|e| e.replace(epoch))
}

/// Deterministic per-thread 1-in-`n` sampler for high-frequency events
/// (read-side query spans): returns `true` every `n`-th call on this
/// thread. Counters still count every event; only the *span* is
/// sampled, keeping the hot-path `Instant::now` cost off most queries.
pub fn sample_1_in(n: u32) -> bool {
    SAMPLE_TICK.with(|t| {
        let v = t.get().wrapping_add(1) % n.max(1);
        t.set(v);
        v == 0
    })
}

fn record(stage: Stage, t_start_ns: u64, t_end_ns: u64) {
    LOCAL.with(|(buf, thread)| {
        let mut b = buf.lock().expect("own span buffer");
        if b.events.len() >= b.cap {
            drop(b);
            registry::global().incr(Counter::SpansDropped);
            return;
        }
        let ev = SpanEvent {
            stage,
            shard: SHARD.with(|s| s.get()),
            epoch: EPOCH.with(|e| e.get()),
            t_start_ns,
            t_end_ns,
            thread: *thread,
        };
        b.events.push(ev);
    });
}

/// A RAII span: started by [`span`], recorded on drop. Inert (records
/// nothing, costs nothing beyond the construction-time enabled check)
/// when telemetry is disabled.
#[must_use = "a span records its stage's duration when dropped"]
pub struct Span {
    stage: Stage,
    start_ns: u64,
    armed: bool,
}

/// Opens a span for `stage`. When telemetry is disabled this is one
/// relaxed load and an inert guard; when enabled, the span records
/// `(stage, shard, epoch, start, end)` into the calling thread's buffer
/// at drop.
#[inline]
pub fn span(stage: Stage) -> Span {
    if !registry::enabled() {
        return Span {
            stage,
            start_ns: 0,
            armed: false,
        };
    }
    Span {
        stage,
        start_ns: now_ns(),
        armed: true,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            record(self.stage, self.start_ns, now_ns());
        }
    }
}

/// Records a zero-duration event (e.g. a cache hit marker) when
/// telemetry is enabled.
#[inline]
pub fn instant(stage: Stage) {
    if registry::enabled() {
        let t = now_ns();
        record(stage, t, t);
    }
}

/// Records a span ending now with an explicit start timestamp (from
/// [`now_ns`]) — for sites that only know the stage after the work ran,
/// e.g. a pair estimate that turns out to be a cache hit.
#[inline]
pub fn record_at(stage: Stage, t_start_ns: u64) {
    if registry::enabled() {
        record(stage, t_start_ns, now_ns());
    }
}

/// Drains every thread's buffer (exited threads included), returning
/// all recorded spans sorted by start time. Lossless by construction —
/// buffers drop-on-full rather than overwrite — so
/// `Counter::SpansDropped == 0` certifies that the returned vector is
/// the complete record.
pub fn take_spans() -> Vec<SpanEvent> {
    let sinks = SINKS.lock().expect("span sink registry");
    let mut all = Vec::new();
    for sink in sinks.iter() {
        let mut b = sink.lock().expect("span buffer");
        all.append(&mut b.events);
    }
    drop(sinks);
    all.sort_by_key(|e| (e.t_start_ns, e.t_end_ns, e.thread));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_context_and_drain_losslessly() {
        // Private-instance isolation is impossible for the thread-local
        // recorder, so serialize against other global-flag tests, run
        // the scenario on dedicated threads, and filter drained spans
        // by their thread ids.
        let _g = crate::telemetry::test_guard();
        registry::set_enabled(true);
        let mut tids = Vec::new();
        for k in 0..3u32 {
            let h = std::thread::spawn(move || {
                set_shard(k);
                set_epoch(k as f64 + 0.5);
                for _ in 0..5 {
                    let s = span(Stage::Rejoin);
                    drop(s);
                }
                instant(Stage::CacheHit);
                LOCAL.with(|(_, t)| *t)
            });
            tids.push(h.join().expect("recorder thread"));
        }
        registry::set_enabled(false);
        let spans = take_spans();
        for (k, tid) in tids.iter().enumerate() {
            let mine: Vec<&SpanEvent> = spans.iter().filter(|e| e.thread == *tid).collect();
            assert_eq!(mine.len(), 6, "5 rejoin spans + 1 instant");
            assert!(mine.iter().all(|e| e.shard == k as u32));
            assert!(mine
                .iter()
                .all(|e| (e.epoch - (k as f64 + 0.5)).abs() < 1e-12));
            assert!(mine.iter().all(|e| e.t_end_ns >= e.t_start_ns));
            assert_eq!(
                mine.iter().filter(|e| e.stage == Stage::CacheHit).count(),
                1
            );
        }
        // Drained means gone: a second drain of those threads is empty.
        let again = take_spans();
        assert!(again.iter().all(|e| !tids.contains(&e.thread)));
    }

    #[test]
    fn full_buffer_drops_and_counts_instead_of_overwriting() {
        let _g = crate::telemetry::test_guard();
        registry::set_enabled(true);
        let dropped_before = registry::global().total(Counter::SpansDropped);
        let (tid, first_start) = std::thread::spawn(|| {
            // Fill this thread's buffer past capacity; the earliest
            // event must survive (drop-new, not ring-overwrite).
            let cap = capacity();
            let first = span(Stage::Plan);
            drop(first);
            for _ in 0..cap + 10 {
                drop(span(Stage::Flush));
            }
            LOCAL.with(|(buf, t)| {
                let b = buf.lock().expect("own buffer");
                (*t, b.events.first().map(|e| e.t_start_ns))
            })
        })
        .join()
        .expect("filler thread");
        registry::set_enabled(false);
        let dropped = registry::global().total(Counter::SpansDropped) - dropped_before;
        assert!(dropped >= 11, "at least 11 events past cap, got {dropped}");
        let spans = take_spans();
        let mine: Vec<&SpanEvent> = spans.iter().filter(|e| e.thread == tid).collect();
        assert_eq!(mine.len(), capacity(), "buffer retained exactly cap");
        assert_eq!(
            mine.iter().map(|e| e.t_start_ns).min(),
            first_start,
            "oldest event survived the overflow"
        );
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::telemetry::test_guard();
        assert!(!registry::enabled());
        let tid = std::thread::spawn(|| {
            drop(span(Stage::Publish));
            instant(Stage::Query);
            LOCAL.with(|(_, t)| *t)
        })
        .join()
        .expect("inert thread");
        assert!(take_spans().iter().all(|e| e.thread != tid));
    }

    #[test]
    fn sampler_fires_once_per_period() {
        let hits = std::thread::spawn(|| (0..640).filter(|_| sample_1_in(64)).count())
            .join()
            .expect("sampler thread");
        assert_eq!(hits, 10);
    }
}
