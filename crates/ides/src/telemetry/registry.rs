//! Process-wide lock-free metrics registry.
//!
//! Every metric is **statically registered**: counters, gauges, and
//! timers are fixed enums, so a recording site compiles down to an index
//! into a static array of atomics — no hashing, no registration lock,
//! no allocation. Counters and timers are **striped**: each thread is
//! assigned one of [`STRIPES`] cache-line-aligned cells (round-robin at
//! first touch) and records with a single relaxed `fetch_add`, so the
//! hot paths are wait-free and cross-thread cache-line ping-pong is
//! bounded by the stripe count. A snapshot merges the stripes by
//! summation, which is **exact** — unlike sampled or lossy schemes,
//! `merged total == sum of per-thread increments` always holds (see the
//! scoped-thread hammering test below).
//!
//! The whole subsystem sits behind one global enable flag: when
//! disabled (the default), every recording helper returns after a
//! single relaxed load, so uninstrumented runs pay one predictable
//! branch per site. The `telemetry_overhead` bench group and the
//! `MIN_TELEMETRY_RATIO` CI gate pin the *enabled* cost too.
//!
//! Timers reuse the exact log-bucketed layout of
//! [`LatencyHistogram`] (4 buckets per
//! octave, 256 buckets), with each stripe holding its own atomic bucket
//! array; merging stripes into a `LatencyHistogram` is again an exact
//! bucket-wise sum, which is what lets the Prometheus exporter render
//! registry timers and load-harness histograms identically.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::service::metrics::{bucket_of, LatencyHistogram, BUCKETS};

/// Number of counter/timer stripes. Threads are assigned stripes
/// round-robin, so up to this many threads record without sharing a
/// cache line; beyond it, stripes are shared but recording stays
/// wait-free (relaxed `fetch_add`).
pub const STRIPES: usize = 8;

/// Statically registered monotone counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Pair estimates served (cache hits included). Not recorded on the
    /// query hot path: the engine's always-on [`ServiceStats`] counter
    /// is already exact, so exporters fold those totals in with
    /// [`Registry::add`] at drain time instead of paying a second RMW
    /// per sub-100 ns query (see the `telemetry_overhead` gate).
    ///
    /// [`ServiceStats`]: crate::service::ServiceStats
    Queries,
    /// Pair estimates answered from the version-tagged pair cache.
    /// Export-time folded, like [`Counter::Queries`].
    CacheHits,
    /// Hosts admitted (coalesced and direct).
    Joins,
    /// Admission batch flushes (one batched solve + publish each).
    Flushes,
    /// Hosts retired.
    Leaves,
    /// Drift epochs applied.
    Epochs,
    /// Snapshot publishes (pointer swaps).
    Publishes,
    /// Follower waits inside the join coalescer (threads that parked or
    /// spun for another thread's flush).
    CoalescerWaits,
    /// Span events discarded because a thread's ring buffer was full —
    /// the explicit loss signal of the span recorder; 0 means the drain
    /// was lossless.
    SpansDropped,
}

impl Counter {
    /// Number of counter slots.
    pub const COUNT: usize = 9;
    /// Every counter, in index order (snapshot / exporter iteration).
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Queries,
        Counter::CacheHits,
        Counter::Joins,
        Counter::Flushes,
        Counter::Leaves,
        Counter::Epochs,
        Counter::Publishes,
        Counter::CoalescerWaits,
        Counter::SpansDropped,
    ];

    /// Prometheus metric name (without the `ides_` namespace prefix).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Queries => "queries_total",
            Counter::CacheHits => "cache_hits_total",
            Counter::Joins => "joins_total",
            Counter::Flushes => "flushes_total",
            Counter::Leaves => "leaves_total",
            Counter::Epochs => "epochs_total",
            Counter::Publishes => "publishes_total",
            Counter::CoalescerWaits => "coalescer_waits_total",
            Counter::SpansDropped => "spans_dropped_total",
        }
    }
}

/// Statically registered gauges (instantaneous values, updated by
/// balanced add/sub deltas so concurrent writers compose).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Hosts currently enqueued in admission coalescers (all shards).
    CoalescerQueueDepth,
    /// Pair-cache entries currently holding a value (all shards).
    PairCacheOccupied,
    /// Total pair-cache slots across all constructed engines.
    PairCacheSlots,
}

impl Gauge {
    /// Number of gauge slots.
    pub const COUNT: usize = 3;
    /// Every gauge, in index order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::CoalescerQueueDepth,
        Gauge::PairCacheOccupied,
        Gauge::PairCacheSlots,
    ];

    /// Prometheus metric name (without the `ides_` namespace prefix).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::CoalescerQueueDepth => "coalescer_queue_depth",
            Gauge::PairCacheOccupied => "pair_cache_occupied",
            Gauge::PairCacheSlots => "pair_cache_slots",
        }
    }
}

/// Statically registered latency timers (striped atomic histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Timer {
    /// Snapshot publish (writer-side pointer-swap path).
    Publish,
    /// Coalesced admission flush (batched solve + publish).
    Flush,
    /// One drift epoch applied end to end (plan + absorb + rejoin).
    EpochApply,
}

impl Timer {
    /// Number of timer slots.
    pub const COUNT: usize = 3;
    /// Every timer, in index order.
    pub const ALL: [Timer; Timer::COUNT] = [Timer::Publish, Timer::Flush, Timer::EpochApply];

    /// Prometheus metric name (without the `ides_` namespace prefix);
    /// the `_ns` suffix marks the unit as integer nanoseconds.
    pub fn name(self) -> &'static str {
        match self {
            Timer::Publish => "publish_latency_ns",
            Timer::Flush => "flush_latency_ns",
            Timer::EpochApply => "epoch_apply_latency_ns",
        }
    }
}

/// One cache-line-aligned stripe of counter cells.
#[repr(align(64))]
struct CounterStripe {
    cells: [AtomicU64; Counter::COUNT],
}

/// One cache-line-aligned stripe of a timer's atomic histogram.
#[repr(align(64))]
struct TimerStripe {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// One timer: a stripe of atomic histograms.
struct TimerCell {
    stripes: [TimerStripe; STRIPES],
}

/// The registry itself: fixed arrays of atomics, `const`-constructible
/// so the global instance lives in `.bss` with zero initialization
/// cost. Tests construct private instances to assert exactness without
/// interference from the global one.
pub struct Registry {
    counters: [CounterStripe; STRIPES],
    gauges: [AtomicU64; Gauge::COUNT],
    timers: [TimerCell; Timer::COUNT],
}

/// A merged, point-in-time copy of a [`Registry`]'s contents.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// Counter totals, indexed in [`Counter::ALL`] order.
    pub counters: [u64; Counter::COUNT],
    /// Gauge values, indexed in [`Gauge::ALL`] order.
    pub gauges: [u64; Gauge::COUNT],
    /// Merged timer histograms, indexed in [`Timer::ALL`] order.
    pub timers: Vec<LatencyHistogram>,
}

impl RegistrySnapshot {
    /// Total of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Value of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Merged histogram of one timer.
    pub fn timer(&self, t: Timer) -> &LatencyHistogram {
        &self.timers[t as usize]
    }
}

impl Registry {
    /// An all-zero registry. `const` so the global instance needs no
    /// lazy initialization — the disabled fast path never synchronizes.
    pub const fn new() -> Self {
        Registry {
            counters: [const {
                CounterStripe {
                    cells: [const { AtomicU64::new(0) }; Counter::COUNT],
                }
            }; STRIPES],
            gauges: [const { AtomicU64::new(0) }; Gauge::COUNT],
            timers: [const {
                TimerCell {
                    stripes: [const {
                        TimerStripe {
                            buckets: [const { AtomicU64::new(0) }; BUCKETS],
                            sum_ns: AtomicU64::new(0),
                            max_ns: AtomicU64::new(0),
                        }
                    }; STRIPES],
                }
            }; Timer::COUNT],
        }
    }

    /// Adds `n` to counter `c` on the calling thread's stripe
    /// (wait-free: one relaxed `fetch_add`).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[stripe()].cells[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments counter `c` by one.
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Exact total of counter `c` (sum over stripes).
    pub fn total(&self, c: Counter) -> u64 {
        self.counters
            .iter()
            .map(|s| s.cells[c as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Adds `delta` to gauge `g`.
    pub fn gauge_add(&self, g: Gauge, delta: u64) {
        self.gauges[g as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta` from gauge `g`, saturating at zero (a racing
    /// unbalanced sub must not wrap the gauge to 2^64).
    pub fn gauge_sub(&self, g: Gauge, delta: u64) {
        let _ = self.gauges[g as usize].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(delta))
        });
    }

    /// Current value of gauge `g`.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// Records one duration into timer `t` on the calling thread's
    /// stripe (wait-free: three relaxed RMWs).
    pub fn time(&self, t: Timer, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let s = &self.timers[t as usize].stripes[stripe()];
        s.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        s.sum_ns.fetch_add(ns, Ordering::Relaxed);
        s.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Merges timer `t`'s stripes into one exact [`LatencyHistogram`].
    pub fn timer_histogram(&self, t: Timer) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for s in &self.timers[t as usize].stripes {
            for (b, cell) in s.buckets.iter().enumerate() {
                let c = cell.load(Ordering::Relaxed);
                if c > 0 {
                    h.absorb_bucket(b, c);
                }
            }
            h.absorb_aggregate(
                s.sum_ns.load(Ordering::Relaxed) as u128,
                s.max_ns.load(Ordering::Relaxed),
            );
        }
        h
    }

    /// Merged point-in-time copy of everything (exact once recording
    /// threads have quiesced; a torn read under concurrent recording
    /// only lags, it never invents samples).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters = [0u64; Counter::COUNT];
        for (i, c) in Counter::ALL.iter().enumerate() {
            counters[i] = self.total(*c);
        }
        let mut gauges = [0u64; Gauge::COUNT];
        for (i, g) in Gauge::ALL.iter().enumerate() {
            gauges[i] = self.gauge(*g);
        }
        let timers = Timer::ALL
            .iter()
            .map(|t| self.timer_histogram(*t))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            timers,
        }
    }

    /// Zeroes every cell (bench harness hygiene between phases; not
    /// linearizable against concurrent recorders).
    pub fn reset(&self) {
        for s in &self.counters {
            for c in &s.cells {
                c.store(0, Ordering::Relaxed);
            }
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for t in &self.timers {
            for s in &t.stripes {
                for b in &s.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                s.sum_ns.store(0, Ordering::Relaxed);
                s.max_ns.store(0, Ordering::Relaxed);
            }
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// The process-global registry every instrumented site records into.
static GLOBAL: Registry = Registry::new();

/// Global telemetry enable flag. Off by default: every recording helper
/// in this module (and the span recorder) first loads this and bails,
/// so the disabled cost per site is one relaxed load and a predictable
/// branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Round-robin stripe assignment, fixed at a thread's first recording.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // Const-initialized with a sentinel (fast TLS path: no lazy-init
    // flag or destructor registration on the per-record lookup); the
    // round-robin assignment happens on a thread's first recording.
    static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

#[inline]
fn stripe() -> usize {
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
            s.set(v);
            v
        }
    })
}

/// Turns process-wide telemetry recording on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is on (one relaxed load).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry (for snapshots / exporters).
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Increments `c` in the global registry when telemetry is enabled.
#[inline]
pub fn count(c: Counter) {
    if enabled() {
        GLOBAL.incr(c);
    }
}

/// Adds `n` to `c` in the global registry when telemetry is enabled.
#[inline]
pub fn count_n(c: Counter, n: u64) {
    if enabled() {
        GLOBAL.add(c, n);
    }
}

/// Adds `delta` to gauge `g` when telemetry is enabled.
#[inline]
pub fn gauge_add(g: Gauge, delta: u64) {
    if enabled() {
        GLOBAL.gauge_add(g, delta);
    }
}

/// Subtracts `delta` from gauge `g` when telemetry is enabled.
#[inline]
pub fn gauge_sub(g: Gauge, delta: u64) {
    if enabled() {
        GLOBAL.gauge_sub(g, delta);
    }
}

/// Records `d` into timer `t` when telemetry is enabled.
#[inline]
pub fn time(t: Timer, d: Duration) {
    if enabled() {
        GLOBAL.time(t, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merge_is_exact_under_scoped_thread_hammering() {
        // The exactness contract: with T threads each adding K times,
        // the merged total is exactly T*K — striping shards contention,
        // never samples it. A private instance keeps the global
        // registry's concurrent test traffic out of the assertion.
        let reg = Registry::new();
        const THREADS: usize = 23; // > STRIPES: forces stripe sharing
        const PER_THREAD: u64 = 20_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let reg = &reg;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        reg.incr(Counter::Queries);
                        if (i + t as u64).is_multiple_of(3) {
                            reg.add(Counter::Joins, 2);
                        }
                    }
                });
            }
        });
        assert_eq!(
            reg.total(Counter::Queries),
            THREADS as u64 * PER_THREAD,
            "merged counter total must be exact"
        );
        assert_eq!(reg.total(Counter::Joins) % 2, 0);
        assert_eq!(reg.total(Counter::Leaves), 0);
    }

    #[test]
    fn timer_merge_matches_serial_histogram() {
        // Striped atomic timers must merge to the same histogram a
        // serial LatencyHistogram would produce from the same samples.
        let reg = Registry::new();
        let mut serial = LatencyHistogram::new();
        let durations: Vec<Duration> = (0..500u64)
            .map(|i| Duration::from_nanos(50 + i * 977))
            .collect();
        std::thread::scope(|scope| {
            for chunk in durations.chunks(100) {
                let reg = &reg;
                scope.spawn(move || {
                    for d in chunk {
                        reg.time(Timer::Publish, *d);
                    }
                });
            }
        });
        for d in &durations {
            serial.record(*d);
        }
        let merged = reg.timer_histogram(Timer::Publish);
        assert_eq!(merged.count(), serial.count());
        assert_eq!(merged.sum_ns(), serial.sum_ns());
        assert_eq!(merged.max(), serial.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), serial.quantile(q));
        }
        let a: Vec<u64> = merged.bucket_counts().collect();
        let b: Vec<u64> = serial.bucket_counts().collect();
        assert_eq!(a, b, "bucket-exact merge");
    }

    #[test]
    fn gauges_saturate_instead_of_wrapping() {
        let reg = Registry::new();
        reg.gauge_add(Gauge::CoalescerQueueDepth, 5);
        reg.gauge_sub(Gauge::CoalescerQueueDepth, 3);
        assert_eq!(reg.gauge(Gauge::CoalescerQueueDepth), 2);
        reg.gauge_sub(Gauge::CoalescerQueueDepth, 100);
        assert_eq!(reg.gauge(Gauge::CoalescerQueueDepth), 0, "saturating");
    }

    #[test]
    fn disabled_helpers_do_not_record() {
        // Serialized with every other test that flips the global flag.
        let _g = crate::telemetry::test_guard();
        assert!(!enabled(), "telemetry must default to off");
        let before = global().total(Counter::Leaves);
        count(Counter::Leaves);
        // No other test touches Leaves while disabled, and enabling
        // tests use private instances, so the total must be unchanged.
        assert_eq!(global().total(Counter::Leaves), before);
    }
}
